// A7 — Ablation: expert-tagging budget. The deployment spent archival-
// expert time tagging 10K candidate pairs through the tagging application
// (Fig. 7). Uncertainty-sampling active learning (Sarawagi &
// Bhamidipaty, the paper's [26]) reaches comparable classifier accuracy
// with a fraction of the labels; this bench plots the learning curves of
// uncertainty vs random querying.

#include <cstdio>

#include "common.h"
#include "ml/active_learning.h"

int main() {
  using namespace yver;
  bench::PrintHeader("A7: Tagging-budget ablation (active learning)",
                     "motivated by §5.1 / Fig. 7");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto instances = bench::MakeTaggedInstances(pipeline, oracle);
  // Holdout for accuracy tracking.
  auto labeled_all =
      ml::ApplyMaybePolicy(instances, ml::MaybePolicy::kOmit);
  util::Rng rng(9);
  auto split = ml::SplitTrainTest(labeled_all, 0.6, rng);
  // The pool keeps original tags (the oracle to be queried).
  std::vector<ml::Instance> pool = split.train;
  std::printf("pool %zu pairs, holdout %zu pairs\n\n", pool.size(),
              split.test.size());

  ml::ActiveLearningOptions base;
  base.initial_labels = 50;
  base.batch_size = 50;
  base.max_labels = 600;

  auto uncertain = base;
  uncertain.strategy = ml::QueryStrategy::kUncertainty;
  auto random = base;
  random.strategy = ml::QueryStrategy::kRandom;
  auto curve_u = ml::RunActiveLearning(pool, split.test, uncertain);
  auto curve_r = ml::RunActiveLearning(pool, split.test, random);

  std::printf("%10s %14s %14s\n", "#labels", "uncertainty", "random");
  size_t n = std::max(curve_u.learning_curve.size(),
                      curve_r.learning_curve.size());
  for (size_t i = 0; i < n; ++i) {
    size_t labels = 0;
    std::string u = "-", r = "-";
    char buf[32];
    if (i < curve_u.learning_curve.size()) {
      labels = curve_u.learning_curve[i].first;
      std::snprintf(buf, sizeof(buf), "%.1f%%",
                    curve_u.learning_curve[i].second * 100);
      u = buf;
    }
    if (i < curve_r.learning_curve.size()) {
      labels = std::max(labels, curve_r.learning_curve[i].first);
      std::snprintf(buf, sizeof(buf), "%.1f%%",
                    curve_r.learning_curve[i].second * 100);
      r = buf;
    }
    std::printf("%10zu %14s %14s\n", labels, u.c_str(), r.c_str());
  }
  return 0;
}
