// A4 — Ablation: classifier choice. The paper selects ADTrees over
// standard decision trees and other learners for (a) interpretability,
// (b) prediction *scores* usable for ranked resolution, (c) graceful
// missing-value handling on schema-diverse pairs (§4.2, Fig. 5). This
// ablation pits the ADTree against a CART-style decision tree and the
// classical Fellegi-Sunter log-likelihood model on the same tagged
// pairs, both at native missingness and with extra feature knockout.

#include <cstdio>

#include "common.h"
#include "ml/adtree_trainer.h"
#include "ml/decision_tree.h"
#include "ml/fellegi_sunter.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace {

using namespace yver;

// Removes each present feature value with probability p (simulating even
// sparser sources).
std::vector<ml::Instance> Knockout(std::vector<ml::Instance> instances,
                                   double p, uint64_t seed) {
  util::Rng rng(seed);
  for (auto& inst : instances) {
    for (auto& v : inst.features.values) {
      if (!std::isnan(v) && rng.Bernoulli(p)) {
        v = features::MissingValue();
      }
    }
  }
  return instances;
}

template <typename Model>
double Accuracy(const Model& model,
                const std::vector<ml::Instance>& test) {
  size_t correct = 0;
  for (const auto& inst : test) {
    correct += model.Classify(inst.features) == (inst.label > 0);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace

int main() {
  bench::PrintHeader("A4: Classifier ablation (ADTree vs DT vs F-S)",
                     "motivated by §4.2 / Fig. 5");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto instances = ml::ApplyMaybePolicy(
      bench::MakeTaggedInstances(pipeline, oracle), ml::MaybePolicy::kOmit);
  util::Rng rng(5);
  auto split = ml::SplitTrainTest(instances, 0.7, rng);
  std::printf("train %zu / test %zu tagged pairs\n\n", split.train.size(),
              split.test.size());

  std::printf("%-22s %12s %12s %12s\n", "Missingness", "ADTree",
              "DecisionTree", "FellegiSunter");
  for (double knockout : {0.0, 0.2, 0.4}) {
    auto train = Knockout(split.train, knockout, 11);
    auto test = Knockout(split.test, knockout, 13);
    auto adt = ml::TrainAdTree(train, {});
    auto dt = ml::DecisionTree::Train(train);
    auto fs = ml::FellegiSunter::Train(train);
    char label[32];
    std::snprintf(label, sizeof(label), "native +%d%% knockout",
                  static_cast<int>(knockout * 100));
    std::printf("%-22s %11.1f%% %11.1f%% %11.1f%%\n", label,
                Accuracy(adt, test) * 100.0, Accuracy(dt, test) * 100.0,
                Accuracy(fs, test) * 100.0);
  }
  std::printf("\n(The paper's argument: the ADTree degrades most "
              "gracefully as features go missing, while still producing "
              "a rankable confidence score.)\n");
  return 0;
}
