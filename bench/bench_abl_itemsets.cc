// A6 — Ablation: maximal vs closed frequent itemsets as blocking keys.
// MFIBlocks mines *maximal* frequent itemsets; closed itemsets are the
// lossless alternative — every distinct support set keeps a key, so no
// pair is lost to the subsumption effect — at a much larger mining and
// key count. This ablation measures the quality/runtime trade on the
// Italy-like set.

#include <cstdio>

#include "common.h"
#include "core/evaluation.h"
#include "util/timer.h"

int main() {
  using namespace yver;
  bench::PrintHeader("A6: Maximal vs closed itemset keys",
                     "design choice of §4.1");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  std::printf("corpus: %zu records, %zu gold pairs\n\n",
              generated.dataset.size(), generated.dataset.NumGoldPairs());
  std::printf("%-10s %10s %10s %8s %10s %10s %9s\n", "keys", "#itemsets",
              "#blocks", "pairs", "Recall", "Precision", "time(s)");
  for (auto kind : {blocking::ItemsetKind::kMaximal,
                    blocking::ItemsetKind::kClosed}) {
    blocking::MfiBlocksConfig config;
    config.max_minsup = 5;
    config.ng = 3.5;
    config.expert_weighting = true;
    config.itemset_kind = kind;
    util::Timer timer;
    auto result = pipeline.RunBlocking(config);
    double seconds = timer.ElapsedSeconds();
    auto q = core::EvaluatePairs(generated.dataset, result.pairs);
    std::printf("%-10s %10zu %10zu %8zu %10.3f %10.3f %9.2f\n",
                kind == blocking::ItemsetKind::kMaximal ? "maximal"
                                                        : "closed",
                result.num_mfis_mined, result.blocks.size(),
                result.pairs.size(), q.Recall(), q.Precision(), seconds);
  }
  return 0;
}
