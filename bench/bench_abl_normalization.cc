// A3 — Ablation: name-equivalence preprocessing. The Names Project spent
// years building equivalence classes of name variants before any ER ran
// (§2); this ablation quantifies why. We generate the Italy-like corpus
// in a *pre-cleaning* state (elevated spelling noise), then run MFIBlocks
// on the raw records and on records normalized by the learned equivalence
// classes. Expected: normalization recovers a large share of the recall
// the noise destroys, at equal or better precision.

#include <cstdio>

#include "common.h"
#include "core/evaluation.h"
#include "text/normalizer.h"

int main() {
  using namespace yver;
  bench::PrintHeader("A3: Equivalence-class preprocessing ablation",
                     "motivated by §2");

  synth::GeneratorConfig config = synth::ItalyConfig();
  // Pre-cleaning noise levels: heavy transliteration variance.
  config.noise.transliteration = 0.22;
  config.noise.nickname = 0.10;
  config.noise.clerical = 0.05;
  config.noise.city_variant = 0.12;
  auto generated = synth::Generate(config);
  std::printf("noisy corpus: %zu records, %zu gold pairs\n\n",
              generated.dataset.size(), generated.dataset.NumGoldPairs());

  synth::Gazetteer gazetteer;
  blocking::MfiBlocksConfig bc;
  bc.max_minsup = 5;
  bc.ng = 3.5;
  bc.expert_weighting = true;

  std::printf("%-28s %8s %10s %8s %10s\n", "Condition", "Recall",
              "Precision", "F-1", "#pairs");
  {
    core::UncertainErPipeline pipeline(generated.dataset,
                                       gazetteer.MakeGeoResolver());
    auto result = pipeline.RunBlocking(bc);
    auto q = core::EvaluatePairs(generated.dataset, result.pairs);
    std::printf("%-28s %8.3f %10.3f %8.3f %10zu\n", "raw (pre-cleaning)",
                q.Recall(), q.Precision(), q.F1(), result.pairs.size());
  }
  {
    auto normalizer = text::NameNormalizer::Build(generated.dataset);
    data::Dataset normalized = normalizer.Apply(generated.dataset);
    std::printf("(learned %zu non-trivial equivalence classes, folded %zu "
                "values)\n",
                normalizer.NumNonTrivialClasses(),
                normalizer.NumFoldedValues());
    core::UncertainErPipeline pipeline(normalized,
                                       gazetteer.MakeGeoResolver());
    auto result = pipeline.RunBlocking(bc);
    auto q = core::EvaluatePairs(normalized, result.pairs);
    std::printf("%-28s %8.3f %10.3f %8.3f %10zu\n",
                "normalized (post-cleaning)", q.Recall(), q.Precision(),
                q.F1(), result.pairs.size());
  }
  return 0;
}
