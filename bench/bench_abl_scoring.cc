// A1 — Ablation (design choice from DESIGN.md): block-score functions.
// Compares the set-monotone ClusterJaccard score (uniform and expert
// weighted) with the non-monotone expert item-similarity score of Eq. 1
// across NG values. The paper found the hand-crafted similarity
// *detrimental* because MFIBlocks' guarantees hinge on set-monotonicity —
// this ablation verifies the direction holds in the reproduction.

#include <cstdio>

#include "common.h"

int main() {
  using namespace yver;
  bench::PrintHeader("A1: Block-score ablation", "design choice of §6.5");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto standard = core::BuildTaggedStandard(
      pipeline, bench::StandardConfigs(), bench::MakeTagger(oracle));

  struct Variant {
    const char* label;
    blocking::BlockScoreKind kind;
    bool expert_weighting;
  };
  const Variant variants[] = {
      {"ClusterJaccard/uniform", blocking::BlockScoreKind::kClusterJaccard,
       false},
      {"ClusterJaccard/expertW", blocking::BlockScoreKind::kClusterJaccard,
       true},
      {"ExpertSim (Eq.1)", blocking::BlockScoreKind::kExpertSim, false},
      {"ExpertSim + expertW", blocking::BlockScoreKind::kExpertSim, true},
  };
  std::printf("\n%-24s %6s %8s %10s %8s\n", "Score function", "NG", "Recall",
              "Precision", "F-1");
  for (const auto& v : variants) {
    for (double ng : {2.0, 3.5}) {
      blocking::MfiBlocksConfig config;
      config.max_minsup = 5;
      config.ng = ng;
      config.score_kind = v.kind;
      config.expert_weighting = v.expert_weighting;
      auto result = pipeline.RunBlocking(config);
      auto q = core::EvaluateAgainstStandard(standard, result.pairs);
      std::printf("%-24s %6.1f %8.3f %10.3f %8.3f\n", v.label, ng,
                  q.Recall(), q.Precision(), q.F1());
    }
  }
  return 0;
}
