// Blocking-stage thread sweep: RunMfiBlocks at 1 thread vs N threads on a
// synthetic corpus, reporting candidate pairs/sec and the per-substage
// wall-time breakdown (mine / support / score / threshold / emit). The
// sweep asserts output identity between the serial and every parallel run
// (the blocking determinism contract) before reporting any number, and
// writes a JSON record (--out) so the repo can track the perf trajectory
// (BENCH_blocking.json).
//
//   bench_blocking [--persons N] [--maxminsup K] [--ng G]
//                  [--threads T1,T2,...] [--out bench.json]
//
// On a single-core host the speedup is ~1.0x by construction; the
// identity assertion is the part that must hold everywhere.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "blocking/mfi_blocks.h"
#include "data/item_dictionary.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace yver;

struct Options {
  size_t persons = 4000;
  uint32_t max_minsup = 5;
  double ng = 3.5;
  std::vector<size_t> threads = {1, 2, 4, 8};
  std::string out;
};

std::vector<size_t> ParseThreadList(const char* arg) {
  std::vector<size_t> out;
  for (const char* p = arg; *p != '\0';) {
    out.push_back(static_cast<size_t>(std::strtoul(p, nullptr, 10)));
    p = std::strchr(p, ',');
    if (p == nullptr) break;
    ++p;
  }
  return out;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--persons") == 0) {
      options.persons = static_cast<size_t>(std::atol(next("--persons")));
    } else if (std::strcmp(argv[i], "--maxminsup") == 0) {
      options.max_minsup =
          static_cast<uint32_t>(std::atol(next("--maxminsup")));
    } else if (std::strcmp(argv[i], "--ng") == 0) {
      options.ng = std::atof(next("--ng"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.threads = ParseThreadList(next("--threads"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return options;
}

struct SweepPoint {
  size_t threads = 0;
  double seconds = 0.0;
  double pairs_per_sec = 0.0;
  blocking::BlockingTimings timings;
};

bool SameResult(const blocking::MfiBlocksResult& a,
                const blocking::MfiBlocksResult& b) {
  return a.blocks == b.blocks && a.pairs == b.pairs &&
         a.num_mfis_mined == b.num_mfis_mined &&
         a.num_blocks_considered == b.num_blocks_considered &&
         a.num_records_covered == b.num_records_covered;
}

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseOptions(argc, argv);

  auto config = synth::ItalyConfig();
  config.num_persons = options.persons;
  config.include_mv = true;
  config.seed = 11;
  auto generated = synth::Generate(config);
  synth::Gazetteer gazetteer;
  auto encoded =
      data::EncodeDataset(generated.dataset, gazetteer.MakeGeoResolver());

  blocking::MfiBlocksConfig blocking_config;
  blocking_config.max_minsup = options.max_minsup;
  blocking_config.ng = options.ng;
  blocking_config.expert_weighting = true;

  std::printf(
      "corpus: %zu records, %zu distinct items; maxminsup=%u ng=%.2f\n",
      generated.dataset.size(), encoded.dictionary.size(),
      options.max_minsup, options.ng);

  std::vector<SweepPoint> sweep;
  blocking::MfiBlocksResult reference;
  for (size_t num_threads : options.threads) {
    std::unique_ptr<util::ThreadPool> pool;
    if (num_threads > 1) {
      pool = std::make_unique<util::ThreadPool>(num_threads);
    }
    util::Timer timer;
    auto result = blocking::RunMfiBlocks(encoded, blocking_config,
                                         pool.get());
    SweepPoint point;
    point.threads = num_threads;
    point.seconds = timer.ElapsedSeconds();
    point.pairs_per_sec =
        static_cast<double>(result.pairs.size()) / point.seconds;
    point.timings = result.timings;
    if (sweep.empty()) {
      reference = std::move(result);
    } else if (!SameResult(result, reference)) {
      std::fprintf(stderr,
                   "FATAL: blocking output diverged at %zu threads — the "
                   "determinism contract is broken\n",
                   num_threads);
      return 1;
    }
    std::printf(
        "threads=%zu  %8.3f s  %10.0f pairs/s  "
        "(mine %.3f  support %.3f  score %.3f  threshold %.3f  emit %.3f)\n",
        point.threads, point.seconds, point.pairs_per_sec,
        point.timings.mine_seconds, point.timings.support_seconds,
        point.timings.score_seconds, point.timings.threshold_seconds,
        point.timings.emit_seconds);
    sweep.push_back(point);
  }

  double speedup = sweep.size() > 1 && sweep.back().seconds > 0.0
                       ? sweep.front().seconds / sweep.back().seconds
                       : 1.0;
  std::printf("blocks=%zu pairs=%zu mfis=%zu  speedup(%zu->%zu threads)=%.2fx\n",
              reference.blocks.size(), reference.pairs.size(),
              reference.num_mfis_mined, sweep.front().threads,
              sweep.back().threads, speedup);

  if (!options.out.empty()) {
    std::ofstream out(options.out);
    out << "{\n"
        << "  \"bench\": \"blocking\",\n"
        << "  \"host_hardware_threads\": "
        << util::ResolveNumThreads(0) << ",\n"
        << "  \"corpus_records\": " << generated.dataset.size() << ",\n"
        << "  \"distinct_items\": " << encoded.dictionary.size() << ",\n"
        << "  \"max_minsup\": " << options.max_minsup << ",\n"
        << "  \"ng\": " << options.ng << ",\n"
        << "  \"blocks\": " << reference.blocks.size() << ",\n"
        << "  \"pairs\": " << reference.pairs.size() << ",\n"
        << "  \"mfis_mined\": " << reference.num_mfis_mined << ",\n"
        << "  \"identity_across_thread_counts\": true,\n"
        << "  \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"threads\": %zu, \"seconds\": %.4f, \"pairs_per_sec\": "
          "%.0f, \"mine_seconds\": %.4f, \"support_seconds\": %.4f, "
          "\"score_seconds\": %.4f, \"threshold_seconds\": %.4f, "
          "\"emit_seconds\": %.4f}%s\n",
          p.threads, p.seconds, p.pairs_per_sec, p.timings.mine_seconds,
          p.timings.support_seconds, p.timings.score_seconds,
          p.timings.threshold_seconds, p.timings.emit_seconds,
          i + 1 < sweep.size() ? "," : "");
      out << buf;
    }
    char tail[64];
    std::snprintf(tail, sizeof(tail), "  \"speedup\": %.2f\n", speedup);
    out << "  ],\n" << tail << "}\n";
    std::printf("wrote %s\n", options.out.c_str());
  }
  return 0;
}
