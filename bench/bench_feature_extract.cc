// P1 — Feature-path throughput: old-style scalar string-path extraction
// vs. columnar batch extraction over the precomputed comparison corpus,
// in pairs/sec on a synthetic corpus. Writes a JSON record (--out) so the
// repo can track the perf trajectory (BENCH_feature_extract.json).
//
//   bench_feature_extract [--persons N] [--pairs M] [--threads T]
//                         [--out bench.json]
//
// The comparison corpus build (the one-time encode cost the columnar path
// pays up front) is measured and reported separately; the headline metric
// is single-thread pairs/sec, where the acceptance bar is >= 2x.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/item_dictionary.h"
#include "features/feature_extractor.h"
#include "support/reference_extractor.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace yver;

struct Options {
  size_t persons = 2000;
  size_t pairs = 100000;
  size_t threads = 0;  // additionally time a parallel batch when > 1
  std::string out;
};

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--persons") == 0) {
      options.persons = static_cast<size_t>(std::atol(next("--persons")));
    } else if (std::strcmp(argv[i], "--pairs") == 0) {
      options.pairs = static_cast<size_t>(std::atol(next("--pairs")));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.threads = static_cast<size_t>(std::atol(next("--threads")));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseOptions(argc, argv);

  auto config = synth::ItalyConfig();
  config.num_persons = options.persons;
  config.include_mv = true;
  config.seed = 11;
  auto generated = synth::Generate(config);
  synth::Gazetteer gazetteer;
  auto encoded =
      data::EncodeDataset(generated.dataset, gazetteer.MakeGeoResolver());
  const auto n = static_cast<int>(generated.dataset.size());

  // A fixed random pair workload: the soft-block regime where each record
  // recurs in many pairs, which is what the columnar corpus exploits.
  util::Rng rng(23);
  std::vector<data::RecordPair> pairs;
  pairs.reserve(options.pairs);
  while (pairs.size() < options.pairs) {
    auto a = static_cast<data::RecordIdx>(rng.UniformInt(0, n - 1));
    auto b = static_cast<data::RecordIdx>(rng.UniformInt(0, n - 1));
    if (a == b) continue;
    pairs.emplace_back(a, b);
  }

  std::printf("corpus: %zu records, %zu distinct items; workload: %zu pairs\n",
              generated.dataset.size(), encoded.dictionary.size(),
              pairs.size());

  // Reference: the pre-columnar string path, scalar, single thread.
  features::ReferenceFeatureExtractor reference(encoded);
  features::ReferenceFeatureExtractor::Scratch ref_scratch;
  features::FeatureVector fv;
  util::Timer timer;
  for (const auto& p : pairs) {
    reference.ExtractInto(p.a, p.b, &ref_scratch, &fv);
  }
  double ref_seconds = timer.ElapsedSeconds();
  double ref_pairs_per_sec = static_cast<double>(pairs.size()) / ref_seconds;

  // Columnar: corpus build (one-time encode) timed separately from the
  // per-pair path.
  timer.Reset();
  features::FeatureExtractor columnar(encoded);
  double corpus_build_seconds = timer.ElapsedSeconds();

  features::FeatureExtractor::Scratch col_scratch;
  timer.Reset();
  for (const auto& p : pairs) {
    columnar.ExtractInto(p.a, p.b, &col_scratch, &fv);
  }
  double col_seconds = timer.ElapsedSeconds();
  double col_pairs_per_sec = static_cast<double>(pairs.size()) / col_seconds;

  // Sanity: the race only counts if both paths emit identical bytes.
  util::Rng check_rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto& p = pairs[static_cast<size_t>(check_rng.UniformInt(
        0, static_cast<int>(pairs.size()) - 1))];
    auto expected = reference.Extract(p.a, p.b);
    auto actual = columnar.Extract(p.a, p.b);
    if (std::memcmp(expected.values.data(), actual.values.data(),
                    expected.values.size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "FATAL: columnar output diverges from reference on pair "
                   "(%u, %u)\n",
                   p.a, p.b);
      return 1;
    }
  }

  double speedup = ref_pairs_per_sec > 0.0
                       ? col_pairs_per_sec / ref_pairs_per_sec
                       : 0.0;
  std::printf("reference (string path, scalar): %10.0f pairs/s  (%.3f s)\n",
              ref_pairs_per_sec, ref_seconds);
  std::printf("columnar  (corpus, scalar)     : %10.0f pairs/s  (%.3f s; "
              "corpus build %.3f s)\n",
              col_pairs_per_sec, col_seconds, corpus_build_seconds);
  std::printf("single-thread speedup          : %10.2fx\n", speedup);

  double batch_pairs_per_sec = 0.0;
  size_t batch_threads = util::ResolveNumThreads(options.threads);
  if (batch_threads > 1) {
    util::ThreadPool pool(batch_threads);
    timer.Reset();
    auto batch = columnar.ExtractBatch(pairs, &pool);
    double batch_seconds = timer.ElapsedSeconds();
    batch_pairs_per_sec = static_cast<double>(pairs.size()) / batch_seconds;
    std::printf("columnar  (batch, %2zu threads)  : %10.0f pairs/s  (%.3f s)\n",
                batch_threads, batch_pairs_per_sec, batch_seconds);
    (void)batch;
  }

  if (!options.out.empty()) {
    std::ofstream f(options.out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", options.out.c_str());
      return 1;
    }
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"feature_extract\",\n"
        "  \"corpus_records\": %zu,\n"
        "  \"distinct_items\": %zu,\n"
        "  \"pairs\": %zu,\n"
        "  \"reference_pairs_per_sec\": %.0f,\n"
        "  \"columnar_pairs_per_sec\": %.0f,\n"
        "  \"single_thread_speedup\": %.2f,\n"
        "  \"corpus_build_seconds\": %.4f,\n"
        "  \"batch_threads\": %zu,\n"
        "  \"batch_pairs_per_sec\": %.0f\n"
        "}\n",
        generated.dataset.size(), encoded.dictionary.size(), pairs.size(),
        ref_pairs_per_sec, col_pairs_per_sec, speedup, corpus_build_seconds,
        batch_threads > 1 ? batch_threads : 1, batch_pairs_per_sec);
    f << buf;
    std::printf("wrote %s\n", options.out.c_str());
  }
  return 0;
}
