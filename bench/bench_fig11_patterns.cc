// E1 — Figure 11: data pattern counts. For each bucket of
// records-per-pattern (<=10, <=100, <=1000, <=10000, more) prints the
// number of patterns and the total records participating, plus the
// most-prevalent-pattern statistics discussed in §6.2.

#include <cstdio>

#include "common.h"
#include "data/stats.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E1: Data pattern counts", "Figure 11, §6.2");
  auto generated = bench::MakeFullSet();
  std::printf("dataset: %zu records (stand-in for the 6.5M corpus)\n\n",
              generated.dataset.size());

  auto stats = data::ComputePatternStats(generated.dataset);
  std::printf("%-28s %10s %12s\n", "records-with-pattern bucket", "#patterns",
              "sum #records");
  for (const auto& bucket : stats.Fig11Buckets()) {
    std::printf("%-28s %10zu %12zu\n", bucket.label.c_str(),
                bucket.num_patterns, bucket.num_records);
  }

  auto [mask, count] = stats.MostPrevalent();
  std::printf("\ndistinct patterns: %zu\n", stats.NumPatterns());
  std::printf("most prevalent pattern: %zu records, attributes:", count);
  for (size_t a = 0; a < data::kNumAttributes; ++a) {
    if (mask & (1u << a)) {
      std::printf(" %s",
                  std::string(data::AttributeShortName(
                                  static_cast<data::AttributeId>(a)))
                      .c_str());
    }
  }
  std::printf("\nfull-information-pattern records: %zu\n",
              stats.FullPatternRecords());
  return 0;
}
