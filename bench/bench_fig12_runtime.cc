// E4 — Figure 12: FP-Growth (MFI mining) run-time against the minsup
// parameter, for a large and a small dataset, with and without pruning of
// the 0.03% most frequent items. The paper ran 6.5M and 600K records; we
// scale both by the same factor and look for the same qualitative shape:
// runtime grows steeply as minsup decreases, roughly linearly with
// dataset size, and pruning flattens the curve.
//
// A second section measures the end-to-end resolve pipeline (blocking,
// feature extraction, ADTree training, scoring, ranked assembly) across
// thread counts on a ~50K-record corpus — the paper reports multi-day
// serial resolve runs (§7), so this is the scaling story the parallel
// pipeline exists for. The ranked output is asserted identical across
// thread counts (the determinism contract of UncertainErPipeline::Run).
//
//   bench_fig12_runtime [--skip-mining] [--resolve-scale S]
//                       [--threads T1,T2,...]
//
// --resolve-scale defaults to 0.5 (~50K records); --threads defaults to
// 1,2,8. Speedups are relative to the first listed thread count.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "data/item_dictionary.h"
#include "mining/fp_growth.h"
#include "util/timer.h"

namespace {

double MineSeconds(const std::vector<yver::data::ItemBag>& bags,
                   uint32_t minsup) {
  yver::util::Timer timer;
  yver::mining::MinerOptions options;
  options.minsup = minsup;
  auto mfis = yver::mining::MineMaximalItemsets(bags, options);
  double s = timer.ElapsedSeconds();
  std::printf("  minsup=%u: %7.3fs  (%zu MFIs)\n", minsup, s, mfis.size());
  return s;
}

void RunMiningSection() {
  using namespace yver;
  struct Series {
    const char* label;
    double scale;
  };
  // Paper: 6.5M and 600K (10.8x apart); we keep the ~10x ratio.
  const Series series[] = {{"Large (6.5M stand-in)", 1.0},
                           {"Small (600K stand-in)", 0.1}};
  for (const auto& s : series) {
    auto generated = bench::MakeRandomSet(s.scale);
    auto encoded = data::EncodeDataset(generated.dataset);
    std::printf("\n%s: %zu records, %zu distinct items\n", s.label,
                generated.dataset.size(), encoded.dictionary.size());
    std::printf(" no pruning:\n");
    for (uint32_t minsup = 5; minsup >= 2; --minsup) {
      MineSeconds(encoded.bags, minsup);
    }
    std::printf(" pruning 0.03%% most frequent items:\n");
    auto pruned = encoded.PruneMostFrequent(0.0003);
    for (uint32_t minsup = 5; minsup >= 2; --minsup) {
      MineSeconds(pruned, minsup);
    }
  }
}

void RunResolveScalingSection(double scale,
                              const std::vector<size_t>& thread_counts) {
  using namespace yver;
  auto generated = bench::MakeRandomSet(scale);
  std::printf("\nEnd-to-end resolve scaling: %zu records "
              "(%zu hardware threads available)\n",
              generated.dataset.size(), util::ResolveNumThreads(0));
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  core::PipelineConfig config = core::RecommendedConfig();

  double baseline_s = 0.0;
  std::vector<core::RankedMatch> baseline_matches;
  for (size_t threads : thread_counts) {
    config.num_threads = threads;
    // Fresh oracle per run: the tagger is stateful, and the determinism
    // contract is defined over identical tagger state.
    synth::TagOracle oracle(&generated.dataset);
    util::Timer timer;
    auto result = pipeline.Run(config, bench::MakeTagger(oracle));
    double s = timer.ElapsedSeconds();
    if (baseline_s == 0.0) {
      baseline_s = s;
      baseline_matches = result.resolution.matches();
    }
    bool identical = result.resolution.matches() == baseline_matches;
    std::printf("  threads=%zu: %8.3fs  speedup %.2fx  (%zu matches, "
                "output %s)\n",
                threads, s, s > 0 ? baseline_s / s : 0.0,
                result.resolution.size(),
                identical ? "identical" : "DIVERGED");
    if (!identical) {
      std::fprintf(stderr,
                   "determinism contract violated at threads=%zu\n", threads);
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace yver;
  bool skip_mining = false;
  double resolve_scale = 0.5;  // ~50K records
  std::vector<size_t> thread_counts = {1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-mining") == 0) {
      skip_mining = true;
    } else if (std::strcmp(argv[i], "--resolve-scale") == 0 && i + 1 < argc) {
      resolve_scale = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        thread_counts.push_back(static_cast<size_t>(std::strtoul(p, nullptr, 10)));
        p = std::strchr(p, ',');
        if (p == nullptr) break;
        ++p;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  bench::PrintHeader("E4: FP-Growth run-time vs minsup + resolve scaling",
                     "Figure 12, §6.3 / §7");
  if (!skip_mining) RunMiningSection();
  if (resolve_scale > 0 && !thread_counts.empty()) {
    RunResolveScalingSection(resolve_scale, thread_counts);
  }
  return 0;
}
