// E4 — Figure 12: FP-Growth (MFI mining) run-time against the minsup
// parameter, for a large and a small dataset, with and without pruning of
// the 0.03% most frequent items. The paper ran 6.5M and 600K records; we
// scale both by the same factor and look for the same qualitative shape:
// runtime grows steeply as minsup decreases, roughly linearly with
// dataset size, and pruning flattens the curve.

#include <cstdio>

#include "common.h"
#include "data/item_dictionary.h"
#include "mining/fp_growth.h"
#include "util/timer.h"

namespace {

double MineSeconds(const std::vector<yver::data::ItemBag>& bags,
                   uint32_t minsup) {
  yver::util::Timer timer;
  yver::mining::MinerOptions options;
  options.minsup = minsup;
  auto mfis = yver::mining::MineMaximalItemsets(bags, options);
  double s = timer.ElapsedSeconds();
  std::printf("  minsup=%u: %7.3fs  (%zu MFIs)\n", minsup, s, mfis.size());
  return s;
}

}  // namespace

int main() {
  using namespace yver;
  bench::PrintHeader("E4: FP-Growth run-time vs minsup", "Figure 12, §6.3");

  struct Series {
    const char* label;
    double scale;
  };
  // Paper: 6.5M and 600K (10.8x apart); we keep the ~10x ratio.
  const Series series[] = {{"Large (6.5M stand-in)", 1.0},
                           {"Small (600K stand-in)", 0.1}};
  for (const auto& s : series) {
    auto generated = bench::MakeRandomSet(s.scale);
    auto encoded = data::EncodeDataset(generated.dataset);
    std::printf("\n%s: %zu records, %zu distinct items\n", s.label,
                generated.dataset.size(), encoded.dictionary.size());
    std::printf(" no pruning:\n");
    for (uint32_t minsup = 5; minsup >= 2; --minsup) {
      MineSeconds(encoded.bags, minsup);
    }
    std::printf(" pruning 0.03%% most frequent items:\n");
    auto pruned = encoded.PruneMostFrequent(0.0003);
    for (uint32_t minsup = 5; minsup >= 2; --minsup) {
      MineSeconds(pruned, minsup);
    }
  }
  return 0;
}
