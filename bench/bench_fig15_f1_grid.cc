// E9 — Figure 15: F-1 score of blocking by Neighborhood Growth (NG) and
// MaxMinSup, measured against the expert-tagged standard (built, as in
// §5.1, from the union of candidates of several MFIBlocks runs). Paper
// shape: F-1 peaks at moderate NG (≈3-3.5) and decays for larger NG.

#include <cstdio>

#include "common.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E9: F-1 by NG and MaxMinSup", "Figure 15, §6.5");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto standard = core::BuildTaggedStandard(
      pipeline, bench::StandardConfigs(), bench::MakeTagger(oracle));
  std::printf("tagged standard: %zu pairs, %zu positive\n\n",
              standard.tags.size(), standard.num_positive);

  std::printf("%-6s", "NG");
  for (uint32_t mms : {4u, 5u, 6u}) std::printf("  MaxMinSup%u", mms);
  std::printf("\n");
  for (double ng = 1.5; ng <= 5.01; ng += 0.5) {
    std::printf("%-6.1f", ng);
    for (uint32_t mms : {4u, 5u, 6u}) {
      blocking::MfiBlocksConfig config;
      config.max_minsup = mms;
      config.ng = ng;
      auto result = pipeline.RunBlocking(config);
      auto q = core::EvaluateAgainstStandard(standard, result.pairs);
      std::printf("  %10.3f", q.F1());
    }
    std::printf("\n");
  }
  return 0;
}
