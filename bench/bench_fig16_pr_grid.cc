// E10 — Figure 16: Precision and Recall of blocking by NG and MaxMinSup,
// against the tagged standard. Paper shape: recall rises with NG (more
// overlap allowed) while precision falls; recall plateaus around NG 3-4,
// making MaxMinSup=5 with NG in [3,4] the preferred setting.

#include <cstdio>

#include "common.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E10: Precision/Recall by NG and MaxMinSup",
                     "Figure 16, §6.5");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto standard = core::BuildTaggedStandard(
      pipeline, bench::StandardConfigs(), bench::MakeTagger(oracle));
  std::printf("tagged standard: %zu pairs, %zu positive\n\n",
              standard.tags.size(), standard.num_positive);

  std::printf("%-6s", "NG");
  for (uint32_t mms : {4u, 5u, 6u}) std::printf("   Recall%u", mms);
  for (uint32_t mms : {4u, 5u, 6u}) std::printf("   Precis%u", mms);
  std::printf("\n");
  for (double ng = 1.5; ng <= 5.01; ng += 0.5) {
    std::printf("%-6.1f", ng);
    double recalls[3];
    double precisions[3];
    int i = 0;
    for (uint32_t mms : {4u, 5u, 6u}) {
      blocking::MfiBlocksConfig config;
      config.max_minsup = mms;
      config.ng = ng;
      auto result = pipeline.RunBlocking(config);
      auto q = core::EvaluateAgainstStandard(standard, result.pairs);
      recalls[i] = q.Recall();
      precisions[i] = q.Precision();
      ++i;
    }
    for (double r : recalls) std::printf("  %8.3f", r);
    for (double p : precisions) std::printf("  %8.3f", p);
    std::printf("\n");
  }
  return 0;
}
