// E8 — Figure 8: proportion of expert tags per similarity bin. Candidate
// pairs are scored with the trained ADT (normalized to [0,1]) and binned
// in 0.1 steps; each bin shows its tag mixture. The paper's shape: Yes
// dominates high-similarity bins, No dominates low ones, Maybe spreads
// over the middle.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "ml/adtree_trainer.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E8: Tag proportion vs similarity", "Figure 8, §5.1");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto instances = bench::MakeTaggedInstances(pipeline, oracle);
  auto labeled = ml::ApplyMaybePolicy(instances, ml::MaybePolicy::kOmit);
  ml::AdTreeTrainerOptions options;
  auto model = ml::TrainAdTree(labeled, options);

  // Normalize scores to [0,1] by logistic squashing (the paper bins its
  // similarity score in [0.1, 1.0]).
  auto similarity = [&model](const features::FeatureVector& fv) {
    return 1.0 / (1.0 + std::exp(-model.Score(fv)));
  };

  constexpr int kBins = 10;
  std::array<std::array<size_t, 5>, kBins> counts{};  // [bin][tag]
  for (const auto& inst : instances) {
    double s = similarity(inst.features);
    int bin = std::clamp(static_cast<int>(s * kBins), 0, kBins - 1);
    ++counts[bin][static_cast<size_t>(inst.tag)];
  }
  std::printf("%-6s %8s | %6s %6s %6s %6s %6s\n", "bin", "pairs", "No",
              "PrbNo", "Maybe", "PrbYes", "Yes");
  for (int b = 0; b < kBins; ++b) {
    size_t total = 0;
    for (size_t t = 0; t < 5; ++t) total += counts[b][t];
    std::printf("%.1f", (b + 1) / static_cast<double>(kBins));
    std::printf("  %10zu |", total);
    for (size_t t = 0; t < 5; ++t) {
      if (total == 0) {
        std::printf(" %5s%%", "-");
      } else {
        std::printf(" %5.0f%%", 100.0 * counts[b][t] / total);
      }
    }
    std::printf("\n");
  }
  return 0;
}
