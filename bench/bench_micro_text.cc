// A2 — Micro-benchmarks (google-benchmark) of the similarity kernels,
// FP-tree insertion, feature extraction and block scoring that dominate
// pipeline runtime.

#include <benchmark/benchmark.h>

#include "blocking/block_scoring.h"
#include "data/item_dictionary.h"
#include "features/feature_extractor.h"
#include "mining/fp_growth.h"
#include "mining/fp_tree.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "text/jaccard.h"
#include "text/jaro_winkler.h"
#include "text/levenshtein.h"

namespace {

using namespace yver;

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::JaroWinklerSimilarity("kirszenbaum", "kirshenboym"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::LevenshteinDistance("kirszenbaum", "kirshenboym"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_QGramJaccard(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::QGramJaccard("kirszenbaum", "kirshenboym"));
  }
}
BENCHMARK(BM_QGramJaccard);

void BM_FpTreeInsert(benchmark::State& state) {
  std::vector<std::vector<uint32_t>> transactions;
  util::Rng rng(7);
  for (int t = 0; t < 1000; ++t) {
    std::vector<uint32_t> txn;
    for (int i = 0; i < 12; ++i) {
      txn.push_back(static_cast<uint32_t>(rng.UniformInt(0, 499)));
    }
    std::sort(txn.begin(), txn.end());
    txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    transactions.push_back(std::move(txn));
  }
  for (auto _ : state) {
    mining::FpTree tree(500);
    for (const auto& txn : transactions) tree.Insert(txn, 1);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_FpTreeInsert);

void BM_MineMaximal1K(benchmark::State& state) {
  auto generated =
      synth::Generate([] {
        auto c = synth::ItalyConfig();
        c.num_persons = 450;
        return c;
      }());
  auto encoded = data::EncodeDataset(generated.dataset);
  mining::MinerOptions options;
  options.minsup = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mining::MineMaximalItemsets(encoded.bags, options));
  }
}
BENCHMARK(BM_MineMaximal1K)->Arg(2)->Arg(3)->Arg(5);

void BM_FeatureExtraction(benchmark::State& state) {
  auto generated = synth::Generate([] {
    auto c = synth::ItalyConfig();
    c.num_persons = 450;
    return c;
  }());
  synth::Gazetteer gazetteer;
  auto encoded =
      data::EncodeDataset(generated.dataset, gazetteer.MakeGeoResolver());
  features::FeatureExtractor extractor(encoded);
  data::RecordIdx i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(i, i + 1));
    i = (i + 2) % static_cast<data::RecordIdx>(generated.dataset.size() - 2);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_ClusterJaccardScore(benchmark::State& state) {
  auto generated = synth::Generate([] {
    auto c = synth::ItalyConfig();
    c.num_persons = 450;
    return c;
  }());
  auto encoded = data::EncodeDataset(generated.dataset);
  blocking::Block block;
  block.key = {0, 1};
  for (data::RecordIdx r = 0; r < 6; ++r) block.records.push_back(r);
  auto weights = blocking::DefaultExpertWeights();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blocking::ClusterJaccardScore(encoded, block, weights));
  }
}
BENCHMARK(BM_ClusterJaccardScore);

}  // namespace

BENCHMARK_MAIN();
