// A5 — System scalability: end-to-end blocking runtime against corpus
// size (the §6.3 observation that runtime grows "linearly with dataset
// size" at the system level, with FP-Growth the bottleneck). Sweeps the
// synthetic corpus from 2.5K to 40K records at the recommended blocking
// configuration and reports the stage split.

#include <cstdio>

#include "common.h"
#include "util/timer.h"

int main() {
  using namespace yver;
  bench::PrintHeader("A5: End-to-end scalability", "§6.3 discussion");
  std::printf("%10s %10s %12s %12s %10s\n", "records", "encode(s)",
              "blocking(s)", "pairs", "covered");
  for (double scale : {0.0125, 0.025, 0.05, 0.1}) {
    auto generated = bench::MakeRandomSet(scale * 4.0);
    synth::Gazetteer gazetteer;
    util::Timer encode_timer;
    core::UncertainErPipeline pipeline(generated.dataset,
                                       gazetteer.MakeGeoResolver());
    double encode_s = encode_timer.ElapsedSeconds();
    blocking::MfiBlocksConfig config;
    config.max_minsup = 5;
    config.ng = 3.5;
    config.expert_weighting = true;
    util::Timer block_timer;
    auto result = pipeline.RunBlocking(config);
    std::printf("%10zu %10.2f %12.2f %12zu %10zu\n",
                generated.dataset.size(), encode_s,
                block_timer.ElapsedSeconds(), result.pairs.size(),
                result.num_records_covered);
  }
  return 0;
}
