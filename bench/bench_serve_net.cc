// Wire-serving benchmark: a serve::net::Server on loopback driven by the
// load generator at several offered loads, reporting client-observed and
// server-side latency percentiles (p50/p95/p99) per level. Before any
// number is reported the harness proves the determinism contract the wire
// path promises: a recorded capture replays byte-identically (equal
// response hashes across a record run and two replays), and every run
// answers every query. Writes a JSON record (--out) so the repo can track
// the serving-latency trajectory (BENCH_serve_net.json).
//
//   bench_serve_net [--records N] [--matches M] [--queries Q]
//                   [--connections C] [--qps Q1,Q2,...] [--dispatch D]
//                   [--out bench.json]
//
// Levels: one closed-loop run (qps=0 — each connection waits for its
// answer, measuring unloaded round-trip latency) followed by one open-loop
// run per --qps value (sends paced on schedule, so queueing delay shows up
// in the client percentiles as offered load approaches capacity).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/ranked_resolution.h"
#include "serve/net/loadgen.h"
#include "serve/net/server.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "util/rng.h"

namespace {

using namespace yver;

struct Options {
  size_t records = 5000;
  size_t matches = 20000;
  size_t queries = 20000;
  size_t connections = 4;
  size_t dispatch = 2;
  std::vector<double> qps = {20000, 100000};
  std::string out;
};

std::vector<double> ParseQpsList(const char* arg) {
  std::vector<double> out;
  for (const char* p = arg; *p != '\0';) {
    out.push_back(std::strtod(p, nullptr));
    p = std::strchr(p, ',');
    if (p == nullptr) break;
    ++p;
  }
  return out;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--records") == 0) {
      options.records = static_cast<size_t>(std::atol(next("--records")));
    } else if (std::strcmp(argv[i], "--matches") == 0) {
      options.matches = static_cast<size_t>(std::atol(next("--matches")));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      options.queries = static_cast<size_t>(std::atol(next("--queries")));
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      options.connections =
          static_cast<size_t>(std::atol(next("--connections")));
    } else if (std::strcmp(argv[i], "--dispatch") == 0) {
      options.dispatch = static_cast<size_t>(std::atol(next("--dispatch")));
    } else if (std::strcmp(argv[i], "--qps") == 0) {
      options.qps = ParseQpsList(next("--qps"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.out = next("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return options;
}

core::RankedResolution MakeResolution(size_t num_records,
                                      size_t num_matches) {
  util::Rng rng(41);
  std::set<data::RecordPair> seen;
  std::vector<core::RankedMatch> matches;
  while (matches.size() < num_matches) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    if (a == b) continue;
    data::RecordPair pair(a, b);
    if (!seen.insert(pair).second) continue;
    core::RankedMatch m;
    m.pair = pair;
    m.confidence = rng.UniformDouble() * 2.0 - 0.2;
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  return core::RankedResolution(std::move(matches));
}

struct Level {
  const char* mode = "";
  double qps_offered = 0;  // 0 = closed loop
  serve::net::LoadGenReport report;
};

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseOptions(argc, argv);

  auto index = std::make_shared<const serve::ResolutionIndex>(
      MakeResolution(options.records, options.matches), options.records);
  auto service = std::make_shared<serve::ResolutionService>(index);

  serve::net::ServerOptions server_options;
  server_options.dispatch_threads = options.dispatch;
  serve::net::Server server(service, server_options);
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("corpus: %zu records, %zu matches; %zu queries over %zu "
              "connection(s), %zu dispatcher(s), port %u\n",
              options.records, options.matches, options.queries,
              options.connections, options.dispatch, server.port());

  serve::net::LoadGenOptions base;
  base.port = server.port();
  base.connections = options.connections;
  base.num_queries = options.queries;
  base.certainty = 0.5;
  base.hot_set = options.records;  // uniform over the corpus: no cache bias

  // Determinism gate: record, replay twice, demand one hash.
  const std::string capture = "/tmp/bench_serve_net_capture.yvr";
  std::vector<uint64_t> hashes;
  for (int run = 0; run < 3; ++run) {
    serve::net::LoadGenOptions lg = base;
    lg.num_queries = std::min<size_t>(options.queries, 5000);
    if (run == 0) {
      lg.record_path = capture;
    } else {
      lg.replay_path = capture;
    }
    auto report = serve::net::RunLoadGen(lg);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    hashes.push_back(report->response_hash);
  }
  std::remove(capture.c_str());
  bool replay_identical =
      hashes[0] == hashes[1] && hashes[1] == hashes[2];
  std::printf("record/replay hashes: %016llx %016llx %016llx -> %s\n",
              static_cast<unsigned long long>(hashes[0]),
              static_cast<unsigned long long>(hashes[1]),
              static_cast<unsigned long long>(hashes[2]),
              replay_identical ? "identical" : "DIVERGED");
  if (!replay_identical) {
    std::fprintf(stderr, "FATAL: replay diverged — the wire determinism "
                 "contract is broken\n");
    return 1;
  }

  std::vector<Level> levels;
  levels.push_back({"closed", 0});
  for (double qps : options.qps) levels.push_back({"open", qps});

  bool all_answered = true;
  for (Level& level : levels) {
    service->ResetMetrics();  // per-level server-side percentiles
    serve::net::LoadGenOptions lg = base;
    lg.qps = level.qps_offered;
    auto report = serve::net::RunLoadGen(lg);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    level.report = std::move(*report);
    const serve::net::LoadGenReport& r = level.report;
    all_answered = all_answered && r.ok + r.errors == r.queries_sent;
    std::printf(
        "%-6s qps=%-8.0f achieved %8.0f  client p50/p95/p99 %7.3f %7.3f "
        "%7.3f ms  server p50/p95/p99 %7.3f %7.3f %7.3f ms  (%llu ok, "
        "%llu errors)\n",
        level.mode, level.qps_offered, r.qps_achieved,
        r.LatencyPercentileMs(0.50), r.LatencyPercentileMs(0.95),
        r.LatencyPercentileMs(0.99),
        r.server_metrics.LatencyPercentileMs(0.50),
        r.server_metrics.LatencyPercentileMs(0.95),
        r.server_metrics.LatencyPercentileMs(0.99),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.errors));
  }
  server.Shutdown();
  if (!all_answered) {
    std::fprintf(stderr, "FATAL: a level lost responses\n");
    return 1;
  }

  if (!options.out.empty()) {
    std::ofstream out(options.out);
    out << "{\n"
        << "  \"bench\": \"serve_net\",\n"
        << "  \"corpus_records\": " << options.records << ",\n"
        << "  \"corpus_matches\": " << options.matches << ",\n"
        << "  \"queries_per_level\": " << options.queries << ",\n"
        << "  \"connections\": " << options.connections << ",\n"
        << "  \"dispatch_threads\": " << options.dispatch << ",\n"
        << "  \"replay_hash_identical\": true,\n"
        << "  \"levels\": [\n";
    for (size_t i = 0; i < levels.size(); ++i) {
      const Level& level = levels[i];
      const serve::net::LoadGenReport& r = level.report;
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"mode\": \"%s\", \"qps_offered\": %.0f, "
          "\"qps_achieved\": %.0f, \"ok\": %llu, \"errors\": %llu, "
          "\"client_p50_ms\": %.3f, \"client_p95_ms\": %.3f, "
          "\"client_p99_ms\": %.3f, \"server_p50_ms\": %.3f, "
          "\"server_p95_ms\": %.3f, \"server_p99_ms\": %.3f}%s\n",
          level.mode, level.qps_offered, r.qps_achieved,
          static_cast<unsigned long long>(r.ok),
          static_cast<unsigned long long>(r.errors),
          r.LatencyPercentileMs(0.50), r.LatencyPercentileMs(0.95),
          r.LatencyPercentileMs(0.99),
          r.server_metrics.LatencyPercentileMs(0.50),
          r.server_metrics.LatencyPercentileMs(0.95),
          r.server_metrics.LatencyPercentileMs(0.99),
          i + 1 < levels.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n" << "}\n";
    std::printf("wrote %s\n", options.out.c_str());
  }
  return 0;
}
