// Micro-benchmarks (google-benchmark) of the query-serving layer: indexed
// per-record lookup vs the old linear scan, cold vs warm ResolutionService
// queries, and batch fan-out.

#include <benchmark/benchmark.h>

#include <memory>
#include <set>
#include <vector>

#include "core/ranked_resolution.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "util/rng.h"

namespace {

using namespace yver;

constexpr size_t kRecords = 5000;
constexpr size_t kMatches = 20000;

core::RankedResolution MakeResolution() {
  util::Rng rng(41);
  std::set<data::RecordPair> seen;
  std::vector<core::RankedMatch> matches;
  while (matches.size() < kMatches) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(kRecords) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(kRecords) - 1));
    if (a == b) continue;
    data::RecordPair pair(a, b);
    if (!seen.insert(pair).second) continue;
    core::RankedMatch m;
    m.pair = pair;
    m.confidence = rng.UniformDouble() * 2.0 - 0.2;
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  return core::RankedResolution(std::move(matches));
}

const core::RankedResolution& Resolution() {
  static const core::RankedResolution resolution = MakeResolution();
  return resolution;
}

std::shared_ptr<const serve::ResolutionIndex> Index() {
  static const auto index = std::make_shared<const serve::ResolutionIndex>(
      Resolution(), kRecords);
  return index;
}

// The pre-index semantics: scan the full sorted match list per query.
void BM_ForRecordLinearScan(benchmark::State& state) {
  const auto& matches = Resolution().matches();
  util::Rng rng(7);
  for (auto _ : state) {
    auto r = static_cast<data::RecordIdx>(rng.UniformInt(0, kRecords - 1));
    std::vector<core::RankedMatch> out;
    for (const auto& m : matches) {
      if (m.confidence <= 0.5) break;
      if (m.pair.a == r || m.pair.b == r) out.push_back(m);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ForRecordLinearScan);

void BM_ForRecordIndexed(benchmark::State& state) {
  const auto& resolution = Resolution();
  util::Rng rng(7);
  for (auto _ : state) {
    auto r = static_cast<data::RecordIdx>(rng.UniformInt(0, kRecords - 1));
    benchmark::DoNotOptimize(resolution.ForRecord(r, 0.5));
  }
}
BENCHMARK(BM_ForRecordIndexed);

void BM_ServiceQueryUncached(benchmark::State& state) {
  serve::ServiceOptions options;
  options.cache_capacity = 0;
  serve::ResolutionService service(Index(), options);
  util::Rng rng(7);
  for (auto _ : state) {
    serve::Query query;
    query.record =
        static_cast<data::RecordIdx>(rng.UniformInt(0, kRecords - 1));
    query.certainty = 0.5;
    benchmark::DoNotOptimize(service.QueryRecord(query));
  }
}
BENCHMARK(BM_ServiceQueryUncached);

void BM_ServiceQueryWarmCache(benchmark::State& state) {
  serve::ResolutionService service(Index());
  util::Rng rng(7);
  // Hot set small enough that after one lap every lookup is a cache hit.
  constexpr int kHot = 512;
  for (int i = 0; i < kHot; ++i) {
    serve::Query query;
    query.record = static_cast<data::RecordIdx>(i);
    query.certainty = 0.5;
    benchmark::DoNotOptimize(service.QueryRecord(query));
  }
  for (auto _ : state) {
    serve::Query query;
    query.record = static_cast<data::RecordIdx>(rng.UniformInt(0, kHot - 1));
    query.certainty = 0.5;
    benchmark::DoNotOptimize(service.QueryRecord(query));
  }
}
BENCHMARK(BM_ServiceQueryWarmCache);

void BM_QueryBatch(benchmark::State& state) {
  serve::ServiceOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  serve::ResolutionService service(Index(), options);
  util::Rng rng(7);
  std::vector<serve::Query> workload(4096);
  for (auto& query : workload) {
    query.record =
        static_cast<data::RecordIdx>(rng.UniformInt(0, kRecords - 1));
    query.certainty = 0.5;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.QueryBatch(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_QueryBatch)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
