// E12 — Table 10: comparative quality of blocking techniques on the
// Italy-like set. MFIBlocks (without classification, as in the paper) is
// compared with the ten survey baselines in default configuration.
// Expected shape: baselines reach near-perfect recall at precision below
// 0.01 while MFIBlocks trades some recall for precision roughly two
// orders of magnitude higher.

#include <cstdio>

#include "blocking/baselines/baseline_runner.h"
#include "blocking/baselines/meta_blocking.h"
#include "blocking/baselines/standard_blocking.h"
#include "common.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E12: Comparative blocking quality", "Table 10, §6.6");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto standard = core::BuildTaggedStandard(
      pipeline, bench::StandardConfigs(), bench::MakeTagger(oracle));
  std::printf("tagged standard: %zu pairs, %zu positive\n\n",
              standard.tags.size(), standard.num_positive);
  std::printf("%-12s %10s %10s %12s\n", "Algorithm", "Recall", "Precision",
              "Pairs");

  {  // MFIBlocks, comparison without classification (§6.6); the blocking
     // configuration is the recommended one (MaxMinSup 5, NG 3.5, expert
     // weighting) since Table 10 showcases MFIBlocks' precision/recall
     // balance rather than the ablation baseline.
    blocking::MfiBlocksConfig config;
    config.max_minsup = 5;
    config.ng = 3.5;
    config.expert_weighting = true;
    auto result = pipeline.RunBlocking(config);
    auto q = core::EvaluateAgainstStandard(standard, result.pairs);
    std::printf("%-12s %10.3f %10.5f %12zu\n", "MFIBlocks", q.Recall(),
                q.Precision(), result.pairs.size());
  }
  for (const auto& baseline : blocking::baselines::AllBaselines()) {
    auto blocks = baseline->BuildBlocks(generated.dataset);
    auto pairs = blocking::baselines::PairsOfBlocks(blocks);
    std::vector<data::RecordPair> raw(pairs.begin(), pairs.end());
    auto q = core::EvaluateAgainstStandard(standard, raw);
    std::printf("%-12s %10.3f %10.5f %12zu\n",
                std::string(baseline->name()).c_str(), q.Recall(),
                q.Precision(), pairs.size());
  }

  // Extension beyond the paper's comparison: the survey's comparison-
  // cleaning step (meta-blocking) applied on top of standard blocking.
  std::printf("\nwith meta-blocking comparison cleaning (extension):\n");
  {
    blocking::baselines::StandardBlocking stbl;
    auto blocks = stbl.BuildBlocks(generated.dataset);
    for (auto pruning :
         {blocking::baselines::PruningScheme::kWeightedEdge,
          blocking::baselines::PruningScheme::kCardinalityNode}) {
      blocking::baselines::MetaBlockingOptions options;
      options.pruning = pruning;
      auto pairs = blocking::baselines::CleanComparisons(
          blocks, generated.dataset.size(), options);
      auto q = core::EvaluateAgainstStandard(standard, pairs);
      std::printf("%-12s %10.3f %10.5f %12zu\n",
                  pruning == blocking::baselines::PruningScheme::kWeightedEdge
                      ? "StBl+WEP"
                      : "StBl+CNP",
                  q.Recall(), q.Precision(), pairs.size());
    }
  }
  return 0;
}
