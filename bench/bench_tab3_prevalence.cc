// E2 — Table 3: item type prevalence across the full set, the Italy-like
// 10K tagged subset, and the stratified 100K-style sample.

#include <cstdio>

#include "common.h"
#include "data/stats.h"

namespace {

// Table 3 groups the date components into a single DOB row; we print the
// schema rows directly and add a DOB roll-up for comparison.
void PrintColumn(const yver::data::Dataset& dataset, const char* label) {
  std::printf("--- %s (%zu records) ---\n", label, dataset.size());
  auto rows = yver::data::ComputePrevalence(dataset);
  std::printf("%-18s %10s %6s\n", "Item Type", "Records", "%");
  for (const auto& row : rows) {
    std::printf("%-18s %10zu %5.0f%%\n",
                std::string(yver::data::AttributeDisplayName(row.attr)).c_str(),
                row.num_records, row.fraction * 100.0);
  }
  // DOB roll-up (a record has DOB when it has a birth year).
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace yver;
  bench::PrintHeader("E2: Item type prevalence", "Table 3, §6.2");
  PrintColumn(bench::MakeFullSet().dataset, "Full Set (scaled)");
  PrintColumn(bench::MakeItalySet().dataset, "10K Italy Set");
  PrintColumn(bench::MakeRandomSet().dataset, "100K Set (scaled)");
  return 0;
}
