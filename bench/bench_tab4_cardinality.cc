// E3 — Table 4: item type cardinality (distinct values and mean records
// per value) on the Italy-like and sample sets.

#include <cstdio>

#include "common.h"
#include "data/stats.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E3: Item type cardinality", "Table 4, §6.2");
  auto italy = bench::MakeItalySet();
  auto sample = bench::MakeRandomSet();
  auto italy_rows = data::ComputeCardinality(italy.dataset);
  auto sample_rows = data::ComputeCardinality(sample.dataset);
  std::printf("(Italy: %zu records; Sample: %zu records)\n\n",
              italy.dataset.size(), sample.dataset.size());
  std::printf("%-18s | %8s %12s | %8s %12s\n", "Item Type", "Items",
              "Records/Item", "Items", "Records/Item");
  std::printf("%-18s | %23s | %23s\n", "", "Italy Set", "Sample Set");
  for (size_t a = 0; a < data::kNumAttributes; ++a) {
    std::printf("%-18s | %8zu %12.0f | %8zu %12.0f\n",
                std::string(data::AttributeDisplayName(
                                static_cast<data::AttributeId>(a)))
                    .c_str(),
                italy_rows[a].num_items, italy_rows[a].records_per_item,
                sample_rows[a].num_items, sample_rows[a].records_per_item);
  }
  return 0;
}
