// E5 — Table 5: classifier quality under the three Maybe-handling
// policies: Maybe := No, Maybe omitted, and Identify-Maybe (three-class).
// Accuracy is 5-fold cross-validated on the tagged Italy-like pairs.

#include <cstdio>

#include "common.h"
#include "ml/metrics.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E5: Maybe-tag handling", "Table 5, §6.4");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto instances = bench::MakeTaggedInstances(pipeline, oracle);
  size_t maybes = 0;
  for (const auto& inst : instances) {
    if (inst.tag == ml::ExpertTag::kMaybe) ++maybes;
  }
  std::printf("tagged pairs: %zu (of which Maybe: %zu)\n\n",
              instances.size(), maybes);
  std::printf("%-24s %8s %10s\n", "Condition", "N", "Accuracy");

  ml::AdTreeTrainerOptions options;

  {  // Maybe := No.
    auto labeled =
        ml::ApplyMaybePolicy(instances, ml::MaybePolicy::kAsNo);
    double acc = ml::CrossValidatedAccuracy(labeled, options, 5, 1);
    std::printf("%-24s %8zu %9.1f%%\n", "Maybe:=No", labeled.size(),
                acc * 100.0);
  }
  {  // Maybe omitted.
    auto labeled = ml::ApplyMaybePolicy(instances, ml::MaybePolicy::kOmit);
    double acc = ml::CrossValidatedAccuracy(labeled, options, 5, 1);
    std::printf("%-24s %8zu %9.1f%%\n", "Maybe values omitted",
                labeled.size(), acc * 100.0);
  }
  {  // Identify Maybe (three-class): cross-validate manually.
    auto labeled =
        ml::ApplyMaybePolicy(instances, ml::MaybePolicy::kOwnClass);
    util::Rng rng(1);
    auto folds = ml::KFolds(labeled, 5, rng);
    double sum = 0.0;
    for (const auto& fold : folds) {
      auto model = ml::TrainThreeClass(fold.train, options);
      sum += ml::EvaluateThreeClassAccuracy(model, fold.test);
    }
    std::printf("%-24s %8zu %9.1f%%\n", "Identify Maybe values",
                labeled.size(), sum / folds.size() * 100.0);
  }
  return 0;
}
