// E6 — Table 6: effect of the MV bulk submitter on classifier quality.
// MV supplied ~15% of the Italy records with one fixed sparse pattern;
// training with his pairs inflates accuracy but risks over-fitting the
// Italian subset (§6.4).

#include <cstdio>

#include "common.h"
#include "ml/metrics.h"
#include "synth/generator.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E6: MV source over-fitting", "Table 6, §6.4");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto instances = bench::MakeTaggedInstances(pipeline, oracle);
  // Maybe omitted (the best condition of Table 5).
  auto labeled = ml::ApplyMaybePolicy(instances, ml::MaybePolicy::kOmit);

  size_t mv_records = 0;
  for (const auto& r : generated.dataset.records()) {
    if (r.source_id == synth::kMvSourceId) ++mv_records;
  }
  std::vector<ml::Instance> without_mv;
  for (const auto& inst : labeled) {
    if (generated.dataset[inst.pair.a].source_id == synth::kMvSourceId ||
        generated.dataset[inst.pair.b].source_id == synth::kMvSourceId) {
      continue;
    }
    without_mv.push_back(inst);
  }
  std::printf("MV records: %zu of %zu; MV-involved tagged pairs: %zu\n\n",
              mv_records, generated.dataset.size(),
              labeled.size() - without_mv.size());

  ml::AdTreeTrainerOptions options;
  std::printf("%-16s %8s %10s\n", "Condition", "N", "Accuracy");
  std::printf("%-16s %8zu %9.1f%%\n", "With MV", labeled.size(),
              ml::CrossValidatedAccuracy(labeled, options, 5, 2) * 100.0);
  std::printf("%-16s %8zu %9.1f%%\n", "Without MV", without_mv.size(),
              ml::CrossValidatedAccuracy(without_mv, options, 5, 2) * 100.0);
  return 0;
}
