// E7 — Tables 7/8: the learned ADT models, printed in the paper's layout,
// trained on the full tagged set and on the MV-less subset. The paper's
// observation to look for: the MV-less model leans less on father-name
// (FFN) features and more on same-first-name.

#include <cstdio>

#include "common.h"
#include "ml/adtree_trainer.h"

int main() {
  using namespace yver;
  bench::PrintHeader("E7: Learned ADT models", "Tables 7 and 8, §6.4");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto instances = bench::MakeTaggedInstances(pipeline, oracle);
  auto labeled = ml::ApplyMaybePolicy(instances, ml::MaybePolicy::kOmit);

  ml::AdTreeTrainerOptions options;
  {
    auto model = ml::TrainAdTree(labeled, options);
    std::printf("--- Table 7: full dataset ADT model (%zu instances) ---\n",
                labeled.size());
    std::printf("%s\n", model.ToString().c_str());
  }
  {
    std::vector<ml::Instance> without_mv;
    for (const auto& inst : labeled) {
      if (generated.dataset[inst.pair.a].source_id == synth::kMvSourceId ||
          generated.dataset[inst.pair.b].source_id == synth::kMvSourceId) {
        continue;
      }
      without_mv.push_back(inst);
    }
    auto model = ml::TrainAdTree(without_mv, options);
    std::printf(
        "--- Table 8: ADT model without MV records (%zu instances) ---\n",
        without_mv.size());
    std::printf("%s\n", model.ToString().c_str());
  }
  return 0;
}
