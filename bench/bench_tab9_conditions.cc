// E11 — Table 9: quality under the experimental conditions of §6.5.
// Rows average three runs with NG in {3, 3.5, 4} at MaxMinSup=5; per the
// paper, after the Expert Weighting row proved out, the remaining
// conditions keep expert weighting on. Expected shape: ExpertWeighting
// trades precision for recall; ExpertSim (non-monotone score) hurts both;
// SameSrc and Cls trade recall for precision and their combination yields
// the best F-1.

#include <cstdio>

#include "common.h"
#include "ml/adtree_trainer.h"

namespace {

using namespace yver;

struct Condition {
  const char* label;
  bool expert_weighting;
  bool expert_sim;
  bool same_src;
  bool classify;
};

}  // namespace

int main() {
  bench::PrintHeader("E11: Quality under varying conditions",
                     "Table 9, §6.5");
  auto generated = bench::MakeItalySet();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto tagger = bench::MakeTagger(oracle);
  auto standard = core::BuildTaggedStandard(pipeline,
                                            bench::StandardConfigs(), tagger);
  std::printf("tagged standard: %zu pairs, %zu positive\n\n",
              standard.tags.size(), standard.num_positive);

  const Condition conditions[] = {
      {"Base", false, false, false, false},
      {"Expert Weighting", true, false, false, false},
      {"ExpertSim", true, true, false, false},
      {"SameSrc", true, false, true, false},
      {"Cls", true, false, false, true},
      {"SameSrc + Cls", true, false, true, true},
  };

  std::printf("%-20s %8s %10s %8s\n", "Condition", "Recall", "Precision",
              "F-1");
  for (const auto& cond : conditions) {
    double recall_sum = 0.0;
    double precision_sum = 0.0;
    double f1_sum = 0.0;
    for (double ng : {3.0, 3.5, 4.0}) {
      core::PipelineConfig config;
      config.blocking.max_minsup = 5;
      config.blocking.ng = ng;
      config.blocking.expert_weighting = cond.expert_weighting;
      config.blocking.score_kind = cond.expert_sim
                                       ? blocking::BlockScoreKind::kExpertSim
                                       : blocking::BlockScoreKind::kClusterJaccard;
      config.discard_same_source = cond.same_src;
      config.use_classifier = cond.classify;
      auto result = pipeline.Run(config, tagger);
      auto q = core::EvaluateAgainstStandard(standard,
                                             result.resolution.matches());
      recall_sum += q.Recall();
      precision_sum += q.Precision();
      f1_sum += q.F1();
    }
    std::printf("%-20s %8.3f %10.3f %8.3f\n", cond.label, recall_sum / 3.0,
                precision_sum / 3.0, f1_sum / 3.0);
  }
  return 0;
}
