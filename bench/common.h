#ifndef YVER_BENCH_COMMON_H_
#define YVER_BENCH_COMMON_H_

// Shared helpers for the experiment harnesses. Each bench_*.cc regenerates
// one table or figure of the paper (see DESIGN.md experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers).

#include <cstdio>
#include <vector>

#include "core/gold_standard.h"
#include "core/pipeline.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

namespace yver::bench {

/// The Italy-like tagged evaluation dataset (ItalySet of §5.1).
inline synth::GeneratedData MakeItalySet() {
  return synth::Generate(synth::ItalyConfig());
}

/// The stratified random sample. scale=1.0 gives ~100K reports; the
/// default 0.25 keeps single-core bench runtimes reasonable.
inline synth::GeneratedData MakeRandomSet(double scale = 0.25) {
  return synth::Generate(synth::RandomSetConfig(scale));
}

/// The "full dataset" stand-in. The paper's corpus holds 6.5M reports; we
/// scale to laptop size while preserving the pattern/prevalence shape.
inline synth::GeneratedData MakeFullSet(double scale = 2.0) {
  auto config = synth::RandomSetConfig(scale);
  config.seed = 5;
  return synth::Generate(config);
}

/// Tagger bound to a TagOracle.
inline core::PairTagger MakeTagger(synth::TagOracle& oracle) {
  return [&oracle](data::RecordIdx a, data::RecordIdx b) {
    return oracle.Tag(a, b);
  };
}

/// The blocking configurations whose candidate union forms the tagged
/// standard, mirroring "MFIBlocks was run several times and with several
/// configurations on the Italy set" (§5.1).
inline std::vector<blocking::MfiBlocksConfig> StandardConfigs() {
  std::vector<blocking::MfiBlocksConfig> configs;
  for (uint32_t mms : {4u, 5u, 6u}) {
    for (double ng : {2.0, 3.0, 4.0}) {
      blocking::MfiBlocksConfig c;
      c.max_minsup = mms;
      c.ng = ng;
      configs.push_back(c);
    }
  }
  return configs;
}

/// Labeled instances for the classifier experiments: blocking candidates
/// of the default configuration, tagged by the oracle.
inline std::vector<ml::Instance> MakeTaggedInstances(
    core::UncertainErPipeline& pipeline, synth::TagOracle& oracle,
    double ng = 3.5, uint32_t max_minsup = 5) {
  blocking::MfiBlocksConfig config;
  config.max_minsup = max_minsup;
  config.ng = ng;
  config.expert_weighting = true;
  auto blocking_result = pipeline.RunBlocking(config);
  return pipeline.MakeInstances(blocking_result.pairs, MakeTagger(oracle));
}

/// Prints a standard experiment header.
inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment, paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace yver::bench

#endif  // YVER_BENCH_COMMON_H_
