// Multi-granularity resolution (the Capelluto example, §6.5): the same
// blocking output serves two granularities. At person granularity,
// sibling pairs are false positives; at family granularity they are the
// signal. We run the pipeline once and form entities at two certainty
// levels, then evaluate each against the matching ground truth.
//
//   ./build/examples/example_family_search

#include <cstdio>
#include <map>
#include <set>

#include "core/entity_clusters.h"
#include "core/evaluation.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

int main() {
  using namespace yver;
  synth::GeneratorConfig config = synth::ItalyConfig();
  config.num_persons = 1200;
  auto generated = synth::Generate(config);
  std::printf("Corpus: %zu reports of %zu persons\n",
              generated.dataset.size(), generated.persons.size());

  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);

  // Looser blocking (higher NG, denser neighborhoods) keeps the familial
  // near-matches that strict person-level ER would discard (§4.1: "by
  // allowing a looser compact set setting and denser neighborhoods,
  // entities can be broadened ... to a granularity of nuclear family").
  core::PipelineConfig pc;
  pc.blocking.max_minsup = 5;
  pc.blocking.ng = 5.0;
  pc.blocking.expert_weighting = true;
  pc.use_classifier = true;
  pc.discard_same_source = false;  // same-source pairs are family evidence
  auto result = pipeline.Run(
      pc, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });

  // Person granularity: high certainty threshold.
  const double person_certainty = 1.0;
  core::EntityClusters person_clusters(result.resolution,
                                       generated.dataset.size(),
                                       person_certainty);
  // Family granularity: every ranked match, block evidence included.
  const double family_certainty = 0.0;
  core::EntityClusters family_clusters(result.resolution,
                                       generated.dataset.size(),
                                       family_certainty);

  auto person_pairs = result.resolution.AboveThreshold(person_certainty);
  auto family_pairs = result.resolution.AboveThreshold(family_certainty);
  std::vector<data::RecordPair> pp;
  for (const auto& m : person_pairs) pp.push_back(m.pair);
  std::vector<data::RecordPair> fp;
  for (const auto& m : family_pairs) fp.push_back(m.pair);

  auto person_q = core::EvaluatePairs(generated.dataset, pp);
  auto family_q = core::EvaluateFamilyPairs(generated.dataset, fp);
  std::printf("\nPerson granularity  (certainty > %.1f): %5zu matches, "
              "%4zu clusters>1, person-P %.3f person-R %.3f\n",
              person_certainty, person_pairs.size(),
              person_clusters.NumNonSingleton(), person_q.Precision(),
              person_q.Recall());
  std::printf("Family granularity  (certainty > %.1f): %5zu matches, "
              "%4zu clusters>1, family-P %.3f family-R %.3f\n",
              family_certainty, family_pairs.size(),
              family_clusters.NumNonSingleton(), family_q.Precision(),
              family_q.Recall());

  // Show one family cluster that person-level resolution splits apart.
  for (const auto& cluster : family_clusters.clusters()) {
    if (cluster.size() < 3) continue;
    // Distinct persons in the cluster?
    std::set<int64_t> entities;
    std::set<int64_t> families;
    for (auto r : cluster) {
      entities.insert(generated.dataset[r].entity_id);
      families.insert(generated.dataset[r].family_id);
    }
    if (entities.size() < 2 || families.size() != 1) continue;
    std::printf("\nA nuclear family resolved as one unit (%zu reports, "
                "%zu persons):\n",
                cluster.size(), entities.size());
    for (auto r : cluster) {
      auto profile = core::BuildProfile(generated.dataset, {r});
      std::printf("  [BookID %llu] %s\n",
                  static_cast<unsigned long long>(
                      generated.dataset[r].book_id),
                  core::RenderNarrative(profile).c_str());
    }
    break;
  }
  return 0;
}
