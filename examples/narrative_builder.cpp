// Narrative construction (the paper's motivation, §1): resolve a town's
// reports into entities, then render a narrative paragraph per resolved
// person — the stepping stone "towards automatically creating narratives
// for each entity in the database".
//
//   ./build/examples/example_narrative_builder

#include <cstdio>
#include <map>
#include <set>

#include <fstream>

#include "core/entity_clusters.h"
#include "core/knowledge_graph.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

int main() {
  using namespace yver;
  synth::GeneratorConfig config = synth::ItalyConfig();
  config.num_persons = 800;
  config.include_mv = false;
  auto generated = synth::Generate(config);

  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto result = pipeline.Run(
      core::RecommendedConfig(),
      [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });

  core::EntityClusters clusters(result.resolution, generated.dataset.size(),
                                /*certainty=*/0.0);
  std::printf("%zu reports resolved into %zu entities "
              "(%zu multi-report)\n\n",
              generated.dataset.size(), clusters.size(),
              clusters.NumNonSingleton());

  // Render the ten best-documented entities.
  size_t rendered = 0;
  for (const auto& cluster : clusters.clusters()) {
    if (cluster.size() < 2) break;
    auto profile = core::BuildProfile(generated.dataset, cluster);
    std::printf("* %s\n", core::RenderNarrative(profile).c_str());
    // Show conflicting values when sources disagree — the "multiple
    // possible narratives" of uncertain ER.
    for (const auto& [attr, values] : profile.values) {
      if (values.size() > 1 &&
          data::AttributeClass(attr) == data::ValueClass::kName) {
        std::printf("    sources disagree on %s:",
                    std::string(data::AttributeDisplayName(attr)).c_str());
        for (const auto& vs : values) {
          std::printf(" %s(x%zu)", vs.value.c_str(), vs.count);
        }
        std::printf("\n");
      }
    }
    if (++rendered == 10) break;
  }

  // Verify narrative fidelity against the latent truth.
  size_t correct = 0;
  size_t impure = 0;
  for (const auto& cluster : clusters.clusters()) {
    if (cluster.size() < 2) continue;
    std::set<int64_t> entities;
    for (auto r : cluster) entities.insert(generated.dataset[r].entity_id);
    if (entities.size() == 1) {
      ++correct;
    } else {
      ++impure;
    }
  }
  std::printf("\ncluster purity: %zu single-person clusters, %zu mixed\n",
              correct, impure);

  // Export the Fig. 2-style knowledge graph of the best-documented
  // entities; shared place nodes knit the individual stories together.
  auto graph =
      core::KnowledgeGraph::FromClusters(generated.dataset, clusters, 8);
  size_t spouse_links = graph.LinkSpouses();
  std::ofstream dot("narratives.dot");
  dot << graph.ToDot();
  std::printf("knowledge graph: %zu nodes, %zu edges (%zu spouse links) "
              "-> narratives.dot (render with `dot -Tsvg`)\n",
              graph.nodes().size(), graph.edges().size(), spouse_links);
  return 0;
}
