// Quickstart: resolve a synthetic Torino corpus end to end —
// preprocessing, MFIBlocks, ADTree ranking — then stream in the paper's
// Table 1 reports (the Guido Foa story) as newly digitized arrivals and
// watch the resolver link them, finishing with the resolved entity's
// narrative.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>
#include <vector>

#include "core/entity_clusters.h"
#include "core/incremental.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

namespace {

using yver::data::AttributeId;
using yver::data::Record;

// The three victim reports of Table 1 (entity ids encode the ground truth:
// the younger Guido of row 1 is a different person than rows 2-3).
std::vector<Record> GuidoFoaReports() {
  std::vector<Record> reports;
  {
    Record r;  // BookID 1016196: Guido Foa son of Italo, born 1936.
    r.book_id = 1016196;
    r.source_id = 9001;
    r.entity_id = 900001;
    r.family_id = 800001;
    r.Add(AttributeId::kFirstName, "Guido");
    r.Add(AttributeId::kLastName, "Foa");
    r.Add(AttributeId::kGender, "M");
    r.Add(AttributeId::kBirthDay, "2");
    r.Add(AttributeId::kBirthMonth, "8");
    r.Add(AttributeId::kBirthYear, "1936");
    r.Add(AttributeId::kBirthCity, "Torino");
    r.Add(AttributeId::kBirthCountry, "Italy");
    r.Add(AttributeId::kPermCity, "Torino");
    r.Add(AttributeId::kPermCountry, "Italy");
    r.Add(AttributeId::kMothersName, "Estela");
    r.Add(AttributeId::kFathersName, "Italo");
    reports.push_back(std::move(r));
  }
  {
    Record r;  // BookID 1059654: Guido Foa b. 18/11/1920, died Auschwitz.
    r.book_id = 1059654;
    r.source_id = 9002;
    r.entity_id = 900002;
    r.family_id = 800002;
    r.Add(AttributeId::kFirstName, "Guido");
    r.Add(AttributeId::kLastName, "Foa");
    r.Add(AttributeId::kGender, "M");
    r.Add(AttributeId::kBirthDay, "18");
    r.Add(AttributeId::kBirthMonth, "11");
    r.Add(AttributeId::kBirthYear, "1920");
    r.Add(AttributeId::kBirthCity, "Torino");
    r.Add(AttributeId::kBirthCountry, "Italy");
    r.Add(AttributeId::kPermCity, "Torino");
    r.Add(AttributeId::kPermCountry, "Italy");
    r.Add(AttributeId::kDeathCity, "Auschwitz");
    r.Add(AttributeId::kSpouseName, "Helena");
    r.Add(AttributeId::kMothersName, "Olga");
    r.Add(AttributeId::kFathersName, "Donato");
    reports.push_back(std::move(r));
  }
  {
    Record r;  // BookID 1028769: Guido Foy (clerical variant), Turin.
    r.book_id = 1028769;
    r.source_id = 9003;
    r.entity_id = 900002;
    r.family_id = 800002;
    r.Add(AttributeId::kFirstName, "Guido");
    r.Add(AttributeId::kLastName, "Foy");
    r.Add(AttributeId::kGender, "M");
    r.Add(AttributeId::kBirthDay, "18");
    r.Add(AttributeId::kBirthMonth, "11");
    r.Add(AttributeId::kBirthYear, "1920");
    r.Add(AttributeId::kBirthCity, "Turin");
    r.Add(AttributeId::kBirthCountry, "Italy");
    r.Add(AttributeId::kPermCity, "Canischio");
    r.Add(AttributeId::kPermCountry, "Italy");
    r.Add(AttributeId::kMothersName, "Olga");
    r.Add(AttributeId::kFathersName, "Donato");
    reports.push_back(std::move(r));
  }
  return reports;
}

}  // namespace

int main() {
  // A small synthetic Torino-area corpus.
  yver::synth::GeneratorConfig config = yver::synth::ItalyConfig();
  config.num_persons = 1000;
  yver::synth::GeneratedData generated = yver::synth::Generate(config);
  std::printf("Corpus: %zu victim reports\n", generated.dataset.size());

  // Run the full uncertain-ER pipeline with the recommended configuration;
  // the simulated archival experts label the candidate pairs for training.
  yver::synth::Gazetteer gazetteer;
  yver::core::UncertainErPipeline pipeline(generated.dataset,
                                           gazetteer.MakeGeoResolver());
  yver::synth::TagOracle oracle(&generated.dataset);
  yver::core::PipelineConfig pc = yver::core::RecommendedConfig();
  yver::core::PipelineResult result = pipeline.Run(
      pc, [&oracle](yver::data::RecordIdx a, yver::data::RecordIdx b) {
        return oracle.Tag(a, b);
      });

  std::printf("Blocking: %zu blocks, %zu candidate pairs (%zu after "
              "SameSrc)\n",
              result.blocking.blocks.size(), result.blocking.pairs.size(),
              result.candidates.size());
  std::printf("ADTree: %zu splitter nodes over %zu features\n\n",
              result.model.num_splitters(),
              result.model.UsedFeatures().size());

  // The Table 1 reports arrive as newly digitized Pages of Testimony;
  // the incremental resolver matches each against the live corpus with
  // the trained model.
  yver::core::IncrementalResolver resolver(generated.dataset,
                                           result.resolution, result.model,
                                           gazetteer.MakeGeoResolver());
  std::printf("Streaming the Table 1 Guido Foa reports:\n");
  yver::data::RecordIdx first_guido = 0;
  bool first = true;
  for (auto& report : GuidoFoaReports()) {
    yver::data::RecordIdx idx = resolver.AddRecord(std::move(report));
    if (first) {
      first_guido = idx;
      first = false;
    }
    const auto& dataset = resolver.dataset();
    std::printf("  BookID %llu -> %zu match(es)\n",
                static_cast<unsigned long long>(dataset[idx].book_id),
                resolver.last_matches().size());
    for (const auto& m : resolver.last_matches()) {
      std::printf("      <-> BookID %llu  confidence %.3f\n",
                  static_cast<unsigned long long>(
                      dataset[m.pair.a == idx ? m.pair.b : m.pair.a]
                          .book_id),
                  m.confidence);
    }
  }

  // Query-time entity formation and a narrative for the elder Guido's
  // cluster (rows 2-3 of Table 1 merge; row 1 — the younger Guido —
  // stays apart).
  yver::core::RankedResolution combined = resolver.Resolution();
  yver::core::EntityClusters clusters(combined, resolver.dataset().size(),
                                      /*certainty=*/0.0);
  const auto& cluster = clusters.Members(first_guido + 1);
  auto profile = yver::core::BuildProfile(resolver.dataset(), cluster);
  std::printf("\nNarrative: %s\n",
              yver::core::RenderNarrative(profile).c_str());
  return 0;
}
