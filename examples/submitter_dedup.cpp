// Submitter deduplication (§2): "the same person may have submitted
// multiple testimonies ... grouping the submitters by first name, last
// name, and city results in 514,251 different submitters. Some are
// obvious duplicates, misspellings of names and city names ... but short
// of performing entity resolution on the submitter data, we must remain
// with this figure." Here we perform exactly that ER pass on the
// synthetic submitter table and compare the naive grouping count, the
// resolved count, and the latent truth.
//
//   ./build/examples/example_submitter_dedup

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "core/entity_clusters.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"
#include "util/string_util.h"

int main() {
  using namespace yver;
  synth::GeneratorConfig config;
  config.num_persons = 4000;
  config.seed = 23;
  auto generated = synth::Generate(config);
  const data::Dataset& submitters = generated.submitters;

  // Naive grouping by (first, last, city) — the paper's 514,251 figure.
  std::set<std::string> naive_groups;
  std::set<int64_t> latent;
  for (const auto& r : submitters.records()) {
    std::string key = util::ToLower(r.FirstValue(data::AttributeId::kFirstName));
    key += "|";
    key += util::ToLower(r.FirstValue(data::AttributeId::kLastName));
    key += "|";
    key += util::ToLower(r.FirstValue(data::AttributeId::kPermCity));
    naive_groups.insert(std::move(key));
    latent.insert(r.entity_id);
  }
  std::printf("submitter registrations: %zu\n", submitters.size());
  std::printf("naive (first,last,city) grouping: %zu submitters\n",
              naive_groups.size());

  // Entity resolution on the submitter table itself.
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(submitters,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&submitters);
  core::PipelineConfig pc;
  pc.blocking.max_minsup = 4;
  pc.blocking.ng = 3.0;
  pc.blocking.expert_weighting = true;
  pc.discard_same_source = false;
  pc.use_classifier = true;
  auto result = pipeline.Run(
      pc, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });
  core::EntityClusters clusters(result.resolution, submitters.size(), 0.0);
  auto q = core::EvaluateMatches(submitters, result.resolution.matches());
  std::printf("after submitter ER: %zu submitters "
              "(pair precision %.3f, recall %.3f)\n",
              clusters.size(), q.Precision(), q.Recall());
  std::printf("latent truth: %zu distinct submitters\n", latent.size());
  std::printf("\nNaive grouping overcounts by %+.1f%%; ER closes the gap "
              "to %+.1f%%.\n",
              100.0 * (static_cast<double>(naive_groups.size()) /
                           static_cast<double>(latent.size()) -
                       1.0),
              100.0 * (static_cast<double>(clusters.size()) /
                           static_cast<double>(latent.size()) -
                       1.0));
  return 0;
}
