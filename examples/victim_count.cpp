// Probabilistic-database querying (§3.2): "a user app relaying historical
// information, including the number of people perished in the Holocaust
// in various parts of Europe, requires a single deterministic answer",
// while researchers want alternatives ranked by likelihood. This example
// builds the uncertain same-as graph from the ranked resolution and
// answers both kinds of queries over possible worlds.
//
//   ./build/examples/example_victim_count

#include <cstdio>
#include <map>
#include <set>

#include "core/pipeline.h"
#include "probdb/calibration.h"
#include "probdb/uncertain_graph.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

int main() {
  using namespace yver;
  synth::GeneratorConfig config;
  config.num_persons = 900;
  config.region_weights = {0.4, 0.2, 0.4, 0.0, 0.0, 0.0};  // PL/IT/HU
  config.seed = 3;
  auto generated = synth::Generate(config);
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  core::PipelineConfig pc = core::RecommendedConfig();
  auto result = pipeline.Run(
      pc, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });

  // Calibrate match scores into probabilities on the training tags.
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& inst : result.training_instances) {
    scores.push_back(result.model.Score(inst.features));
    labels.push_back(inst.label);
  }
  auto scaler = probdb::PlattScaler::Fit(scores, labels);
  std::printf("Platt calibration: P(match|s) = sigmoid(%.3f*s %+.3f)\n",
              scaler.a(), scaler.b());

  probdb::UncertainMatchGraph graph(result.resolution,
                                    generated.dataset.size(), scaler);
  util::Rng rng(17);

  // Deterministic-vs-probabilistic victim counts.
  auto map_world = graph.MapWorld();
  auto [mean, stddev] = graph.ExpectedNumEntities(300, rng);
  std::printf("\nHow many distinct victims does the corpus describe?\n");
  std::printf("  reports:             %zu\n", generated.dataset.size());
  std::printf("  MAP world answer:    %zu entities\n",
              map_world.num_clusters);
  std::printf("  expectation:         %.1f +- %.1f entities\n", mean,
              stddev);
  std::printf("  ground truth:        %zu persons with reports\n",
              generated.dataset.GroupByEntity().size());

  // Per-country expected victim counts (the paper's use case).
  std::printf("\nExpected victims by permanent-residence country:\n");
  for (const char* country : {"Poland", "Italy", "Hungary"}) {
    double expected = graph.ExpectedEntitiesWhere(
        [&](data::RecordIdx r) {
          for (auto v : generated.dataset[r].Values(
                   data::AttributeId::kPermCountry)) {
            if (v == country) return true;
          }
          return false;
        },
        200, rng);
    std::printf("  %-8s %.1f\n", country, expected);
  }

  // Alternative resolutions for one contested record.
  for (const auto& edge : graph.edges()) {
    if (edge.probability < 0.25 || edge.probability > 0.75) continue;
    auto alternatives = graph.AlternativesFor(edge.pair.a, 400, rng);
    if (alternatives.size() < 2) continue;
    std::printf("\nContested record BookID %llu — alternative resolutions "
                "ranked by likelihood:\n",
                static_cast<unsigned long long>(
                    generated.dataset[edge.pair.a].book_id));
    size_t shown = 0;
    for (const auto& alt : alternatives) {
      std::printf("  %.2f  cluster of %zu report(s)\n", alt.likelihood,
                  alt.cluster.size());
      if (++shown == 3) break;
    }
    break;
  }
  return 0;
}
