// Certainty-tunable querying (§4.2): "a person searching for perished
// relatives can control the size of the response by tuning a certainty
// parameter in a Web-query interface". This example resolves a corpus
// once, then replays a search session: the same relative query at
// decreasing certainty thresholds returns a growing ranked result set.
//
//   ./build/examples/example_web_query

#include <cstdio>
#include <map>
#include <set>

#include "core/narrative.h"
#include "core/pipeline.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"
#include "util/string_util.h"

namespace {

using namespace yver;

// Finds records whose first+last name matches the query (the retrieval
// step a name-search front end would do).
std::vector<data::RecordIdx> NameSearch(const data::Dataset& dataset,
                                        std::string_view first,
                                        std::string_view last) {
  std::vector<data::RecordIdx> hits;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    bool first_ok = first.empty();
    for (auto v : dataset[r].Values(data::AttributeId::kFirstName)) {
      if (util::ToLower(v) == util::ToLower(first)) first_ok = true;
    }
    bool last_ok = false;
    for (auto v : dataset[r].Values(data::AttributeId::kLastName)) {
      if (util::ToLower(v) == util::ToLower(last)) last_ok = true;
    }
    if (first_ok && last_ok) hits.push_back(r);
  }
  return hits;
}

}  // namespace

int main() {
  synth::GeneratorConfig config = synth::ItalyConfig();
  config.num_persons = 1500;
  auto generated = synth::Generate(config);
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(generated.dataset,
                                     gazetteer.MakeGeoResolver());
  synth::TagOracle oracle(&generated.dataset);
  auto result = pipeline.Run(
      core::RecommendedConfig(),
      [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });
  std::printf("Index built: %zu reports, %zu ranked matches\n\n",
              generated.dataset.size(), result.resolution.size());

  // Use the most-reported surname in the corpus as the sample query.
  std::map<std::string, size_t> surnames;
  for (const auto& r : generated.dataset.records()) {
    auto ln = r.FirstValue(data::AttributeId::kLastName);
    if (!ln.empty()) ++surnames[util::ToLower(ln)];
  }
  std::string query_last;
  size_t best = 0;
  for (const auto& [name, count] : surnames) {
    if (count > best) {
      best = count;
      query_last = name;
    }
  }
  auto hits = NameSearch(generated.dataset, "", query_last);
  std::printf("Query: last name \"%s\" -> %zu direct record hits\n",
              query_last.c_str(), hits.size());

  // Anchor on the hit with the most linked reports so the session shows a
  // non-trivial result set.
  data::RecordIdx anchor = hits.front();
  size_t best_links = 0;
  for (data::RecordIdx r : hits) {
    size_t links = result.resolution.ForRecord(r, 0.0).size();
    if (links > best_links) {
      best_links = links;
      anchor = r;
    }
  }
  std::printf("Anchor record: BookID %llu\n\n",
              static_cast<unsigned long long>(
                  generated.dataset[anchor].book_id));
  for (double certainty : {3.0, 2.0, 1.0, 0.5, 0.0}) {
    auto related = result.resolution.ForRecord(anchor, certainty);
    std::printf("certainty > %.1f : %zu linked report(s)\n", certainty,
                related.size());
    for (const auto& m : related) {
      data::RecordIdx other = m.pair.a == anchor ? m.pair.b : m.pair.a;
      auto profile = core::BuildProfile(generated.dataset, {other});
      std::printf("   %.2f  %s\n", m.confidence,
                  core::RenderNarrative(profile).c_str());
    }
  }
  std::printf("\nLowering the certainty parameter grows the response — the "
              "uncertain-ER contract of §4.2.\n");
  return 0;
}
