#!/usr/bin/env bash
# Tier-1 verification: the standard build + the tier1-labeled ctest suite,
# then a ThreadSanitizer build that race-checks the concurrent paths — the
# query-serving layer (serve::ResolutionService and friends) and the
# parallel resolve pipeline's determinism harness
# (tests/determinism_test.cc) — then an Address+UndefinedBehaviorSanitizer
# build over the feature path: the columnar comparison corpus is all raw
# span arithmetic into CSR arrays, so the feature/equivalence/golden/
# determinism suites run under ASan+UBSan to pin down any out-of-bounds
# view or UB the byte-identity tests alone would miss.
#
# Both sanitizer stages also run the fault-injection suites (the chaos
# harness plus the robustness units): concurrent queries with faults armed
# at every registered point are exactly where a race or lifetime bug in
# the failure paths would hide.
#
#   scripts/check.sh            # all stages
#   scripts/check.sh --no-tsan  # skip the TSan stage
#   scripts/check.sh --no-asan  # skip the ASan+UBSan stage
#
# The slow-labeled large-corpus tests are not gated here; run them with
#   ctest --test-dir build -L slow --output-on-failure
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: standard build + ctest (-L tier1)"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build -L tier1 --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tier-1: ThreadSanitizer race check (serve layer + pipeline/blocking determinism)"
  cmake -B build-tsan -S . -DYVER_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target yver_tests
  # Determinism* covers the blocking thread matrix and the parallel
  # per-rank miner; MfiBlocks*/ThreadPool* add the direct blocking and
  # chunked-merge primitives; ChaosTest*/the robustness suites drive the
  # failure model (deadlines, shedding, fault injection) concurrently.
  ./build-tsan/tests/yver_tests --gtest_filter='*Serve*:*Service*:ShardedQueryCache*:*ResolutionIndex*:StatusTest*:Determinism*:GoldenPipeline*:*MfiBlocks*:*ThreadPool*:ChaosTest*:AdmissionController*:FaultInjector*:RetryTest*:DeadlineTest*'
fi

if [[ "$run_asan" == 1 ]]; then
  echo "==> tier-1: ASan+UBSan memory check (feature path + golden + determinism)"
  cmake -B build-asan -S . -DYVER_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$(nproc)" --target yver_tests
  ./build-asan/tests/yver_tests --gtest_filter='*Feature*:*Qgram*:*QGram*:*Jaccard*:*Geo*:Determinism*:GoldenPipeline*:*Incremental*:ChaosTest*:ArtifactFuzzTest*:CsvLenientTest*:ServiceRobustness*'
fi

echo "==> all checks passed"
