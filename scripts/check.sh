#!/usr/bin/env bash
# Tier-1 verification: the standard build + the tier1-labeled ctest suite,
# then a ThreadSanitizer build that race-checks the concurrent paths — the
# query-serving layer (serve::ResolutionService and friends) and the
# parallel resolve pipeline's determinism harness
# (tests/determinism_test.cc) — then an Address+UndefinedBehaviorSanitizer
# build over the feature path: the columnar comparison corpus is all raw
# span arithmetic into CSR arrays, so the feature/equivalence/golden/
# determinism suites run under ASan+UBSan to pin down any out-of-bounds
# view or UB the byte-identity tests alone would miss.
#
# Both sanitizer stages also run the fault-injection suites (the chaos
# harness plus the robustness units): concurrent queries with faults armed
# at every registered point are exactly where a race or lifetime bug in
# the failure paths would hide.
#
# The TSan stage ends with a loopback serving smoke: a TSan-built
# `yver_cli serve --live` (hardened with the DESIGN.md §15 defense knobs)
# on an ephemeral port, a recorded loadgen workload, and two replays whose
# response hashes must reproduce the recorded one — the wire determinism
# contract exercised end to end over real sockets. An adversarial smoke
# follows: slow-loris and never-read fleets (`loadgen --adversary`)
# attack the same server while a third replay runs beside them; the
# replay must still reproduce the recorded hash and the server must
# forcibly close every adversary connection. Then a live-append step:
# fresh reports streamed in with `yver_cli append --verify`, which must
# see the served generation advance and the appended record answer
# queries. A
# crash-recovery smoke follows: a WAL-backed `serve --live --wal-dir` is
# SIGKILLed mid-append-stream, restarted on the same directory, and every
# previously acked record must answer (`append --verify-from 0`).
#
#   scripts/check.sh            # all stages
#   scripts/check.sh --no-tsan  # skip the TSan stage
#   scripts/check.sh --no-asan  # skip the ASan+UBSan stage
#
# The slow-labeled large-corpus tests are not gated here; run them with
#   ctest --test-dir build -L slow --output-on-failure
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: standard build + ctest (-L tier1)"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build -L tier1 --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tier-1: ThreadSanitizer race check (serve layer + pipeline/blocking determinism)"
  cmake -B build-tsan -S . -DYVER_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target yver_tests
  # Determinism* covers the blocking thread matrix and the parallel
  # per-rank miner; MfiBlocks*/ThreadPool* add the direct blocking and
  # chunked-merge primitives; ChaosTest*/the robustness suites drive the
  # failure model (deadlines, shedding, fault injection) concurrently.
  # Wire*/Net* add the TCP front end: the epoll loop, dispatchers, and
  # loadgen threads all share connection state, so the loopback
  # integration and socket-fault chaos suites run race-checked too.
  # IndexManager*/LiveIndexBuilder* are the live-update layer (DESIGN.md
  # §13): the RCU snapshot swap and the ingest builder are exactly the
  # code TSan exists for — readers pin generations wait-free while a
  # writer publishes — and ChaosTest.SwapUnderLoad* drives the full
  # swap-under-load consistency proof race-checked.
  # Wal* is the durability layer (DESIGN.md §14): group-commit batching
  # means concurrent appenders hand frames to a leader thread, so the
  # WAL unit and WAL-backed ingest suites run race-checked as well.
  ./build-tsan/tests/yver_tests --gtest_filter='*Serve*:*Service*:ShardedQueryCache*:*ResolutionIndex*:StatusTest*:Determinism*:GoldenPipeline*:*MfiBlocks*:*ThreadPool*:ChaosTest*:AdmissionController*:FaultInjector*:RetryTest*:DeadlineTest*:*Wire*:*Net*:CaptureFile*:IndexManager*:LiveIndexBuilder*:Wal*:Gazetteer*'

  echo "==> tier-1: loopback serve/loadgen smoke (TSan binaries, record/replay)"
  # End-to-end over a real socket: a TSan-built server on an ephemeral
  # port, a recorded workload, and two replays that must reproduce the
  # recorded response hash bit-for-bit.
  cmake --build build-tsan -j "$(nproc)" --target yver_cli
  smoke_dir="$(mktemp -d)"
  trap 'kill "$serve_pid" 2>/dev/null; rm -rf "$smoke_dir"' EXIT
  ./build-tsan/tools/yver_cli generate --persons 400 --out "$smoke_dir/data.csv" --seed 7 >/dev/null
  ./build-tsan/tools/yver_cli resolve --in "$smoke_dir/data.csv" --out "$smoke_dir/matches.csv" >/dev/null 2>&1
  ./build-tsan/tools/yver_cli index --in "$smoke_dir/data.csv" --matches "$smoke_dir/matches.csv" --out "$smoke_dir/idx.yvx" >/dev/null
  # Hardened serve (DESIGN.md §15): tight slow-loris and slow-reader
  # knobs so the adversarial smoke below trips them in seconds, while
  # well-behaved loadgen traffic never notices.
  ./build-tsan/tools/yver_cli serve --in "$smoke_dir/data.csv" --index "$smoke_dir/idx.yvx" \
      --live --port-file "$smoke_dir/port" --dispatch-threads 2 \
      --min-read-rate 256 --progress-window-ms 1000 \
      --max-out-buffer 65536 --sndbuf 65536 \
      --write-stall-timeout-ms 2000 >"$smoke_dir/serve.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 1 200); do [[ -s "$smoke_dir/port" ]] && break; sleep 0.05; done
  [[ -s "$smoke_dir/port" ]] || { echo "serve never wrote its port file" >&2; cat "$smoke_dir/serve.log" >&2; exit 1; }
  port="$(cat "$smoke_dir/port")"
  hash_of() { sed -n 's/.*"response_hash": "\([0-9a-f]*\)".*/\1/p' "$1"; }
  ./build-tsan/tools/yver_cli loadgen --port "$port" --queries 1000 --connections 3 \
      --record "$smoke_dir/cap.yvr" --json >"$smoke_dir/rec.json"
  ./build-tsan/tools/yver_cli loadgen --port "$port" --replay "$smoke_dir/cap.yvr" \
      --connections 3 --json >"$smoke_dir/rep1.json"
  ./build-tsan/tools/yver_cli loadgen --port "$port" --replay "$smoke_dir/cap.yvr" \
      --connections 3 --json >"$smoke_dir/rep2.json"
  h0="$(hash_of "$smoke_dir/rec.json")"; h1="$(hash_of "$smoke_dir/rep1.json")"; h2="$(hash_of "$smoke_dir/rep2.json")"
  [[ -n "$h0" && "$h0" == "$h1" && "$h1" == "$h2" ]] || {
    echo "loopback replay hash diverged: $h0 $h1 $h2" >&2; exit 1; }

  echo "==> tier-1: adversarial smoke (slowloris + never-read vs the hardened TSan server)"
  # Hostile-network liveness (DESIGN.md §15): slow-loris and never-read
  # fleets attack the server while a third replay of the same capture runs
  # beside them — the replay must still reproduce the recorded hash
  # bit-for-bit, and the defenses must actually fire (every adversary
  # connection forcibly closed by the server).
  ./build-tsan/tools/yver_cli loadgen --port "$port" --adversary slowloris \
      --connections 2 --duration-ms 8000 --write-interval-ms 100 --json \
      >"$smoke_dir/adv_slow.json" &
  adv_slow_pid=$!
  ./build-tsan/tools/yver_cli loadgen --port "$port" --adversary never-read \
      --connections 2 --duration-ms 8000 --json >"$smoke_dir/adv_nr.json" &
  adv_nr_pid=$!
  ./build-tsan/tools/yver_cli loadgen --port "$port" --replay "$smoke_dir/cap.yvr" \
      --connections 3 --json >"$smoke_dir/rep3.json"
  wait "$adv_slow_pid" || { echo "slowloris adversary exited non-zero" >&2; exit 1; }
  wait "$adv_nr_pid" || { echo "never-read adversary exited non-zero" >&2; exit 1; }
  h3="$(hash_of "$smoke_dir/rep3.json")"
  [[ "$h3" == "$h0" ]] || {
    echo "replay under attack diverged: $h3 vs $h0" >&2; exit 1; }
  closed_of() { sed -n 's/.*"server_closed": \([0-9]*\).*/\1/p' "$1"; }
  adv_slow_closed="$(closed_of "$smoke_dir/adv_slow.json")"
  adv_nr_closed="$(closed_of "$smoke_dir/adv_nr.json")"
  [[ "$adv_slow_closed" -gt 0 ]] || {
    echo "slowloris connections were never disconnected" >&2
    cat "$smoke_dir/adv_slow.json" >&2; exit 1; }
  [[ "$adv_nr_closed" -gt 0 ]] || {
    echo "never-read connections were never disconnected" >&2
    cat "$smoke_dir/adv_nr.json" >&2; exit 1; }
  # Live-update smoke against the same TSan server (it runs --live): append
  # fresh reports over the wire, wait for the served generation to contain
  # them, and query the last one back — the DESIGN.md §13 ingest path
  # end to end over a real socket, race-checked.
  ./build-tsan/tools/yver_cli generate --persons 10 --out "$smoke_dir/new.csv" --seed 11 >/dev/null
  ./build-tsan/tools/yver_cli append --port "$port" --in "$smoke_dir/new.csv" --count 5 --verify || {
    echo "live append smoke failed" >&2; cat "$smoke_dir/serve.log" >&2; exit 1; }
  kill -TERM "$serve_pid"
  wait "$serve_pid" || { echo "serve exited non-zero after SIGTERM" >&2; cat "$smoke_dir/serve.log" >&2; exit 1; }

  echo "==> tier-1: crash-recovery smoke (WAL-backed serve, SIGKILL mid-stream)"
  # Durability end to end (DESIGN.md §14): a WAL-backed server takes a
  # stream of appends, is SIGKILLed mid-stream with no chance to flush,
  # and a restart on the same --wal-dir must replay every acked record —
  # `append --verify-from 0` then queries every record in the recovered
  # corpus, so a single lost ack fails the stage.
  ./build-tsan/tools/yver_cli serve --in "$smoke_dir/data.csv" --index "$smoke_dir/idx.yvx" \
      --live --wal-dir "$smoke_dir/wal" --port-file "$smoke_dir/port2" >"$smoke_dir/serve2.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 1 200); do [[ -s "$smoke_dir/port2" ]] && break; sleep 0.05; done
  [[ -s "$smoke_dir/port2" ]] || { echo "WAL serve never wrote its port file" >&2; cat "$smoke_dir/serve2.log" >&2; exit 1; }
  port2="$(cat "$smoke_dir/port2")"
  ./build-tsan/tools/yver_cli append --port "$port2" --in "$smoke_dir/new.csv" --count 10 \
      >"$smoke_dir/append.log" 2>&1 &
  append_pid=$!
  # Let a few appends land, then kill the server dead mid-stream: no
  # SIGTERM handler runs, so only the WAL carries the acked records.
  sleep 0.3
  kill -KILL "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true
  wait "$append_pid" 2>/dev/null || true  # appender may see the reset; that's the point
  rm -f "$smoke_dir/port2"
  ./build-tsan/tools/yver_cli serve --in "$smoke_dir/data.csv" --index "$smoke_dir/idx.yvx" \
      --live --wal-dir "$smoke_dir/wal" --port-file "$smoke_dir/port2" >"$smoke_dir/serve3.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 1 200); do [[ -s "$smoke_dir/port2" ]] && break; sleep 0.05; done
  [[ -s "$smoke_dir/port2" ]] || { echo "restarted WAL serve never wrote its port file" >&2; cat "$smoke_dir/serve3.log" >&2; exit 1; }
  port2="$(cat "$smoke_dir/port2")"
  grep -q "wal: recovered" "$smoke_dir/serve3.log" || {
    echo "restarted serve did not report WAL recovery" >&2; cat "$smoke_dir/serve3.log" >&2; exit 1; }
  recovered_line="$(grep "wal: recovered" "$smoke_dir/serve3.log")"
  # Every record acked before the kill — and the seed corpus — must answer.
  ./build-tsan/tools/yver_cli append --port "$port2" --in "$smoke_dir/new.csv" --count 5 \
      --verify --verify-from 0 || {
    echo "post-recovery append/verify failed" >&2; cat "$smoke_dir/serve3.log" >&2; exit 1; }
  kill -TERM "$serve_pid"
  wait "$serve_pid" || { echo "WAL serve exited non-zero after SIGTERM" >&2; cat "$smoke_dir/serve3.log" >&2; exit 1; }
  trap - EXIT
  rm -rf "$smoke_dir"
  echo "loopback smoke: 4000 queries, replay hash $h0 reproduced three times (once under attack)"
  echo "adversarial smoke: server closed $adv_slow_closed slowloris / $adv_nr_closed never-read connections"
  echo "crash-recovery smoke: $recovered_line"
fi

if [[ "$run_asan" == 1 ]]; then
  echo "==> tier-1: ASan+UBSan memory check (feature path + golden + determinism)"
  cmake -B build-asan -S . -DYVER_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$(nproc)" --target yver_tests
  # The live-update suites run memory-checked too: snapshot retirement
  # (IndexManager*) is a lifetime protocol, the append codec (*Wire*) is
  # raw offset arithmetic over hostile bytes, and LiveIndexBuilder*/
  # ServicePublish* exercise the resolver-to-snapshot copy path.
  # Wal* adds the durability layer: torn-tail recovery and the bit-flip
  # fuzz walk raw offsets over deliberately corrupted segment bytes, which
  # is exactly what ASan+UBSan exist to pin down; Gazetteer* covers the
  # owned-resolver lifetime contract the serving path depends on.
  ./build-asan/tests/yver_tests --gtest_filter='*Feature*:*Qgram*:*QGram*:*Jaccard*:*Geo*:Determinism*:GoldenPipeline*:*Incremental*:ChaosTest*:ArtifactFuzzTest*:CsvLenientTest*:ServiceRobustness*:IndexManager*:LiveIndexBuilder*:ServicePublish*:*Wire*:NetLiveIngest*:Wal*:Gazetteer*'
fi

echo "==> all checks passed"
