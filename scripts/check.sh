#!/usr/bin/env bash
# Tier-1 verification: the standard build + the tier1-labeled ctest suite,
# then a ThreadSanitizer build that race-checks the concurrent paths — the
# query-serving layer (serve::ResolutionService and friends) and the
# parallel resolve pipeline's determinism harness
# (tests/determinism_test.cc).
#
#   scripts/check.sh            # both stages
#   scripts/check.sh --no-tsan  # standard stage only
#
# The slow-labeled large-corpus tests are not gated here; run them with
#   ctest --test-dir build -L slow --output-on-failure
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
if [[ "${1:-}" == "--no-tsan" ]]; then
  run_tsan=0
fi

echo "==> tier-1: standard build + ctest (-L tier1)"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build -L tier1 --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tier-1: ThreadSanitizer race check (serve layer + pipeline determinism)"
  cmake -B build-tsan -S . -DYVER_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target yver_tests
  ./build-tsan/tests/yver_tests --gtest_filter='*Serve*:*Service*:ShardedQueryCache*:*ResolutionIndex*:StatusTest*:Determinism*:GoldenPipeline*'
fi

echo "==> all checks passed"
