#!/usr/bin/env bash
# Tier-1 verification: the standard build + full ctest suite, then a
# ThreadSanitizer build that race-checks the concurrent query-serving layer
# (serve::ResolutionService and friends in tests/serve_test.cc).
#
#   scripts/check.sh            # both stages
#   scripts/check.sh --no-tsan  # standard stage only
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
if [[ "${1:-}" == "--no-tsan" ]]; then
  run_tsan=0
fi

echo "==> tier-1: standard build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tier-1: ThreadSanitizer race check of the serve layer"
  cmake -B build-tsan -S . -DYVER_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target yver_tests
  ./build-tsan/tests/yver_tests --gtest_filter='*Serve*:*Service*:ShardedQueryCache*:*ResolutionIndex*:StatusTest*'
fi

echo "==> all checks passed"
