#include "blocking/baselines/attribute_clustering.h"

#include <cctype>
#include <unordered_map>

namespace yver::blocking::baselines {

std::string AttributeClustering::ClusterKey(std::string_view token) {
  if (token.empty()) return "";
  std::string key;
  char first = static_cast<char>(
      std::tolower(static_cast<unsigned char>(token[0])));
  // The transliteration pairs apply to the leading character too
  // (Kaminski ~ Caminsky).
  if (first == 'k') first = 'c';
  if (first == 'v') first = 'f';
  if (first == 'z') first = 's';
  key.push_back(first);
  key.push_back('_');
  char prev = 0;
  for (size_t i = 1; i < token.size(); ++i) {
    char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(token[i])));
    // Drop vowels and 'h'/'w' (near-silent), collapse doubled consonants,
    // and unify common transliteration pairs.
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' ||
        c == 'y' || c == 'h' || c == 'w') {
      continue;
    }
    if (c == 'k') c = 'c';
    if (c == 'v') c = 'f';
    if (c == 'z') c = 's';
    if (c == prev) continue;
    key.push_back(c);
    prev = c;
  }
  return key;
}

std::vector<BaselineBlock> AttributeClustering::BuildBlocks(
    const data::Dataset& dataset) const {
  std::unordered_map<std::string, BaselineBlock> by_key;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (const auto& token :
         RecordTokens(dataset[r], /*attribute_prefixed=*/false)) {
      std::string key = ClusterKey(token);
      auto& block = by_key[key];
      if (block.empty() || block.back() != r) block.push_back(r);
    }
  }
  std::vector<BaselineBlock> blocks;
  blocks.reserve(by_key.size());
  for (auto& [key, block] : by_key) {
    if (block.size() >= 2) blocks.push_back(std::move(block));
  }
  return PurgeOversized(std::move(blocks), max_block_size_);
}

}  // namespace yver::blocking::baselines
