#ifndef YVER_BLOCKING_BASELINES_ATTRIBUTE_CLUSTERING_H_
#define YVER_BLOCKING_BASELINES_ATTRIBUTE_CLUSTERING_H_

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// ACl — Attribute Clustering blocking [Papadakis 2013]: standard blocking
/// preceded by a step "in which similar tokens (e.g., John and Jhon) are
/// grouped together by some similarity measure". We canonicalize each
/// token to a phonetic-skeleton cluster key (first letter + de-voweled,
/// de-doubled consonant skeleton), so spelling variants share a block.
class AttributeClustering : public BlockingBaseline {
 public:
  explicit AttributeClustering(size_t max_block_size = 500)
      : max_block_size_(max_block_size) {}

  std::string_view name() const override { return "ACl"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

  /// The cluster key of a token (exposed for tests): e.g. john and jhon
  /// both map to "j_hn".
  static std::string ClusterKey(std::string_view token);

 private:
  size_t max_block_size_;
};

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_ATTRIBUTE_CLUSTERING_H_
