#ifndef YVER_BLOCKING_BASELINES_BASELINE_H_
#define YVER_BLOCKING_BASELINES_BASELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"

namespace yver::blocking::baselines {

/// A baseline block: a set of records sharing a blocking key.
using BaselineBlock = std::vector<data::RecordIdx>;

/// Interface of the comparison blocking techniques of §6.6 (Table 10),
/// following the method of Papadakis et al.'s survey: each technique is a
/// block-building algorithm run in its default configuration; comparison
/// cleaning is deliberately NOT applied (the paper avoids giving MFIBlocks
/// an unfair advantage by comparing without classification).
class BlockingBaseline {
 public:
  virtual ~BlockingBaseline() = default;

  /// Technique acronym as printed in Table 10 ("StBl", "ACl", ...).
  virtual std::string_view name() const = 0;

  /// Builds (possibly overlapping) blocks over the dataset.
  virtual std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const = 0;
};

/// Block purging (the survey's default block-cleaning step): drops blocks
/// with more than `max_block_size` records. Oversized blocks — e.g. the
/// block keyed on Gender=M — contribute quadratic comparisons with no
/// discriminative power.
std::vector<BaselineBlock> PurgeOversized(std::vector<BaselineBlock> blocks,
                                          size_t max_block_size);

/// Tokens of a record: each attribute value is lowercased and split on
/// whitespace. When `attribute_prefixed` the token carries the attribute
/// short name (schema-aware keys); otherwise tokens are schema-agnostic.
std::vector<std::string> RecordTokens(const data::Record& record,
                                      bool attribute_prefixed);

/// Deduplicated candidate pairs of a block collection.
std::vector<data::RecordPair> PairsOfBlocks(
    const std::vector<BaselineBlock>& blocks);

/// Number of distinct candidate pairs of a block collection, without
/// materializing them all at once (used for the comparisons column).
size_t CountDistinctPairs(const std::vector<BaselineBlock>& blocks);

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_BASELINE_H_
