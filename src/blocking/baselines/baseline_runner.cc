#include "blocking/baselines/baseline_runner.h"

#include <algorithm>
#include <unordered_set>

#include "blocking/baselines/attribute_clustering.h"
#include "blocking/baselines/canopy_clustering.h"
#include "blocking/baselines/qgram_blocking.h"
#include "blocking/baselines/sorted_neighborhood.h"
#include "blocking/baselines/standard_blocking.h"
#include "blocking/baselines/suffix_arrays.h"
#include "blocking/baselines/typi_match.h"
#include "util/string_util.h"

namespace yver::blocking::baselines {

std::vector<BaselineBlock> PurgeOversized(std::vector<BaselineBlock> blocks,
                                          size_t max_block_size) {
  if (max_block_size == 0) return blocks;
  std::vector<BaselineBlock> kept;
  kept.reserve(blocks.size());
  for (auto& b : blocks) {
    if (b.size() <= max_block_size) kept.push_back(std::move(b));
  }
  return kept;
}

std::vector<std::string> RecordTokens(const data::Record& record,
                                      bool attribute_prefixed) {
  std::vector<std::string> tokens;
  for (const auto& entry : record.entries()) {
    for (const auto& word : util::SplitWhitespace(entry.value)) {
      std::string token = util::ToLower(word);
      if (attribute_prefixed) {
        std::string prefixed(data::AttributeShortName(entry.attr));
        prefixed.push_back('_');
        prefixed += token;
        tokens.push_back(std::move(prefixed));
      } else {
        tokens.push_back(std::move(token));
      }
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

namespace {

uint64_t PairKey(data::RecordIdx a, data::RecordIdx b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<data::RecordPair> PairsOfBlocks(
    const std::vector<BaselineBlock>& blocks) {
  std::unordered_set<uint64_t> seen;
  std::vector<data::RecordPair> pairs;
  for (const auto& block : blocks) {
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        if (block[i] == block[j]) continue;
        if (seen.insert(PairKey(block[i], block[j])).second) {
          pairs.emplace_back(block[i], block[j]);
        }
      }
    }
  }
  return pairs;
}

size_t CountDistinctPairs(const std::vector<BaselineBlock>& blocks) {
  std::unordered_set<uint64_t> seen;
  for (const auto& block : blocks) {
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        if (block[i] != block[j]) seen.insert(PairKey(block[i], block[j]));
      }
    }
  }
  return seen.size();
}

std::vector<std::unique_ptr<BlockingBaseline>> AllBaselines() {
  std::vector<std::unique_ptr<BlockingBaseline>> out;
  out.push_back(std::make_unique<StandardBlocking>());
  out.push_back(std::make_unique<AttributeClustering>());
  out.push_back(std::make_unique<CanopyClustering>());
  out.push_back(std::make_unique<ExtendedCanopyClustering>());
  out.push_back(std::make_unique<QGramBlocking>());
  out.push_back(std::make_unique<ExtendedQGramBlocking>());
  out.push_back(std::make_unique<ExtendedSortedNeighborhood>());
  out.push_back(std::make_unique<SuffixArrays>());
  out.push_back(std::make_unique<ExtendedSuffixArrays>());
  out.push_back(std::make_unique<TypiMatch>());
  return out;
}

}  // namespace yver::blocking::baselines
