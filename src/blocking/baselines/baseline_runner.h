#ifndef YVER_BLOCKING_BASELINES_BASELINE_RUNNER_H_
#define YVER_BLOCKING_BASELINES_BASELINE_RUNNER_H_

#include <memory>
#include <vector>

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// All ten comparison techniques of Table 10, in the table's row order,
/// each in its default configuration.
std::vector<std::unique_ptr<BlockingBaseline>> AllBaselines();

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_BASELINE_RUNNER_H_
