#include "blocking/baselines/canopy_clustering.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace yver::blocking::baselines {

namespace {

// Token-set representation with an inverted index for candidate lookup.
struct TokenIndex {
  std::vector<std::vector<uint32_t>> record_tokens;  // token ids, sorted
  std::vector<std::vector<data::RecordIdx>> postings;

  explicit TokenIndex(const data::Dataset& dataset) {
    std::unordered_map<std::string, uint32_t> dict;
    record_tokens.resize(dataset.size());
    for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
      for (auto& token :
           RecordTokens(dataset[r], /*attribute_prefixed=*/true)) {
        auto [it, inserted] =
            dict.try_emplace(std::move(token),
                             static_cast<uint32_t>(dict.size()));
        record_tokens[r].push_back(it->second);
      }
      auto& v = record_tokens[r];
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    postings.resize(dict.size());
    for (data::RecordIdx r = 0; r < record_tokens.size(); ++r) {
      for (uint32_t t : record_tokens[r]) postings[t].push_back(r);
    }
  }

  double Jaccard(data::RecordIdx a, data::RecordIdx b) const {
    const auto& ta = record_tokens[a];
    const auto& tb = record_tokens[b];
    if (ta.empty() && tb.empty()) return 1.0;
    size_t inter = 0;
    size_t i = 0, j = 0;
    while (i < ta.size() && j < tb.size()) {
      if (ta[i] == tb[j]) {
        ++inter;
        ++i;
        ++j;
      } else if (ta[i] < tb[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    size_t uni = ta.size() + tb.size() - inter;
    return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
  }
};

}  // namespace

std::vector<BaselineBlock> CanopyClustering::BuildCanopies(
    const data::Dataset& dataset, bool extend) const {
  TokenIndex index(dataset);
  util::Rng rng(seed_);
  std::vector<data::RecordIdx> pool(dataset.size());
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) pool[r] = r;
  rng.Shuffle(pool);
  std::vector<bool> removed(dataset.size(), false);
  std::vector<bool> assigned(dataset.size(), false);
  std::vector<BaselineBlock> canopies;

  for (data::RecordIdx seed : pool) {
    if (removed[seed]) continue;
    removed[seed] = true;
    BaselineBlock canopy = {seed};
    // Candidates: records sharing at least one token with the seed.
    std::unordered_set<data::RecordIdx> candidates;
    for (uint32_t t : index.record_tokens[seed]) {
      for (data::RecordIdx r : index.postings[t]) {
        if (r != seed && !removed[r]) candidates.insert(r);
      }
    }
    for (data::RecordIdx r : candidates) {
      double sim = index.Jaccard(seed, r);
      if (sim >= loose_) {
        canopy.push_back(r);
        if (sim >= tight_) removed[r] = true;
      }
    }
    if (canopy.size() >= 2) {
      for (data::RecordIdx r : canopy) assigned[r] = true;
      std::sort(canopy.begin(), canopy.end());
      canopies.push_back(std::move(canopy));
    }
  }

  if (extend) {
    // ECaCl: attach records no canopy claimed to their most similar
    // canopy (by similarity to the canopy's first record, its seed).
    for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
      if (assigned[r]) continue;
      double best = 0.0;
      long best_canopy = -1;
      std::unordered_set<data::RecordIdx> seeds;
      for (uint32_t t : index.record_tokens[r]) {
        for (data::RecordIdx other : index.postings[t]) seeds.insert(other);
      }
      for (size_t c = 0; c < canopies.size(); ++c) {
        if (!seeds.count(canopies[c].front())) continue;
        double sim = index.Jaccard(r, canopies[c].front());
        if (sim > best) {
          best = sim;
          best_canopy = static_cast<long>(c);
        }
      }
      if (best_canopy >= 0) {
        canopies[static_cast<size_t>(best_canopy)].push_back(r);
      }
    }
    for (auto& c : canopies) std::sort(c.begin(), c.end());
  }
  return PurgeOversized(std::move(canopies), max_block_size_);
}

std::vector<BaselineBlock> CanopyClustering::BuildBlocks(
    const data::Dataset& dataset) const {
  return BuildCanopies(dataset, /*extend=*/false);
}

std::vector<BaselineBlock> ExtendedCanopyClustering::BuildBlocks(
    const data::Dataset& dataset) const {
  return BuildCanopies(dataset, /*extend=*/true);
}

}  // namespace yver::blocking::baselines
