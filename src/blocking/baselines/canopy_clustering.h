#ifndef YVER_BLOCKING_BASELINES_CANOPY_CLUSTERING_H_
#define YVER_BLOCKING_BASELINES_CANOPY_CLUSTERING_H_

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// CaCl — Canopy Clustering [McCallum et al. 2000]: "a random seed record
/// is iteratively removed from a candidate pool and used to create a block
/// using records which share the seed record's attribute values"; records
/// within the tight threshold leave the pool (non-overlapping selection).
/// Similarity is token-set Jaccard over q-gram keys (as in the survey, the
/// keys come from QGBl).
class CanopyClustering : public BlockingBaseline {
 public:
  CanopyClustering(double loose_threshold = 0.25,
                   double tight_threshold = 0.5, uint64_t seed = 31,
                   size_t max_block_size = 500)
      : loose_(loose_threshold),
        tight_(tight_threshold),
        seed_(seed),
        max_block_size_(max_block_size) {}

  std::string_view name() const override { return "CaCl"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

 protected:
  /// Shared canopy construction; `extend` adds unassigned leftovers to
  /// their nearest canopy (the ECaCl extension).
  std::vector<BaselineBlock> BuildCanopies(const data::Dataset& dataset,
                                           bool extend) const;

  double loose_;
  double tight_;
  uint64_t seed_;
  size_t max_block_size_;
};

/// ECaCl — Extended Canopy Clustering [Christen 2012]: CaCl that
/// additionally assigns records the plain pass left unassigned to their
/// most similar existing canopy, producing overlap.
class ExtendedCanopyClustering : public CanopyClustering {
 public:
  using CanopyClustering::CanopyClustering;

  std::string_view name() const override { return "ECaCl"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;
};

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_CANOPY_CLUSTERING_H_
