#include "blocking/baselines/meta_blocking.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace yver::blocking::baselines {

namespace {

uint64_t PairKey(data::RecordIdx a, data::RecordIdx b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<data::RecordPair> CleanComparisons(
    const std::vector<BaselineBlock>& blocks, size_t num_records,
    const MetaBlockingOptions& options) {
  // Blocks-per-record (for ECBS / Jaccard) and pairwise co-occurrence.
  std::vector<uint32_t> blocks_of(num_records, 0);
  for (const auto& block : blocks) {
    for (data::RecordIdx r : block) {
      YVER_CHECK(r < num_records);
      ++blocks_of[r];
    }
  }
  std::unordered_map<uint64_t, uint32_t> common;
  for (const auto& block : blocks) {
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        if (block[i] != block[j]) ++common[PairKey(block[i], block[j])];
      }
    }
  }
  const double num_blocks = static_cast<double>(blocks.size());
  auto weight_of = [&](uint64_t key, uint32_t cbs) {
    data::RecordIdx a = static_cast<data::RecordIdx>(key >> 32);
    data::RecordIdx b = static_cast<data::RecordIdx>(key & 0xffffffffu);
    switch (options.weights) {
      case WeightScheme::kCommonBlocks:
        return static_cast<double>(cbs);
      case WeightScheme::kEcbs:
        return static_cast<double>(cbs) *
               std::log(num_blocks / static_cast<double>(blocks_of[a])) *
               std::log(num_blocks / static_cast<double>(blocks_of[b]));
      case WeightScheme::kJaccard:
        return static_cast<double>(cbs) /
               static_cast<double>(blocks_of[a] + blocks_of[b] - cbs);
    }
    return 0.0;
  };

  std::vector<data::RecordPair> kept;
  if (options.pruning == PruningScheme::kWeightedEdge) {
    // WEP: global mean weight threshold.
    double sum = 0.0;
    for (const auto& [key, cbs] : common) sum += weight_of(key, cbs);
    double mean = common.empty() ? 0.0 : sum / static_cast<double>(
                                                   common.size());
    for (const auto& [key, cbs] : common) {
      if (weight_of(key, cbs) > mean) {
        kept.emplace_back(static_cast<data::RecordIdx>(key >> 32),
                          static_cast<data::RecordIdx>(key & 0xffffffffu));
      }
    }
  } else {
    // CNP: keep each record's top-k edges; an edge survives when either
    // endpoint retains it.
    struct Edge {
      double weight;
      uint64_t key;
    };
    std::vector<std::vector<Edge>> per_record(num_records);
    for (const auto& [key, cbs] : common) {
      double w = weight_of(key, cbs);
      per_record[key >> 32].push_back(Edge{w, key});
      per_record[key & 0xffffffffu].push_back(Edge{w, key});
    }
    std::unordered_map<uint64_t, bool> retained;
    for (auto& edges : per_record) {
      size_t k = std::min(options.node_top_k, edges.size());
      std::partial_sort(edges.begin(), edges.begin() + static_cast<long>(k),
                        edges.end(), [](const Edge& x, const Edge& y) {
                          return x.weight > y.weight;
                        });
      for (size_t i = 0; i < k; ++i) retained[edges[i].key] = true;
    }
    kept.reserve(retained.size());
    for (const auto& [key, keep] : retained) {
      kept.emplace_back(static_cast<data::RecordIdx>(key >> 32),
                        static_cast<data::RecordIdx>(key & 0xffffffffu));
    }
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace yver::blocking::baselines
