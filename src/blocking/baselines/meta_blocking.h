#ifndef YVER_BLOCKING_BASELINES_META_BLOCKING_H_
#define YVER_BLOCKING_BASELINES_META_BLOCKING_H_

#include <cstdint>
#include <vector>

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// Comparison cleaning via meta-blocking (Papadakis et al.; the third
/// technique category of §6.6 — "comparison cleaning, which remove
/// records from blocks"). The blocking graph weighs each candidate pair
/// by its co-occurrence pattern across blocks; pruning low-weight edges
/// discards superfluous comparisons while keeping likely matches. The
/// paper performs comparison cleaning through classification instead;
/// this module lets the Table 10 baselines be extended with their
/// standard cleaning step for a fairer frontier.
enum class WeightScheme : uint8_t {
  kCommonBlocks = 0,  // CBS: number of blocks shared by the pair
  kEcbs,              // entity-corrected CBS: CBS * log-rarity of both ends
  kJaccard,           // |shared blocks| / |blocks of a ∪ blocks of b|
};

enum class PruningScheme : uint8_t {
  kWeightedEdge = 0,  // WEP: keep edges above the mean edge weight
  kCardinalityNode,   // CNP: keep each record's top-k edges
};

struct MetaBlockingOptions {
  WeightScheme weights = WeightScheme::kEcbs;
  PruningScheme pruning = PruningScheme::kWeightedEdge;
  /// CNP: edges kept per record.
  size_t node_top_k = 10;
};

/// Builds the blocking graph of `blocks` and returns the pruned candidate
/// pairs.
std::vector<data::RecordPair> CleanComparisons(
    const std::vector<BaselineBlock>& blocks, size_t num_records,
    const MetaBlockingOptions& options);
inline std::vector<data::RecordPair> CleanComparisons(
    const std::vector<BaselineBlock>& blocks, size_t num_records) {
  return CleanComparisons(blocks, num_records, MetaBlockingOptions());
}

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_META_BLOCKING_H_
