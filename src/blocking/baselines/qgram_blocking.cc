#include "blocking/baselines/qgram_blocking.h"

#include <unordered_map>

#include "text/qgram.h"

namespace yver::blocking::baselines {

namespace {

std::vector<BaselineBlock> CollectBlocks(
    std::unordered_map<std::string, BaselineBlock>&& by_key,
    size_t max_block_size) {
  std::vector<BaselineBlock> blocks;
  blocks.reserve(by_key.size());
  for (auto& [key, block] : by_key) {
    if (block.size() >= 2) blocks.push_back(std::move(block));
  }
  return PurgeOversized(std::move(blocks), max_block_size);
}

void AddRecord(std::unordered_map<std::string, BaselineBlock>& by_key,
               const std::string& key, data::RecordIdx r) {
  auto& block = by_key[key];
  if (block.empty() || block.back() != r) block.push_back(r);
}

}  // namespace

std::vector<BaselineBlock> QGramBlocking::BuildBlocks(
    const data::Dataset& dataset) const {
  std::unordered_map<std::string, BaselineBlock> by_key;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (const auto& token :
         RecordTokens(dataset[r], /*attribute_prefixed=*/false)) {
      for (const auto& gram : text::ExtractQGramsNoPad(token, q_)) {
        AddRecord(by_key, gram, r);
      }
    }
  }
  return CollectBlocks(std::move(by_key), max_block_size_);
}

std::vector<BaselineBlock> ExtendedQGramBlocking::BuildBlocks(
    const data::Dataset& dataset) const {
  std::unordered_map<std::string, BaselineBlock> by_key;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (const auto& token :
         RecordTokens(dataset[r], /*attribute_prefixed=*/false)) {
      for (const auto& key :
           text::ExtractExtendedQGrams(token, q_, threshold_)) {
        AddRecord(by_key, key, r);
      }
    }
  }
  return CollectBlocks(std::move(by_key), max_block_size_);
}

}  // namespace yver::blocking::baselines
