#ifndef YVER_BLOCKING_BASELINES_QGRAM_BLOCKING_H_
#define YVER_BLOCKING_BASELINES_QGRAM_BLOCKING_H_

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// QGBl — Q-Grams Blocking [Gravano et al. 2001]: standard blocking where
/// "each attribute value is converted to all subsequences of q characters
/// (q-grams)"; every q-gram keys a block.
class QGramBlocking : public BlockingBaseline {
 public:
  explicit QGramBlocking(size_t q = 3, size_t max_block_size = 500)
      : q_(q), max_block_size_(max_block_size) {}

  std::string_view name() const override { return "QGBl"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

 protected:
  size_t q_;
  size_t max_block_size_;
};

/// EQBl — Extended Q-Grams Blocking [Christen 2012]: "concatenates q-grams
/// in an effort to increase the blocking keys' discriminative abilities";
/// keys are combinations of at least ceil(T * k) of a value's k q-grams.
class ExtendedQGramBlocking : public QGramBlocking {
 public:
  explicit ExtendedQGramBlocking(size_t q = 3, double threshold = 0.8,
                                 size_t max_block_size = 500)
      : QGramBlocking(q, max_block_size), threshold_(threshold) {}

  std::string_view name() const override { return "EQBl"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

 private:
  double threshold_;
};

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_QGRAM_BLOCKING_H_
