#include "blocking/baselines/sorted_neighborhood.h"

#include <algorithm>
#include <map>

namespace yver::blocking::baselines {

std::vector<BaselineBlock> ExtendedSortedNeighborhood::BuildBlocks(
    const data::Dataset& dataset) const {
  // Sorted distinct tokens -> postings.
  std::map<std::string, BaselineBlock> sorted_tokens;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (auto& token :
         RecordTokens(dataset[r], /*attribute_prefixed=*/false)) {
      auto& postings = sorted_tokens[std::move(token)];
      if (postings.empty() || postings.back() != r) postings.push_back(r);
    }
  }
  std::vector<const BaselineBlock*> postings_list;
  postings_list.reserve(sorted_tokens.size());
  for (const auto& [token, postings] : sorted_tokens) {
    postings_list.push_back(&postings);
  }
  std::vector<BaselineBlock> blocks;
  if (postings_list.size() < window_) return blocks;
  for (size_t start = 0; start + window_ <= postings_list.size(); ++start) {
    BaselineBlock block;
    for (size_t w = 0; w < window_; ++w) {
      const auto& postings = *postings_list[start + w];
      block.insert(block.end(), postings.begin(), postings.end());
    }
    std::sort(block.begin(), block.end());
    block.erase(std::unique(block.begin(), block.end()), block.end());
    if (block.size() >= 2) blocks.push_back(std::move(block));
  }
  return PurgeOversized(std::move(blocks), max_block_size_);
}

}  // namespace yver::blocking::baselines
