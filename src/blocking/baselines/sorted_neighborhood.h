#ifndef YVER_BLOCKING_BASELINES_SORTED_NEIGHBORHOOD_H_
#define YVER_BLOCKING_BASELINES_SORTED_NEIGHBORHOOD_H_

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// ESoNe — Extended Sorted Neighborhood [Christen 2012]: "sorts the
/// attribute values in alphabetical order and then uses a sliding window
/// of fixed size to create a block from all records which have one of the
/// values in the window". The window slides over the *distinct value*
/// list, not the record list, which makes the approach robust to skewed
/// value frequencies.
class ExtendedSortedNeighborhood : public BlockingBaseline {
 public:
  explicit ExtendedSortedNeighborhood(size_t window = 3,
                                      size_t max_block_size = 500)
      : window_(window), max_block_size_(max_block_size) {}

  std::string_view name() const override { return "ESoNe"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

 private:
  size_t window_;
  size_t max_block_size_;
};

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_SORTED_NEIGHBORHOOD_H_
