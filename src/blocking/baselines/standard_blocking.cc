#include "blocking/baselines/standard_blocking.h"

#include <unordered_map>

namespace yver::blocking::baselines {

std::vector<BaselineBlock> StandardBlocking::BuildBlocks(
    const data::Dataset& dataset) const {
  std::unordered_map<std::string, BaselineBlock> by_key;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (auto& token : RecordTokens(dataset[r], /*attribute_prefixed=*/true)) {
      by_key[std::move(token)].push_back(r);
    }
  }
  std::vector<BaselineBlock> blocks;
  blocks.reserve(by_key.size());
  for (auto& [key, block] : by_key) {
    if (block.size() >= 2) blocks.push_back(std::move(block));
  }
  return PurgeOversized(std::move(blocks), max_block_size_);
}

}  // namespace yver::blocking::baselines
