#ifndef YVER_BLOCKING_BASELINES_STANDARD_BLOCKING_H_
#define YVER_BLOCKING_BASELINES_STANDARD_BLOCKING_H_

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// StBl — Standard Blocking [Christen 2012; Papadakis 2013]: "creates a
/// block for each attribute value shared by more than one record". Tokens
/// are attribute-prefixed, so FirstName=Guido and FatherName=Guido key
/// different blocks.
class StandardBlocking : public BlockingBaseline {
 public:
  explicit StandardBlocking(size_t max_block_size = 500)
      : max_block_size_(max_block_size) {}

  std::string_view name() const override { return "StBl"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

 private:
  size_t max_block_size_;
};

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_STANDARD_BLOCKING_H_
