#include "blocking/baselines/suffix_arrays.h"

#include <unordered_map>

namespace yver::blocking::baselines {

namespace {

void AddRecord(std::unordered_map<std::string, BaselineBlock>& by_key,
               std::string key, data::RecordIdx r) {
  auto& block = by_key[std::move(key)];
  if (block.empty() || block.back() != r) block.push_back(r);
}

std::vector<BaselineBlock> CollectBlocks(
    std::unordered_map<std::string, BaselineBlock>&& by_key,
    size_t max_block_size) {
  std::vector<BaselineBlock> blocks;
  blocks.reserve(by_key.size());
  for (auto& [key, block] : by_key) {
    if (block.size() >= 2) blocks.push_back(std::move(block));
  }
  return PurgeOversized(std::move(blocks), max_block_size);
}

}  // namespace

std::vector<BaselineBlock> SuffixArrays::BuildBlocks(
    const data::Dataset& dataset) const {
  std::unordered_map<std::string, BaselineBlock> by_key;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (const auto& token :
         RecordTokens(dataset[r], /*attribute_prefixed=*/false)) {
      if (token.size() < min_length_) {
        AddRecord(by_key, token, r);
        continue;
      }
      for (size_t start = 0; start + min_length_ <= token.size(); ++start) {
        AddRecord(by_key, token.substr(start), r);
      }
    }
  }
  return CollectBlocks(std::move(by_key), max_block_size_);
}

std::vector<BaselineBlock> ExtendedSuffixArrays::BuildBlocks(
    const data::Dataset& dataset) const {
  std::unordered_map<std::string, BaselineBlock> by_key;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (const auto& token :
         RecordTokens(dataset[r], /*attribute_prefixed=*/false)) {
      if (token.size() < min_length_) {
        AddRecord(by_key, token, r);
        continue;
      }
      for (size_t start = 0; start + min_length_ <= token.size(); ++start) {
        for (size_t len = min_length_; start + len <= token.size(); ++len) {
          AddRecord(by_key, token.substr(start, len), r);
        }
      }
    }
  }
  return CollectBlocks(std::move(by_key), max_block_size_);
}

}  // namespace yver::blocking::baselines
