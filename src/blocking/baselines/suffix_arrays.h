#ifndef YVER_BLOCKING_BASELINES_SUFFIX_ARRAYS_H_
#define YVER_BLOCKING_BASELINES_SUFFIX_ARRAYS_H_

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// SuAr — Suffix Arrays blocking [Aizawa & Oyama 2005]: "converts the
/// attribute values to their suffixes of length larger than l"; every such
/// suffix keys a block. Robust to prefix noise.
class SuffixArrays : public BlockingBaseline {
 public:
  /// Defaults follow the technique's classic configuration: minimum suffix
  /// length 4 and maximum block size 53 (Christen's survey default), which
  /// trades recall for far fewer comparisons — visible in Table 10, where
  /// SuAr/ESuAr have the lowest recalls but the best baseline precision.
  explicit SuffixArrays(size_t min_length = 4, size_t max_block_size = 53)
      : min_length_(min_length), max_block_size_(max_block_size) {}

  std::string_view name() const override { return "SuAr"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

 protected:
  size_t min_length_;
  size_t max_block_size_;
};

/// ESuAr — Extended Suffix Arrays [Christen 2012]: "adds all of the
/// attribute value's substrings larger than l to the possible blocking
/// keys".
class ExtendedSuffixArrays : public SuffixArrays {
 public:
  using SuffixArrays::SuffixArrays;

  std::string_view name() const override { return "ESuAr"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;
};

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_SUFFIX_ARRAYS_H_
