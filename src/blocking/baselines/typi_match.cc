#include "blocking/baselines/typi_match.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace yver::blocking::baselines {

namespace {

// Union-find over token ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<BaselineBlock> TypiMatch::BuildBlocks(
    const data::Dataset& dataset) const {
  // Tokenize and intern.
  std::unordered_map<std::string, uint32_t> dict;
  std::vector<std::vector<uint32_t>> record_tokens(dataset.size());
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (auto& token :
         RecordTokens(dataset[r], /*attribute_prefixed=*/false)) {
      auto [it, inserted] = dict.try_emplace(
          std::move(token), static_cast<uint32_t>(dict.size()));
      record_tokens[r].push_back(it->second);
    }
    auto& v = record_tokens[r];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  const size_t num_tokens = dict.size();
  std::vector<uint32_t> freq(num_tokens, 0);
  for (const auto& tokens : record_tokens) {
    for (uint32_t t : tokens) ++freq[t];
  }
  // Pairwise co-occurrence counts (only within records; tokens of a record
  // are few, so this is near-linear overall).
  std::unordered_map<uint64_t, uint32_t> cooc;
  for (const auto& tokens : record_tokens) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        cooc[(static_cast<uint64_t>(tokens[i]) << 32) | tokens[j]] += 1;
      }
    }
  }
  // Thresholded co-occurrence graph -> type clusters (connected
  // components; see header for the clique relaxation).
  UnionFind uf(num_tokens);
  for (const auto& [key, count] : cooc) {
    uint32_t t1 = static_cast<uint32_t>(key >> 32);
    uint32_t t2 = static_cast<uint32_t>(key & 0xffffffffu);
    double r1 = static_cast<double>(count) / freq[t1];
    double r2 = static_cast<double>(count) / freq[t2];
    if (r1 >= min_cooccurrence_ && r2 >= min_cooccurrence_) {
      uf.Union(t1, t2);
    }
  }
  // Standard blocking within each type cluster: block key =
  // (type, token).
  std::unordered_map<uint64_t, BaselineBlock> by_key;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    for (uint32_t t : record_tokens[r]) {
      uint64_t key = (static_cast<uint64_t>(uf.Find(t)) << 32) | t;
      auto& block = by_key[key];
      if (block.empty() || block.back() != r) block.push_back(r);
    }
  }
  std::vector<BaselineBlock> blocks;
  for (auto& [key, block] : by_key) {
    if (block.size() >= 2) blocks.push_back(std::move(block));
  }
  return PurgeOversized(std::move(blocks), max_block_size_);
}

}  // namespace yver::blocking::baselines
