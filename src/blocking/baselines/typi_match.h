#ifndef YVER_BLOCKING_BASELINES_TYPI_MATCH_H_
#define YVER_BLOCKING_BASELINES_TYPI_MATCH_H_

#include "blocking/baselines/baseline.h"

namespace yver::blocking::baselines {

/// TYPiMatch [Ma & Tran 2013]: "constructs a co-occurrence graph for all
/// tokens and the maximal cliques are extracted from it to create large
/// blocks that are decomposed to smaller blocks by standard blocking".
///
/// Simplification (documented in DESIGN.md): instead of exact maximal
/// clique enumeration (NP-hard) we use the dense connected components of
/// the thresholded co-occurrence graph as type clusters — the standard
/// practical relaxation — then run standard blocking within each type.
class TypiMatch : public BlockingBaseline {
 public:
  /// `min_cooccurrence` is the conditional co-occurrence ratio
  /// P(t2 | t1) required to draw a graph edge.
  explicit TypiMatch(double min_cooccurrence = 0.25,
                     size_t max_block_size = 500)
      : min_cooccurrence_(min_cooccurrence),
        max_block_size_(max_block_size) {}

  std::string_view name() const override { return "TYPiMatch"; }
  std::vector<BaselineBlock> BuildBlocks(
      const data::Dataset& dataset) const override;

 private:
  double min_cooccurrence_;
  size_t max_block_size_;
};

}  // namespace yver::blocking::baselines

#endif  // YVER_BLOCKING_BASELINES_TYPI_MATCH_H_
