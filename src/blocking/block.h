#ifndef YVER_BLOCKING_BLOCK_H_
#define YVER_BLOCKING_BLOCK_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/item_dictionary.h"

namespace yver::blocking {

/// A soft block: the support set of a maximal frequent itemset, i.e. the
/// records sharing the block key. Blocks may overlap — the same record may
/// live in several blocks under different keys, which is what makes the
/// resolution "uncertain" (paper §4.1).
struct Block {
  /// The mined itemset acting as the (dynamic, data-driven) blocking key.
  std::vector<data::ItemId> key;

  /// Records supporting the key, sorted ascending.
  std::vector<data::RecordIdx> records;

  /// Block quality score (ClusterJaccard or expert similarity).
  double score = 0.0;

  /// The minsup level of the MFIBlocks iteration that produced the block.
  uint32_t minsup_level = 0;

  friend bool operator==(const Block&, const Block&) = default;
};

/// A candidate duplicate pair emitted by blocking, carrying the best score
/// among the blocks that produced it.
struct CandidatePair {
  data::RecordPair pair;
  double block_score = 0.0;
  uint32_t minsup_level = 0;

  friend bool operator==(const CandidatePair&, const CandidatePair&) = default;
};

}  // namespace yver::blocking

#endif  // YVER_BLOCKING_BLOCK_H_
