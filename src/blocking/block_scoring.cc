#include "blocking/block_scoring.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace yver::blocking {

namespace {

double ItemWeight(const data::ItemDictionary& dict,
                  const AttributeWeights& weights, data::ItemId id) {
  return weights[static_cast<size_t>(dict.attribute(id))];
}

// Greedy soft-Jaccard between two bags under fsim: every item of each bag
// is matched to its best counterpart in the other bag; the normalized sum
// plays the role of |A ∩ B| / |A ∪ B| with partial credit.
double SoftBagSimilarity(const data::EncodedDataset& encoded,
                         const data::ItemBag& a, const data::ItemBag& b,
                         const AttributeWeights& weights) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto& dict = encoded.dictionary;
  double total_weight = 0.0;
  double matched = 0.0;
  for (data::ItemId ia : a) {
    double best = 0.0;
    for (data::ItemId ib : b) {
      best = std::max(best, ExpertItemSimilarity(dict, ia, ib));
    }
    double w = ItemWeight(dict, weights, ia);
    matched += best * w;
    total_weight += w;
  }
  for (data::ItemId ib : b) {
    double best = 0.0;
    for (data::ItemId ia : a) {
      best = std::max(best, ExpertItemSimilarity(dict, ia, ib));
    }
    double w = ItemWeight(dict, weights, ib);
    matched += best * w;
    total_weight += w;
  }
  if (total_weight <= 0.0) return 0.0;
  return matched / total_weight;
}

}  // namespace

double ClusterJaccardScore(const data::EncodedDataset& encoded,
                           const Block& block,
                           const AttributeWeights& weights) {
  YVER_CHECK(!block.records.empty());
  const auto& dict = encoded.dictionary;
  double key_weight = 0.0;
  for (data::ItemId id : block.key) key_weight += ItemWeight(dict, weights, id);
  std::unordered_set<data::ItemId> uni;
  for (data::RecordIdx r : block.records) {
    for (data::ItemId id : encoded.bags[r]) uni.insert(id);
  }
  double union_weight = 0.0;
  for (data::ItemId id : uni) union_weight += ItemWeight(dict, weights, id);
  if (union_weight <= 0.0) return 0.0;
  return key_weight / union_weight;
}

double ExpertSimScore(const data::EncodedDataset& encoded, const Block& block,
                      const AttributeWeights& weights) {
  YVER_CHECK(!block.records.empty());
  if (block.records.size() < 2) return 0.0;
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < block.records.size(); ++i) {
    for (size_t j = i + 1; j < block.records.size(); ++j) {
      sum += SoftBagSimilarity(encoded, encoded.bags[block.records[i]],
                               encoded.bags[block.records[j]], weights);
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

}  // namespace yver::blocking
