#ifndef YVER_BLOCKING_BLOCK_SCORING_H_
#define YVER_BLOCKING_BLOCK_SCORING_H_

#include "blocking/block.h"
#include "blocking/item_similarity.h"
#include "data/item_dictionary.h"

namespace yver::blocking {

/// ClusterJaccard block score (Kenig & Gal's set-monotone score): the
/// weighted size of the block key divided by the weighted size of the
/// union of the member records' item bags —
///   score(B) = w(key) / w(∪_{r ∈ B} items(r)).
/// A block whose members share most of their content scores near 1
/// (compact set); members with much non-shared content dilute the score.
/// With uniform weights this is exactly |key| / |union|.
double ClusterJaccardScore(const data::EncodedDataset& encoded,
                           const Block& block,
                           const AttributeWeights& weights);

/// Expert-similarity block score (the ExpertSim condition, §6.5): the mean
/// over member record pairs of a greedy soft-Jaccard between their bags,
/// where item affinity is fsim of Eq. 1. NOT set-monotone — the paper
/// found that losing monotonicity hurts quality (Table 9), which the
/// ablation bench reproduces.
double ExpertSimScore(const data::EncodedDataset& encoded, const Block& block,
                      const AttributeWeights& weights);

}  // namespace yver::blocking

#endif  // YVER_BLOCKING_BLOCK_SCORING_H_
