#include "blocking/item_similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "geo/geo.h"
#include "text/jaro_winkler.h"

namespace yver::blocking {

namespace {

double NumericValue(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return 0.0;
  return v;
}

}  // namespace

double ExpertItemSimilarity(const data::ItemDictionary& dict,
                            data::ItemId a, data::ItemId b) {
  data::AttributeId attr_a = dict.attribute(a);
  data::AttributeId attr_b = dict.attribute(b);
  if (attr_a != attr_b) return 0.0;
  const std::string& va = dict.value(a);
  const std::string& vb = dict.value(b);
  switch (data::AttributeClass(attr_a)) {
    case data::ValueClass::kName:
    case data::ValueClass::kPlacePart:
      return text::JaroWinklerSimilarity(va, vb);
    case data::ValueClass::kCategorical:
      return va == vb ? 1.0 : 0.0;
    case data::ValueClass::kYear:
      return std::max(
          0.0, 1.0 - std::abs(NumericValue(va) - NumericValue(vb)) / 50.0);
    case data::ValueClass::kMonth:
      return std::max(
          0.0, 1.0 - std::abs(NumericValue(va) - NumericValue(vb)) / 12.0);
    case data::ValueClass::kDay:
      return std::max(
          0.0, 1.0 - std::abs(NumericValue(va) - NumericValue(vb)) / 31.0);
    case data::ValueClass::kGeo: {
      const auto& ga = dict.geo(a);
      const auto& gb = dict.geo(b);
      if (ga.has_value() && gb.has_value()) {
        return std::max(0.0, 1.0 - geo::HaversineKm(*ga, *gb) / 100.0);
      }
      return text::JaroWinklerSimilarity(va, vb);
    }
  }
  return 0.0;
}

AttributeWeights UniformWeights() {
  AttributeWeights w;
  w.fill(1.0);
  return w;
}

AttributeWeights DefaultExpertWeights() {
  AttributeWeights w;
  w.fill(1.0);
  auto set = [&w](data::AttributeId attr, double value) {
    w[static_cast<size_t>(attr)] = value;
  };
  // Identity-bearing names dominate.
  set(data::AttributeId::kFirstName, 2.0);
  set(data::AttributeId::kLastName, 2.0);
  set(data::AttributeId::kMaidenName, 1.8);
  set(data::AttributeId::kFathersName, 1.6);
  set(data::AttributeId::kMothersName, 1.6);
  set(data::AttributeId::kMothersMaiden, 1.6);
  set(data::AttributeId::kSpouseName, 1.4);
  // Birth date parts: year discriminates well; day/month moderately.
  set(data::AttributeId::kBirthYear, 1.5);
  set(data::AttributeId::kBirthMonth, 1.0);
  set(data::AttributeId::kBirthDay, 1.0);
  // Low-cardinality attributes contribute little to a block's quality.
  set(data::AttributeId::kGender, 0.2);
  set(data::AttributeId::kProfession, 0.6);
  // City-level places are informative; coarse parts much less so.
  for (auto type : {data::PlaceType::kBirth, data::PlaceType::kPermanent,
                    data::PlaceType::kWartime, data::PlaceType::kDeath}) {
    set(data::PlaceAttribute(type, data::PlacePart::kCity), 1.2);
    set(data::PlaceAttribute(type, data::PlacePart::kCounty), 0.7);
    set(data::PlaceAttribute(type, data::PlacePart::kRegion), 0.5);
    set(data::PlaceAttribute(type, data::PlacePart::kCountry), 0.3);
  }
  return w;
}

}  // namespace yver::blocking
