#ifndef YVER_BLOCKING_ITEM_SIMILARITY_H_
#define YVER_BLOCKING_ITEM_SIMILARITY_H_

#include <array>

#include "data/item_dictionary.h"
#include "data/schema.h"

namespace yver::blocking {

/// Expert item similarity fsim(i1, i2) of Eq. 1 in the paper:
///   0                          when the items belong to different attributes
///   JaroWinkler(v1, v2)        for name-class items
///   1 - |y1 - y2| / 50         for birth years (clamped to [0, 1])
///   1 - monthDiff / 12         for birth months
///   1 - dayDiff / 31           for birth days
///   max(0, 1 - geoDist / 100)  for geo-coded cities (falls back to
///                              Jaro-Winkler when coordinates are missing)
///   equality (1 or 0)          for categorical items
///   JaroWinkler(v1, v2)        for county/region/country place parts
double ExpertItemSimilarity(const data::ItemDictionary& dict,
                            data::ItemId a, data::ItemId b);

/// Per-attribute weights used when "expert weighting" is enabled for the
/// block score (§6.5 Expert Weighting condition).
using AttributeWeights = std::array<double, data::kNumAttributes>;

/// Uniform weights (the Base condition).
AttributeWeights UniformWeights();

/// The expert-derived weighting scheme: discriminative identity attributes
/// (names, birth year) weigh high; low-cardinality attributes (gender) and
/// coarse places weigh low.
AttributeWeights DefaultExpertWeights();

}  // namespace yver::blocking

#endif  // YVER_BLOCKING_ITEM_SIMILARITY_H_
