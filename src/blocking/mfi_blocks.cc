#include "blocking/mfi_blocks.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "blocking/block_scoring.h"
#include "blocking/neighborhood.h"
#include "data/inverted_index.h"
#include "mining/fp_growth.h"
#include "util/check.h"
#include "util/timer.h"

namespace yver::blocking {

namespace {

// Hashes a sorted record set for block deduplication.
struct RecordSetHash {
  size_t operator()(const std::vector<data::RecordIdx>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (data::RecordIdx r : v) {
      h ^= r;
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

using PairMap =
    std::unordered_map<data::RecordPair, CandidatePair, data::RecordPairHash>;

// Folds one (pair, score, minsup) observation into a pair map with the
// serial emission rule: first block wins, a strictly better score
// overwrites. The rule is "max score, earliest block on ties", which is
// associative over an ordered partition of the block list — that is what
// makes the chunked emission below merge-order-invariant.
void FoldPair(PairMap& map, const data::RecordPair& rp, double score,
              uint32_t minsup) {
  auto it = map.find(rp);
  if (it == map.end()) {
    map.emplace(rp, CandidatePair{rp, score, minsup});
  } else if (score > it->second.block_score) {
    it->second.block_score = score;
    it->second.minsup_level = minsup;
  }
}

}  // namespace

MfiBlocksResult RunMfiBlocks(const data::EncodedDataset& encoded,
                             const MfiBlocksConfig& config,
                             util::ThreadPool* pool) {
  YVER_CHECK(config.max_minsup >= 2);
  YVER_CHECK(config.ng > 0.0);
  MfiBlocksResult result;
  const size_t n = encoded.bags.size();

  const AttributeWeights weights = config.expert_weighting
                                       ? DefaultExpertWeights()
                                       : UniformWeights();

  // Optional frequent-item pruning applies to the mining input only; the
  // scores still see full bags.
  std::vector<data::ItemBag> mining_bags =
      config.prune_frequent_fraction > 0.0
          ? encoded.PruneMostFrequent(config.prune_frequent_fraction)
          : encoded.bags;

  std::vector<bool> covered(n, false);
  PairMap pair_map;
  util::Timer timer;

  for (uint32_t minsup = config.max_minsup; minsup >= 2; --minsup) {
    // Collect uncovered records (D \ P) and their bags; mining runs on
    // local transaction ids which we map back to record indices.
    std::vector<data::RecordIdx> local_to_global;
    std::vector<data::ItemBag> local_bags;
    for (size_t r = 0; r < n; ++r) {
      if (covered[r]) continue;
      local_to_global.push_back(static_cast<data::RecordIdx>(r));
      local_bags.push_back(mining_bags[r]);
    }
    if (local_to_global.size() < minsup) continue;

    mining::MinerOptions miner_options;
    miner_options.minsup = minsup;
    miner_options.max_itemsets = config.max_mfis_per_iteration;
    timer.Reset();
    std::vector<mining::FrequentItemset> mfis =
        config.itemset_kind == ItemsetKind::kMaximal
            ? mining::MineMaximalItemsets(local_bags, miner_options, pool)
            : mining::MineClosedItemsets(local_bags, miner_options);
    result.num_mfis_mined += mfis.size();
    result.timings.mine_seconds += timer.ElapsedSeconds();

    // FindSupport: support sets are exactly the mined supports; recompute
    // membership via a local inverted index to obtain the record lists.
    // One independent intersection per MFI, written into its own slot and
    // remapped to global record indices in place.
    timer.Reset();
    data::InvertedIndex index(local_bags, encoded.dictionary.size());
    std::vector<std::vector<data::RecordIdx>> supports(mfis.size());
    auto support_one = [&](size_t i) {
      std::vector<data::RecordIdx> support = index.Support(mfis[i].items);
      for (auto& r : support) r = local_to_global[r];
      supports[i] = std::move(support);
    };
    if (pool != nullptr) {
      pool->ParallelFor(mfis.size(), support_one);
    } else {
      for (size_t i = 0; i < mfis.size(); ++i) support_one(i);
    }

    // Filter by block size: 2 <= |B| <= NgCap(ng, minsup) — the same cap
    // the sparse-neighborhood condition uses. Dedup stays serial in MFI
    // order so the kept key per record set is deterministic.
    const size_t max_block_size = NgCap(config.ng, minsup);
    std::vector<Block> blocks;
    std::unordered_map<std::vector<data::RecordIdx>, size_t, RecordSetHash>
        dedup;
    for (size_t i = 0; i < mfis.size(); ++i) {
      std::vector<data::RecordIdx>& support = supports[i];
      if (support.size() < 2 || support.size() > max_block_size) continue;
      auto [it, inserted] = dedup.try_emplace(std::move(support), blocks.size());
      if (!inserted) {
        // Same record set reachable via several keys: keep the longer key
        // (more shared content; scores higher under ClusterJaccard).
        Block& existing = blocks[it->second];
        if (mfis[i].items.size() > existing.key.size()) {
          existing.key = std::move(mfis[i].items);
        }
        continue;
      }
      Block block;
      block.key = std::move(mfis[i].items);
      block.records = it->first;
      block.minsup_level = minsup;
      blocks.push_back(std::move(block));
    }
    result.num_blocks_considered += blocks.size();
    result.timings.support_seconds += timer.ElapsedSeconds();

    // Score blocks (parallelized; this is the paper's Spark stage). Each
    // score lands in its own slot, so scheduling never reorders anything.
    timer.Reset();
    auto score_one = [&](size_t i) {
      Block& b = blocks[i];
      b.score = config.score_kind == BlockScoreKind::kClusterJaccard
                    ? ClusterJaccardScore(encoded, b, weights)
                    : ExpertSimScore(encoded, b, weights);
    };
    if (pool != nullptr) {
      pool->ParallelFor(blocks.size(), score_one);
    } else {
      for (size_t i = 0; i < blocks.size(); ++i) score_one(i);
    }
    result.timings.score_seconds += timer.ElapsedSeconds();

    // Sparse-neighborhood condition: derive minTh and filter.
    timer.Reset();
    double min_th = ComputeMinThreshold(blocks, n, config.ng, minsup);
    std::vector<Block> kept;
    kept.reserve(blocks.size());
    for (auto& b : blocks) {
      if (b.score > min_th) kept.push_back(std::move(b));
    }
    result.timings.threshold_seconds += timer.ElapsedSeconds();

    // Emit candidate pairs: per-chunk local pair maps built in parallel,
    // merged into the cross-iteration map serially in chunk order. The
    // fold rule is associative over the ordered block partition (see
    // FoldPair), so the merged map matches the serial single-map result
    // for every chunking — i.e. every thread count.
    timer.Reset();
    size_t num_chunks = pool != nullptr ? pool->NumChunks(kept.size())
                                        : (kept.empty() ? 0 : 1);
    std::vector<PairMap> chunk_maps(num_chunks);
    auto emit_chunk = [&](size_t chunk, size_t begin, size_t end) {
      PairMap& local = chunk_maps[chunk];
      for (size_t k = begin; k < end; ++k) {
        const Block& b = kept[k];
        for (size_t i = 0; i < b.records.size(); ++i) {
          for (size_t j = i + 1; j < b.records.size(); ++j) {
            FoldPair(local, data::RecordPair(b.records[i], b.records[j]),
                     b.score, minsup);
          }
        }
      }
    };
    if (pool != nullptr) {
      pool->ParallelForChunkedIndexed(kept.size(), emit_chunk);
    } else if (!kept.empty()) {
      emit_chunk(0, 0, kept.size());
    }
    for (const PairMap& local : chunk_maps) {
      for (const auto& [rp, cp] : local) {
        FoldPair(pair_map, rp, cp.block_score, cp.minsup_level);
      }
    }
    // Coverage: every record of a kept block (all have >= 2 records)
    // participates in at least one emitted pair.
    for (const Block& b : kept) {
      for (data::RecordIdx r : b.records) covered[r] = true;
    }
    for (auto& b : kept) result.blocks.push_back(std::move(b));
    result.timings.emit_seconds += timer.ElapsedSeconds();

    bool all_covered = true;
    for (size_t r = 0; r < n; ++r) {
      if (!covered[r]) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) break;
  }

  timer.Reset();
  result.pairs.reserve(pair_map.size());
  for (auto& [rp, cp] : pair_map) result.pairs.push_back(cp);
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.block_score != b.block_score) {
                return a.block_score > b.block_score;
              }
              return a.pair < b.pair;
            });
  for (bool c : covered) result.num_records_covered += c ? 1 : 0;
  result.timings.emit_seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace yver::blocking
