#include "blocking/mfi_blocks.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "blocking/block_scoring.h"
#include "blocking/neighborhood.h"
#include "data/inverted_index.h"
#include "mining/fp_growth.h"
#include "util/check.h"

namespace yver::blocking {

namespace {

// Hashes a sorted record set for block deduplication.
struct RecordSetHash {
  size_t operator()(const std::vector<data::RecordIdx>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (data::RecordIdx r : v) {
      h ^= r;
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

MfiBlocksResult RunMfiBlocks(const data::EncodedDataset& encoded,
                             const MfiBlocksConfig& config,
                             util::ThreadPool* pool) {
  YVER_CHECK(config.max_minsup >= 2);
  YVER_CHECK(config.ng > 0.0);
  MfiBlocksResult result;
  const size_t n = encoded.bags.size();

  const AttributeWeights weights = config.expert_weighting
                                       ? DefaultExpertWeights()
                                       : UniformWeights();

  // Optional frequent-item pruning applies to the mining input only; the
  // scores still see full bags.
  std::vector<data::ItemBag> mining_bags =
      config.prune_frequent_fraction > 0.0
          ? encoded.PruneMostFrequent(config.prune_frequent_fraction)
          : encoded.bags;

  std::vector<bool> covered(n, false);
  std::unordered_map<data::RecordPair, CandidatePair, data::RecordPairHash>
      pair_map;

  for (uint32_t minsup = config.max_minsup; minsup >= 2; --minsup) {
    // Collect uncovered records (D \ P) and their bags; mining runs on
    // local transaction ids which we map back to record indices.
    std::vector<data::RecordIdx> local_to_global;
    std::vector<data::ItemBag> local_bags;
    for (size_t r = 0; r < n; ++r) {
      if (covered[r]) continue;
      local_to_global.push_back(static_cast<data::RecordIdx>(r));
      local_bags.push_back(mining_bags[r]);
    }
    if (local_to_global.size() < minsup) continue;

    mining::MinerOptions miner_options;
    miner_options.minsup = minsup;
    miner_options.max_itemsets = config.max_mfis_per_iteration;
    std::vector<mining::FrequentItemset> mfis =
        config.itemset_kind == ItemsetKind::kMaximal
            ? mining::MineMaximalItemsets(local_bags, miner_options)
            : mining::MineClosedItemsets(local_bags, miner_options);
    result.num_mfis_mined += mfis.size();

    // FindSupport: support sets are exactly the mined supports; recompute
    // membership via a local inverted index to obtain the record lists.
    data::InvertedIndex index(local_bags, encoded.dictionary.size());

    // Filter by block size: 2 <= |B| <= minsup * ng.
    const size_t max_block_size = static_cast<size_t>(
        std::max(2.0, config.ng * static_cast<double>(minsup)));
    std::vector<Block> blocks;
    std::unordered_map<std::vector<data::RecordIdx>, size_t, RecordSetHash>
        dedup;
    for (auto& mfi : mfis) {
      std::vector<data::RecordIdx> support = index.Support(mfi.items);
      if (support.size() < 2 || support.size() > max_block_size) continue;
      for (auto& r : support) r = local_to_global[r];
      auto [it, inserted] = dedup.try_emplace(support, blocks.size());
      if (!inserted) {
        // Same record set reachable via several keys: keep the longer key
        // (more shared content; scores higher under ClusterJaccard).
        Block& existing = blocks[it->second];
        if (mfi.items.size() > existing.key.size()) {
          existing.key = std::move(mfi.items);
        }
        continue;
      }
      Block block;
      block.key = std::move(mfi.items);
      block.records = it->first;
      block.minsup_level = minsup;
      blocks.push_back(std::move(block));
    }
    result.num_blocks_considered += blocks.size();

    // Score blocks (parallelized; this is the paper's Spark stage).
    auto score_one = [&](size_t i) {
      Block& b = blocks[i];
      b.score = config.score_kind == BlockScoreKind::kClusterJaccard
                    ? ClusterJaccardScore(encoded, b, weights)
                    : ExpertSimScore(encoded, b, weights);
    };
    if (pool != nullptr) {
      pool->ParallelFor(blocks.size(), score_one);
    } else {
      for (size_t i = 0; i < blocks.size(); ++i) score_one(i);
    }

    // Sparse-neighborhood condition: derive minTh and filter.
    double min_th = ComputeMinThreshold(blocks, n, config.ng, minsup);
    std::vector<Block> kept;
    kept.reserve(blocks.size());
    for (auto& b : blocks) {
      if (b.score > min_th) kept.push_back(std::move(b));
    }

    // Emit candidate pairs and mark coverage.
    for (const Block& b : kept) {
      for (size_t i = 0; i < b.records.size(); ++i) {
        for (size_t j = i + 1; j < b.records.size(); ++j) {
          data::RecordPair rp(b.records[i], b.records[j]);
          auto it = pair_map.find(rp);
          if (it == pair_map.end()) {
            pair_map.emplace(rp, CandidatePair{rp, b.score, minsup});
          } else if (b.score > it->second.block_score) {
            it->second.block_score = b.score;
            it->second.minsup_level = minsup;
          }
          covered[rp.a] = true;
          covered[rp.b] = true;
        }
      }
    }
    for (auto& b : kept) result.blocks.push_back(std::move(b));

    bool all_covered = true;
    for (size_t r = 0; r < n; ++r) {
      if (!covered[r]) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) break;
  }

  result.pairs.reserve(pair_map.size());
  for (auto& [rp, cp] : pair_map) result.pairs.push_back(cp);
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.block_score != b.block_score) {
                return a.block_score > b.block_score;
              }
              return a.pair < b.pair;
            });
  for (bool c : covered) result.num_records_covered += c ? 1 : 0;
  return result;
}

}  // namespace yver::blocking
