#ifndef YVER_BLOCKING_MFI_BLOCKS_H_
#define YVER_BLOCKING_MFI_BLOCKS_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "blocking/item_similarity.h"
#include "data/item_dictionary.h"
#include "util/thread_pool.h"

namespace yver::blocking {

/// Which block-score function MFIBlocks uses.
enum class BlockScoreKind : uint8_t {
  kClusterJaccard = 0,  // set-monotone score of the MFIBlocks paper
  kExpertSim,           // Eq. 1-based soft similarity (ExpertSim condition)
};

/// Which itemset family supplies the blocking keys. The paper's MFIBlocks
/// uses maximal frequent itemsets; closed itemsets are the lossless
/// alternative (every distinct support set gets a key) at a steep mining
/// cost — the A6 ablation quantifies the trade.
enum class ItemsetKind : uint8_t { kMaximal = 0, kClosed };

/// Configuration of Algorithm 1.
struct MfiBlocksConfig {
  /// Starting (maximal) minsup; iterations run MaxMinSup, ..., 2.
  uint32_t max_minsup = 5;

  /// Neighborhood-growth parameter (the paper's NG / p). Caps block sizes
  /// at minsup * ng and caps per-record neighborhoods (sparse
  /// neighborhood).
  double ng = 3.0;

  /// Block score function.
  BlockScoreKind score_kind = BlockScoreKind::kClusterJaccard;

  /// Blocking-key itemset family (maximal, per the paper, by default).
  ItemsetKind itemset_kind = ItemsetKind::kMaximal;

  /// Expert attribute weighting for the score (Expert Weighting
  /// condition); uniform when false.
  bool expert_weighting = false;

  /// Fraction of most frequent distinct items pruned before mining
  /// (paper §6.3 prunes 0.03% = 0.0003).
  double prune_frequent_fraction = 0.0;

  /// Safety cap on MFIs mined per iteration (0 = unlimited).
  size_t max_mfis_per_iteration = 0;
};

/// Outcome of a full MFIBlocks run.
struct MfiBlocksResult {
  /// All blocks that survived filtering, across iterations.
  std::vector<Block> blocks;

  /// Deduplicated candidate pairs; each keeps the best block score seen.
  std::vector<CandidatePair> pairs;

  /// Diagnostics.
  size_t num_mfis_mined = 0;
  size_t num_blocks_considered = 0;
  size_t num_records_covered = 0;
};

/// Runs the (simplified) MFIBlocks algorithm of the paper (Algorithm 1):
/// iteratively mines maximal frequent itemsets over still-uncovered
/// records with decreasing minsup, turns their supports into blocks,
/// filters by size (<= minsup * ng), scores, enforces the
/// sparse-neighborhood condition via a derived minimum score threshold,
/// and emits candidate pairs. `pool` parallelizes block scoring when
/// non-null (stands in for the paper's Spark stage).
MfiBlocksResult RunMfiBlocks(const data::EncodedDataset& encoded,
                             const MfiBlocksConfig& config,
                             util::ThreadPool* pool = nullptr);

}  // namespace yver::blocking

#endif  // YVER_BLOCKING_MFI_BLOCKS_H_
