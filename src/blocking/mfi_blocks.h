#ifndef YVER_BLOCKING_MFI_BLOCKS_H_
#define YVER_BLOCKING_MFI_BLOCKS_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "blocking/item_similarity.h"
#include "data/item_dictionary.h"
#include "util/thread_pool.h"

namespace yver::blocking {

/// Which block-score function MFIBlocks uses.
enum class BlockScoreKind : uint8_t {
  kClusterJaccard = 0,  // set-monotone score of the MFIBlocks paper
  kExpertSim,           // Eq. 1-based soft similarity (ExpertSim condition)
};

/// Which itemset family supplies the blocking keys. The paper's MFIBlocks
/// uses maximal frequent itemsets; closed itemsets are the lossless
/// alternative (every distinct support set gets a key) at a steep mining
/// cost — the A6 ablation quantifies the trade.
enum class ItemsetKind : uint8_t { kMaximal = 0, kClosed };

/// Configuration of Algorithm 1.
struct MfiBlocksConfig {
  /// Starting (maximal) minsup; iterations run MaxMinSup, ..., 2.
  uint32_t max_minsup = 5;

  /// Neighborhood-growth parameter (the paper's NG / p). Caps block sizes
  /// at minsup * ng and caps per-record neighborhoods (sparse
  /// neighborhood).
  double ng = 3.0;

  /// Block score function.
  BlockScoreKind score_kind = BlockScoreKind::kClusterJaccard;

  /// Blocking-key itemset family (maximal, per the paper, by default).
  ItemsetKind itemset_kind = ItemsetKind::kMaximal;

  /// Expert attribute weighting for the score (Expert Weighting
  /// condition); uniform when false.
  bool expert_weighting = false;

  /// Fraction of most frequent distinct items pruned before mining
  /// (paper §6.3 prunes 0.03% = 0.0003).
  double prune_frequent_fraction = 0.0;

  /// Safety cap on MFIs mined per iteration (0 = unlimited).
  size_t max_mfis_per_iteration = 0;
};

/// Wall-clock breakdown of one RunMfiBlocks call, summed across minsup
/// iterations. Surfaced through core::StageTimings so `resolve --profile`
/// can show where the blocking stage spends its time.
struct BlockingTimings {
  /// FP-Growth itemset mining (MineMaximalItemsets / MineClosedItemsets).
  double mine_seconds = 0.0;
  /// Support recomputation via the inverted index + block build/dedup.
  double support_seconds = 0.0;
  /// Block scoring (ClusterJaccard / ExpertSim).
  double score_seconds = 0.0;
  /// Sparse-neighborhood minTh derivation + block filtering.
  double threshold_seconds = 0.0;
  /// Candidate-pair emission + coverage bookkeeping.
  double emit_seconds = 0.0;

  double TotalSeconds() const {
    return mine_seconds + support_seconds + score_seconds +
           threshold_seconds + emit_seconds;
  }
};

/// Outcome of a full MFIBlocks run.
struct MfiBlocksResult {
  /// All blocks that survived filtering, across iterations.
  std::vector<Block> blocks;

  /// Deduplicated candidate pairs; each keeps the best block score seen.
  std::vector<CandidatePair> pairs;

  /// Diagnostics.
  size_t num_mfis_mined = 0;
  size_t num_blocks_considered = 0;
  size_t num_records_covered = 0;

  /// Per-substage wall time of this run.
  BlockingTimings timings;
};

/// Runs the (simplified) MFIBlocks algorithm of the paper (Algorithm 1):
/// iteratively mines maximal frequent itemsets over still-uncovered
/// records with decreasing minsup, turns their supports into blocks,
/// filters by size (<= NgCap(ng, minsup)), scores, enforces the
/// sparse-neighborhood condition via a derived minimum score threshold,
/// and emits candidate pairs.
///
/// `pool` parallelizes the whole stage (it stands in for the paper's
/// Spark cluster): MFI mining runs per conditional-tree rank, support
/// recomputation and block scoring run per block, and candidate-pair
/// emission builds per-chunk local pair maps that are merged in chunk
/// order. Per-minsup iterations stay serial, as Algorithm 1's coverage
/// loop requires. Determinism contract: the returned MfiBlocksResult is
/// byte-identical for every pool size including nullptr — every parallel
/// substage writes into index-addressed slots or merges in a
/// scheduling-invariant order (tests/determinism_test.cc enforces this).
MfiBlocksResult RunMfiBlocks(const data::EncodedDataset& encoded,
                             const MfiBlocksConfig& config,
                             util::ThreadPool* pool = nullptr);

}  // namespace yver::blocking

#endif  // YVER_BLOCKING_MFI_BLOCKS_H_
