#include "blocking/neighborhood.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace yver::blocking {

size_t NgCap(double ng, uint32_t minsup) {
  YVER_CHECK(ng > 0.0);
  return std::max<size_t>(
      2, static_cast<size_t>(std::ceil(ng * static_cast<double>(minsup))));
}

double ComputeMinThreshold(const std::vector<Block>& blocks,
                           size_t num_records, double ng, uint32_t minsup) {
  size_t cap = NgCap(ng, minsup);
  // Per-record list of block indices.
  std::vector<std::vector<uint32_t>> record_blocks(num_records);
  for (uint32_t b = 0; b < blocks.size(); ++b) {
    for (data::RecordIdx r : blocks[b].records) {
      YVER_CHECK(r < num_records);
      record_blocks[r].push_back(b);
    }
  }
  double min_th = 0.0;
  std::unordered_set<data::RecordIdx> neighbors;
  for (size_t r = 0; r < num_records; ++r) {
    auto& bs = record_blocks[r];
    if (bs.size() <= 1) continue;
    // Score descending, ties broken by ascending block index: equal-score
    // blocks must be visited in a specified order or the derived min_th
    // would hinge on std::sort's unspecified equal-element placement.
    std::sort(bs.begin(), bs.end(), [&blocks](uint32_t a, uint32_t b) {
      if (blocks[a].score != blocks[b].score) {
        return blocks[a].score > blocks[b].score;
      }
      return a < b;
    });
    neighbors.clear();
    for (uint32_t bi : bs) {
      size_t added = 0;
      for (data::RecordIdx other : blocks[bi].records) {
        if (other == r) continue;
        if (!neighbors.count(other)) ++added;
      }
      if (neighbors.size() + added > cap) {
        // This block (and all lower-scoring ones for r) must go.
        min_th = std::max(min_th, blocks[bi].score);
        break;
      }
      for (data::RecordIdx other : blocks[bi].records) {
        if (other != r) neighbors.insert(other);
      }
    }
  }
  return min_th;
}

std::vector<size_t> NeighborhoodSizes(const std::vector<Block>& blocks,
                                      size_t num_records, double threshold) {
  std::vector<std::unordered_set<data::RecordIdx>> neighbor_sets(num_records);
  for (const Block& block : blocks) {
    if (block.score <= threshold) continue;
    for (data::RecordIdx r : block.records) {
      for (data::RecordIdx other : block.records) {
        if (other != r) neighbor_sets[r].insert(other);
      }
    }
  }
  std::vector<size_t> sizes(num_records);
  for (size_t r = 0; r < num_records; ++r) sizes[r] = neighbor_sets[r].size();
  return sizes;
}

}  // namespace yver::blocking
