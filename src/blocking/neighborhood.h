#ifndef YVER_BLOCKING_NEIGHBORHOOD_H_
#define YVER_BLOCKING_NEIGHBORHOOD_H_

#include <cstddef>
#include <vector>

#include "blocking/block.h"

namespace yver::blocking {

/// The NG cap shared by the MFIBlocks block-size filter and the
/// sparse-neighborhood condition: ceil(ng * minsup) per the paper, clamped
/// to >= 2 because a block needs at least two records to emit a pair.
/// Both call sites MUST use this helper — they once drifted apart
/// (truncation in the size filter vs ceil in the neighborhood cap), so for
/// fractional ng * minsup a block could pass one cap and fail the other.
size_t NgCap(double ng, uint32_t minsup);

/// Sparse-neighborhood (SN) enforcement — Algorithm 1 lines 9-14.
///
/// The NG (neighborhood growth) parameter caps how many candidate
/// neighbors a single record may accumulate across the (possibly
/// overlapping) blocks of one iteration: a record's neighborhood may not
/// exceed ceil(NG * minsup). ComputeMinThreshold scans each record's
/// blocks in descending score order and, where the accumulated distinct
/// neighbor count would exceed the cap, raises the global minTh to the
/// score of the offending block so that the subsequent filter
/// (score > minTh) restores sparsity.
///
/// Returns the minimal threshold; blocks with score <= threshold violate
/// the SN condition for at least one record.
double ComputeMinThreshold(const std::vector<Block>& blocks,
                           size_t num_records, double ng, uint32_t minsup);

/// Neighborhood size helper: number of distinct records co-blocked with
/// each record across `blocks` (only counting blocks with score >
/// threshold). Exposed for tests and diagnostics.
std::vector<size_t> NeighborhoodSizes(const std::vector<Block>& blocks,
                                      size_t num_records, double threshold);

}  // namespace yver::blocking

#endif  // YVER_BLOCKING_NEIGHBORHOOD_H_
