#include "core/config.h"

namespace yver::core {

PipelineConfig RecommendedConfig() {
  PipelineConfig config;
  config.blocking.max_minsup = 5;
  config.blocking.ng = 3.5;
  config.blocking.expert_weighting = true;
  config.blocking.score_kind = blocking::BlockScoreKind::kClusterJaccard;
  config.discard_same_source = true;
  config.use_classifier = true;
  return config;
}

}  // namespace yver::core
