#ifndef YVER_CORE_CONFIG_H_
#define YVER_CORE_CONFIG_H_

#include <cstddef>

#include "blocking/mfi_blocks.h"
#include "ml/adtree_trainer.h"

namespace yver::core {

/// Full configuration of the uncertain ER pipeline — the experimental
/// conditions of §6.5 map onto these fields:
///   Expert Weighting -> blocking.expert_weighting
///   ExpertSim        -> blocking.score_kind = kExpertSim
///   SameSrc          -> discard_same_source
///   Cls              -> use_classifier
struct PipelineConfig {
  blocking::MfiBlocksConfig blocking;

  /// Discard candidate pairs emanating from the same source ("it is deemed
  /// unlikely that the same person would appear twice in the same source").
  bool discard_same_source = false;

  /// Filter/score candidates with a trained ADTree; when false the ranked
  /// resolution carries block scores only.
  bool use_classifier = true;

  ml::AdTreeTrainerOptions trainer;

  /// Worker threads for the whole resolve pipeline — block scoring,
  /// feature extraction, instance building, and ADTree scoring all share
  /// one pool. 0 resolves via util::ResolveNumThreads (one worker per
  /// hardware thread). Results are identical for every value; see the
  /// determinism contract on UncertainErPipeline::Run.
  size_t num_threads = 0;
};

/// Returns the configuration the paper converged on for the Italian set:
/// MaxMinSup = 5, NG = 3.5, expert weighting on, monotone ClusterJaccard
/// score, SameSrc + Cls filters (§6.5).
PipelineConfig RecommendedConfig();

}  // namespace yver::core

#endif  // YVER_CORE_CONFIG_H_
