#include "core/entity_clusters.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace yver::core {

namespace {

// Simple union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

EntityClusters::EntityClusters(const RankedResolution& resolution,
                               size_t num_records, double certainty)
    : EntityClusters(resolution.matches(), num_records, certainty) {}

EntityClusters::EntityClusters(const std::vector<RankedMatch>& sorted_matches,
                               size_t num_records, double certainty)
    : cluster_of_(num_records, 0) {
  UnionFind uf(num_records);
  for (const auto& m : sorted_matches) {
    if (m.confidence <= certainty) break;  // sorted descending
    YVER_CHECK(m.pair.a < num_records && m.pair.b < num_records);
    uf.Union(m.pair.a, m.pair.b);
  }
  std::vector<long> root_to_cluster(num_records, -1);
  for (size_t r = 0; r < num_records; ++r) {
    size_t root = uf.Find(r);
    if (root_to_cluster[root] < 0) {
      root_to_cluster[root] = static_cast<long>(clusters_.size());
      clusters_.emplace_back();
    }
    size_t c = static_cast<size_t>(root_to_cluster[root]);
    clusters_[c].push_back(static_cast<data::RecordIdx>(r));
  }
  std::sort(clusters_.begin(), clusters_.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (data::RecordIdx r : clusters_[c]) cluster_of_[r] = c;
  }
}

size_t EntityClusters::NumNonSingleton() const {
  size_t n = 0;
  for (const auto& c : clusters_) {
    if (c.size() >= 2) ++n;
  }
  return n;
}

}  // namespace yver::core
