#ifndef YVER_CORE_ENTITY_CLUSTERS_H_
#define YVER_CORE_ENTITY_CLUSTERS_H_

#include <vector>

#include "core/ranked_resolution.h"
#include "data/dataset.h"

namespace yver::core {

/// Query-time entity formation: connected components of the match graph
/// restricted to matches above a certainty threshold. Lower thresholds
/// merge more aggressively — moving the granularity dial from strict
/// person identity toward nuclear-family / community grouping (§4.1's
/// multiple levels of granularity).
class EntityClusters {
 public:
  /// Builds clusters over `num_records` records from the matches of
  /// `resolution` with confidence > certainty. Singleton clusters are
  /// included.
  EntityClusters(const RankedResolution& resolution, size_t num_records,
                 double certainty);

  /// Same, but directly from a confidence-descending match list (the
  /// RankedResolution ordering contract) — used by serve::ResolutionIndex
  /// to slice entity clusters at a threshold without rebuilding a
  /// RankedResolution.
  EntityClusters(const std::vector<RankedMatch>& sorted_matches,
                 size_t num_records, double certainty);

  /// Record clusters (each sorted ascending), largest first.
  const std::vector<std::vector<data::RecordIdx>>& clusters() const {
    return clusters_;
  }

  /// Cluster index containing a record.
  size_t ClusterOf(data::RecordIdx r) const { return cluster_of_[r]; }

  /// Records in the same cluster as r (including r).
  const std::vector<data::RecordIdx>& Members(data::RecordIdx r) const {
    return clusters_[cluster_of_[r]];
  }

  /// Number of clusters (including singletons).
  size_t size() const { return clusters_.size(); }

  /// Number of clusters with at least two records.
  size_t NumNonSingleton() const;

 private:
  std::vector<std::vector<data::RecordIdx>> clusters_;
  std::vector<size_t> cluster_of_;
};

}  // namespace yver::core

#endif  // YVER_CORE_ENTITY_CLUSTERS_H_
