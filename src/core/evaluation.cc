#include "core/evaluation.h"

#include <unordered_map>

namespace yver::core {

double PairQuality::Precision() const {
  size_t denom = true_pos + false_pos;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_pos) / static_cast<double>(denom);
}

double PairQuality::Recall() const {
  if (gold_pairs == 0) return 0.0;
  return static_cast<double>(true_pos) / static_cast<double>(gold_pairs);
}

double PairQuality::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

PairQuality EvaluatePairs(const data::Dataset& dataset,
                          const std::vector<data::RecordPair>& pairs) {
  PairQuality q;
  q.gold_pairs = dataset.NumGoldPairs();
  for (const auto& p : pairs) {
    if (dataset.IsGoldMatch(p.a, p.b)) {
      ++q.true_pos;
    } else {
      ++q.false_pos;
    }
  }
  return q;
}

PairQuality EvaluatePairs(const data::Dataset& dataset,
                          const std::vector<blocking::CandidatePair>& pairs) {
  std::vector<data::RecordPair> raw;
  raw.reserve(pairs.size());
  for (const auto& p : pairs) raw.push_back(p.pair);
  return EvaluatePairs(dataset, raw);
}

PairQuality EvaluateMatches(const data::Dataset& dataset,
                            const std::vector<RankedMatch>& matches) {
  std::vector<data::RecordPair> raw;
  raw.reserve(matches.size());
  for (const auto& m : matches) raw.push_back(m.pair);
  return EvaluatePairs(dataset, raw);
}

PairQuality EvaluateFamilyPairs(const data::Dataset& dataset,
                                const std::vector<data::RecordPair>& pairs) {
  PairQuality q;
  // Gold family pairs: records sharing a known family id.
  std::unordered_map<int64_t, size_t> family_sizes;
  for (const auto& r : dataset.records()) {
    if (r.family_id != data::kUnknownEntity) ++family_sizes[r.family_id];
  }
  for (const auto& [fid, n] : family_sizes) q.gold_pairs += n * (n - 1) / 2;
  for (const auto& p : pairs) {
    if (dataset.IsGoldFamilyMatch(p.a, p.b)) {
      ++q.true_pos;
    } else {
      ++q.false_pos;
    }
  }
  return q;
}

double ReductionRatio(size_t num_records, size_t num_candidate_pairs) {
  if (num_records < 2) return 0.0;
  double exhaustive = 0.5 * static_cast<double>(num_records) *
                      static_cast<double>(num_records - 1);
  double ratio = 1.0 - static_cast<double>(num_candidate_pairs) / exhaustive;
  return ratio < 0.0 ? 0.0 : ratio;
}

}  // namespace yver::core
