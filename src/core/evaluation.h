#ifndef YVER_CORE_EVALUATION_H_
#define YVER_CORE_EVALUATION_H_

#include <vector>

#include "blocking/block.h"
#include "core/ranked_resolution.h"
#include "data/dataset.h"

namespace yver::core {

/// Pair-level quality against the ground truth.
struct PairQuality {
  size_t true_pos = 0;
  size_t false_pos = 0;
  size_t gold_pairs = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Evaluates a set of candidate pairs against the dataset's gold matches.
PairQuality EvaluatePairs(const data::Dataset& dataset,
                          const std::vector<data::RecordPair>& pairs);

/// Convenience overloads.
PairQuality EvaluatePairs(const data::Dataset& dataset,
                          const std::vector<blocking::CandidatePair>& pairs);
PairQuality EvaluateMatches(const data::Dataset& dataset,
                            const std::vector<RankedMatch>& matches);

/// Family-level variant: a pair counts as correct when the two records
/// belong to the same latent family (the coarser granularity of §4.1).
PairQuality EvaluateFamilyPairs(const data::Dataset& dataset,
                                const std::vector<data::RecordPair>& pairs);

/// Reduction Ratio (Christen's survey): the share of the exhaustive
/// n(n-1)/2 comparison space a blocking method avoids — the paper's "87-
/// 97%" framing of what blocking buys. 0 when nothing is saved, ~1 when
/// almost all comparisons are avoided.
double ReductionRatio(size_t num_records, size_t num_candidate_pairs);

}  // namespace yver::core

#endif  // YVER_CORE_EVALUATION_H_
