#include "core/family_resolution.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_map>

#include "core/narrative.h"
#include "text/jaro_winkler.h"
#include "util/string_util.h"

namespace yver::core {

namespace {

using data::AttributeId;

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// Consolidated relationship view of one person-level cluster.
struct ClusterProfile {
  std::string first;
  std::string last;
  std::string father;
  std::string mother;
  std::string spouse;
  std::set<std::string> cities;
};

ClusterProfile ProfileOf(const data::Dataset& dataset,
                         const std::vector<data::RecordIdx>& cluster) {
  EntityProfile ep = BuildProfile(dataset, cluster);
  ClusterProfile p;
  p.first = util::ToLower(ep.Consensus(AttributeId::kFirstName));
  p.last = util::ToLower(ep.Consensus(AttributeId::kLastName));
  p.father = util::ToLower(ep.Consensus(AttributeId::kFathersName));
  p.mother = util::ToLower(ep.Consensus(AttributeId::kMothersName));
  p.spouse = util::ToLower(ep.Consensus(AttributeId::kSpouseName));
  for (AttributeId attr :
       {AttributeId::kPermCity, AttributeId::kBirthCity,
        AttributeId::kWarCity}) {
    std::string v = util::ToLower(ep.Consensus(attr));
    if (!v.empty()) p.cities.insert(std::move(v));
  }
  return p;
}

bool SameName(const std::string& a, const std::string& b,
              double threshold) {
  if (a.empty() || b.empty()) return false;
  return text::JaroWinklerSimilarity(a, b) >= threshold;
}

bool SharePlace(const ClusterProfile& a, const ClusterProfile& b) {
  for (const auto& city : a.cities) {
    if (b.cities.count(city)) return true;
  }
  return false;
}

bool FamilyEvidence(const ClusterProfile& a, const ClusterProfile& b,
                    const FamilyResolutionOptions& options) {
  if (!SameName(a.last, b.last, options.name_threshold)) return false;
  bool place_ok = !options.require_shared_place || SharePlace(a, b);
  // Sibling rule.
  if (place_ok && SameName(a.father, b.father, options.name_threshold) &&
      SameName(a.mother, b.mother, options.name_threshold)) {
    return true;
  }
  // Spouse rule (cross-referenced spouse names).
  if (SameName(a.spouse, b.first, options.name_threshold) &&
      SameName(b.spouse, a.first, options.name_threshold)) {
    return true;
  }
  // Parent rule: a is b's father or mother (or vice versa).
  if (place_ok && (SameName(a.first, b.father, options.name_threshold) ||
                   SameName(a.first, b.mother, options.name_threshold) ||
                   SameName(b.first, a.father, options.name_threshold) ||
                   SameName(b.first, a.mother, options.name_threshold))) {
    return true;
  }
  return false;
}

}  // namespace

std::vector<FamilyCluster> ResolveFamilies(
    const data::Dataset& dataset, const EntityClusters& person_clusters,
    const FamilyResolutionOptions& options) {
  const auto& clusters = person_clusters.clusters();
  std::vector<ClusterProfile> profiles;
  profiles.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    profiles.push_back(ProfileOf(dataset, cluster));
  }
  // Candidate generation: bucket clusters by last name (skeletonized via
  // lowercase exact key; the JW check refines within buckets).
  std::unordered_map<std::string, std::vector<size_t>> by_last;
  for (size_t c = 0; c < clusters.size(); ++c) {
    if (!profiles[c].last.empty()) {
      by_last[profiles[c].last].push_back(c);
    }
  }
  UnionFind uf(clusters.size());
  for (const auto& [last, members] : by_last) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (FamilyEvidence(profiles[members[i]], profiles[members[j]],
                           options)) {
          uf.Union(members[i], members[j]);
        }
      }
    }
  }
  std::unordered_map<size_t, FamilyCluster> families;
  for (size_t c = 0; c < clusters.size(); ++c) {
    FamilyCluster& fc = families[uf.Find(c)];
    fc.person_clusters.push_back(c);
    fc.records.insert(fc.records.end(), clusters[c].begin(),
                      clusters[c].end());
  }
  std::vector<FamilyCluster> out;
  out.reserve(families.size());
  for (auto& [root, fc] : families) {
    std::sort(fc.records.begin(), fc.records.end());
    out.push_back(std::move(fc));
  }
  std::sort(out.begin(), out.end(),
            [](const FamilyCluster& a, const FamilyCluster& b) {
              if (a.records.size() != b.records.size()) {
                return a.records.size() > b.records.size();
              }
              return a.records < b.records;
            });
  return out;
}

PairQuality EvaluateFamilyClusters(
    const data::Dataset& dataset,
    const std::vector<FamilyCluster>& clusters) {
  std::vector<data::RecordPair> pairs;
  for (const auto& fc : clusters) {
    for (size_t i = 0; i < fc.records.size(); ++i) {
      for (size_t j = i + 1; j < fc.records.size(); ++j) {
        pairs.emplace_back(fc.records[i], fc.records[j]);
      }
    }
  }
  return EvaluateFamilyPairs(dataset, pairs);
}

}  // namespace yver::core
