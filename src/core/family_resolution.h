#ifndef YVER_CORE_FAMILY_RESOLUTION_H_
#define YVER_CORE_FAMILY_RESOLUTION_H_

#include <string>
#include <vector>

#include "core/entity_clusters.h"
#include "core/evaluation.h"
#include "data/dataset.h"

namespace yver::core {

/// Family-level entity resolution — the paper's §7 open question ("Can we
/// effectively perform entity resolution on different levels of
/// resolution, e.g., families in this dataset?") made concrete: the
/// inter-record relationship attributes (father, mother, spouse) are
/// exploited as edges, not just as similarity features.
///
/// Person-level clusters are merged into nuclear-family clusters when
/// their consolidated profiles exhibit relationship evidence:
///   * sibling rule   — same last name and same father & mother first
///     names, sharing a place;
///   * spouse rule    — cross-referenced spouse names (A's spouse is B's
///     first name and vice versa) under one last name;
///   * parent rule    — A's first name is B's father (or mother) name,
///     same last name, sharing a place.
struct FamilyCluster {
  /// Indices into the person-level clustering.
  std::vector<size_t> person_clusters;
  /// All member records, sorted.
  std::vector<data::RecordIdx> records;
};

struct FamilyResolutionOptions {
  /// Minimum Jaro-Winkler similarity for two names to count as "the same"
  /// in a relationship rule.
  double name_threshold = 0.92;
  /// Require a shared city between clusters for sibling/parent evidence.
  bool require_shared_place = true;
};

/// Merges person-level clusters into family clusters.
std::vector<FamilyCluster> ResolveFamilies(
    const data::Dataset& dataset, const EntityClusters& person_clusters,
    const FamilyResolutionOptions& options);
inline std::vector<FamilyCluster> ResolveFamilies(
    const data::Dataset& dataset, const EntityClusters& person_clusters) {
  return ResolveFamilies(dataset, person_clusters,
                         FamilyResolutionOptions());
}

/// Family-level pair quality of a family clustering: every record pair
/// co-clustered counts, judged against latent family ids.
PairQuality EvaluateFamilyClusters(
    const data::Dataset& dataset,
    const std::vector<FamilyCluster>& clusters);

}  // namespace yver::core

#endif  // YVER_CORE_FAMILY_RESOLUTION_H_
