#include "core/gold_standard.h"

#include "util/check.h"

namespace yver::core {

bool TaggedStandard::IsPositive(const data::RecordPair& pair) const {
  auto it = tags.find(pair);
  return it != tags.end() && (it->second == ml::ExpertTag::kYes ||
                              it->second == ml::ExpertTag::kProbablyYes);
}

std::optional<ml::ExpertTag> TaggedStandard::TagOf(
    const data::RecordPair& pair) const {
  auto it = tags.find(pair);
  if (it == tags.end()) return std::nullopt;
  return it->second;
}

TaggedStandard BuildTaggedStandard(
    UncertainErPipeline& pipeline,
    const std::vector<blocking::MfiBlocksConfig>& configs,
    const PairTagger& tagger) {
  YVER_CHECK(!configs.empty());
  YVER_CHECK(tagger != nullptr);
  TaggedStandard standard;
  for (const auto& config : configs) {
    blocking::MfiBlocksResult result = pipeline.RunBlocking(config);
    for (const auto& cp : result.pairs) {
      auto [it, inserted] = standard.tags.try_emplace(cp.pair);
      if (!inserted) continue;
      it->second = tagger(cp.pair.a, cp.pair.b);
      if (it->second == ml::ExpertTag::kYes ||
          it->second == ml::ExpertTag::kProbablyYes) {
        ++standard.num_positive;
      }
    }
  }
  return standard;
}

PairQuality EvaluateAgainstStandard(
    const TaggedStandard& standard,
    const std::vector<data::RecordPair>& pairs) {
  PairQuality q;
  q.gold_pairs = standard.num_positive;
  for (const auto& p : pairs) {
    if (standard.IsPositive(p)) {
      ++q.true_pos;
    } else {
      ++q.false_pos;
    }
  }
  return q;
}

PairQuality EvaluateAgainstStandard(
    const TaggedStandard& standard,
    const std::vector<blocking::CandidatePair>& pairs) {
  std::vector<data::RecordPair> raw;
  raw.reserve(pairs.size());
  for (const auto& cp : pairs) raw.push_back(cp.pair);
  return EvaluateAgainstStandard(standard, raw);
}

PairQuality EvaluateAgainstStandard(const TaggedStandard& standard,
                                    const std::vector<RankedMatch>& matches) {
  std::vector<data::RecordPair> raw;
  raw.reserve(matches.size());
  for (const auto& m : matches) raw.push_back(m.pair);
  return EvaluateAgainstStandard(standard, raw);
}

}  // namespace yver::core
