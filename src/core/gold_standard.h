#ifndef YVER_CORE_GOLD_STANDARD_H_
#define YVER_CORE_GOLD_STANDARD_H_

#include <unordered_map>
#include <vector>

#include "blocking/mfi_blocks.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "ml/instances.h"

namespace yver::core {

/// The expert-tagged pair standard of §5.1: "To obtain expert tags,
/// MFIBlocks was run several times and with several configurations on the
/// Italy set. The candidate pairs from this process were bundled into a
/// tagging application" — i.e. the reference set is the union of candidate
/// pairs over several blocking configurations, each pair tagged by the
/// experts. Quality numbers (Figs. 15/16, Tables 9/10) are measured
/// against this standard; pairs no configuration ever produced remain
/// untagged, which the paper concedes as possible false negatives.
struct TaggedStandard {
  std::unordered_map<data::RecordPair, ml::ExpertTag, data::RecordPairHash>
      tags;
  /// Number of pairs tagged Yes or Probably Yes.
  size_t num_positive = 0;

  /// True when the pair is tagged Yes or Probably Yes.
  bool IsPositive(const data::RecordPair& pair) const;

  /// The tag of a pair, if it was ever produced and tagged.
  std::optional<ml::ExpertTag> TagOf(const data::RecordPair& pair) const;
};

/// Builds the tagged standard by unioning MFIBlocks candidates over the
/// provided configurations and tagging each pair once. Matches the
/// paper's data-preparation process with the tag oracle standing in for
/// the Yad Vashem archival experts.
TaggedStandard BuildTaggedStandard(
    UncertainErPipeline& pipeline,
    const std::vector<blocking::MfiBlocksConfig>& configs,
    const PairTagger& tagger);

/// Precision/recall of a pair set against the standard: TP = pairs tagged
/// positive; untagged or negatively tagged pairs count as false positives;
/// recall denominator = standard.num_positive.
PairQuality EvaluateAgainstStandard(const TaggedStandard& standard,
                                    const std::vector<data::RecordPair>& pairs);
PairQuality EvaluateAgainstStandard(
    const TaggedStandard& standard,
    const std::vector<blocking::CandidatePair>& pairs);
PairQuality EvaluateAgainstStandard(const TaggedStandard& standard,
                                    const std::vector<RankedMatch>& matches);

}  // namespace yver::core

#endif  // YVER_CORE_GOLD_STANDARD_H_
