#include "core/incremental.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace yver::core {

IncrementalResolver::IncrementalResolver(
    const data::Dataset& initial, const RankedResolution& initial_resolution,
    ml::AdTree model, data::GeoResolver geo_resolver, const Options& options)
    : options_(options),
      model_(std::move(model)),
      geo_resolver_(std::move(geo_resolver)),
      dataset_(initial) {
  encoded_ = data::EncodeDataset(dataset_, geo_resolver_);
  encoded_.dataset = &dataset_;
  extractor_ = std::make_unique<features::FeatureExtractor>(encoded_);
  postings_.resize(encoded_.dictionary.size());
  for (size_t r = 0; r < encoded_.bags.size(); ++r) {
    for (data::ItemId item : encoded_.bags[r]) {
      postings_[item].push_back(static_cast<data::RecordIdx>(r));
    }
  }
  matches_ = initial_resolution.matches();
}

data::RecordIdx IncrementalResolver::AddRecord(data::Record record) {
  last_matches_.clear();
  data::RecordIdx idx = dataset_.Add(std::move(record));
  const data::Record& r = dataset_[idx];

  // Encode the new record's item bag.
  data::ItemBag bag;
  bag.reserve(r.NumValues());
  for (const auto& entry : r.entries()) {
    data::ItemId item = encoded_.dictionary.Intern(entry.attr, entry.value);
    bag.push_back(item);
    if (geo_resolver_ &&
        data::AttributeClass(entry.attr) == data::ValueClass::kGeo &&
        !encoded_.dictionary.geo(item).has_value()) {
      if (auto point = geo_resolver_(entry.attr, entry.value)) {
        encoded_.dictionary.SetGeo(item, *point);
      }
    }
  }
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  for (data::ItemId item : bag) encoded_.dictionary.IncrementFrequency(item);

  // Candidate generation: existing records sharing enough items.
  if (postings_.size() < encoded_.dictionary.size()) {
    postings_.resize(encoded_.dictionary.size());
  }
  std::unordered_map<data::RecordIdx, size_t> shared_counts;
  for (data::ItemId item : bag) {
    for (data::RecordIdx other : postings_[item]) {
      ++shared_counts[other];
    }
  }
  std::vector<std::pair<size_t, data::RecordIdx>> candidates;
  for (const auto& [other, count] : shared_counts) {
    if (count >= options_.min_shared_items) {
      candidates.emplace_back(count, other);
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());
  if (candidates.size() > options_.max_candidates) {
    candidates.resize(options_.max_candidates);
  }

  // Index the new record (after candidate generation: no self-pairs).
  encoded_.bags.push_back(bag);
  for (data::ItemId item : bag) postings_[item].push_back(idx);

  // The extractor's comparison corpus was encoded at construction; give it
  // the new record's columns before any pair involving `idx` is extracted.
  extractor_->SyncAppendedRecords();

  // Score candidates with the deployed model. With no model deployed
  // (serving without a trained ADTree), fall back to the blocking
  // evidence alone: the shared-item fraction is in (0, 1] for every
  // candidate, deterministic, and keeps the ingest path usable instead
  // of aborting inside AdTree::Score.
  for (const auto& [count, other] : candidates) {
    double block_score = bag.empty() ? 0.0
                                     : static_cast<double>(count) /
                                           static_cast<double>(bag.size());
    double score;
    if (model_.empty()) {
      score = block_score;
    } else {
      features::FeatureVector fv = extractor_->Extract(other, idx);
      score = model_.Score(fv);
    }
    if (score <= 0.0) continue;
    RankedMatch match;
    match.pair = data::RecordPair(other, idx);
    match.confidence = score;
    match.block_score = block_score;
    last_matches_.push_back(match);
    matches_.push_back(match);
  }
  std::sort(last_matches_.begin(), last_matches_.end(),
            [](const RankedMatch& a, const RankedMatch& b) {
              return a.confidence > b.confidence;
            });
  return idx;
}

RankedResolution IncrementalResolver::Resolution() const {
  return RankedResolution(matches_);
}

}  // namespace yver::core
