#ifndef YVER_CORE_INCREMENTAL_H_
#define YVER_CORE_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "data/item_dictionary.h"
#include "features/feature_extractor.h"
#include "ml/adtree.h"

namespace yver::core {

/// Incremental uncertain ER. The Names database never stops growing
/// (30,000 Pages of Testimony a year through the 1990s, §2); re-running
/// the full blocking pipeline per arriving report is wasteful. The
/// resolver keeps the item-level inverted index live: each new record's
/// items retrieve existing records sharing enough content, the trained
/// ADTree scores those candidate pairs, and positive-scoring matches
/// extend the ranked resolution immediately.
///
/// This trades MFIBlocks' sparse-neighborhood control for a simple
/// shared-item candidate rule — appropriate for the trickle of new
/// reports, with periodic full re-blocking as the batch path.
class IncrementalResolver {
 public:
  struct Options {
    /// Minimum items a candidate must share with the new record.
    size_t min_shared_items = 2;
    /// At most this many candidates (by shared-item count) are scored per
    /// new record.
    size_t max_candidates = 64;
  };

  /// Seeds the resolver with an existing corpus, its resolved matches and
  /// the deployed classifier. `geo_resolver` may be empty.
  IncrementalResolver(const data::Dataset& initial,
                      const RankedResolution& initial_resolution,
                      ml::AdTree model, data::GeoResolver geo_resolver,
                      const Options& options);
  IncrementalResolver(const data::Dataset& initial,
                      const RankedResolution& initial_resolution,
                      ml::AdTree model, data::GeoResolver geo_resolver = {})
      : IncrementalResolver(initial, initial_resolution, std::move(model),
                            std::move(geo_resolver), Options()) {}

  /// Ingests one report: indexes it and matches it against the corpus.
  /// Returns the record's index and appends any new matches.
  data::RecordIdx AddRecord(data::Record record);

  /// The matches discovered for the most recent AddRecord call.
  const std::vector<RankedMatch>& last_matches() const {
    return last_matches_;
  }

  /// Current corpus (initial + ingested records).
  const data::Dataset& dataset() const { return dataset_; }

  /// All matches (initial + incremental), as a ranked resolution.
  RankedResolution Resolution() const;

  size_t num_matches() const { return matches_.size(); }

 private:
  Options options_;
  ml::AdTree model_;
  data::GeoResolver geo_resolver_;
  data::Dataset dataset_;
  data::EncodedDataset encoded_;
  std::unique_ptr<features::FeatureExtractor> extractor_;
  // item -> records containing it (live postings).
  std::vector<std::vector<data::RecordIdx>> postings_;
  std::vector<RankedMatch> matches_;
  std::vector<RankedMatch> last_matches_;
};

}  // namespace yver::core

#endif  // YVER_CORE_INCREMENTAL_H_
