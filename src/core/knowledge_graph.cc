#include "core/knowledge_graph.h"

#include <map>

#include "text/jaro_winkler.h"
#include "util/string_util.h"

namespace yver::core {

namespace {
using data::AttributeId;

const char* NodeShape(KnowledgeGraph::NodeKind kind) {
  switch (kind) {
    case KnowledgeGraph::NodeKind::kPerson:
      return "box";
    case KnowledgeGraph::NodeKind::kPlace:
      return "ellipse";
    case KnowledgeGraph::NodeKind::kRelative:
      return "plaintext";
    case KnowledgeGraph::NodeKind::kReport:
      return "note";
  }
  return "ellipse";
}

std::string Escape(const std::string& s) {
  // Escape quotes only: labels intentionally carry DOT escape sequences
  // such as "\n" (see AddEntity), which must reach Graphviz unmangled.
  std::string out;
  for (char c : s) {
    if (c == '"') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

size_t KnowledgeGraph::InternNode(NodeKind kind, const std::string& label) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind && nodes_[i].label == label) return i;
  }
  nodes_.push_back(Node{kind, label});
  return nodes_.size() - 1;
}

void KnowledgeGraph::AddPlaceEdges(size_t person,
                                   const EntityProfile& profile,
                                   data::PlaceType type,
                                   const std::string& edge_label) {
  std::string city = profile.Consensus(
      data::PlaceAttribute(type, data::PlacePart::kCity));
  if (city.empty()) return;
  size_t place = InternNode(NodeKind::kPlace, city);
  edges_.push_back(Edge{person, place, edge_label});
}

size_t KnowledgeGraph::AddEntity(
    const data::Dataset& dataset,
    const std::vector<data::RecordIdx>& cluster) {
  EntityProfile profile = BuildProfile(dataset, cluster);
  std::string first = profile.Consensus(AttributeId::kFirstName);
  std::string last = profile.Consensus(AttributeId::kLastName);
  std::string label = first.empty() && last.empty()
                          ? "(unnamed)"
                          : first + (last.empty() ? "" : " " + last);
  std::string year = profile.Consensus(AttributeId::kBirthYear);
  if (!year.empty()) label += "\\nb. " + year;
  size_t person = InternNode(NodeKind::kPerson, label);

  AddPlaceEdges(person, profile, data::PlaceType::kBirth, "born in");
  AddPlaceEdges(person, profile, data::PlaceType::kPermanent, "resided in");
  AddPlaceEdges(person, profile, data::PlaceType::kWartime,
                "during the war in");
  AddPlaceEdges(person, profile, data::PlaceType::kDeath, "perished in");

  struct RelativeAttr {
    AttributeId attr;
    const char* role;
  };
  const RelativeAttr relatives[] = {
      {AttributeId::kFathersName, "father"},
      {AttributeId::kMothersName, "mother"},
      {AttributeId::kSpouseName, "spouse"},
  };
  for (const auto& rel : relatives) {
    std::string name = profile.Consensus(rel.attr);
    if (name.empty()) continue;
    size_t node = InternNode(NodeKind::kRelative, name);
    edges_.push_back(Edge{person, node, rel.role});
  }
  for (uint64_t book : profile.book_ids) {
    size_t report =
        InternNode(NodeKind::kReport, "BookID " + std::to_string(book));
    edges_.push_back(Edge{report, person, "reports"});
  }

  persons_.push_back(PersonInfo{person, util::ToLower(first),
                                util::ToLower(last),
                                util::ToLower(profile.Consensus(
                                    AttributeId::kSpouseName))});
  return person;
}

KnowledgeGraph KnowledgeGraph::FromClusters(const data::Dataset& dataset,
                                            const EntityClusters& clusters,
                                            size_t max_entities) {
  KnowledgeGraph graph;
  size_t added = 0;
  for (const auto& cluster : clusters.clusters()) {
    if (cluster.size() < 2) break;  // sorted largest-first
    graph.AddEntity(dataset, cluster);
    if (++added == max_entities) break;
  }
  return graph;
}

size_t KnowledgeGraph::LinkSpouses() {
  size_t added = 0;
  for (size_t i = 0; i < persons_.size(); ++i) {
    for (size_t j = i + 1; j < persons_.size(); ++j) {
      const auto& a = persons_[i];
      const auto& b = persons_[j];
      if (a.spouse.empty() || b.spouse.empty()) continue;
      if (a.last.empty() || a.last != b.last) continue;
      if (text::JaroWinklerSimilarity(a.spouse, b.first) >= 0.92 &&
          text::JaroWinklerSimilarity(b.spouse, a.first) >= 0.92) {
        edges_.push_back(Edge{a.node, b.node, "married to"});
        ++added;
      }
    }
  }
  return added;
}

std::string KnowledgeGraph::ToDot() const {
  std::string out = "digraph yver {\n  rankdir=LR;\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" +
           Escape(nodes_[i].label) + "\", shape=" +
           NodeShape(nodes_[i].kind) + "];\n";
  }
  for (const auto& e : edges_) {
    out += "  n" + std::to_string(e.from) + " -> n" +
           std::to_string(e.to) + " [label=\"" + Escape(e.label) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace yver::core
