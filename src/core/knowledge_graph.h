#ifndef YVER_CORE_KNOWLEDGE_GRAPH_H_
#define YVER_CORE_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/entity_clusters.h"
#include "core/narrative.h"
#include "data/dataset.h"

namespace yver::core {

/// The knowledge graph of the paper's Fig. 2: resolved person entities
/// connected to places (born in / resided in / wartime / perished in),
/// named relatives, and the reports supporting them. Rendered to
/// Graphviz DOT for inspection.
class KnowledgeGraph {
 public:
  enum class NodeKind : uint8_t { kPerson, kPlace, kRelative, kReport };

  struct Node {
    NodeKind kind;
    std::string label;
  };
  struct Edge {
    size_t from = 0;
    size_t to = 0;
    std::string label;
  };

  KnowledgeGraph() = default;

  /// Adds the subgraph of one resolved entity (profile + provenance).
  /// Returns the person node index. Place and relative nodes are shared
  /// across entities (same label = same node), which is what knits
  /// individual stories into a community graph.
  size_t AddEntity(const data::Dataset& dataset,
                   const std::vector<data::RecordIdx>& cluster);

  /// Builds a graph from the largest `max_entities` multi-record clusters.
  static KnowledgeGraph FromClusters(const data::Dataset& dataset,
                                     const EntityClusters& clusters,
                                     size_t max_entities);

  /// Links person entities whose profiles cross-reference as spouses
  /// (A's spouse name is B's first name and vice versa, same last name).
  /// Returns the number of added links.
  size_t LinkSpouses();

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Graphviz rendering ("dot -Tsvg graph.dot").
  std::string ToDot() const;

 private:
  size_t InternNode(NodeKind kind, const std::string& label);
  void AddPlaceEdges(size_t person, const EntityProfile& profile,
                     data::PlaceType type, const std::string& edge_label);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  // Person node -> consensus names used by LinkSpouses.
  struct PersonInfo {
    size_t node = 0;
    std::string first;
    std::string last;
    std::string spouse;
  };
  std::vector<PersonInfo> persons_;
};

}  // namespace yver::core

#endif  // YVER_CORE_KNOWLEDGE_GRAPH_H_
