#include "core/narrative.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace yver::core {

namespace {
using data::AttributeId;
}  // namespace

std::string EntityProfile::Consensus(AttributeId attr) const {
  auto it = values.find(attr);
  if (it == values.end() || it->second.empty()) return "";
  return it->second.front().value;
}

EntityProfile BuildProfile(const data::Dataset& dataset,
                           const std::vector<data::RecordIdx>& cluster) {
  EntityProfile profile;
  profile.records = cluster;
  std::set<uint32_t> sources;
  std::map<AttributeId, std::unordered_map<std::string, size_t>> tallies;
  for (data::RecordIdx r : cluster) {
    const data::Record& record = dataset[r];
    profile.book_ids.push_back(record.book_id);
    sources.insert(record.source_id);
    for (const auto& entry : record.entries()) {
      ++tallies[entry.attr][entry.value];
    }
  }
  profile.num_sources = sources.size();
  for (auto& [attr, tally] : tallies) {
    auto& out = profile.values[attr];
    for (auto& [value, count] : tally) {
      out.push_back(EntityProfile::ValueSupport{value, count});
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.value < b.value;
    });
  }
  return profile;
}

std::string RenderNarrative(const EntityProfile& profile) {
  std::string first = profile.Consensus(AttributeId::kFirstName);
  std::string last = profile.Consensus(AttributeId::kLastName);
  std::string father = profile.Consensus(AttributeId::kFathersName);
  std::string mother = profile.Consensus(AttributeId::kMothersName);
  std::string day = profile.Consensus(AttributeId::kBirthDay);
  std::string month = profile.Consensus(AttributeId::kBirthMonth);
  std::string year = profile.Consensus(AttributeId::kBirthYear);
  std::string birth_city = profile.Consensus(AttributeId::kBirthCity);
  std::string birth_country = profile.Consensus(AttributeId::kBirthCountry);
  std::string perm_city = profile.Consensus(AttributeId::kPermCity);
  std::string death_city = profile.Consensus(AttributeId::kDeathCity);

  std::string text;
  text += first.empty() ? "An unnamed person" : first;
  if (!last.empty()) text += " " + last;
  if (!father.empty() || !mother.empty()) {
    text += ", child of ";
    if (!father.empty()) text += father;
    if (!father.empty() && !mother.empty()) text += " and ";
    if (!mother.empty()) text += mother;
  }
  if (!year.empty()) {
    text += ", born ";
    if (!day.empty() && !month.empty()) {
      text += day + "/" + month + "/";
    }
    text += year;
    if (!birth_city.empty()) {
      text += " in " + birth_city;
      if (!birth_country.empty()) text += " (" + birth_country + ")";
    }
  } else if (!birth_city.empty()) {
    text += ", born in " + birth_city;
  }
  if (!perm_city.empty()) text += "; resided in " + perm_city;
  if (!death_city.empty()) text += "; perished in " + death_city;
  text += ". Based on " + std::to_string(profile.records.size()) +
          " report(s) from " + std::to_string(profile.num_sources) +
          " source(s).";
  return text;
}

}  // namespace yver::core
