#ifndef YVER_CORE_NARRATIVE_H_
#define YVER_CORE_NARRATIVE_H_

#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace yver::core {

/// A consolidated view of one resolved entity: every attribute value
/// reported about it, with provenance, merged across the cluster's
/// records. This is the knowledge-graph node of the paper's Fig. 2, the
/// stepping stone toward automatic narrative construction.
struct EntityProfile {
  std::vector<data::RecordIdx> records;
  std::vector<uint64_t> book_ids;
  size_t num_sources = 0;

  /// attribute -> distinct reported values with their report counts,
  /// most-supported first.
  struct ValueSupport {
    std::string value;
    size_t count = 0;
  };
  std::map<data::AttributeId, std::vector<ValueSupport>> values;

  /// The most-supported value of an attribute ("" when absent).
  std::string Consensus(data::AttributeId attr) const;
};

/// Merges a cluster of records into an entity profile.
EntityProfile BuildProfile(const data::Dataset& dataset,
                           const std::vector<data::RecordIdx>& cluster);

/// Renders a human-readable narrative paragraph for a profile, e.g.
///   "Guido Foa, son of Donato and Olga, born 18/11/1920 in Torino
///    (Italy); resided in Torino; perished in Auschwitz. Based on 3
///    reports from 3 sources."
std::string RenderNarrative(const EntityProfile& profile);

}  // namespace yver::core

#endif  // YVER_CORE_NARRATIVE_H_
