#include "core/pipeline.h"

#include <algorithm>
#include <memory>
#include <span>
#include <utility>

#include "util/check.h"
#include "util/timer.h"

namespace yver::core {

UncertainErPipeline::UncertainErPipeline(const data::Dataset& dataset,
                                         data::GeoResolver geo_resolver)
    : dataset_(&dataset) {
  util::Timer timer;
  encoded_ = data::EncodeDataset(dataset, geo_resolver);
  extractor_ = std::make_unique<features::FeatureExtractor>(encoded_);
  encode_seconds_ = timer.ElapsedSeconds();
}

blocking::MfiBlocksResult UncertainErPipeline::RunBlocking(
    const blocking::MfiBlocksConfig& config, size_t num_threads) {
  size_t n = util::ResolveNumThreads(num_threads);
  if (n <= 1) {
    return RunBlocking(config, static_cast<util::ThreadPool*>(nullptr));
  }
  util::ThreadPool pool(n);
  return RunBlocking(config, &pool);
}

blocking::MfiBlocksResult UncertainErPipeline::RunBlocking(
    const blocking::MfiBlocksConfig& config, util::ThreadPool* pool) {
  if (pool != nullptr && pool->num_threads() <= 1) pool = nullptr;
  return blocking::RunMfiBlocks(encoded_, config, pool);
}

std::vector<blocking::CandidatePair> UncertainErPipeline::DiscardSameSource(
    const std::vector<blocking::CandidatePair>& pairs) const {
  std::vector<blocking::CandidatePair> out;
  out.reserve(pairs.size());
  for (const auto& cp : pairs) {
    const data::Record& a = (*dataset_)[cp.pair.a];
    const data::Record& b = (*dataset_)[cp.pair.b];
    if (a.source_id == b.source_id) continue;
    out.push_back(cp);
  }
  return out;
}

namespace {

std::vector<data::RecordPair> PairsOf(
    const std::vector<blocking::CandidatePair>& candidates) {
  std::vector<data::RecordPair> pairs;
  pairs.reserve(candidates.size());
  for (const auto& cp : candidates) pairs.push_back(cp.pair);
  return pairs;
}

}  // namespace

std::vector<ml::Instance> UncertainErPipeline::MakeInstances(
    const std::vector<blocking::CandidatePair>& pairs,
    const PairTagger& tagger, util::ThreadPool* pool,
    StageTimings* timings) const {
  YVER_CHECK(tagger != nullptr);
  // Features first, chunk-parallel into index-addressed slots; then one
  // serial tagging pass in candidate order so a stateful tagger sees the
  // exact call sequence of the serial pipeline.
  util::Timer timer;
  std::vector<features::FeatureVector> features =
      extractor_->ExtractBatch(PairsOf(pairs), pool);
  if (timings != nullptr) timings->extract_seconds += timer.ElapsedSeconds();
  timer.Reset();
  std::vector<ml::Instance> instances;
  instances.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ml::Instance inst;
    inst.pair = pairs[i].pair;
    inst.features = std::move(features[i]);
    inst.tag = tagger(pairs[i].pair.a, pairs[i].pair.b);
    instances.push_back(std::move(inst));
  }
  if (timings != nullptr) timings->tag_seconds += timer.ElapsedSeconds();
  return instances;
}

PipelineResult UncertainErPipeline::Run(const PipelineConfig& config,
                                        const PairTagger& tagger) {
  size_t n = util::ResolveNumThreads(config.num_threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = nullptr;
  if (n > 1) {
    owned_pool = std::make_unique<util::ThreadPool>(n);
    pool = owned_pool.get();
  }

  PipelineResult result;
  result.timings.encode_seconds = encode_seconds_;
  util::Timer timer;
  result.blocking = RunBlocking(config.blocking, pool);
  result.candidates = config.discard_same_source
                          ? DiscardSameSource(result.blocking.pairs)
                          : result.blocking.pairs;
  result.timings.blocking_seconds = timer.ElapsedSeconds();
  result.timings.blocking_substages = result.blocking.timings;

  std::vector<RankedMatch> matches;
  if (config.use_classifier) {
    YVER_CHECK_MSG(tagger != nullptr,
                   "classifier requested but no tagger provided");
    result.training_instances = ml::ApplyMaybePolicy(
        MakeInstances(result.candidates, tagger, pool, &result.timings),
        ml::MaybePolicy::kOmit);
    // Training itself is a serial reduction over identically-ordered
    // instances, so the model is the same for every thread count.
    timer.Reset();
    result.model = ml::TrainAdTree(result.training_instances, config.trainer);
    result.timings.train_seconds = timer.ElapsedSeconds();
    // Re-extract and score the candidate set in parallel, then assemble
    // matches by a stable chunk-ordered reduction: fixed-size candidate
    // blocks are extracted and scored into index-addressed slots, and the
    // surviving matches are appended by one serial scan per block — so the
    // ranked list is byte-identical to the serial path (no score-order
    // races). The block size bounds the feature-matrix working set.
    constexpr size_t kScoreBlock = 1 << 16;
    std::vector<data::RecordPair> pairs = PairsOf(result.candidates);
    for (size_t begin = 0; begin < pairs.size(); begin += kScoreBlock) {
      size_t end = std::min(pairs.size(), begin + kScoreBlock);
      timer.Reset();
      std::vector<features::FeatureVector> features = extractor_->ExtractBatch(
          std::span<const data::RecordPair>(pairs).subspan(begin, end - begin),
          pool);
      result.timings.extract_seconds += timer.ElapsedSeconds();
      timer.Reset();
      std::vector<double> scores = result.model.ScoreBatch(features, pool);
      result.timings.score_seconds += timer.ElapsedSeconds();
      timer.Reset();
      for (size_t i = begin; i < end; ++i) {
        double score = scores[i - begin];
        if (score <= 0.0) continue;  // the Cls filter drops low scorers
        matches.push_back(RankedMatch{result.candidates[i].pair, score,
                                      result.candidates[i].block_score});
      }
      result.timings.merge_seconds += timer.ElapsedSeconds();
    }
  } else {
    matches.reserve(result.candidates.size());
    for (const auto& cp : result.candidates) {
      matches.push_back(
          RankedMatch{cp.pair, cp.block_score, cp.block_score});
    }
  }
  timer.Reset();
  result.resolution = RankedResolution(std::move(matches));
  result.num_records = dataset_->size();
  result.timings.merge_seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace yver::core
