#include "core/pipeline.h"

#include <thread>

#include "util/check.h"

namespace yver::core {

UncertainErPipeline::UncertainErPipeline(const data::Dataset& dataset,
                                         data::GeoResolver geo_resolver)
    : dataset_(&dataset),
      encoded_(data::EncodeDataset(dataset, geo_resolver)) {
  extractor_ = std::make_unique<features::FeatureExtractor>(encoded_);
}

blocking::MfiBlocksResult UncertainErPipeline::RunBlocking(
    const blocking::MfiBlocksConfig& config, size_t num_threads) {
  size_t n = num_threads == 0 ? std::thread::hardware_concurrency()
                              : num_threads;
  if (n <= 1) {
    return blocking::RunMfiBlocks(encoded_, config, nullptr);
  }
  util::ThreadPool pool(n);
  return blocking::RunMfiBlocks(encoded_, config, &pool);
}

std::vector<blocking::CandidatePair> UncertainErPipeline::DiscardSameSource(
    const std::vector<blocking::CandidatePair>& pairs) const {
  std::vector<blocking::CandidatePair> out;
  out.reserve(pairs.size());
  for (const auto& cp : pairs) {
    const data::Record& a = (*dataset_)[cp.pair.a];
    const data::Record& b = (*dataset_)[cp.pair.b];
    if (a.source_id == b.source_id) continue;
    out.push_back(cp);
  }
  return out;
}

std::vector<ml::Instance> UncertainErPipeline::MakeInstances(
    const std::vector<blocking::CandidatePair>& pairs,
    const PairTagger& tagger) const {
  YVER_CHECK(tagger != nullptr);
  std::vector<ml::Instance> instances;
  instances.reserve(pairs.size());
  for (const auto& cp : pairs) {
    ml::Instance inst;
    inst.pair = cp.pair;
    inst.features = extractor_->Extract(cp.pair.a, cp.pair.b);
    inst.tag = tagger(cp.pair.a, cp.pair.b);
    instances.push_back(std::move(inst));
  }
  return instances;
}

PipelineResult UncertainErPipeline::Run(const PipelineConfig& config,
                                        const PairTagger& tagger) {
  PipelineResult result;
  result.blocking = RunBlocking(config.blocking, config.num_threads);
  result.candidates = config.discard_same_source
                          ? DiscardSameSource(result.blocking.pairs)
                          : result.blocking.pairs;

  std::vector<RankedMatch> matches;
  if (config.use_classifier) {
    YVER_CHECK_MSG(tagger != nullptr,
                   "classifier requested but no tagger provided");
    result.training_instances = ml::ApplyMaybePolicy(
        MakeInstances(result.candidates, tagger), ml::MaybePolicy::kOmit);
    result.model = ml::TrainAdTree(result.training_instances, config.trainer);
    for (const auto& cp : result.candidates) {
      features::FeatureVector fv =
          extractor_->Extract(cp.pair.a, cp.pair.b);
      double score = result.model.Score(fv);
      if (score <= 0.0) continue;  // the Cls filter drops low scorers
      matches.push_back(RankedMatch{cp.pair, score, cp.block_score});
    }
  } else {
    matches.reserve(result.candidates.size());
    for (const auto& cp : result.candidates) {
      matches.push_back(
          RankedMatch{cp.pair, cp.block_score, cp.block_score});
    }
  }
  result.resolution = RankedResolution(std::move(matches));
  result.num_records = dataset_->size();
  return result;
}

}  // namespace yver::core
