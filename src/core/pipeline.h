#ifndef YVER_CORE_PIPELINE_H_
#define YVER_CORE_PIPELINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "blocking/mfi_blocks.h"
#include "core/config.h"
#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "data/item_dictionary.h"
#include "features/feature_extractor.h"
#include "ml/adtree.h"
#include "ml/instances.h"
#include "util/thread_pool.h"

namespace yver::core {

/// Callback that tags a candidate pair like the archival experts would.
/// In the Yad Vashem deployment this was a tagging application (Fig. 7);
/// here it is usually synth::TagOracle.
using PairTagger =
    std::function<ml::ExpertTag(data::RecordIdx, data::RecordIdx)>;

/// Wall-clock breakdown of one pipeline run, in seconds. `encode` covers
/// the one-time columnar work done at pipeline construction (item-bag
/// encoding plus the ComparisonCorpus build); the other stages are
/// accumulated during Run. Exposed so the encode-vs-extract trade of the
/// columnar comparison corpus stays visible on real runs
/// (`resolve --profile`).
struct StageTimings {
  double encode_seconds = 0.0;
  double blocking_seconds = 0.0;
  double extract_seconds = 0.0;
  double tag_seconds = 0.0;
  double train_seconds = 0.0;
  double score_seconds = 0.0;
  double merge_seconds = 0.0;

  /// Substage breakdown of blocking_seconds (mine / support / score /
  /// threshold / emit), straight from blocking::MfiBlocksResult. Not
  /// included in TotalSeconds — it is a refinement of blocking_seconds,
  /// not an additional stage.
  blocking::BlockingTimings blocking_substages;

  double TotalSeconds() const {
    return encode_seconds + blocking_seconds + extract_seconds + tag_seconds +
           train_seconds + score_seconds + merge_seconds;
  }
};

/// Outcome of a full pipeline run.
struct PipelineResult {
  blocking::MfiBlocksResult blocking;
  /// Candidate pairs after the SameSrc filter (== blocking.pairs when the
  /// filter is off).
  std::vector<blocking::CandidatePair> candidates;
  /// Labeled instances used to train the classifier (empty when
  /// use_classifier is false).
  std::vector<ml::Instance> training_instances;
  /// The trained ADTree (default-constructed when use_classifier = false).
  ml::AdTree model;
  /// Ranked matches: ADTree scores when classified (pairs the model
  /// rejects are dropped), block scores otherwise.
  RankedResolution resolution;
  /// Size of the resolved corpus — the record-index domain of
  /// `resolution`. This is the `num_records` a serve::ResolutionIndex
  /// needs, so a run can be frozen into a servable artifact without
  /// carrying the dataset alongside the result.
  size_t num_records = 0;
  /// Per-stage wall-time breakdown of this run.
  StageTimings timings;
};

/// The end-to-end uncertain entity-resolution system of Fig. 9:
/// preprocessing -> MFIBlocks -> (SameSrc) -> ADTree -> ranked resolution.
class UncertainErPipeline {
 public:
  /// Encodes the dataset on construction. The dataset must outlive the
  /// pipeline. `geo_resolver` supplies city coordinates (may be empty).
  UncertainErPipeline(const data::Dataset& dataset,
                      data::GeoResolver geo_resolver = {});

  const data::Dataset& dataset() const { return *dataset_; }
  const data::EncodedDataset& encoded() const { return encoded_; }
  const features::FeatureExtractor& extractor() const { return *extractor_; }

  /// Stage 1: blocking only. `num_threads` resolves through
  /// util::ResolveNumThreads (0 = one worker per hardware thread).
  blocking::MfiBlocksResult RunBlocking(
      const blocking::MfiBlocksConfig& config, size_t num_threads = 0);

  /// Stage 1 on a caller-owned pool (nullptr = serial). Results are
  /// identical to the serial path for any pool size: block scores are
  /// written into per-block slots, so scheduling never reorders them.
  blocking::MfiBlocksResult RunBlocking(const blocking::MfiBlocksConfig& config,
                                        util::ThreadPool* pool);

  /// Applies the SameSrc filter to candidate pairs.
  std::vector<blocking::CandidatePair> DiscardSameSource(
      const std::vector<blocking::CandidatePair>& pairs) const;

  /// Builds labeled instances for candidate pairs using a tagger. With a
  /// pool, feature extraction runs chunk-parallel; the tagger itself is
  /// always invoked serially in candidate order, because taggers may be
  /// stateful (synth::TagOracle advances an RNG per call) and the
  /// determinism contract requires the serial tag sequence. When
  /// `timings` is non-null, extraction and tagging wall time are
  /// accumulated into it.
  std::vector<ml::Instance> MakeInstances(
      const std::vector<blocking::CandidatePair>& pairs,
      const PairTagger& tagger, util::ThreadPool* pool = nullptr,
      StageTimings* timings = nullptr) const;

  /// Full run: blocking, optional SameSrc, optional ADTree training on the
  /// tagger's labels (Maybe := omit, the best condition of Table 5) and
  /// classification; returns ranked resolution.
  ///
  /// Determinism contract: for a fixed dataset, config (ignoring
  /// num_threads) and tagger, the returned result — candidate order,
  /// training instances, model, and every match byte — is identical for
  /// every value of config.num_threads. Parallel stages write into
  /// index-addressed slots and merge in chunk order; no stage reduces in
  /// scheduling order. tests/determinism_test.cc enforces this.
  PipelineResult Run(const PipelineConfig& config, const PairTagger& tagger);

 private:
  const data::Dataset* dataset_;
  data::EncodedDataset encoded_;
  std::unique_ptr<features::FeatureExtractor> extractor_;
  /// Wall time of the one-time encode (item bags + comparison corpus),
  /// measured at construction and reported through PipelineResult.
  double encode_seconds_ = 0.0;
};

}  // namespace yver::core

#endif  // YVER_CORE_PIPELINE_H_
