#include "core/ranked_resolution.h"

#include <algorithm>

#include "util/check.h"

namespace yver::core {

MatchAdjacency::MatchAdjacency(const std::vector<RankedMatch>& sorted_matches,
                               size_t num_records) {
  if (num_records == 0) {
    for (const auto& m : sorted_matches) {
      num_records = std::max<size_t>(num_records, m.pair.b + 1);
    }
  }
  if (num_records == 0) return;
  offsets_.assign(num_records + 1, 0);
  for (const auto& m : sorted_matches) {
    YVER_CHECK(m.pair.a < num_records && m.pair.b < num_records);
    ++offsets_[m.pair.a + 1];
    ++offsets_[m.pair.b + 1];
  }
  for (size_t r = 1; r <= num_records; ++r) offsets_[r] += offsets_[r - 1];
  neighbors_.resize(sorted_matches.size() * 2);
  // Filling in arena order keeps each per-record list ascending by match
  // index, i.e. confidence-descending — the invariant Neighbors() promises.
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t i = 0; i < sorted_matches.size(); ++i) {
    const auto& m = sorted_matches[i];
    neighbors_[cursor[m.pair.a]++] = i;
    neighbors_[cursor[m.pair.b]++] = i;
  }
}

RankedResolution::RankedResolution(std::vector<RankedMatch> matches)
    : matches_(std::move(matches)) {
  // Stable sort plus a total tie-break on pair ids: the ordering contract
  // documented in the header. stable_sort keeps the result well-defined
  // even if a future RankedMatch field makes the comparator a partial
  // order over equal-confidence, equal-pair entries.
  std::stable_sort(matches_.begin(), matches_.end(),
                   [](const RankedMatch& a, const RankedMatch& b) {
                     if (a.confidence != b.confidence) {
                       return a.confidence > b.confidence;
                     }
                     return a.pair < b.pair;
                   });
  adjacency_ = MatchAdjacency(matches_);
}

size_t RankedResolution::CountAboveThreshold(double certainty) const {
  // Sorted descending, so the qualifying prefix ends at the first match
  // with confidence <= certainty.
  auto it = std::partition_point(
      matches_.begin(), matches_.end(),
      [certainty](const RankedMatch& m) { return m.confidence > certainty; });
  return static_cast<size_t>(it - matches_.begin());
}

std::vector<RankedMatch> RankedResolution::AboveThreshold(
    double certainty) const {
  size_t n = CountAboveThreshold(certainty);
  return std::vector<RankedMatch>(matches_.begin(), matches_.begin() + n);
}

std::vector<RankedMatch> RankedResolution::TopK(size_t k) const {
  k = std::min(k, matches_.size());
  if (k == 0) return {};
  std::vector<RankedMatch> out;
  out.reserve(k);
  out.assign(matches_.begin(), matches_.begin() + k);
  return out;
}

std::vector<RankedMatch> RankedResolution::ForRecord(data::RecordIdx r,
                                                     double certainty) const {
  std::vector<RankedMatch> out;
  auto neighbors = adjacency_.Neighbors(r);
  if (neighbors.empty()) return out;
  out.reserve(std::min<size_t>(neighbors.size(), 8));
  for (uint32_t idx : neighbors) {
    const RankedMatch& m = matches_[idx];
    if (!(m.confidence > certainty)) break;  // confidence-descending
    out.push_back(m);
  }
  return out;
}

}  // namespace yver::core
