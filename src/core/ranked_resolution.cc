#include "core/ranked_resolution.h"

#include <algorithm>

namespace yver::core {

RankedResolution::RankedResolution(std::vector<RankedMatch> matches)
    : matches_(std::move(matches)) {
  std::sort(matches_.begin(), matches_.end(),
            [](const RankedMatch& a, const RankedMatch& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.pair < b.pair;
            });
}

std::vector<RankedMatch> RankedResolution::AboveThreshold(
    double certainty) const {
  std::vector<RankedMatch> out;
  for (const auto& m : matches_) {
    if (m.confidence > certainty) {
      out.push_back(m);
    } else {
      break;  // sorted descending
    }
  }
  return out;
}

std::vector<RankedMatch> RankedResolution::TopK(size_t k) const {
  std::vector<RankedMatch> out(matches_.begin(),
                               matches_.begin() +
                                   std::min(k, matches_.size()));
  return out;
}

std::vector<RankedMatch> RankedResolution::ForRecord(data::RecordIdx r,
                                                     double certainty) const {
  std::vector<RankedMatch> out;
  for (const auto& m : matches_) {
    if (m.confidence <= certainty) break;
    if (m.pair.a == r || m.pair.b == r) out.push_back(m);
  }
  return out;
}

}  // namespace yver::core
