#ifndef YVER_CORE_RANKED_RESOLUTION_H_
#define YVER_CORE_RANKED_RESOLUTION_H_

#include <vector>

#include "data/dataset.h"

namespace yver::core {

/// One ranked match: a record pair with a confidence score. Confidence is
/// the ADTree prediction score when classification is enabled, otherwise
/// the block score.
struct RankedMatch {
  data::RecordPair pair;
  double confidence = 0.0;
  double block_score = 0.0;
};

/// The output of uncertain entity resolution: "a ranked list of results,
/// associating a similarity value for each match, rather than a binary
/// match / non-match decision" (§3.2). Entities are disambiguated only at
/// query time, by certainty threshold.
class RankedResolution {
 public:
  RankedResolution() = default;

  /// Takes ownership of matches; sorts descending by confidence.
  explicit RankedResolution(std::vector<RankedMatch> matches);

  /// All matches, best first.
  const std::vector<RankedMatch>& matches() const { return matches_; }

  size_t size() const { return matches_.size(); }
  bool empty() const { return matches_.empty(); }

  /// Matches with confidence > certainty — the Web-query-style tunable
  /// response (§4.2).
  std::vector<RankedMatch> AboveThreshold(double certainty) const;

  /// The k best matches.
  std::vector<RankedMatch> TopK(size_t k) const;

  /// Matches involving a specific record, best first, above certainty.
  std::vector<RankedMatch> ForRecord(data::RecordIdx r,
                                     double certainty) const;

 private:
  std::vector<RankedMatch> matches_;
};

}  // namespace yver::core

#endif  // YVER_CORE_RANKED_RESOLUTION_H_
