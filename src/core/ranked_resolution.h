#ifndef YVER_CORE_RANKED_RESOLUTION_H_
#define YVER_CORE_RANKED_RESOLUTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace yver::core {

/// One ranked match: a record pair with a confidence score. Confidence is
/// the ADTree prediction score when classification is enabled, otherwise
/// the block score.
struct RankedMatch {
  data::RecordPair pair;
  double confidence = 0.0;
  double block_score = 0.0;

  friend bool operator==(const RankedMatch&, const RankedMatch&) = default;
};

/// Record-keyed CSR adjacency over a confidence-sorted match list: for each
/// record, the indices (into that list) of the matches it participates in.
/// Because the underlying list is sorted best-first and each per-record
/// neighbor list is stored in ascending match-index order, every neighbor
/// list is itself confidence-descending — per-record queries walk their own
/// neighbors and stop at the certainty threshold instead of scanning all
/// matches.
class MatchAdjacency {
 public:
  MatchAdjacency() = default;

  /// Builds from `sorted_matches` (must already follow the
  /// RankedResolution ordering contract). `num_records` sizes the offset
  /// table; 0 means "infer as 1 + max record index seen".
  explicit MatchAdjacency(const std::vector<RankedMatch>& sorted_matches,
                          size_t num_records = 0);

  /// Match indices involving record r, confidence-descending. Empty span
  /// for records beyond the offset table (they have no matches).
  std::span<const uint32_t> Neighbors(data::RecordIdx r) const {
    if (static_cast<size_t>(r) + 1 >= offsets_.size()) return {};
    return std::span<const uint32_t>(neighbors_).subspan(
        offsets_[r], offsets_[r + 1] - offsets_[r]);
  }

  /// Number of records covered by the offset table.
  size_t num_records() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

 private:
  std::vector<uint32_t> offsets_;    // size num_records + 1
  std::vector<uint32_t> neighbors_;  // match indices, 2 entries per match
};

/// The output of uncertain entity resolution: "a ranked list of results,
/// associating a similarity value for each match, rather than a binary
/// match / non-match decision" (§3.2). Entities are disambiguated only at
/// query time, by certainty threshold.
///
/// Ordering contract: matches() is stable-sorted by confidence descending,
/// ties broken by ascending (pair.a, pair.b). The order is therefore a
/// deterministic function of the match *set* alone — independent of input
/// order, platform, or sort implementation — so serve::ResolutionIndex
/// construction and TopK are reproducible across runs and machines.
/// Mutating matches through any non-const path is unsupported; build a new
/// RankedResolution instead.
class RankedResolution {
 public:
  RankedResolution() = default;

  /// Takes ownership of matches and establishes the ordering contract
  /// above; also builds the per-record adjacency index.
  explicit RankedResolution(std::vector<RankedMatch> matches);

  /// All matches, best first (see ordering contract).
  const std::vector<RankedMatch>& matches() const { return matches_; }

  /// Per-record adjacency over matches(), shared with the serving layer.
  const MatchAdjacency& adjacency() const { return adjacency_; }

  size_t size() const { return matches_.size(); }
  bool empty() const { return matches_.empty(); }

  /// Matches with confidence > certainty — the Web-query-style tunable
  /// response (§4.2). Binary-searches the sorted list; never scans.
  std::vector<RankedMatch> AboveThreshold(double certainty) const;

  /// Number of matches with confidence > certainty (no copy).
  size_t CountAboveThreshold(double certainty) const;

  /// The k best matches.
  std::vector<RankedMatch> TopK(size_t k) const;

  /// Matches involving a specific record, best first, above certainty.
  /// Delegates to the adjacency index: cost is proportional to the
  /// record's own match count, not the total match count.
  std::vector<RankedMatch> ForRecord(data::RecordIdx r,
                                     double certainty) const;

 private:
  std::vector<RankedMatch> matches_;
  MatchAdjacency adjacency_;
};

}  // namespace yver::core

#endif  // YVER_CORE_RANKED_RESOLUTION_H_
