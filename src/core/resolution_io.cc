#include "core/resolution_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/csv.h"
#include "util/fault_injector.h"

namespace yver::core {

namespace {

std::map<uint64_t, data::RecordIdx> BookIdIndex(const data::Dataset& dataset) {
  std::map<uint64_t, data::RecordIdx> by_book;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    by_book[dataset[r].book_id] = r;
  }
  return by_book;
}

}  // namespace

util::Status SaveMatchesCsv(const data::Dataset& dataset,
                            const RankedResolution& resolution,
                            const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return util::Status::NotFound("cannot write " + path);
  util::Status injected = util::FaultInjector::Global().InjectIo(
      util::FaultPoint::kMatchesCsvSave);
  if (!injected.ok()) return injected;
  f << "book_id_a,book_id_b,confidence,block_score\n";
  for (const auto& m : resolution.matches()) {
    f << dataset[m.pair.a].book_id << "," << dataset[m.pair.b].book_id << ","
      << m.confidence << "," << m.block_score << "\n";
  }
  if (!f) return util::Status::DataLoss("short write to " + path);
  return util::Status::Ok();
}

util::StatusOr<RankedResolution> LoadMatchesCsv(const data::Dataset& dataset,
                                                const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return util::Status::NotFound("cannot read " + path);
  util::Status injected = util::FaultInjector::Global().InjectIo(
      util::FaultPoint::kMatchesCsvLoad);
  if (!injected.ok()) return injected;
  std::ostringstream ss;
  ss << f.rdbuf();
  auto by_book = BookIdIndex(dataset);
  auto rows = util::ParseCsv(ss.str());
  std::vector<RankedMatch> matches;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() < 4) continue;
    auto a = by_book.find(std::strtoull(rows[i][0].c_str(), nullptr, 10));
    auto b = by_book.find(std::strtoull(rows[i][1].c_str(), nullptr, 10));
    if (a == by_book.end() || b == by_book.end()) continue;
    if (a->second == b->second) {
      return util::Status::DataLoss(path + " row " + std::to_string(i + 1) +
                                    ": self-pair match");
    }
    RankedMatch m;
    m.pair = data::RecordPair(a->second, b->second);
    m.confidence = std::strtod(rows[i][2].c_str(), nullptr);
    m.block_score = std::strtod(rows[i][3].c_str(), nullptr);
    // A NaN confidence would poison every downstream comparator (the
    // confidence sort relies on a strict weak ordering), so it is
    // corruption, not data.
    if (std::isnan(m.confidence)) {
      return util::Status::DataLoss(path + " row " + std::to_string(i + 1) +
                                    ": confidence is NaN");
    }
    matches.push_back(m);
  }
  return RankedResolution(std::move(matches));
}

util::Status SaveMatchesCsvWithRetry(const data::Dataset& dataset,
                                     const RankedResolution& resolution,
                                     const std::string& path,
                                     const util::RetryPolicy& policy,
                                     util::RetryStats* stats) {
  return util::RetryWithPolicy(
      policy,
      [&] { return SaveMatchesCsv(dataset, resolution, path); }, stats);
}

util::StatusOr<RankedResolution> LoadMatchesCsvWithRetry(
    const data::Dataset& dataset, const std::string& path,
    const util::RetryPolicy& policy, util::RetryStats* stats) {
  return util::RetryWithPolicy(
      policy, [&] { return LoadMatchesCsv(dataset, path); }, stats);
}

}  // namespace yver::core
