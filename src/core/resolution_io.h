#ifndef YVER_CORE_RESOLUTION_IO_H_
#define YVER_CORE_RESOLUTION_IO_H_

#include <string>

#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "util/status.h"

namespace yver::core {

/// Writes the `book_id_a,book_id_b,confidence,block_score` matches CSV
/// (the `yver_cli resolve` output format) for `resolution` over `dataset`.
util::Status SaveMatchesCsv(const data::Dataset& dataset,
                            const RankedResolution& resolution,
                            const std::string& path);

/// Loads a matches CSV back into a RankedResolution, resolving book ids
/// against `dataset`. Rows with unknown book ids or too few columns are
/// skipped (the CSV may cover a superset dataset). NOT_FOUND when the file
/// cannot be opened.
util::StatusOr<RankedResolution> LoadMatchesCsv(const data::Dataset& dataset,
                                                const std::string& path);

}  // namespace yver::core

#endif  // YVER_CORE_RESOLUTION_IO_H_
