#ifndef YVER_CORE_RESOLUTION_IO_H_
#define YVER_CORE_RESOLUTION_IO_H_

#include <string>

#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "util/retry.h"
#include "util/status.h"

namespace yver::core {

/// Writes the `book_id_a,book_id_b,confidence,block_score` matches CSV
/// (the `yver_cli resolve` output format) for `resolution` over `dataset`.
/// Fault-injection point: core.matches_csv.save.
util::Status SaveMatchesCsv(const data::Dataset& dataset,
                            const RankedResolution& resolution,
                            const std::string& path);

/// Loads a matches CSV back into a RankedResolution, resolving book ids
/// against `dataset`. Rows with unknown book ids or too few columns are
/// skipped (the CSV may cover a superset dataset). NOT_FOUND when the file
/// cannot be opened; DATA_LOSS for a NaN confidence or a self-pair — those
/// are corruption, not coverage (a NaN would poison the confidence sort's
/// strict weak ordering downstream). Fault-injection point:
/// core.matches_csv.load.
util::StatusOr<RankedResolution> LoadMatchesCsv(const data::Dataset& dataset,
                                                const std::string& path);

/// Retry-wrapped variants: transient failures (UNAVAILABLE, DATA_LOSS)
/// are retried under `policy` with jittered exponential backoff.
util::Status SaveMatchesCsvWithRetry(const data::Dataset& dataset,
                                     const RankedResolution& resolution,
                                     const std::string& path,
                                     const util::RetryPolicy& policy = {},
                                     util::RetryStats* stats = nullptr);
util::StatusOr<RankedResolution> LoadMatchesCsvWithRetry(
    const data::Dataset& dataset, const std::string& path,
    const util::RetryPolicy& policy = {}, util::RetryStats* stats = nullptr);

}  // namespace yver::core

#endif  // YVER_CORE_RESOLUTION_IO_H_
