#include "data/comparison_corpus.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "util/check.h"
#include "util/string_util.h"

namespace yver::data {

namespace {

// Same numeric parse the string-path extractor applied per pair; here it
// runs once per record at encode time.
double ParseNumeric(std::string_view s) {
  return std::strtod(std::string(s).c_str(), nullptr);
}

constexpr AttributeId kBirthDateAttrs[3] = {
    AttributeId::kBirthDay, AttributeId::kBirthMonth, AttributeId::kBirthYear};

}  // namespace

TokenId ComparisonCorpus::InternToken(std::string normalized) {
  auto it = token_index_.find(normalized);
  if (it != token_index_.end()) return it->second;
  YVER_CHECK_MSG(token_strings_.size() < UINT32_MAX, "token space exhausted");
  TokenId id = static_cast<TokenId>(token_strings_.size());
  // New dictionary entry: memoize its padded-bigram id set now, so no pair
  // comparison ever extracts q-grams again.
  size_t appended = gram_interner_.AppendQGramIdSet(normalized, &gram_ids_);
  YVER_CHECK(gram_ids_.size() <= UINT32_MAX);
  gram_offsets_.push_back(static_cast<uint32_t>(gram_ids_.size()));
  (void)appended;
  token_index_.emplace(normalized, id);
  token_strings_.push_back(std::move(normalized));
  return id;
}

uint32_t ComparisonCorpus::InternExact(std::string_view raw) {
  auto it = exact_index_.find(std::string(raw));
  if (it != exact_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(exact_index_.size());
  exact_index_.emplace(std::string(raw), id);
  return id;
}

void ComparisonCorpus::EncodeRecord(const Record& record) {
  for (auto& bucket : bucket_scratch_) bucket.clear();

  // Token spans: lowercase, intern, then sort + dedup by id. Dedup by
  // id equals dedup by lowercased string (interning is injective), and
  // any shared total order works for merge intersections — both sides
  // of every comparison use id order.
  for (const Record::Entry& entry : record.entries()) {
    bucket_scratch_[static_cast<size_t>(entry.attr)].push_back(
        InternToken(util::ToLower(entry.value)));
  }
  for (size_t a = 0; a < kNumAttributes; ++a) {
    std::vector<TokenId>& bucket = bucket_scratch_[a];
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
    token_ids_.insert(token_ids_.end(), bucket.begin(), bucket.end());
    YVER_CHECK(token_ids_.size() <= UINT32_MAX);
    token_offsets_.push_back(static_cast<uint32_t>(token_ids_.size()));
  }

  // Birth-date parts: first value per component, parsed once.
  std::array<double, 3> parts;
  for (size_t d = 0; d < 3; ++d) {
    auto values = record.Values(kBirthDateAttrs[d]);
    parts[d] = values.empty() ? std::numeric_limits<double>::quiet_NaN()
                              : ParseNumeric(values.front());
  }
  birth_parts_.push_back(parts);

  // Geo spans: resolve each city value through the item dictionary (the
  // same lookup the per-pair path did), keeping value order.
  for (size_t t = 0; t < kNumPlaceTypes; ++t) {
    AttributeId attr =
        PlaceAttribute(static_cast<PlaceType>(t), PlacePart::kCity);
    for (auto value : record.Values(attr)) {
      auto item = encoded_->dictionary.Find(attr, value);
      if (!item || !encoded_->dictionary.geo(*item)) continue;
      geo_points_.push_back(*encoded_->dictionary.geo(*item));
    }
    YVER_CHECK(geo_points_.size() <= UINT32_MAX);
    geo_offsets_.push_back(static_cast<uint32_t>(geo_points_.size()));
  }

  // Code columns: raw first values, case-sensitive identity.
  auto gender = record.Values(AttributeId::kGender);
  gender_codes_.push_back(gender.empty() ? kNoValueCode
                                         : InternExact(gender.front()));
  auto profession = record.Values(AttributeId::kProfession);
  profession_codes_.push_back(
      profession.empty() ? kNoValueCode : InternExact(profession.front()));
  source_ids_.push_back(record.source_id);
}

ComparisonCorpus::ComparisonCorpus(const EncodedDataset& encoded)
    : encoded_(&encoded) {
  YVER_CHECK(encoded.dataset != nullptr);
  const Dataset& dataset = *encoded.dataset;
  num_records_ = dataset.size();

  gram_offsets_.push_back(0);
  token_offsets_.reserve(num_records_ * kNumAttributes + 1);
  token_offsets_.push_back(0);
  geo_offsets_.reserve(num_records_ * kNumPlaceTypes + 1);
  geo_offsets_.push_back(0);
  birth_parts_.reserve(num_records_);
  gender_codes_.reserve(num_records_);
  profession_codes_.reserve(num_records_);
  source_ids_.reserve(num_records_);

  for (RecordIdx r = 0; r < num_records_; ++r) EncodeRecord(dataset[r]);
}

void ComparisonCorpus::SyncWithDataset() {
  const Dataset& dataset = *encoded_->dataset;
  YVER_CHECK(dataset.size() >= num_records_);
  while (num_records_ < dataset.size()) {
    EncodeRecord(dataset[static_cast<RecordIdx>(num_records_)]);
    ++num_records_;
  }
}

}  // namespace yver::data
