#ifndef YVER_DATA_COMPARISON_CORPUS_H_
#define YVER_DATA_COMPARISON_CORPUS_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/item_dictionary.h"
#include "data/record.h"
#include "data/schema.h"
#include "geo/geo.h"
#include "text/qgram.h"

namespace yver::data {

/// Dense id of a distinct normalized (ASCII-lowercased) attribute value.
/// Token ids are shared across attributes: equal normalized strings map to
/// equal ids, so set operations over token spans are exactly set
/// operations over the lowercased value sets the string-path extractor
/// used to rebuild per pair.
using TokenId = uint32_t;

/// Sentinel for "attribute absent" in first-value code columns.
inline constexpr uint32_t kNoValueCode = UINT32_MAX;

/// The columnar comparison corpus: every per-record quantity the
/// 48-feature comparison stage needs, precomputed once at encode time and
/// laid out in flat CSR-style arrays addressed by RecordIdx.
///
/// MFIBlocks deliberately emits overlapping soft blocks, so a record takes
/// part in many candidate pairs; re-lowercasing, re-sorting, re-q-gramming
/// and re-resolving geo lookups per *pair* repeats identical work dozens
/// of times per record. This layer moves all of it to a one-time columnar
/// encode:
///
///   - token spans   : per (record, attribute), the lowercased, sorted,
///                     deduplicated value set as a span of interned
///                     TokenIds (sorted by id — set identity is what
///                     matters, and id order is shared by both sides of
///                     any comparison);
///   - q-gram sets   : per distinct token (not per pair), the sorted
///                     unique padded-bigram id set, so XnameDist becomes a
///                     memoized integer-merge Jaccard;
///   - birth parts   : per record, the strtod-parsed day/month/year of
///                     the first birth-date values (NaN when absent);
///   - geo spans     : per (record, place type), the resolved coordinates
///                     of the record's city values, in value order;
///   - code columns  : per record, the raw (case-sensitive) first-value
///                     codes of gender and profession, and the source id.
///
/// Invariants:
///   - the build is deterministic: ids are assigned in record/entry order,
///     so two builds over the same EncodedDataset are identical;
///   - views are immutable once encoded: SyncWithDataset (the incremental
///     streaming workload) only appends new records' columns, never
///     rewrites an existing entry, and must not run concurrently with
///     readers;
///   - per-pair consumption is allocation-free: every accessor returns a
///     span or a scalar into storage owned by the corpus.
class ComparisonCorpus {
 public:
  /// Builds the corpus from an encoded dataset. The encoded dataset (and
  /// its underlying Dataset) must outlive the corpus.
  explicit ComparisonCorpus(const EncodedDataset& encoded);

  ComparisonCorpus(const ComparisonCorpus&) = delete;
  ComparisonCorpus& operator=(const ComparisonCorpus&) = delete;

  /// Encodes the columnar views of records appended to the dataset after
  /// construction (IncrementalResolver adds records one at a time). The
  /// appended records' item bags and dictionary entries must already be in
  /// place. Appends only; not thread-safe with concurrent readers.
  void SyncWithDataset();

  size_t num_records() const { return num_records_; }
  size_t num_tokens() const { return token_strings_.size(); }

  /// Sorted, deduplicated normalized-token ids of (record, attribute).
  std::span<const TokenId> Tokens(RecordIdx r, AttributeId attr) const {
    size_t slot = static_cast<size_t>(r) * kNumAttributes +
                  static_cast<size_t>(attr);
    return std::span<const TokenId>(token_ids_.data() + token_offsets_[slot],
                                    token_offsets_[slot + 1] -
                                        token_offsets_[slot]);
  }

  /// Sorted unique padded-bigram id set of a token, computed once when the
  /// token entered the dictionary.
  std::span<const uint32_t> TokenQGrams(TokenId t) const {
    return std::span<const uint32_t>(gram_ids_.data() + gram_offsets_[t],
                                     gram_offsets_[t + 1] - gram_offsets_[t]);
  }

  /// Normalized string of a token (debugging / tests).
  const std::string& TokenString(TokenId t) const { return token_strings_[t]; }

  /// Parsed birth-date parts of a record: day, month, year; NaN when the
  /// record lacks the component.
  const std::array<double, 3>& BirthParts(RecordIdx r) const {
    return birth_parts_[r];
  }

  /// Resolved coordinates of the record's city values for one place type,
  /// in value order (unresolvable values are skipped).
  std::span<const geo::GeoPoint> GeoPoints(RecordIdx r, PlaceType type) const {
    size_t slot = static_cast<size_t>(r) * kNumPlaceTypes +
                  static_cast<size_t>(type);
    return std::span<const geo::GeoPoint>(
        geo_points_.data() + geo_offsets_[slot],
        geo_offsets_[slot + 1] - geo_offsets_[slot]);
  }

  /// Raw (case-sensitive) first-value code of gender / profession, or
  /// kNoValueCode when absent. Codes of equal raw strings are equal.
  uint32_t GenderCode(RecordIdx r) const { return gender_codes_[r]; }
  uint32_t ProfessionCode(RecordIdx r) const { return profession_codes_[r]; }

  /// Source id column (copied out of Record for cache-local access).
  uint32_t SourceId(RecordIdx r) const { return source_ids_[r]; }

 private:
  TokenId InternToken(std::string normalized);
  uint32_t InternExact(std::string_view raw);
  void EncodeRecord(const Record& record);

  const EncodedDataset* encoded_ = nullptr;
  size_t num_records_ = 0;

  /// Reused per-record encode scratch: values bucketed by attribute.
  std::array<std::vector<TokenId>, kNumAttributes> bucket_scratch_;

  // Normalized token dictionary + per-token memoized q-gram id sets.
  std::unordered_map<std::string, TokenId> token_index_;
  std::vector<std::string> token_strings_;
  std::vector<uint32_t> gram_offsets_;  // size num_tokens + 1
  std::vector<uint32_t> gram_ids_;
  text::QGramIdInterner gram_interner_;

  // (record x attribute) -> token id span, CSR.
  std::vector<uint32_t> token_offsets_;  // size num_records * 28 + 1
  std::vector<TokenId> token_ids_;

  // Birth-date parts, parsed once per record.
  std::vector<std::array<double, 3>> birth_parts_;

  // (record x place type) -> geo point span, CSR.
  std::vector<uint32_t> geo_offsets_;  // size num_records * 4 + 1
  std::vector<geo::GeoPoint> geo_points_;

  // First-value code columns (raw string identity) + source column.
  std::unordered_map<std::string, uint32_t> exact_index_;
  std::vector<uint32_t> gender_codes_;
  std::vector<uint32_t> profession_codes_;
  std::vector<uint32_t> source_ids_;
};

}  // namespace yver::data

#endif  // YVER_DATA_COMPARISON_CORPUS_H_
