#include "data/csv_io.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace yver::data {

namespace {
constexpr char kHeader[] =
    "book_id,source_id,source_kind,entity_id,family_id,values";
}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  std::string out = kHeader;
  out.push_back('\n');
  for (const Record& r : dataset.records()) {
    std::vector<std::string> value_parts;
    value_parts.reserve(r.NumValues());
    for (const auto& e : r.entries()) {
      std::string part(AttributeShortName(e.attr));
      part.push_back('_');
      part.append(e.value);
      value_parts.push_back(std::move(part));
    }
    std::vector<std::string> fields = {
        std::to_string(r.book_id),
        std::to_string(r.source_id),
        r.source_kind == SourceKind::kPageOfTestimony ? "POT" : "LIST",
        std::to_string(r.entity_id),
        std::to_string(r.family_id),
        util::Join(value_parts, ";"),
    };
    out += util::FormatCsvRow(fields);
    out.push_back('\n');
  }
  return out;
}

bool SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << DatasetToCsv(dataset);
  return static_cast<bool>(f);
}

std::optional<Dataset> DatasetFromCsv(const std::string& text) {
  auto rows = util::ParseCsv(text);
  if (rows.empty() || util::FormatCsvRow(rows[0]) != kHeader) {
    return std::nullopt;
  }
  Dataset dataset;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() == 1 && row[0].empty()) continue;  // trailing blank line
    if (row.size() != 6) return std::nullopt;
    Record r;
    try {
      r.book_id = std::stoull(row[0]);
      r.source_id = static_cast<uint32_t>(std::stoul(row[1]));
      r.entity_id = std::stoll(row[3]);
      r.family_id = std::stoll(row[4]);
    } catch (...) {
      return std::nullopt;
    }
    r.source_kind = row[2] == "POT" ? SourceKind::kPageOfTestimony
                                    : SourceKind::kVictimList;
    for (const std::string& part : util::Split(row[5], ';')) {
      if (part.empty()) continue;
      size_t underscore = part.find('_');
      if (underscore == std::string::npos) return std::nullopt;
      auto attr = AttributeFromShortName(part.substr(0, underscore));
      if (!attr) return std::nullopt;
      r.Add(*attr, part.substr(underscore + 1));
    }
    dataset.Add(std::move(r));
  }
  return dataset;
}

std::optional<Dataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  return DatasetFromCsv(ss.str());
}

}  // namespace yver::data
