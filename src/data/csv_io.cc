#include "data/csv_io.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "util/csv.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace yver::data {

namespace {

constexpr char kHeader[] =
    "book_id,source_id,source_kind,entity_id,family_id,values";

/// Parses one data row into `out`. On failure returns the structured
/// diagnostic instead; `row_number` is the 1-based CSV line.
std::optional<CsvRowError> ParseRecordRow(const std::vector<std::string>& row,
                                          size_t row_number, Record* out) {
  auto fail = [row_number](size_t column, std::string message) {
    return CsvRowError{row_number, column, std::move(message)};
  };
  if (row.size() != 6) {
    return fail(0, "expected 6 fields, got " + std::to_string(row.size()));
  }
  Record r;
  try {
    r.book_id = std::stoull(row[0]);
  } catch (...) {
    return fail(1, "book_id is not an unsigned integer: \"" + row[0] + "\"");
  }
  try {
    r.source_id = static_cast<uint32_t>(std::stoul(row[1]));
  } catch (...) {
    return fail(2, "source_id is not an unsigned integer: \"" + row[1] + "\"");
  }
  try {
    r.entity_id = std::stoll(row[3]);
  } catch (...) {
    return fail(4, "entity_id is not an integer: \"" + row[3] + "\"");
  }
  try {
    r.family_id = std::stoll(row[4]);
  } catch (...) {
    return fail(5, "family_id is not an integer: \"" + row[4] + "\"");
  }
  r.source_kind = row[2] == "POT" ? SourceKind::kPageOfTestimony
                                  : SourceKind::kVictimList;
  for (const std::string& part : util::Split(row[5], ';')) {
    if (part.empty()) continue;
    size_t underscore = part.find('_');
    if (underscore == std::string::npos) {
      return fail(6, "value entry has no SHORTNAME_ prefix: \"" + part + "\"");
    }
    auto attr = AttributeFromShortName(part.substr(0, underscore));
    if (!attr) {
      return fail(6, "unknown attribute short name: \"" +
                         part.substr(0, underscore) + "\"");
    }
    r.Add(*attr, part.substr(underscore + 1));
  }
  *out = std::move(r);
  return std::nullopt;
}

}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  std::string out = kHeader;
  out.push_back('\n');
  for (const Record& r : dataset.records()) {
    std::vector<std::string> value_parts;
    value_parts.reserve(r.NumValues());
    for (const auto& e : r.entries()) {
      std::string part(AttributeShortName(e.attr));
      part.push_back('_');
      part.append(e.value);
      value_parts.push_back(std::move(part));
    }
    std::vector<std::string> fields = {
        std::to_string(r.book_id),
        std::to_string(r.source_id),
        r.source_kind == SourceKind::kPageOfTestimony ? "POT" : "LIST",
        std::to_string(r.entity_id),
        std::to_string(r.family_id),
        util::Join(value_parts, ";"),
    };
    out += util::FormatCsvRow(fields);
    out.push_back('\n');
  }
  return out;
}

bool SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << DatasetToCsv(dataset);
  return static_cast<bool>(f);
}

util::StatusOr<Dataset> DatasetFromCsvLenient(const std::string& text,
                                              const CsvLoadOptions& options,
                                              CsvLoadReport* report) {
  auto rows = util::ParseCsv(text);
  if (rows.empty() || util::FormatCsvRow(rows[0]) != kHeader) {
    return util::Status::InvalidArgument(
        "not a dataset CSV: missing or mismatched header");
  }
  Dataset dataset;
  size_t errors = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() == 1 && row[0].empty()) continue;  // trailing blank line
    Record r;
    std::optional<CsvRowError> error = ParseRecordRow(row, i + 1, &r);
    if (!error) {
      dataset.Add(std::move(r));
      if (report != nullptr) ++report->rows_loaded;
      continue;
    }
    // Quarantine: skip the row, keep the diagnostic, and spend one unit
    // of the error budget. The budget-exceeding row fails the file.
    if (errors >= options.max_row_errors) {
      return util::Status::DataLoss(
          "row " + std::to_string(error->row) + " column " +
          std::to_string(error->column) + ": " + error->message +
          " (error budget of " + std::to_string(options.max_row_errors) +
          " exhausted)");
    }
    ++errors;
    if (report != nullptr) report->row_errors.push_back(std::move(*error));
  }
  return dataset;
}

util::StatusOr<Dataset> LoadDatasetCsvLenient(const std::string& path,
                                              const CsvLoadOptions& options,
                                              CsvLoadReport* report) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return util::Status::NotFound("cannot read " + path);
  util::Status injected = util::FaultInjector::Global().InjectIo(
      util::FaultPoint::kDatasetCsvLoad);
  if (!injected.ok()) return injected;
  std::ostringstream ss;
  ss << f.rdbuf();
  return DatasetFromCsvLenient(ss.str(), options, report);
}

std::optional<Dataset> DatasetFromCsv(const std::string& text) {
  // Strict = lenient with a zero error budget: the first bad row (or a
  // bad header) rejects the file.
  auto result = DatasetFromCsvLenient(text);
  if (!result.ok()) return std::nullopt;
  return std::move(result).value();
}

std::optional<Dataset> LoadDatasetCsv(const std::string& path) {
  auto result = LoadDatasetCsvLenient(path);
  if (!result.ok()) return std::nullopt;
  return std::move(result).value();
}

}  // namespace yver::data
