#ifndef YVER_DATA_CSV_IO_H_
#define YVER_DATA_CSV_IO_H_

#include <optional>
#include <string>

#include "data/dataset.h"

namespace yver::data {

/// CSV persistence for datasets.
///
/// Layout: header row
///   book_id,source_id,source_kind,entity_id,family_id,values
/// where `values` is a ';'-separated list of SHORTNAME_value entries
/// (multi-valued attributes repeat the short name), e.g.
///   "FN_Guido;LN_Foa;G_M;YB_1920;PP1_Torino;PP4_Italy".

/// Serializes the dataset to CSV text.
std::string DatasetToCsv(const Dataset& dataset);

/// Writes the dataset to a file; returns false on I/O failure.
bool SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Parses a dataset from CSV text; returns nullopt on malformed input.
std::optional<Dataset> DatasetFromCsv(const std::string& text);

/// Reads a dataset from a file; returns nullopt on I/O or parse failure.
std::optional<Dataset> LoadDatasetCsv(const std::string& path);

}  // namespace yver::data

#endif  // YVER_DATA_CSV_IO_H_
