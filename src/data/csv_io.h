#ifndef YVER_DATA_CSV_IO_H_
#define YVER_DATA_CSV_IO_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace yver::data {

/// CSV persistence for datasets.
///
/// Layout: header row
///   book_id,source_id,source_kind,entity_id,family_id,values
/// where `values` is a ';'-separated list of SHORTNAME_value entries
/// (multi-valued attributes repeat the short name), e.g.
///   "FN_Guido;LN_Foa;G_M;YB_1920;PP1_Torino;PP4_Italy".

/// Serializes the dataset to CSV text.
std::string DatasetToCsv(const Dataset& dataset);

/// Writes the dataset to a file; returns false on I/O failure.
bool SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Parses a dataset from CSV text; returns nullopt on malformed input.
std::optional<Dataset> DatasetFromCsv(const std::string& text);

/// Reads a dataset from a file; returns nullopt on I/O or parse failure.
std::optional<Dataset> LoadDatasetCsv(const std::string& path);

/// One quarantined row: where it went wrong and why. `row` is the 1-based
/// line in the CSV (the header is row 1); `column` is the 1-based field,
/// or 0 when the problem is the row shape itself.
struct CsvRowError {
  size_t row = 0;
  size_t column = 0;
  std::string message;
};

/// Knobs for the lenient loader.
struct CsvLoadOptions {
  /// Malformed rows tolerated (skipped and reported) before the load as a
  /// whole fails with DATA_LOSS. 0 reproduces the strict loader: the
  /// first bad row fails the file.
  size_t max_row_errors = 0;
};

/// What the lenient loader did: rows that made it into the dataset, and a
/// structured diagnostic per quarantined row.
struct CsvLoadReport {
  size_t rows_loaded = 0;
  std::vector<CsvRowError> row_errors;
};

/// Skip-and-quarantine parse: malformed rows are skipped and reported in
/// `report` (when non-null) instead of rejecting the whole file, up to
/// `options.max_row_errors`; one more fails the load with DATA_LOSS
/// carrying the offending row/column. A bad header is always
/// INVALID_ARGUMENT — there is no budget for not being this format.
util::StatusOr<Dataset> DatasetFromCsvLenient(const std::string& text,
                                              const CsvLoadOptions& options = {},
                                              CsvLoadReport* report = nullptr);

/// File variant of DatasetFromCsvLenient. NOT_FOUND when the file cannot
/// be opened. Fault-injection point: data.dataset_csv.load.
util::StatusOr<Dataset> LoadDatasetCsvLenient(const std::string& path,
                                              const CsvLoadOptions& options = {},
                                              CsvLoadReport* report = nullptr);

}  // namespace yver::data

#endif  // YVER_DATA_CSV_IO_H_
