#include "data/dataset.h"

#include "util/check.h"

namespace yver::data {

RecordIdx Dataset::Add(Record record) {
  YVER_CHECK_MSG(records_.size() < UINT32_MAX, "dataset too large");
  records_.push_back(std::move(record));
  return static_cast<RecordIdx>(records_.size() - 1);
}

bool Dataset::IsGoldMatch(RecordIdx i, RecordIdx j) const {
  const Record& a = records_[i];
  const Record& b = records_[j];
  return a.entity_id != kUnknownEntity && a.entity_id == b.entity_id;
}

bool Dataset::IsGoldFamilyMatch(RecordIdx i, RecordIdx j) const {
  const Record& a = records_[i];
  const Record& b = records_[j];
  return a.family_id != kUnknownEntity && a.family_id == b.family_id;
}

std::vector<RecordPair> Dataset::GoldPairs() const {
  std::vector<RecordPair> pairs;
  for (const auto& [entity, members] : GroupByEntity()) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        pairs.emplace_back(members[i], members[j]);
      }
    }
  }
  return pairs;
}

size_t Dataset::NumGoldPairs() const {
  size_t n = 0;
  for (const auto& [entity, members] : GroupByEntity()) {
    n += members.size() * (members.size() - 1) / 2;
  }
  return n;
}

std::unordered_map<int64_t, std::vector<RecordIdx>> Dataset::GroupByEntity()
    const {
  std::unordered_map<int64_t, std::vector<RecordIdx>> groups;
  for (RecordIdx i = 0; i < records_.size(); ++i) {
    if (records_[i].entity_id == kUnknownEntity) continue;
    groups[records_[i].entity_id].push_back(i);
  }
  return groups;
}

}  // namespace yver::data
