#ifndef YVER_DATA_DATASET_H_
#define YVER_DATA_DATASET_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "data/record.h"

namespace yver::data {

/// An unordered pair of record indices with canonical ordering (a < b).
struct RecordPair {
  RecordIdx a = 0;
  RecordIdx b = 0;

  RecordPair() = default;
  RecordPair(RecordIdx x, RecordIdx y) : a(x < y ? x : y), b(x < y ? y : x) {}

  friend bool operator==(const RecordPair&, const RecordPair&) = default;
  friend bool operator<(const RecordPair& lhs, const RecordPair& rhs) {
    return lhs.a != rhs.a ? lhs.a < rhs.a : lhs.b < rhs.b;
  }
};

/// Hash functor for RecordPair, usable with unordered containers.
struct RecordPairHash {
  size_t operator()(const RecordPair& p) const {
    uint64_t k = (static_cast<uint64_t>(p.a) << 32) | p.b;
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<size_t>(k);
  }
};

/// A collection of victim reports plus ground-truth helpers.
class Dataset {
 public:
  Dataset() = default;

  /// Appends a record, returning its index.
  RecordIdx Add(Record record);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const Record& operator[](RecordIdx i) const { return records_[i]; }
  Record& operator[](RecordIdx i) { return records_[i]; }

  const std::vector<Record>& records() const { return records_; }

  /// True when both records carry a known latent entity id and they agree.
  bool IsGoldMatch(RecordIdx i, RecordIdx j) const;

  /// True when both records share a known latent family id.
  bool IsGoldFamilyMatch(RecordIdx i, RecordIdx j) const;

  /// All ground-truth matched pairs (records sharing a known entity id).
  /// Quadratic only within each latent entity's record set, which the
  /// archival experts bound at <= 8 records (paper §4.1).
  std::vector<RecordPair> GoldPairs() const;

  /// Number of ground-truth matched pairs.
  size_t NumGoldPairs() const;

  /// Groups record indices by latent entity id (records with unknown ids
  /// are skipped).
  std::unordered_map<int64_t, std::vector<RecordIdx>> GroupByEntity() const;

 private:
  std::vector<Record> records_;
};

}  // namespace yver::data

#endif  // YVER_DATA_DATASET_H_
