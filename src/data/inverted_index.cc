#include "data/inverted_index.h"

#include <algorithm>

#include "util/check.h"

namespace yver::data {

InvertedIndex::InvertedIndex(const std::vector<ItemBag>& bags,
                             size_t num_items)
    : postings_(num_items) {
  for (size_t r = 0; r < bags.size(); ++r) {
    for (ItemId item : bags[r]) {
      YVER_CHECK(item < num_items);
      postings_[item].push_back(static_cast<RecordIdx>(r));
    }
  }
  // Bags are iterated in record order, so postings are already sorted.
}

std::vector<RecordIdx> InvertedIndex::Support(
    const std::vector<ItemId>& itemset) const {
  if (itemset.empty()) return {};
  // Intersect starting from the rarest item to keep the working set small.
  std::vector<ItemId> order = itemset;
  std::sort(order.begin(), order.end(), [this](ItemId a, ItemId b) {
    return postings_[a].size() < postings_[b].size();
  });
  std::vector<RecordIdx> result = postings_[order[0]];
  std::vector<RecordIdx> next;
  for (size_t k = 1; k < order.size() && !result.empty(); ++k) {
    const auto& plist = postings_[order[k]];
    next.clear();
    next.reserve(std::min(result.size(), plist.size()));
    std::set_intersection(result.begin(), result.end(), plist.begin(),
                          plist.end(), std::back_inserter(next));
    result.swap(next);
  }
  return result;
}

}  // namespace yver::data
