#ifndef YVER_DATA_INVERTED_INDEX_H_
#define YVER_DATA_INVERTED_INDEX_H_

#include <vector>

#include "data/item_dictionary.h"

namespace yver::data {

/// Item -> sorted record postings, built from an encoded dataset. This is
/// the index created by the preprocessing step of the system architecture
/// (paper Fig. 9) and is what MFIBlocks uses to find the support set of a
/// mined itemset by postings intersection.
class InvertedIndex {
 public:
  /// Builds the index over the given bags; `num_items` is the dictionary
  /// size.
  InvertedIndex(const std::vector<ItemBag>& bags, size_t num_items);

  /// Sorted record indices containing the item.
  const std::vector<RecordIdx>& Postings(ItemId item) const {
    return postings_[item];
  }

  /// Records containing every item of `itemset` (sorted ascending). The
  /// intersection is evaluated smallest-posting-first.
  std::vector<RecordIdx> Support(const std::vector<ItemId>& itemset) const;

  size_t num_items() const { return postings_.size(); }

 private:
  std::vector<std::vector<RecordIdx>> postings_;
};

}  // namespace yver::data

#endif  // YVER_DATA_INVERTED_INDEX_H_
