#include "data/item_dictionary.h"

#include <algorithm>

#include "util/check.h"

namespace yver::data {

namespace {

std::string MakeKey(AttributeId attr, std::string_view value) {
  std::string key(AttributeShortName(attr));
  key.push_back('\x1f');
  key.append(value);
  return key;
}

}  // namespace

ItemId ItemDictionary::Intern(AttributeId attr, std::string_view value) {
  std::string key = MakeKey(attr, value);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  YVER_CHECK_MSG(items_.size() < UINT32_MAX, "item space exhausted");
  ItemId id = static_cast<ItemId>(items_.size());
  items_.push_back(ItemInfo{attr, std::string(value), 0, std::nullopt});
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<ItemId> ItemDictionary::Find(AttributeId attr,
                                           std::string_view value) const {
  auto it = index_.find(MakeKey(attr, value));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string ItemDictionary::DebugString(ItemId id) const {
  std::string out(AttributeShortName(items_[id].attr));
  out.push_back('_');
  out.append(items_[id].value);
  return out;
}

std::vector<ItemId> EncodedDataset::ItemsByFrequency() const {
  std::vector<ItemId> ids(dictionary.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ItemId>(i);
  std::sort(ids.begin(), ids.end(), [this](ItemId a, ItemId b) {
    return dictionary.frequency(a) > dictionary.frequency(b);
  });
  return ids;
}

std::vector<ItemBag> EncodedDataset::PruneMostFrequent(double fraction) const {
  size_t num_pruned = static_cast<size_t>(
      fraction * static_cast<double>(dictionary.size()));
  if (num_pruned == 0) return bags;
  std::vector<ItemId> by_freq = ItemsByFrequency();
  std::vector<bool> pruned(dictionary.size(), false);
  for (size_t i = 0; i < num_pruned && i < by_freq.size(); ++i) {
    pruned[by_freq[i]] = true;
  }
  std::vector<ItemBag> out;
  out.reserve(bags.size());
  for (const ItemBag& bag : bags) {
    ItemBag kept;
    kept.reserve(bag.size());
    for (ItemId id : bag) {
      if (!pruned[id]) kept.push_back(id);
    }
    out.push_back(std::move(kept));
  }
  return out;
}

EncodedDataset EncodeDataset(const Dataset& dataset,
                             const GeoResolver& geo_resolver) {
  EncodedDataset encoded;
  encoded.dataset = &dataset;
  encoded.bags.reserve(dataset.size());
  for (const Record& record : dataset.records()) {
    ItemBag bag;
    bag.reserve(record.NumValues());
    for (const auto& entry : record.entries()) {
      ItemId id = encoded.dictionary.Intern(entry.attr, entry.value);
      bag.push_back(id);
      if (geo_resolver && AttributeClass(entry.attr) == ValueClass::kGeo &&
          !encoded.dictionary.geo(id).has_value()) {
        if (auto point = geo_resolver(entry.attr, entry.value)) {
          encoded.dictionary.SetGeo(id, *point);
        }
      }
    }
    std::sort(bag.begin(), bag.end());
    bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
    for (ItemId id : bag) encoded.dictionary.IncrementFrequency(id);
    encoded.bags.push_back(std::move(bag));
  }
  return encoded;
}

}  // namespace yver::data
