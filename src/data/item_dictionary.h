#ifndef YVER_DATA_ITEM_DICTIONARY_H_
#define YVER_DATA_ITEM_DICTIONARY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"
#include "geo/geo.h"

namespace yver::data {

/// Dense identifier of a distinct (attribute, value) item.
using ItemId = uint32_t;

/// A record's bag of items, sorted and deduplicated.
using ItemBag = std::vector<ItemId>;

/// Resolves geo coordinates for city-class attribute values so that the
/// expert item similarity can compute geographic distances; return nullopt
/// when unknown.
using GeoResolver = std::function<std::optional<geo::GeoPoint>(
    AttributeId, std::string_view)>;

/// Interns (attribute, value) pairs as dense items and carries per-item
/// metadata (type, frequency, optional coordinates). This realizes the
/// paper's preprocessing step: "each field ... was given a unique prefix,
/// which was added to the items" (§5.1); FN_Moshe-style items become dense
/// integer ids.
class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Interns an item, creating it on first sight.
  ItemId Intern(AttributeId attr, std::string_view value);

  /// Looks up an item without creating it.
  std::optional<ItemId> Find(AttributeId attr, std::string_view value) const;

  /// Number of distinct items.
  size_t size() const { return items_.size(); }

  AttributeId attribute(ItemId id) const { return items_[id].attr; }
  const std::string& value(ItemId id) const { return items_[id].value; }

  /// Number of records this item occurs in (set by EncodeDataset).
  uint32_t frequency(ItemId id) const { return items_[id].frequency; }

  /// Coordinates for geo-class items, when resolvable.
  const std::optional<geo::GeoPoint>& geo(ItemId id) const {
    return items_[id].geo;
  }

  /// Sets the coordinates of an item.
  void SetGeo(ItemId id, const geo::GeoPoint& point) { items_[id].geo = point; }

  /// Printable form, e.g. "FN_Moshe".
  std::string DebugString(ItemId id) const;

  /// Adds one to the record frequency of an item (used by EncodeDataset).
  void IncrementFrequency(ItemId id) { ++items_[id].frequency; }

 private:
  struct ItemInfo {
    AttributeId attr;
    std::string value;
    uint32_t frequency = 0;
    std::optional<geo::GeoPoint> geo;
  };

  std::vector<ItemInfo> items_;
  // Key: short attribute prefix + '\x1f' + value.
  std::unordered_map<std::string, ItemId> index_;
};

/// A dataset converted to per-record item bags — the transaction database
/// consumed by FP-Growth / MFIBlocks.
struct EncodedDataset {
  const Dataset* dataset = nullptr;
  ItemDictionary dictionary;
  std::vector<ItemBag> bags;  // parallel to dataset->records()

  /// Items occurring in at least `min_frequency` records, descending by
  /// frequency.
  std::vector<ItemId> ItemsByFrequency() const;

  /// Returns a copy of the bags with the `fraction` most frequent items
  /// removed (the paper prunes the 0.03% most frequent items to tame
  /// FP-Growth runtime, §6.3). `fraction` is of the distinct item count.
  std::vector<ItemBag> PruneMostFrequent(double fraction) const;
};

/// Encodes every record of a dataset into its item bag, interning items and
/// tallying frequencies. `geo_resolver` may be empty.
EncodedDataset EncodeDataset(const Dataset& dataset,
                             const GeoResolver& geo_resolver = {});

}  // namespace yver::data

#endif  // YVER_DATA_ITEM_DICTIONARY_H_
