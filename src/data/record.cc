#include "data/record.h"

namespace yver::data {

void Record::Add(AttributeId attr, std::string value) {
  if (value.empty()) return;
  values_.push_back(Entry{attr, std::move(value)});
}

Record::ValueRange Record::Values(AttributeId attr) const {
  const Entry* begin = values_.data();
  return ValueRange(begin, begin + values_.size(), attr);
}

std::string_view Record::FirstValue(AttributeId attr) const {
  for (const auto& e : values_) {
    if (e.attr == attr) return e.value;
  }
  return {};
}

bool Record::Has(AttributeId attr) const {
  for (const auto& e : values_) {
    if (e.attr == attr) return true;
  }
  return false;
}

uint32_t Record::PresenceMask() const {
  uint32_t mask = 0;
  for (const auto& e : values_) {
    mask |= 1u << static_cast<uint32_t>(e.attr);
  }
  return mask;
}

}  // namespace yver::data
