#ifndef YVER_DATA_RECORD_H_
#define YVER_DATA_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/schema.h"

namespace yver::data {

/// Index of a record within its Dataset.
using RecordIdx = uint32_t;

/// Sentinel for "unknown" latent ids on real (non-synthetic) data.
inline constexpr int64_t kUnknownEntity = -1;

/// Kind of source a report came from (paper §2: one third Pages of
/// Testimony, the rest extracted victim lists).
enum class SourceKind : uint8_t { kPageOfTestimony = 0, kVictimList };

/// One victim report: a multi-valued bag of attribute values plus source
/// metadata. A person may legitimately carry several values of the same
/// attribute (multiple first names, several war-time places); the bag-of-
/// items model supports this directly (§5.1).
class Record {
 public:
  Record() = default;

  /// Sequential id assigned when the report entered the database.
  uint64_t book_id = 0;

  /// Source this report came from: a victim-list id or a submitter id for
  /// Pages of Testimony. Same-source candidate pairs can be discarded
  /// (SameSrc condition, §6.5).
  uint32_t source_id = 0;

  /// Whether the report is a Page of Testimony or a list extraction.
  SourceKind source_kind = SourceKind::kPageOfTestimony;

  /// Latent ground-truth person id (synthetic data only; kUnknownEntity
  /// otherwise). Two records match iff their entity ids are equal and known.
  int64_t entity_id = kUnknownEntity;

  /// Latent ground-truth nuclear-family id (synthetic data only), enabling
  /// family-granularity evaluation (§7 open question; Capelluto example).
  int64_t family_id = kUnknownEntity;

  /// Adds a value for an attribute (empty values are ignored).
  void Add(AttributeId attr, std::string value);

  /// Raw (attribute, value) entries in insertion order.
  struct Entry {
    AttributeId attr;
    std::string value;
  };

  /// Non-allocating forward range over the values of one attribute, in
  /// insertion order. Entries stay in submission order (the item-id
  /// interning sequence of EncodeDataset depends on it), so the range
  /// filters on iteration instead of materializing a vector — per-
  /// attribute access costs zero heap traffic on the comparison hot path.
  class ValueRange {
   public:
    class iterator {
     public:
      using value_type = std::string_view;
      using difference_type = std::ptrdiff_t;

      iterator() = default;
      iterator(const Entry* pos, const Entry* end, AttributeId attr)
          : pos_(pos), end_(end), attr_(attr) {
        SkipNonMatching();
      }

      std::string_view operator*() const { return pos_->value; }
      iterator& operator++() {
        ++pos_;
        SkipNonMatching();
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        ++*this;
        return copy;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.pos_ == b.pos_;
      }

     private:
      void SkipNonMatching() {
        while (pos_ != end_ && pos_->attr != attr_) ++pos_;
      }

      const Entry* pos_ = nullptr;
      const Entry* end_ = nullptr;
      AttributeId attr_ = AttributeId::kFirstName;
    };

    ValueRange(const Entry* begin, const Entry* end, AttributeId attr)
        : begin_(begin), end_(end), attr_(attr) {}

    iterator begin() const { return iterator(begin_, end_, attr_); }
    iterator end() const { return iterator(end_, end_, attr_); }
    bool empty() const { return begin() == end(); }
    /// Number of matching values (walks the record's entries).
    size_t size() const {
      size_t n = 0;
      for (auto it = begin(); it != end(); ++it) ++n;
      return n;
    }
    /// First matching value; must not be called on an empty range.
    std::string_view front() const { return *begin(); }

   private:
    const Entry* begin_ = nullptr;
    const Entry* end_ = nullptr;
    AttributeId attr_ = AttributeId::kFirstName;
  };

  /// All values of an attribute, in insertion order, as a lazy view. The
  /// range stays valid as long as the record is neither mutated nor moved.
  ValueRange Values(AttributeId attr) const;

  /// First value of the attribute, or empty view when absent.
  std::string_view FirstValue(AttributeId attr) const;

  /// True when the record has at least one value for attr.
  bool Has(AttributeId attr) const;

  /// Number of (attribute, value) entries.
  size_t NumValues() const { return values_.size(); }

  /// Bitmask of present attributes: bit i set iff attribute i has a value.
  /// This is the record's "data pattern" (paper Fig. 11).
  uint32_t PresenceMask() const;

  const std::vector<Entry>& entries() const { return values_; }

 private:
  std::vector<Entry> values_;
};

}  // namespace yver::data

#endif  // YVER_DATA_RECORD_H_
