#include "data/sample.h"

#include <unordered_map>
#include <unordered_set>

namespace yver::data {

Dataset FilterRecords(const Dataset& dataset,
                      const std::function<bool(const Record&)>& predicate) {
  Dataset out;
  for (const Record& r : dataset.records()) {
    if (predicate(r)) out.Add(r);
  }
  return out;
}

Dataset FilterByCountry(const Dataset& dataset, std::string_view country) {
  const AttributeId country_attrs[] = {
      AttributeId::kBirthCountry, AttributeId::kPermCountry,
      AttributeId::kWarCountry, AttributeId::kDeathCountry};
  return FilterRecords(dataset, [&](const Record& r) {
    for (AttributeId attr : country_attrs) {
      for (auto v : r.Values(attr)) {
        if (v == country) return true;
      }
    }
    return false;
  });
}

Dataset SampleUniform(const Dataset& dataset, double fraction,
                      util::Rng& rng) {
  return FilterRecords(
      dataset, [&](const Record&) { return rng.Bernoulli(fraction); });
}

Dataset SampleByEntity(const Dataset& dataset, double fraction,
                       util::Rng& rng) {
  // Decide per entity once; unknown-entity records decide individually.
  std::unordered_map<int64_t, bool> chosen;
  return FilterRecords(dataset, [&](const Record& r) {
    if (r.entity_id == kUnknownEntity) return rng.Bernoulli(fraction);
    auto it = chosen.find(r.entity_id);
    if (it == chosen.end()) {
      it = chosen.emplace(r.entity_id, rng.Bernoulli(fraction)).first;
    }
    return it->second;
  });
}

}  // namespace yver::data
