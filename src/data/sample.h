#ifndef YVER_DATA_SAMPLE_H_
#define YVER_DATA_SAMPLE_H_

#include <functional>
#include <string_view>

#include "data/dataset.h"
#include "util/rng.h"

namespace yver::data {

/// Dataset extraction utilities mirroring the paper's data preparation
/// (§5.1): the ItalySet was "all records having Italy as the victim's
/// place of residence" and the RandomSet a stratified random sample.

/// Records satisfying a predicate, preserving order and metadata.
Dataset FilterRecords(const Dataset& dataset,
                      const std::function<bool(const Record&)>& predicate);

/// The paper's ItalySet rule: any place attribute of the record carries
/// the given country value (case-sensitive, as values are normalized).
Dataset FilterByCountry(const Dataset& dataset, std::string_view country);

/// Uniform random sample of approximately `fraction` of the records.
Dataset SampleUniform(const Dataset& dataset, double fraction,
                      util::Rng& rng);

/// Entity-coherent sample: samples latent entities (not records), keeping
/// every report of a chosen entity, so gold pair structure is preserved —
/// the right way to down-sample an ER benchmark. Records with unknown
/// entity ids are sampled individually.
Dataset SampleByEntity(const Dataset& dataset, double fraction,
                       util::Rng& rng);

}  // namespace yver::data

#endif  // YVER_DATA_SAMPLE_H_
