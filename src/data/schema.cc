#include "data/schema.h"

#include "util/check.h"

namespace yver::data {

namespace {

struct AttrInfo {
  AttributeId id;
  ValueClass value_class;
  std::string_view short_name;
  std::string_view display_name;
};

constexpr std::array<AttrInfo, kNumAttributes> kAttrInfo = {{
    {AttributeId::kFirstName, ValueClass::kName, "FN", "First Name"},
    {AttributeId::kLastName, ValueClass::kName, "LN", "Last Name"},
    {AttributeId::kMaidenName, ValueClass::kName, "MDN", "Maiden Name"},
    {AttributeId::kMothersMaiden, ValueClass::kName, "MMN", "Mother's Maiden"},
    {AttributeId::kMothersName, ValueClass::kName, "MFN", "Mother's Name"},
    {AttributeId::kFathersName, ValueClass::kName, "FFN", "Father's Name"},
    {AttributeId::kSpouseName, ValueClass::kName, "SN", "Spouse Name"},
    {AttributeId::kGender, ValueClass::kCategorical, "G", "Gender"},
    {AttributeId::kProfession, ValueClass::kCategorical, "PR", "Profession"},
    {AttributeId::kBirthDay, ValueClass::kDay, "BD", "Birth Day"},
    {AttributeId::kBirthMonth, ValueClass::kMonth, "BM", "Birth Month"},
    {AttributeId::kBirthYear, ValueClass::kYear, "YB", "Birth Year"},
    {AttributeId::kBirthCity, ValueClass::kGeo, "BP1", "Birth City"},
    {AttributeId::kBirthCounty, ValueClass::kPlacePart, "BP2", "Birth County"},
    {AttributeId::kBirthRegion, ValueClass::kPlacePart, "BP3", "Birth Region"},
    {AttributeId::kBirthCountry, ValueClass::kPlacePart, "BP4",
     "Birth Country"},
    {AttributeId::kPermCity, ValueClass::kGeo, "PP1", "Perm. City"},
    {AttributeId::kPermCounty, ValueClass::kPlacePart, "PP2", "Perm. County"},
    {AttributeId::kPermRegion, ValueClass::kPlacePart, "PP3", "Perm. Region"},
    {AttributeId::kPermCountry, ValueClass::kPlacePart, "PP4",
     "Perm. Country"},
    {AttributeId::kWarCity, ValueClass::kGeo, "WP1", "War City"},
    {AttributeId::kWarCounty, ValueClass::kPlacePart, "WP2", "War County"},
    {AttributeId::kWarRegion, ValueClass::kPlacePart, "WP3", "War Region"},
    {AttributeId::kWarCountry, ValueClass::kPlacePart, "WP4", "War Country"},
    {AttributeId::kDeathCity, ValueClass::kGeo, "DP1", "Death City"},
    {AttributeId::kDeathCounty, ValueClass::kPlacePart, "DP2", "Death County"},
    {AttributeId::kDeathRegion, ValueClass::kPlacePart, "DP3", "Death Region"},
    {AttributeId::kDeathCountry, ValueClass::kPlacePart, "DP4",
     "Death Country"},
}};

}  // namespace

AttributeId PlaceAttribute(PlaceType type, PlacePart part) {
  size_t base = static_cast<size_t>(AttributeId::kBirthCity) +
                static_cast<size_t>(type) * kNumPlaceParts;
  return static_cast<AttributeId>(base + static_cast<size_t>(part));
}

ValueClass AttributeClass(AttributeId attr) {
  return kAttrInfo[static_cast<size_t>(attr)].value_class;
}

std::string_view AttributeShortName(AttributeId attr) {
  return kAttrInfo[static_cast<size_t>(attr)].short_name;
}

std::string_view AttributeDisplayName(AttributeId attr) {
  return kAttrInfo[static_cast<size_t>(attr)].display_name;
}

std::optional<AttributeId> AttributeFromShortName(std::string_view name) {
  for (const auto& info : kAttrInfo) {
    if (info.short_name == name) return info.id;
  }
  return std::nullopt;
}

const std::array<AttributeId, kNumAttributes>& AllAttributes() {
  static constexpr std::array<AttributeId, kNumAttributes> kAll = [] {
    std::array<AttributeId, kNumAttributes> a{};
    for (size_t i = 0; i < kNumAttributes; ++i) {
      a[i] = static_cast<AttributeId>(i);
    }
    return a;
  }();
  return kAll;
}

std::string_view PlaceTypeName(PlaceType type) {
  switch (type) {
    case PlaceType::kBirth:
      return "Birth";
    case PlaceType::kPermanent:
      return "Permanent";
    case PlaceType::kWartime:
      return "Wartime";
    case PlaceType::kDeath:
      return "Death";
  }
  YVER_CHECK(false);
  return "";
}

std::string_view PlacePartName(PlacePart part) {
  switch (part) {
    case PlacePart::kCity:
      return "City";
    case PlacePart::kCounty:
      return "County";
    case PlacePart::kRegion:
      return "Region";
    case PlacePart::kCountry:
      return "Country";
  }
  YVER_CHECK(false);
  return "";
}

}  // namespace yver::data
