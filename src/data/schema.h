#ifndef YVER_DATA_SCHEMA_H_
#define YVER_DATA_SCHEMA_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace yver::data {

/// The comparable attributes of a victim report, following the Names
/// Project entity-relationship diagram (paper Fig. 3) and the item types of
/// Tables 3/4: seven name attributes, gender, profession, the three birth
/// date components, and 4 place types x 4 place components.
enum class AttributeId : uint8_t {
  kFirstName = 0,
  kLastName,
  kMaidenName,
  kMothersMaiden,
  kMothersName,
  kFathersName,
  kSpouseName,
  kGender,
  kProfession,
  kBirthDay,
  kBirthMonth,
  kBirthYear,
  kBirthCity,
  kBirthCounty,
  kBirthRegion,
  kBirthCountry,
  kPermCity,
  kPermCounty,
  kPermRegion,
  kPermCountry,
  kWarCity,
  kWarCounty,
  kWarRegion,
  kWarCountry,
  kDeathCity,
  kDeathCounty,
  kDeathRegion,
  kDeathCountry,
};

/// Number of attributes in the schema.
inline constexpr size_t kNumAttributes = 28;

/// Coarse value class of an attribute, driving the expert item similarity
/// of Eq. 1 (names via Jaro-Winkler, date parts via normalized distance,
/// geo-coded places via haversine distance, the rest via equality).
enum class ValueClass : uint8_t {
  kName,
  kCategorical,  // gender, profession
  kDay,
  kMonth,
  kYear,
  kGeo,  // city-level places with gazetteer coordinates
  kPlacePart,  // county/region/country: compared as tokens
};

/// The four place types of the schema.
enum class PlaceType : uint8_t { kBirth = 0, kPermanent, kWartime, kDeath };

/// The four components of a place.
enum class PlacePart : uint8_t { kCity = 0, kCounty, kRegion, kCountry };

inline constexpr size_t kNumPlaceTypes = 4;
inline constexpr size_t kNumPlaceParts = 4;

/// Returns the attribute for a (place type, place part) combination.
AttributeId PlaceAttribute(PlaceType type, PlacePart part);

/// Returns the value class of an attribute.
ValueClass AttributeClass(AttributeId attr);

/// Short machine name, also used as the item prefix in item-bag encodings
/// (e.g. "FN" so that first name Moshe becomes item "FN_Moshe", cf. §5.1).
std::string_view AttributeShortName(AttributeId attr);

/// Human-readable name matching the paper's tables ("Mother's Maiden", ...).
std::string_view AttributeDisplayName(AttributeId attr);

/// Parses a short name back to an attribute; nullopt when unknown.
std::optional<AttributeId> AttributeFromShortName(std::string_view name);

/// All attributes, in declaration order.
const std::array<AttributeId, kNumAttributes>& AllAttributes();

/// Display name of a place type ("Birth", "Permanent", "Wartime", "Death").
std::string_view PlaceTypeName(PlaceType type);

/// Display name of a place part ("City", "County", "Region", "Country").
std::string_view PlacePartName(PlacePart part);

}  // namespace yver::data

#endif  // YVER_DATA_SCHEMA_H_
