#include "data/stats.h"

#include <set>

#include "util/check.h"

namespace yver::data {

std::vector<PatternStats::Bucket> PatternStats::Fig11Buckets() const {
  static constexpr size_t kLimits[] = {10, 100, 1000, 10000};
  std::vector<Bucket> buckets = {
      {"10", 0, 0}, {"100", 0, 0}, {"1000", 0, 0}, {"10000", 0, 0},
      {"more", 0, 0}};
  for (const auto& [mask, count] : counts) {
    size_t b = 4;
    for (size_t i = 0; i < 4; ++i) {
      if (count <= kLimits[i]) {
        b = i;
        break;
      }
    }
    buckets[b].num_patterns += 1;
    buckets[b].num_records += count;
  }
  return buckets;
}

std::pair<uint32_t, size_t> PatternStats::MostPrevalent() const {
  YVER_CHECK(!counts.empty());
  std::pair<uint32_t, size_t> best{0, 0};
  for (const auto& [mask, count] : counts) {
    if (count > best.second) best = {mask, count};
  }
  return best;
}

size_t PatternStats::FullPatternRecords() const {
  uint32_t full = (kNumAttributes >= 32)
                      ? ~0u
                      : ((1u << kNumAttributes) - 1);
  auto it = counts.find(full);
  return it == counts.end() ? 0 : it->second;
}

PatternStats ComputePatternStats(const Dataset& dataset) {
  PatternStats stats;
  for (const Record& r : dataset.records()) {
    ++stats.counts[r.PresenceMask()];
  }
  return stats;
}

std::vector<PrevalenceRow> ComputePrevalence(const Dataset& dataset) {
  std::array<size_t, kNumAttributes> counts{};
  for (const Record& r : dataset.records()) {
    uint32_t mask = r.PresenceMask();
    for (size_t a = 0; a < kNumAttributes; ++a) {
      if (mask & (1u << a)) ++counts[a];
    }
  }
  std::vector<PrevalenceRow> rows;
  rows.reserve(kNumAttributes);
  double n = static_cast<double>(dataset.size());
  for (size_t a = 0; a < kNumAttributes; ++a) {
    rows.push_back(PrevalenceRow{static_cast<AttributeId>(a), counts[a],
                                 n > 0 ? counts[a] / n : 0.0});
  }
  return rows;
}

std::vector<CardinalityRow> ComputeCardinality(const Dataset& dataset) {
  std::array<std::set<std::string>, kNumAttributes> values;
  std::array<size_t, kNumAttributes> occurrences{};
  for (const Record& r : dataset.records()) {
    // Count each distinct value once per record (set semantics per record).
    std::set<std::pair<size_t, std::string>> seen;
    for (const auto& e : r.entries()) {
      size_t a = static_cast<size_t>(e.attr);
      if (seen.emplace(a, e.value).second) {
        values[a].insert(e.value);
        ++occurrences[a];
      }
    }
  }
  std::vector<CardinalityRow> rows;
  rows.reserve(kNumAttributes);
  for (size_t a = 0; a < kNumAttributes; ++a) {
    double rpi = values[a].empty()
                     ? 0.0
                     : static_cast<double>(occurrences[a]) /
                           static_cast<double>(values[a].size());
    rows.push_back(
        CardinalityRow{static_cast<AttributeId>(a), values[a].size(), rpi});
  }
  return rows;
}

}  // namespace yver::data
