#ifndef YVER_DATA_STATS_H_
#define YVER_DATA_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace yver::data {

/// A data pattern is the set of attributes a record has values for.
/// Records "share a type if they have values assigned for the same item
/// types" (paper §6.2, Fig. 11).
struct PatternStats {
  /// Pattern mask -> number of records with exactly that pattern.
  std::map<uint32_t, size_t> counts;

  /// Distinct patterns.
  size_t NumPatterns() const { return counts.size(); }

  /// Histogram over the paper's buckets: patterns shared by <=10 records,
  /// (10,100], (100,1000], (1000,10000], more. For each bucket returns the
  /// number of such patterns and the total records participating.
  struct Bucket {
    std::string label;
    size_t num_patterns = 0;
    size_t num_records = 0;
  };
  std::vector<Bucket> Fig11Buckets() const;

  /// The most prevalent pattern (mask, count). Requires a non-empty stats.
  std::pair<uint32_t, size_t> MostPrevalent() const;

  /// Number of records carrying the full-information pattern (all
  /// attributes present).
  size_t FullPatternRecords() const;
};

/// Computes the pattern distribution of a dataset.
PatternStats ComputePatternStats(const Dataset& dataset);

/// Per-attribute prevalence: how many records carry at least one value
/// (Table 3).
struct PrevalenceRow {
  AttributeId attr;
  size_t num_records = 0;
  double fraction = 0.0;
};
std::vector<PrevalenceRow> ComputePrevalence(const Dataset& dataset);

/// Per-attribute cardinality: distinct values and mean records per value
/// (Table 4).
struct CardinalityRow {
  AttributeId attr;
  size_t num_items = 0;
  double records_per_item = 0.0;
};
std::vector<CardinalityRow> ComputeCardinality(const Dataset& dataset);

}  // namespace yver::data

#endif  // YVER_DATA_STATS_H_
