#include "features/feature_extractor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <string>

#include "geo/geo.h"
#include "text/jaccard.h"
#include "util/check.h"
#include "util/string_util.h"

namespace yver::features {

namespace {

using data::AttributeId;
using data::PlacePart;
using data::PlaceType;
using data::Record;

constexpr AttributeId kNameAttrs[] = {
    AttributeId::kFirstName,   AttributeId::kLastName,
    AttributeId::kSpouseName,  AttributeId::kFathersName,
    AttributeId::kMothersName, AttributeId::kMothersMaiden,
    AttributeId::kMaidenName,
};

constexpr PlaceType kPlaceTypes[] = {PlaceType::kBirth, PlaceType::kPermanent,
                                     PlaceType::kWartime, PlaceType::kDeath};

double ParseNumeric(std::string_view s) {
  return std::strtod(std::string(s).c_str(), nullptr);
}

std::set<std::string> LowerSet(const std::vector<std::string_view>& values) {
  std::set<std::string> out;
  for (auto v : values) out.insert(util::ToLower(v));
  return out;
}

// Trinary agreement of two value sets (sameXName semantics).
NameAgreement Agreement(const std::set<std::string>& a,
                        const std::set<std::string>& b) {
  size_t inter = 0;
  for (const auto& v : a) inter += b.count(v);
  if (inter == 0) return NameAgreement::kNo;
  if (inter == a.size() && inter == b.size()) return NameAgreement::kYes;
  return NameAgreement::kPartial;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const data::EncodedDataset& encoded)
    : encoded_(encoded) {
  YVER_CHECK(encoded.dataset != nullptr);
}

FeatureVector FeatureExtractor::Extract(data::RecordIdx a,
                                        data::RecordIdx b) const {
  const FeatureSchema& schema = FeatureSchema::Get();
  const Record& ra = (*encoded_.dataset)[a];
  const Record& rb = (*encoded_.dataset)[b];
  FeatureVector fv;
  fv.values.assign(schema.size(), MissingValue());
  size_t next = 0;
  auto emit = [&fv, &next](double v) { fv.values[next++] = v; };
  auto skip = [&next] { ++next; };

  // 1..7: sameXName.
  for (AttributeId attr : kNameAttrs) {
    auto va = ra.Values(attr);
    auto vb = rb.Values(attr);
    if (va.empty() || vb.empty()) {
      skip();
      continue;
    }
    emit(static_cast<double>(Agreement(LowerSet(va), LowerSet(vb))));
  }
  // 8..14: XnameDist — maximum q-gram Jaccard over the value cross product.
  for (AttributeId attr : kNameAttrs) {
    auto va = ra.Values(attr);
    auto vb = rb.Values(attr);
    if (va.empty() || vb.empty()) {
      skip();
      continue;
    }
    double best = 0.0;
    for (auto x : va) {
      for (auto y : vb) {
        best = std::max(best, text::QGramJaccard(util::ToLower(x),
                                                 util::ToLower(y)));
      }
    }
    emit(best);
  }
  // 15..17: raw birth-date component distances.
  const AttributeId date_attrs[] = {AttributeId::kBirthDay,
                                    AttributeId::kBirthMonth,
                                    AttributeId::kBirthYear};
  double date_dist[3] = {MissingValue(), MissingValue(), MissingValue()};
  for (size_t d = 0; d < 3; ++d) {
    auto va = ra.FirstValue(date_attrs[d]);
    auto vb = rb.FirstValue(date_attrs[d]);
    if (va.empty() || vb.empty()) {
      skip();
      continue;
    }
    date_dist[d] = std::abs(ParseNumeric(va) - ParseNumeric(vb));
    emit(date_dist[d]);
  }
  // 18..33: samePlaceXPartY.
  for (PlaceType type : kPlaceTypes) {
    for (size_t p = 0; p < data::kNumPlaceParts; ++p) {
      AttributeId attr =
          data::PlaceAttribute(type, static_cast<PlacePart>(p));
      auto va = ra.Values(attr);
      auto vb = rb.Values(attr);
      if (va.empty() || vb.empty()) {
        skip();
        continue;
      }
      auto sa = LowerSet(va);
      auto sb = LowerSet(vb);
      bool any = false;
      for (const auto& v : sa) {
        if (sb.count(v)) {
          any = true;
          break;
        }
      }
      emit(any ? static_cast<double>(BinaryCode::kYes)
               : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 34..37: PlaceXGeoDistance in km (min over city value pairs with known
  // coordinates).
  for (PlaceType type : kPlaceTypes) {
    AttributeId attr = data::PlaceAttribute(type, PlacePart::kCity);
    auto va = ra.Values(attr);
    auto vb = rb.Values(attr);
    double best = MissingValue();
    for (auto x : va) {
      auto ia = encoded_.dictionary.Find(attr, x);
      if (!ia || !encoded_.dictionary.geo(*ia)) continue;
      for (auto y : vb) {
        auto ib = encoded_.dictionary.Find(attr, y);
        if (!ib || !encoded_.dictionary.geo(*ib)) continue;
        double d = geo::HaversineKm(*encoded_.dictionary.geo(*ia),
                                    *encoded_.dictionary.geo(*ib));
        if (std::isnan(best) || d < best) best = d;
      }
    }
    if (std::isnan(best)) {
      skip();
    } else {
      emit(best);
    }
  }
  // 38..40: sameSource / sameGender / sameProfession.
  emit(ra.source_id == rb.source_id
           ? static_cast<double>(BinaryCode::kYes)
           : static_cast<double>(BinaryCode::kNo));
  {
    auto ga = ra.FirstValue(AttributeId::kGender);
    auto gb = rb.FirstValue(AttributeId::kGender);
    if (ga.empty() || gb.empty()) {
      skip();
    } else {
      emit(ga == gb ? static_cast<double>(BinaryCode::kYes)
                    : static_cast<double>(BinaryCode::kNo));
    }
  }
  {
    auto pa = ra.FirstValue(AttributeId::kProfession);
    auto pb = rb.FirstValue(AttributeId::kProfession);
    if (pa.empty() || pb.empty()) {
      skip();
    } else {
      emit(pa == pb ? static_cast<double>(BinaryCode::kYes)
                    : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 41..43: normalized birth-date similarities.
  const double norms[3] = {31.0, 12.0, 100.0};
  for (size_t d = 0; d < 3; ++d) {
    if (std::isnan(date_dist[d])) {
      skip();
    } else {
      emit(std::max(0.0, 1.0 - date_dist[d] / norms[d]));
    }
  }
  // 44..47: whole-place agreement per type (all present parts agree).
  for (PlaceType type : kPlaceTypes) {
    bool any_compared = false;
    bool all_agree = true;
    for (size_t p = 0; p < data::kNumPlaceParts; ++p) {
      AttributeId attr =
          data::PlaceAttribute(type, static_cast<PlacePart>(p));
      auto va = ra.Values(attr);
      auto vb = rb.Values(attr);
      if (va.empty() || vb.empty()) continue;
      any_compared = true;
      auto sa = LowerSet(va);
      auto sb = LowerSet(vb);
      bool agree = false;
      for (const auto& v : sa) {
        if (sb.count(v)) {
          agree = true;
          break;
        }
      }
      all_agree = all_agree && agree;
    }
    if (!any_compared) {
      skip();
    } else {
      emit(all_agree ? static_cast<double>(BinaryCode::kYes)
                     : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 48: overall item-bag Jaccard.
  emit(text::JaccardOfSortedIds(encoded_.bags[a], encoded_.bags[b]));

  YVER_CHECK(next == schema.size());
  return fv;
}

}  // namespace yver::features
