#include "features/feature_extractor.h"

#include <algorithm>
#include <cmath>

#include "geo/geo.h"
#include "text/jaccard.h"
#include "util/check.h"

namespace yver::features {

namespace {

using data::AttributeId;
using data::PlacePart;
using data::PlaceType;
using data::TokenId;

constexpr AttributeId kNameAttrs[] = {
    AttributeId::kFirstName,   AttributeId::kLastName,
    AttributeId::kSpouseName,  AttributeId::kFathersName,
    AttributeId::kMothersName, AttributeId::kMothersMaiden,
    AttributeId::kMaidenName,
};

constexpr PlaceType kPlaceTypes[] = {PlaceType::kBirth, PlaceType::kPermanent,
                                     PlaceType::kWartime, PlaceType::kDeath};

// Size of the intersection of two sorted unique token-id spans. Equal to
// the string-set intersection the old path computed: interning is
// injective and both spans share the id order.
size_t IntersectionSize(std::span<const TokenId> a,
                        std::span<const TokenId> b) {
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

bool AnyCommon(std::span<const TokenId> a, std::span<const TokenId> b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

// Trinary agreement of two value sets (sameXName semantics).
NameAgreement Agreement(std::span<const TokenId> a,
                        std::span<const TokenId> b) {
  size_t inter = IntersectionSize(a, b);
  if (inter == 0) return NameAgreement::kNo;
  if (inter == a.size() && inter == b.size()) return NameAgreement::kYes;
  return NameAgreement::kPartial;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const data::EncodedDataset& encoded)
    : encoded_(encoded) {
  YVER_CHECK(encoded.dataset != nullptr);
  corpus_ = std::make_unique<data::ComparisonCorpus>(encoded);
}

FeatureExtractor::~FeatureExtractor() = default;

FeatureVector FeatureExtractor::Extract(data::RecordIdx a,
                                        data::RecordIdx b) const {
  Scratch scratch;
  FeatureVector fv;
  ExtractInto(a, b, &scratch, &fv);
  return fv;
}

void FeatureExtractor::ExtractInto(data::RecordIdx a, data::RecordIdx b,
                                   Scratch* scratch,
                                   FeatureVector* out) const {
  (void)scratch;  // the columnar path needs no per-pair buffers
  const FeatureSchema& schema = FeatureSchema::Get();
  const data::ComparisonCorpus& corpus = *corpus_;
  FeatureVector& fv = *out;
  fv.values.assign(schema.size(), MissingValue());
  size_t next = 0;
  auto emit = [&fv, &next](double v) { fv.values[next++] = v; };
  auto skip = [&next] { ++next; };

  // 1..7: sameXName — integer set intersection over token spans.
  for (AttributeId attr : kNameAttrs) {
    auto ta = corpus.Tokens(a, attr);
    auto tb = corpus.Tokens(b, attr);
    if (ta.empty() || tb.empty()) {
      skip();
      continue;
    }
    emit(static_cast<double>(Agreement(ta, tb)));
  }
  // 8..14: XnameDist — maximum q-gram Jaccard over the value cross
  // product, via the dictionary-memoized per-token gram sets.
  for (AttributeId attr : kNameAttrs) {
    auto ta = corpus.Tokens(a, attr);
    auto tb = corpus.Tokens(b, attr);
    if (ta.empty() || tb.empty()) {
      skip();
      continue;
    }
    double best = 0.0;
    for (TokenId x : ta) {
      for (TokenId y : tb) {
        best = std::max(best, x == y
                                  ? 1.0
                                  : text::JaccardOfSortedIds(
                                        corpus.TokenQGrams(x),
                                        corpus.TokenQGrams(y)));
      }
    }
    emit(best);
  }
  // 15..17: raw birth-date component distances, over parts parsed once at
  // encode time.
  const std::array<double, 3>& parts_a = corpus.BirthParts(a);
  const std::array<double, 3>& parts_b = corpus.BirthParts(b);
  double date_dist[3] = {MissingValue(), MissingValue(), MissingValue()};
  for (size_t d = 0; d < 3; ++d) {
    if (std::isnan(parts_a[d]) || std::isnan(parts_b[d])) {
      skip();
      continue;
    }
    date_dist[d] = std::abs(parts_a[d] - parts_b[d]);
    emit(date_dist[d]);
  }
  // 18..33: samePlaceXPartY. The per-part comparisons are kept for reuse
  // by the whole-place agreement features (44..47), which recompute the
  // identical quantity in the string path.
  bool place_compared[data::kNumPlaceTypes][data::kNumPlaceParts];
  bool place_common[data::kNumPlaceTypes][data::kNumPlaceParts];
  for (size_t t = 0; t < data::kNumPlaceTypes; ++t) {
    for (size_t p = 0; p < data::kNumPlaceParts; ++p) {
      AttributeId attr = data::PlaceAttribute(static_cast<PlaceType>(t),
                                              static_cast<PlacePart>(p));
      auto ta = corpus.Tokens(a, attr);
      auto tb = corpus.Tokens(b, attr);
      place_compared[t][p] = !ta.empty() && !tb.empty();
      place_common[t][p] = place_compared[t][p] && AnyCommon(ta, tb);
      if (!place_compared[t][p]) {
        skip();
        continue;
      }
      emit(place_common[t][p] ? static_cast<double>(BinaryCode::kYes)
                              : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 34..37: PlaceXGeoDistance in km (min over city value pairs with known
  // coordinates), over coordinates resolved once at encode time.
  for (PlaceType type : kPlaceTypes) {
    double best = geo::MinHaversineKm(corpus.GeoPoints(a, type),
                                      corpus.GeoPoints(b, type));
    if (std::isnan(best)) {
      skip();
    } else {
      emit(best);
    }
  }
  // 38..40: sameSource / sameGender / sameProfession.
  emit(corpus.SourceId(a) == corpus.SourceId(b)
           ? static_cast<double>(BinaryCode::kYes)
           : static_cast<double>(BinaryCode::kNo));
  {
    uint32_t ga = corpus.GenderCode(a);
    uint32_t gb = corpus.GenderCode(b);
    if (ga == data::kNoValueCode || gb == data::kNoValueCode) {
      skip();
    } else {
      emit(ga == gb ? static_cast<double>(BinaryCode::kYes)
                    : static_cast<double>(BinaryCode::kNo));
    }
  }
  {
    uint32_t pa = corpus.ProfessionCode(a);
    uint32_t pb = corpus.ProfessionCode(b);
    if (pa == data::kNoValueCode || pb == data::kNoValueCode) {
      skip();
    } else {
      emit(pa == pb ? static_cast<double>(BinaryCode::kYes)
                    : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 41..43: normalized birth-date similarities.
  const double norms[3] = {31.0, 12.0, 100.0};
  for (size_t d = 0; d < 3; ++d) {
    if (std::isnan(date_dist[d])) {
      skip();
    } else {
      emit(std::max(0.0, 1.0 - date_dist[d] / norms[d]));
    }
  }
  // 44..47: whole-place agreement per type (all present parts agree),
  // reusing the comparisons of 18..33.
  for (size_t t = 0; t < data::kNumPlaceTypes; ++t) {
    bool any_compared = false;
    bool all_agree = true;
    for (size_t p = 0; p < data::kNumPlaceParts; ++p) {
      if (!place_compared[t][p]) continue;
      any_compared = true;
      all_agree = all_agree && place_common[t][p];
    }
    if (!any_compared) {
      skip();
    } else {
      emit(all_agree ? static_cast<double>(BinaryCode::kYes)
                     : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 48: overall item-bag Jaccard.
  emit(text::JaccardOfSortedIds(encoded_.bags[a], encoded_.bags[b]));

  YVER_CHECK(next == schema.size());
}

std::vector<FeatureVector> FeatureExtractor::ExtractBatch(
    std::span<const data::RecordPair> pairs, util::ThreadPool* pool) const {
  std::vector<FeatureVector> out(pairs.size());
  auto extract_chunk = [this, pairs, &out](size_t begin, size_t end) {
    Scratch scratch;
    for (size_t i = begin; i < end; ++i) {
      ExtractInto(pairs[i].a, pairs[i].b, &scratch, &out[i]);
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    extract_chunk(0, pairs.size());
  } else {
    pool->ParallelForChunked(pairs.size(), extract_chunk);
  }
  return out;
}

}  // namespace yver::features
