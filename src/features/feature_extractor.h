#ifndef YVER_FEATURES_FEATURE_EXTRACTOR_H_
#define YVER_FEATURES_FEATURE_EXTRACTOR_H_

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/item_dictionary.h"
#include "features/feature_schema.h"
#include "util/thread_pool.h"

namespace yver::features {

/// Computes the 48-feature vector of §5.1 for candidate record pairs.
/// Features over attributes absent from either record are emitted as
/// missing (NaN); the ADTree then "considers only reachable decision
/// nodes".
///
/// Extraction is a pure function of the encoded dataset and the pair, so
/// any number of threads may extract concurrently. The batch API exploits
/// that: pairs are chunked over a thread pool with one Scratch per chunk,
/// and every vector is written into its slot by pair index, so the output
/// order (and every byte of every vector) is identical for any thread
/// count.
class FeatureExtractor {
 public:
  /// Reusable per-thread working storage. Extraction lowercases and sorts
  /// attribute value sets for every pair; a Scratch keeps those buffers
  /// alive across calls so the hot loop stops allocating. A Scratch must
  /// not be shared between concurrent calls.
  struct Scratch {
    std::vector<std::string> lower_a;
    std::vector<std::string> lower_b;
  };

  /// The encoded dataset supplies geo coordinates of place items; the
  /// extractor holds a reference and must not outlive it.
  explicit FeatureExtractor(const data::EncodedDataset& encoded);

  /// Extracts the feature vector of a pair.
  FeatureVector Extract(data::RecordIdx a, data::RecordIdx b) const;

  /// Extracts into `out`, reusing its storage and `scratch`'s buffers.
  /// Produces exactly the same values as Extract.
  void ExtractInto(data::RecordIdx a, data::RecordIdx b, Scratch* scratch,
                   FeatureVector* out) const;

  /// Extracts all `pairs` in order. With a pool, chunks are extracted in
  /// parallel with one Scratch per chunk; result[i] is always the vector
  /// of pairs[i] regardless of thread count.
  std::vector<FeatureVector> ExtractBatch(
      std::span<const data::RecordPair> pairs,
      util::ThreadPool* pool = nullptr) const;

 private:
  const data::EncodedDataset& encoded_;
};

}  // namespace yver::features

#endif  // YVER_FEATURES_FEATURE_EXTRACTOR_H_
