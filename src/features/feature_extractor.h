#ifndef YVER_FEATURES_FEATURE_EXTRACTOR_H_
#define YVER_FEATURES_FEATURE_EXTRACTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "data/comparison_corpus.h"
#include "data/dataset.h"
#include "data/item_dictionary.h"
#include "features/feature_schema.h"
#include "util/thread_pool.h"

namespace yver::features {

/// Computes the 48-feature vector of §5.1 for candidate record pairs.
/// Features over attributes absent from either record are emitted as
/// missing (NaN); the ADTree then "considers only reachable decision
/// nodes".
///
/// Extraction runs over a data::ComparisonCorpus built once at
/// construction: per-record token spans, memoized per-token q-gram sets,
/// parsed date parts, resolved coordinates and code columns. The per-pair
/// path is therefore allocation-free integer work — no lowercasing,
/// sorting, q-gram extraction or dictionary lookups happen per pair — and
/// produces byte-identical values to the original string-path extractor
/// (enforced by tests/feature_equivalence_test.cc and the golden pipeline
/// fixture).
///
/// Extraction is a pure function of the corpus and the pair, so any number
/// of threads may extract concurrently. The batch API exploits that: pairs
/// are chunked over a thread pool with one Scratch per chunk, and every
/// vector is written into its slot by pair index, so the output order (and
/// every byte of every vector) is identical for any thread count.
class FeatureExtractor {
 public:
  /// Reusable per-thread working storage, kept for API stability. The
  /// columnar path needs no per-pair buffers (spans replace the old
  /// lowercase/sort scratch), so this is empty today; batch extraction
  /// still threads one Scratch per chunk so buffers can return without an
  /// API change.
  struct Scratch {};

  /// Builds the comparison corpus from the encoded dataset (one-time
  /// columnar encode). The extractor holds a reference to `encoded` and
  /// must not outlive it.
  explicit FeatureExtractor(const data::EncodedDataset& encoded);
  ~FeatureExtractor();

  /// Extracts the feature vector of a pair.
  FeatureVector Extract(data::RecordIdx a, data::RecordIdx b) const;

  /// Extracts into `out`, reusing its storage. Produces exactly the same
  /// values as Extract.
  void ExtractInto(data::RecordIdx a, data::RecordIdx b, Scratch* scratch,
                   FeatureVector* out) const;

  /// Extracts all `pairs` in order. With a pool, chunks are extracted in
  /// parallel with one Scratch per chunk; result[i] is always the vector
  /// of pairs[i] regardless of thread count.
  std::vector<FeatureVector> ExtractBatch(
      std::span<const data::RecordPair> pairs,
      util::ThreadPool* pool = nullptr) const;

  /// Encodes columnar views for records appended to the underlying dataset
  /// after construction (streaming workloads). Must be called before
  /// extracting a pair that involves an appended record; not thread-safe
  /// with concurrent extraction.
  void SyncAppendedRecords() { corpus_->SyncWithDataset(); }

  /// The columnar views this extractor compares over.
  const data::ComparisonCorpus& corpus() const { return *corpus_; }

 private:
  const data::EncodedDataset& encoded_;
  std::unique_ptr<data::ComparisonCorpus> corpus_;
};

}  // namespace yver::features

#endif  // YVER_FEATURES_FEATURE_EXTRACTOR_H_
