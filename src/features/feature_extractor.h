#ifndef YVER_FEATURES_FEATURE_EXTRACTOR_H_
#define YVER_FEATURES_FEATURE_EXTRACTOR_H_

#include "data/dataset.h"
#include "data/item_dictionary.h"
#include "features/feature_schema.h"

namespace yver::features {

/// Computes the 48-feature vector of §5.1 for candidate record pairs.
/// Features over attributes absent from either record are emitted as
/// missing (NaN); the ADTree then "considers only reachable decision
/// nodes".
class FeatureExtractor {
 public:
  /// The encoded dataset supplies geo coordinates of place items; the
  /// extractor holds a reference and must not outlive it.
  explicit FeatureExtractor(const data::EncodedDataset& encoded);

  /// Extracts the feature vector of a pair.
  FeatureVector Extract(data::RecordIdx a, data::RecordIdx b) const;

 private:
  const data::EncodedDataset& encoded_;
};

}  // namespace yver::features

#endif  // YVER_FEATURES_FEATURE_EXTRACTOR_H_
