#include "features/feature_schema.h"

#include <limits>

#include "util/check.h"

namespace yver::features {

namespace {

// Short feature-name stems matching the paper's printed trees
// (sameFN, FNdist, FFNdist, MFNdist, SNdist, LNdist, MNdist, ...).
constexpr const char* kNameStems[] = {"FN", "LN", "SN", "FFN",
                                      "MFN", "MMN", "MDN"};

constexpr const char* kPlaceTypeStems[] = {"B", "P", "W", "D"};
constexpr const char* kPlacePartStems[] = {"City", "County", "Region",
                                           "Country"};

}  // namespace

FeatureSchema::FeatureSchema() {
  // 1..7: sameXName trinary agreement.
  for (const char* stem : kNameStems) {
    defs_.push_back({std::string("same") + stem, FeatureKind::kNominal, 3});
  }
  // 8..14: XnameDist — max q-gram Jaccard similarity over name values.
  for (const char* stem : kNameStems) {
    defs_.push_back({std::string(stem) + "dist", FeatureKind::kNumeric, 0});
  }
  // 15..17: BXdist — raw birth-date component distances (B1=day, B2=month,
  // B3=year), matching the thresholds printed in Tables 7/8.
  defs_.push_back({"B1dist", FeatureKind::kNumeric, 0});
  defs_.push_back({"B2dist", FeatureKind::kNumeric, 0});
  defs_.push_back({"B3dist", FeatureKind::kNumeric, 0});
  // 18..33: samePlaceXPartY binary equality.
  for (const char* type : kPlaceTypeStems) {
    for (const char* part : kPlacePartStems) {
      defs_.push_back({std::string("same") + type + "P" + part,
                       FeatureKind::kNominal, 2});
    }
  }
  // 34..37: PlaceXGeoDistance in km between same-type cities.
  for (const char* type : kPlaceTypeStems) {
    defs_.push_back(
        {std::string(type) + "PGeoDist", FeatureKind::kNumeric, 0});
  }
  // 38..40: sameSource, sameGender, sameProfession.
  defs_.push_back({"sameSource", FeatureKind::kNominal, 2});
  defs_.push_back({"sameGender", FeatureKind::kNominal, 2});
  defs_.push_back({"sameProfession", FeatureKind::kNominal, 2});
  // 41..48: auxiliary features completing the paper's count of 48
  // ("we constructed every conceivable similarity feature ... assuming
  // these will be pruned by the ADT algorithm", §5.1): normalized birth
  // date similarities, whole-place agreement per place type, and the
  // overall item-bag Jaccard.
  defs_.push_back({"B1sim", FeatureKind::kNumeric, 0});
  defs_.push_back({"B2sim", FeatureKind::kNumeric, 0});
  defs_.push_back({"B3sim", FeatureKind::kNumeric, 0});
  for (const char* type : kPlaceTypeStems) {
    defs_.push_back(
        {std::string("same") + type + "Place", FeatureKind::kNominal, 2});
  }
  defs_.push_back({"bagJaccard", FeatureKind::kNumeric, 0});
  YVER_CHECK(defs_.size() == 48);
}

const FeatureSchema& FeatureSchema::Get() {
  static const FeatureSchema* schema = new FeatureSchema();
  return *schema;
}

size_t FeatureSchema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return i;
  }
  YVER_CHECK_MSG(false, name.c_str());
  return 0;
}

}  // namespace yver::features
