#ifndef YVER_FEATURES_FEATURE_SCHEMA_H_
#define YVER_FEATURES_FEATURE_SCHEMA_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace yver::features {

/// Kind of a pairwise feature. Nominal features take a small set of coded
/// values and are split by equality in the ADTree; numeric features are
/// split by thresholds.
enum class FeatureKind : uint8_t { kNumeric = 0, kNominal };

/// Codes of the trinary sameXName features ("yes when all of the matched
/// pairs' names of this type were the same, partial when only some were
/// the same and no if none matched", §5.1).
enum class NameAgreement : int { kNo = 0, kPartial = 1, kYes = 2 };

/// Codes of binary nominal features.
enum class BinaryCode : int { kNo = 0, kYes = 1 };

/// Definition of one feature.
struct FeatureDef {
  std::string name;
  FeatureKind kind = FeatureKind::kNumeric;
  int num_nominal_values = 0;  // nominal only
};

/// The fixed 48-feature schema of §5.1 (see FeatureExtractor for the
/// construction): indices are stable across the library.
class FeatureSchema {
 public:
  /// The process-wide schema instance.
  static const FeatureSchema& Get();

  size_t size() const { return defs_.size(); }
  const FeatureDef& def(size_t i) const { return defs_[i]; }

  /// Index of a feature by name; aborts when unknown.
  size_t IndexOf(const std::string& name) const;

  const std::vector<FeatureDef>& defs() const { return defs_; }

 private:
  FeatureSchema();
  std::vector<FeatureDef> defs_;
};

/// A feature vector for one candidate pair. Missing features (either
/// record lacks the underlying attribute) are NaN; the ADTree skips
/// splitters over missing features, which is the robustness property the
/// paper selected ADTrees for.
struct FeatureVector {
  std::vector<double> values;

  bool IsMissing(size_t i) const { return std::isnan(values[i]); }
};

/// NaN constant used for missing feature values.
inline double MissingValue() {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace yver::features

#endif  // YVER_FEATURES_FEATURE_SCHEMA_H_
