#include "geo/geo.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace yver::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  double lat1 = a.lat_deg * kDegToRad;
  double lat2 = b.lat_deg * kDegToRad;
  double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  double s1 = std::sin(dlat / 2.0);
  double s2 = std::sin(dlon / 2.0);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  h = std::min(1.0, h);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

double MinHaversineKm(std::span<const GeoPoint> a,
                      std::span<const GeoPoint> b) {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const GeoPoint& x : a) {
    for (const GeoPoint& y : b) {
      double d = HaversineKm(x, y);
      if (std::isnan(best) || d < best) best = d;
    }
  }
  return best;
}

}  // namespace yver::geo
