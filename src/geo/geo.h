#ifndef YVER_GEO_GEO_H_
#define YVER_GEO_GEO_H_

#include <span>

namespace yver::geo {

/// A WGS-84 latitude/longitude point in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle (haversine) distance between two points, in kilometers.
/// Used by the PlaceXGeoDistance features and the expert item similarity
/// (Eq. 1 in the paper).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Minimum haversine distance over the cross product of two point sets, in
/// kilometers; NaN when either set is empty. This is the PlaceXGeoDistance
/// aggregation over precomputed per-record coordinate spans.
double MinHaversineKm(std::span<const GeoPoint> a, std::span<const GeoPoint> b);

}  // namespace yver::geo

#endif  // YVER_GEO_GEO_H_
