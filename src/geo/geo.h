#ifndef YVER_GEO_GEO_H_
#define YVER_GEO_GEO_H_

namespace yver::geo {

/// A WGS-84 latitude/longitude point in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle (haversine) distance between two points, in kilometers.
/// Used by the PlaceXGeoDistance features and the expert item similarity
/// (Eq. 1 in the paper).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

}  // namespace yver::geo

#endif  // YVER_GEO_GEO_H_
