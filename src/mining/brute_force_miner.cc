#include "mining/brute_force_miner.h"

#include <algorithm>
#include <map>
#include <set>

#include "mining/maximal_filter.h"

namespace yver::mining {

uint32_t CountSupport(const std::vector<data::ItemBag>& transactions,
                      const std::vector<data::ItemId>& itemset) {
  uint32_t support = 0;
  for (const auto& bag : transactions) {
    if (IsSubsetOf(itemset, bag)) ++support;
  }
  return support;
}

std::vector<FrequentItemset> BruteForceFrequentItemsets(
    const std::vector<data::ItemBag>& transactions, uint32_t minsup) {
  // Level 1.
  std::map<data::ItemId, uint32_t> singles;
  for (const auto& bag : transactions) {
    for (data::ItemId item : bag) ++singles[item];
  }
  std::vector<FrequentItemset> frontier;
  for (const auto& [item, count] : singles) {
    if (count >= minsup) frontier.push_back({{item}, count});
  }
  std::vector<FrequentItemset> all = frontier;
  // Level-wise growth: extend each frontier itemset with a strictly larger
  // frequent single item; dedupe via a set of item vectors.
  while (!frontier.empty()) {
    std::set<std::vector<data::ItemId>> next_keys;
    std::vector<FrequentItemset> next;
    for (const auto& fi : frontier) {
      for (const auto& [item, count] : singles) {
        if (count < minsup || item <= fi.items.back()) continue;
        std::vector<data::ItemId> candidate = fi.items;
        candidate.push_back(item);
        if (!next_keys.insert(candidate).second) continue;
        uint32_t support = CountSupport(transactions, candidate);
        if (support >= minsup) next.push_back({std::move(candidate), support});
      }
    }
    all.insert(all.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return all;
}

std::vector<FrequentItemset> BruteForceMaximalItemsets(
    const std::vector<data::ItemBag>& transactions, uint32_t minsup) {
  return FilterMaximal(BruteForceFrequentItemsets(transactions, minsup));
}

}  // namespace yver::mining
