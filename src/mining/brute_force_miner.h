#ifndef YVER_MINING_BRUTE_FORCE_MINER_H_
#define YVER_MINING_BRUTE_FORCE_MINER_H_

#include <vector>

#include "data/item_dictionary.h"
#include "mining/itemset.h"

namespace yver::mining {

/// Reference miner for tests: Apriori-style level-wise enumeration of all
/// frequent itemsets. Exponential in the worst case — only use on small
/// inputs.
std::vector<FrequentItemset> BruteForceFrequentItemsets(
    const std::vector<data::ItemBag>& transactions, uint32_t minsup);

/// Reference maximal miner: brute-force frequent itemsets + maximality
/// filter.
std::vector<FrequentItemset> BruteForceMaximalItemsets(
    const std::vector<data::ItemBag>& transactions, uint32_t minsup);

/// Exact support count of an itemset (sorted ascending) over transactions.
uint32_t CountSupport(const std::vector<data::ItemBag>& transactions,
                      const std::vector<data::ItemId>& itemset);

}  // namespace yver::mining

#endif  // YVER_MINING_BRUTE_FORCE_MINER_H_
