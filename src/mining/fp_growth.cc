#include "mining/fp_growth.h"

#include <algorithm>
#include <unordered_map>

#include "mining/fp_tree.h"
#include "mining/maximal_filter.h"
#include "util/check.h"

namespace yver::mining {

namespace {

// An FP-tree whose ranks map back to global item ids.
struct RankedTree {
  FpTree tree;
  std::vector<data::ItemId> rank_to_item;

  explicit RankedTree(uint32_t num_ranks) : tree(num_ranks) {}
};

// Orders candidate (item, frequency) pairs by descending frequency, tie on
// ascending item id, and assigns ranks.
std::vector<data::ItemId> RankItems(
    std::vector<std::pair<data::ItemId, uint32_t>>& freq) {
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<data::ItemId> rank_to_item;
  rank_to_item.reserve(freq.size());
  for (const auto& [item, count] : freq) rank_to_item.push_back(item);
  return rank_to_item;
}

RankedTree BuildInitialTree(const std::vector<data::ItemBag>& transactions,
                            uint32_t minsup) {
  std::unordered_map<data::ItemId, uint32_t> counts;
  for (const auto& bag : transactions) {
    for (data::ItemId item : bag) ++counts[item];
  }
  std::vector<std::pair<data::ItemId, uint32_t>> freq;
  freq.reserve(counts.size());
  for (const auto& [item, count] : counts) {
    if (count >= minsup) freq.emplace_back(item, count);
  }
  std::vector<data::ItemId> rank_to_item = RankItems(freq);
  std::unordered_map<data::ItemId, uint32_t> item_to_rank;
  item_to_rank.reserve(rank_to_item.size());
  for (uint32_t r = 0; r < rank_to_item.size(); ++r) {
    item_to_rank[rank_to_item[r]] = r;
  }
  RankedTree ranked(static_cast<uint32_t>(rank_to_item.size()));
  ranked.rank_to_item = std::move(rank_to_item);
  std::vector<uint32_t> ranks;
  for (const auto& bag : transactions) {
    ranks.clear();
    for (data::ItemId item : bag) {
      auto it = item_to_rank.find(item);
      if (it != item_to_rank.end()) ranks.push_back(it->second);
    }
    if (ranks.empty()) continue;
    std::sort(ranks.begin(), ranks.end());
    ranked.tree.Insert(ranks, 1);
  }
  return ranked;
}

// Builds the conditional tree for `rank` within `parent`: collect the
// prefix path of every node in rank's header chain, recount, filter by
// minsup, re-rank, and insert.
RankedTree BuildConditional(const RankedTree& parent, uint32_t rank,
                            uint32_t minsup) {
  // Conditional pattern base: (path of parent-ranks, count).
  std::vector<std::pair<std::vector<uint32_t>, uint32_t>> base;
  std::vector<uint32_t> cond_counts(rank, 0);  // only ranks < rank can occur
  for (const FpTree::Node* n = parent.tree.Header(rank); n != nullptr;
       n = n->next_in_header) {
    std::vector<uint32_t> path;
    for (const FpTree::Node* p = n->parent;
         p != nullptr && p->rank != FpTree::kRootRank; p = p->parent) {
      path.push_back(p->rank);
      cond_counts[p->rank] += n->count;
    }
    if (!path.empty()) base.emplace_back(std::move(path), n->count);
  }
  std::vector<std::pair<data::ItemId, uint32_t>> freq;
  std::vector<uint32_t> old_rank_to_new(rank, UINT32_MAX);
  for (uint32_t r = 0; r < rank; ++r) {
    if (cond_counts[r] >= minsup) {
      freq.emplace_back(parent.rank_to_item[r], cond_counts[r]);
    }
  }
  std::vector<data::ItemId> rank_to_item = RankItems(freq);
  std::unordered_map<data::ItemId, uint32_t> item_to_new_rank;
  for (uint32_t r = 0; r < rank_to_item.size(); ++r) {
    item_to_new_rank[rank_to_item[r]] = r;
  }
  for (uint32_t r = 0; r < rank; ++r) {
    auto it = item_to_new_rank.find(parent.rank_to_item[r]);
    if (it != item_to_new_rank.end()) old_rank_to_new[r] = it->second;
  }
  RankedTree cond(static_cast<uint32_t>(rank_to_item.size()));
  cond.rank_to_item = std::move(rank_to_item);
  std::vector<uint32_t> ranks;
  for (const auto& [path, count] : base) {
    ranks.clear();
    for (uint32_t old : path) {
      uint32_t nr = old_rank_to_new[old];
      if (nr != UINT32_MAX) ranks.push_back(nr);
    }
    if (ranks.empty()) continue;
    std::sort(ranks.begin(), ranks.end());
    cond.tree.Insert(ranks, count);
  }
  return cond;
}

FrequentItemset MakeItemset(std::vector<data::ItemId> items,
                            uint32_t support) {
  std::sort(items.begin(), items.end());
  return FrequentItemset{std::move(items), support};
}

// ---------------------------------------------------------------------------
// All frequent itemsets.

struct AllMiner {
  const MinerOptions& options;
  std::vector<FrequentItemset> out;
  bool capped = false;

  bool AtCap() const {
    return options.max_itemsets != 0 && out.size() >= options.max_itemsets;
  }

  void Mine(const RankedTree& ranked, std::vector<data::ItemId>& prefix) {
    if (capped) return;
    for (uint32_t rank = ranked.tree.num_ranks(); rank-- > 0;) {
      uint32_t support = ranked.tree.RankSupport(rank);
      if (support < options.minsup) continue;
      prefix.push_back(ranked.rank_to_item[rank]);
      out.push_back(MakeItemset(prefix, support));
      if (AtCap()) {
        capped = true;
        prefix.pop_back();
        return;
      }
      if (options.max_length == 0 || prefix.size() < options.max_length) {
        RankedTree cond = BuildConditional(ranked, rank, options.minsup);
        if (cond.tree.num_ranks() > 0) Mine(cond, prefix);
      }
      prefix.pop_back();
      if (capped) return;
    }
  }
};

// ---------------------------------------------------------------------------
// Maximal frequent itemsets (FPMax-style).

// Stores MFIs and answers "is this candidate a subset of a stored MFI".
class MfiStore {
 public:
  explicit MfiStore(size_t /*num_items_hint*/) {}

  // Candidate must be sorted ascending.
  bool IsSubsumed(const std::vector<data::ItemId>& candidate) const {
    if (candidate.empty()) return !mfis_.empty();
    // Scan the postings of the candidate item with the fewest postings.
    const std::vector<uint32_t>* best = nullptr;
    for (data::ItemId item : candidate) {
      auto it = postings_.find(item);
      if (it == postings_.end()) return false;  // item in no MFI
      if (best == nullptr || it->second.size() < best->size()) {
        best = &it->second;
      }
    }
    for (uint32_t idx : *best) {
      if (mfis_[idx].items.size() >= candidate.size() &&
          IsSubsetOf(candidate, mfis_[idx].items)) {
        return true;
      }
    }
    return false;
  }

  // Inserts if not subsumed. Does not remove previously inserted subsets;
  // the final Harvest() pass filters those out.
  void Insert(FrequentItemset mfi) {
    if (IsSubsumed(mfi.items)) return;
    uint32_t idx = static_cast<uint32_t>(mfis_.size());
    for (data::ItemId item : mfi.items) postings_[item].push_back(idx);
    mfis_.push_back(std::move(mfi));
  }

  // Returns the maximal sets only (later insertions can strictly contain
  // earlier ones).
  std::vector<FrequentItemset> Harvest() {
    std::vector<FrequentItemset> out;
    for (size_t i = 0; i < mfis_.size(); ++i) {
      bool subsumed = false;
      const auto& items = mfis_[i].items;
      if (!items.empty()) {
        const std::vector<uint32_t>* best = nullptr;
        for (data::ItemId item : items) {
          const auto& plist = postings_[item];
          if (best == nullptr || plist.size() < best->size()) best = &plist;
        }
        for (uint32_t idx : *best) {
          if (idx != i && mfis_[idx].items.size() > items.size() &&
              IsSubsetOf(items, mfis_[idx].items)) {
            subsumed = true;
            break;
          }
        }
      }
      if (!subsumed) out.push_back(std::move(mfis_[i]));
    }
    return out;
  }

  size_t size() const { return mfis_.size(); }

 private:
  std::vector<FrequentItemset> mfis_;
  std::unordered_map<data::ItemId, std::vector<uint32_t>> postings_;
};

struct MaxMiner {
  const MinerOptions& options;
  MfiStore store;
  bool capped = false;

  explicit MaxMiner(const MinerOptions& opts) : options(opts), store(0) {}

  bool AtCap() const {
    return options.max_itemsets != 0 && store.size() >= options.max_itemsets;
  }

  void Mine(const RankedTree& ranked, std::vector<data::ItemId>& prefix,
            uint32_t prefix_support) {
    if (capped) return;
    if (ranked.tree.num_ranks() == 0) {
      if (!prefix.empty()) {
        store.Insert(MakeItemset(prefix, prefix_support));
      }
      return;
    }
    // FPMax pruning: if head ∪ tail is already covered, nothing new here.
    {
      std::vector<data::ItemId> head_tail = prefix;
      head_tail.insert(head_tail.end(), ranked.rank_to_item.begin(),
                       ranked.rank_to_item.end());
      std::sort(head_tail.begin(), head_tail.end());
      if (store.IsSubsumed(head_tail)) return;
    }
    if (ranked.tree.IsSinglePath()) {
      // The whole path joined with the prefix is the unique maximal set of
      // this branch; its support is the count at the path's deepest node.
      auto path = ranked.tree.SinglePath();
      std::vector<data::ItemId> items = prefix;
      uint32_t support = prefix_support;
      for (const auto& [rank, count] : path) {
        items.push_back(ranked.rank_to_item[rank]);
        support = count;  // counts are non-increasing down the path
      }
      store.Insert(MakeItemset(std::move(items), support));
      return;
    }
    for (uint32_t rank = ranked.tree.num_ranks(); rank-- > 0;) {
      if (capped || AtCap()) {
        capped = true;
        return;
      }
      uint32_t support = ranked.tree.RankSupport(rank);
      if (support < options.minsup) continue;
      prefix.push_back(ranked.rank_to_item[rank]);
      RankedTree cond = BuildConditional(ranked, rank, options.minsup);
      Mine(cond, prefix, support);
      prefix.pop_back();
    }
  }
};

}  // namespace

std::vector<FrequentItemset> MineFrequentItemsets(
    const std::vector<data::ItemBag>& transactions,
    const MinerOptions& options) {
  YVER_CHECK(options.minsup >= 1);
  RankedTree ranked = BuildInitialTree(transactions, options.minsup);
  AllMiner miner{options, {}, false};
  std::vector<data::ItemId> prefix;
  miner.Mine(ranked, prefix);
  return std::move(miner.out);
}

namespace {

// FPClose-style closed miner (Grahne & Zhu): depth-first over ranks with
// two accelerations — *closure jumps* (items whose conditional support
// equals the prefix support belong to every supporting transaction and
// join the prefix immediately) and *subsumption pruning* (a prefix
// contained in a known closed set of equal support cannot lead to new
// closed sets). A plain enumerate-then-filter approach is exponential
// here: near-duplicate records share dozens of items, so all-frequent-
// itemset enumeration blows up as 2^|shared|.
class ClosedMiner {
 public:
  explicit ClosedMiner(const MinerOptions& options) : options_(options) {}

  bool AtCap() const {
    return options_.max_itemsets != 0 && cfis_.size() >= options_.max_itemsets;
  }

  void Mine(const RankedTree& ranked, std::vector<data::ItemId>& prefix,
            std::vector<char>& in_prefix) {
    if (AtCap()) return;
    for (uint32_t rank = ranked.tree.num_ranks(); rank-- > 0;) {
      data::ItemId item = ranked.rank_to_item[rank];
      if (in_prefix[item]) continue;
      uint32_t support = ranked.tree.RankSupport(rank);
      if (support < options_.minsup) continue;
      RankedTree cond = BuildConditional(ranked, rank, options_.minsup);
      // Closure jump: conditional items occurring in every supporting
      // transaction extend the prefix at the same support.
      std::vector<data::ItemId> added = {item};
      for (uint32_t r2 = 0; r2 < cond.tree.num_ranks(); ++r2) {
        if (cond.tree.RankSupport(r2) == support &&
            !in_prefix[cond.rank_to_item[r2]]) {
          added.push_back(cond.rank_to_item[r2]);
        }
      }
      for (data::ItemId id : added) {
        prefix.push_back(id);
        in_prefix[id] = 1;
      }
      std::vector<data::ItemId> candidate = prefix;
      std::sort(candidate.begin(), candidate.end());
      if (!IsSubsumed(candidate, support)) {
        Insert(candidate, support);
        Mine(cond, prefix, in_prefix);
      }
      for (data::ItemId id : added) {
        in_prefix[id] = 0;
      }
      prefix.resize(prefix.size() - added.size());
      if (AtCap()) return;
    }
  }

  std::vector<FrequentItemset> Harvest() { return std::move(cfis_); }

 private:
  bool IsSubsumed(const std::vector<data::ItemId>& candidate,
                  uint32_t support) const {
    auto it = by_support_.find(support);
    if (it == by_support_.end()) return false;
    // Scan the postings of the candidate's rarest item at this support.
    const std::vector<uint32_t>* best = nullptr;
    for (data::ItemId item : candidate) {
      auto pit = it->second.find(item);
      if (pit == it->second.end()) return false;
      if (best == nullptr || pit->second.size() < best->size()) {
        best = &pit->second;
      }
    }
    for (uint32_t idx : *best) {
      if (cfis_[idx].items.size() >= candidate.size() &&
          IsSubsetOf(candidate, cfis_[idx].items)) {
        return true;
      }
    }
    return false;
  }

  void Insert(std::vector<data::ItemId> items, uint32_t support) {
    uint32_t idx = static_cast<uint32_t>(cfis_.size());
    auto& postings = by_support_[support];
    for (data::ItemId item : items) postings[item].push_back(idx);
    cfis_.push_back(FrequentItemset{std::move(items), support});
  }

  const MinerOptions& options_;
  std::vector<FrequentItemset> cfis_;
  // support -> item -> CFI indices containing it at that support.
  std::unordered_map<uint32_t,
                     std::unordered_map<data::ItemId, std::vector<uint32_t>>>
      by_support_;
};

}  // namespace

std::vector<FrequentItemset> MineClosedItemsets(
    const std::vector<data::ItemBag>& transactions,
    const MinerOptions& options) {
  YVER_CHECK(options.minsup >= 1);
  RankedTree ranked = BuildInitialTree(transactions, options.minsup);
  ClosedMiner miner(options);
  std::vector<data::ItemId> prefix;
  // Item-id indexed presence mask; dictionary ids are dense.
  data::ItemId max_item = 0;
  for (data::ItemId item : ranked.rank_to_item) {
    max_item = std::max(max_item, item);
  }
  std::vector<char> in_prefix(static_cast<size_t>(max_item) + 1, 0);
  miner.Mine(ranked, prefix, in_prefix);
  return miner.Harvest();
}

std::vector<FrequentItemset> MineMaximalItemsets(
    const std::vector<data::ItemBag>& transactions,
    const MinerOptions& options, util::ThreadPool* pool) {
  YVER_CHECK(options.minsup >= 1);
  RankedTree ranked = BuildInitialTree(transactions, options.minsup);
  const uint32_t num_ranks = ranked.tree.num_ranks();
  if (num_ranks == 0) return {};
  if (ranked.tree.IsSinglePath()) {
    // The whole tree is one path: its deepest frequent prefix is the
    // unique MFI.
    std::vector<data::ItemId> items;
    uint32_t support = 0;
    for (const auto& [rank, count] : ranked.tree.SinglePath()) {
      items.push_back(ranked.rank_to_item[rank]);
      support = count;
    }
    return {MakeItemset(std::move(items), support)};
  }

  // One task per frequent-item rank, walked in the serial FPMax order
  // (least frequent rank first). Each task mines rank's conditional
  // projection with a task-local store; projections only read the shared
  // initial tree, so tasks are independent. Task t's output lands in
  // per_rank[t], making the merge order scheduling-invariant.
  std::vector<std::vector<FrequentItemset>> per_rank(num_ranks);
  auto mine_rank = [&](size_t task) {
    uint32_t rank = num_ranks - 1 - static_cast<uint32_t>(task);
    uint32_t support = ranked.tree.RankSupport(rank);
    if (support < options.minsup) return;
    MaxMiner miner(options);
    std::vector<data::ItemId> prefix = {ranked.rank_to_item[rank]};
    RankedTree cond = BuildConditional(ranked, rank, options.minsup);
    miner.Mine(cond, prefix, support);
    per_rank[task] = miner.store.Harvest();
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(num_ranks, mine_rank);
  } else {
    for (size_t task = 0; task < num_ranks; ++task) mine_rank(task);
  }

  // Cross-rank maximality filter over the rank-ordered concatenation. A
  // superset always has a max-rank >= its subsets' and therefore lives in
  // an earlier (or the same) task, so the insert-time subsumption check of
  // MfiStore sees every potential subsumer before its victims; the final
  // Harvest keeps the surviving sets in insertion order — exactly the
  // serial FPMax discovery order.
  MfiStore store(0);
  for (auto& rank_mfis : per_rank) {
    for (auto& mfi : rank_mfis) store.Insert(std::move(mfi));
  }
  std::vector<FrequentItemset> out = store.Harvest();
  if (options.max_itemsets != 0 && out.size() > options.max_itemsets) {
    out.resize(options.max_itemsets);
  }
  return out;
}

}  // namespace yver::mining
