#ifndef YVER_MINING_FP_GROWTH_H_
#define YVER_MINING_FP_GROWTH_H_

#include <cstdint>
#include <vector>

#include "data/item_dictionary.h"
#include "mining/itemset.h"
#include "util/thread_pool.h"

namespace yver::mining {

/// Options controlling the FP-Growth miners.
struct MinerOptions {
  /// Minimum support (number of transactions) for a frequent itemset.
  uint32_t minsup = 2;

  /// Safety cap on the number of reported itemsets (0 = unlimited). When
  /// hit, mining stops early; MFIBlocks treats this as a signal to tighten
  /// frequent-item pruning.
  size_t max_itemsets = 0;

  /// Maximum itemset length to explore (0 = unlimited). Only honored by
  /// MineFrequentItemsets.
  size_t max_length = 0;
};

/// Mines all frequent itemsets (support >= minsup, non-empty) from the
/// transaction bags via FP-Growth. Itemset items are sorted ascending by
/// ItemId. Intended for moderate inputs and as a reference for the maximal
/// miner; MFIBlocks uses MineMaximalItemsets.
std::vector<FrequentItemset> MineFrequentItemsets(
    const std::vector<data::ItemBag>& transactions,
    const MinerOptions& options);

/// Mines the maximal frequent itemsets (MFIs) via FP-Growth with
/// FPMax-style subsumption pruning: a branch whose head ∪ tail is contained
/// in a known MFI cannot yield a new maximal set and is skipped.
///
/// When `pool` is non-null, the conditional FP-trees of the initial tree's
/// frequent-item ranks are mined in parallel (each rank's projection is
/// independent), per-rank itemset vectors are concatenated in the serial
/// rank order, and a maximality filter removes cross-rank subsumed sets.
/// The returned vector — contents AND order — is identical for every pool
/// size including nullptr: it equals the serial FPMax output (the filter
/// discards exactly the candidates the serial global store would have
/// pruned). One caveat: with a non-zero `max_itemsets` cap the parallel
/// decomposition applies the cap per rank and then truncates the merged
/// list, so a capped run may return a different (still deterministic)
/// subset than the pre-parallel serial implementation did.
std::vector<FrequentItemset> MineMaximalItemsets(
    const std::vector<data::ItemBag>& transactions,
    const MinerOptions& options, util::ThreadPool* pool = nullptr);

/// Mines the closed frequent itemsets (CFIs): frequent itemsets with no
/// strict superset of equal support. Implemented as a full FP-Growth
/// enumeration plus a closedness filter — more expensive than the maximal
/// miner but lossless on support structure. Used by the MFI-vs-CFI
/// blocking ablation.
std::vector<FrequentItemset> MineClosedItemsets(
    const std::vector<data::ItemBag>& transactions,
    const MinerOptions& options);

}  // namespace yver::mining

#endif  // YVER_MINING_FP_GROWTH_H_
