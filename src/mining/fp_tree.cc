#include "mining/fp_tree.h"

#include "util/check.h"

namespace yver::mining {

FpTree::FpTree(uint32_t num_ranks)
    : headers_(num_ranks, nullptr), rank_support_(num_ranks, 0) {
  root_ = NewNode(kRootRank, nullptr);
}

FpTree::Node* FpTree::NewNode(uint32_t rank, Node* parent) {
  nodes_.push_back(std::make_unique<Node>());
  Node* n = nodes_.back().get();
  n->rank = rank;
  n->parent = parent;
  return n;
}

void FpTree::Insert(const std::vector<uint32_t>& ranks, uint32_t count) {
  Node* cur = root_;
  for (uint32_t rank : ranks) {
    YVER_CHECK(rank < headers_.size());
    rank_support_[rank] += count;
    // Find a child with this rank.
    Node* child = cur->first_child;
    while (child != nullptr && child->rank != rank) {
      child = child->next_sibling;
    }
    if (child == nullptr) {
      child = NewNode(rank, cur);
      child->next_sibling = cur->first_child;
      cur->first_child = child;
      child->next_in_header = headers_[rank];
      headers_[rank] = child;
    }
    child->count += count;
    cur = child;
  }
}

bool FpTree::IsSinglePath() const {
  const Node* cur = root_;
  while (cur != nullptr) {
    if (cur->first_child != nullptr && cur->first_child->next_sibling) {
      return false;
    }
    cur = cur->first_child;
  }
  return true;
}

std::vector<std::pair<uint32_t, uint32_t>> FpTree::SinglePath() const {
  YVER_CHECK(IsSinglePath());
  std::vector<std::pair<uint32_t, uint32_t>> path;
  const Node* cur = root_->first_child;
  while (cur != nullptr) {
    path.emplace_back(cur->rank, cur->count);
    cur = cur->first_child;
  }
  return path;
}

}  // namespace yver::mining
