#ifndef YVER_MINING_FP_TREE_H_
#define YVER_MINING_FP_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/item_dictionary.h"

namespace yver::mining {

/// Frequent-pattern tree (Han et al.), the core data structure of Borgelt's
/// FP-Growth which the paper uses to mine maximal frequent itemsets (§4.1,
/// Fig. 9).
///
/// Items inside the tree are *ranks*: dense indices assigned by descending
/// frequency of the frequent items of the underlying transaction set. The
/// owner (FP-Growth) keeps the rank -> ItemId mapping.
class FpTree {
 public:
  struct Node {
    uint32_t rank;           // item rank; kRootRank for the root
    uint32_t count = 0;      // transactions through this node
    Node* parent = nullptr;  // nullptr for root
    Node* next_sibling = nullptr;   // first-child/next-sibling chain
    Node* first_child = nullptr;
    Node* next_in_header = nullptr;  // header-table chain for this rank
  };

  static constexpr uint32_t kRootRank = UINT32_MAX;

  /// Creates an empty tree with `num_ranks` distinct item ranks.
  explicit FpTree(uint32_t num_ranks);

  FpTree(const FpTree&) = delete;
  FpTree& operator=(const FpTree&) = delete;
  FpTree(FpTree&&) = default;
  FpTree& operator=(FpTree&&) = default;

  /// Inserts a transaction given as ranks sorted ascending (most frequent
  /// first), with multiplicity `count`.
  void Insert(const std::vector<uint32_t>& ranks, uint32_t count);

  /// Root node (never null).
  const Node* root() const { return root_; }

  /// Head of the header chain for a rank (may be null).
  const Node* Header(uint32_t rank) const { return headers_[rank]; }

  /// Total support of a rank across the tree.
  uint32_t RankSupport(uint32_t rank) const { return rank_support_[rank]; }

  uint32_t num_ranks() const {
    return static_cast<uint32_t>(headers_.size());
  }

  /// True when the tree consists of a single downward path.
  bool IsSinglePath() const;

  /// The ranks along the single path, top-down. Requires IsSinglePath().
  /// Also outputs the count at each node.
  std::vector<std::pair<uint32_t, uint32_t>> SinglePath() const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  Node* NewNode(uint32_t rank, Node* parent);

  std::vector<std::unique_ptr<Node>> nodes_;  // owns all nodes incl. root
  Node* root_ = nullptr;
  std::vector<Node*> headers_;
  std::vector<uint32_t> rank_support_;
};

}  // namespace yver::mining

#endif  // YVER_MINING_FP_TREE_H_
