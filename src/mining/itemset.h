#ifndef YVER_MINING_ITEMSET_H_
#define YVER_MINING_ITEMSET_H_

#include <cstdint>
#include <vector>

#include "data/item_dictionary.h"

namespace yver::mining {

/// A frequent itemset together with its support count. Items are sorted
/// ascending by id.
struct FrequentItemset {
  std::vector<data::ItemId> items;
  uint32_t support = 0;

  friend bool operator==(const FrequentItemset&,
                         const FrequentItemset&) = default;
};

/// True when `sub` ⊆ `super`; both must be sorted ascending.
bool IsSubsetOf(const std::vector<data::ItemId>& sub,
                const std::vector<data::ItemId>& super);

}  // namespace yver::mining

#endif  // YVER_MINING_ITEMSET_H_
