#include "mining/maximal_filter.h"

#include <algorithm>
#include <map>

namespace yver::mining {

bool IsSubsetOf(const std::vector<data::ItemId>& sub,
                const std::vector<data::ItemId>& super) {
  if (sub.size() > super.size()) return false;
  size_t i = 0;
  size_t j = 0;
  while (i < sub.size() && j < super.size()) {
    if (sub[i] == super[j]) {
      ++i;
      ++j;
    } else if (sub[i] > super[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return i == sub.size();
}

std::vector<FrequentItemset> FilterMaximal(
    std::vector<FrequentItemset> itemsets) {
  // Sort descending by size so potential supersets come first.
  std::sort(itemsets.begin(), itemsets.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items.size() > b.items.size();
            });
  std::vector<FrequentItemset> maximal;
  for (auto& candidate : itemsets) {
    bool subsumed = false;
    for (const auto& kept : maximal) {
      if (kept.items.size() > candidate.items.size() &&
          IsSubsetOf(candidate.items, kept.items)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) maximal.push_back(std::move(candidate));
  }
  return maximal;
}

std::vector<FrequentItemset> FilterClosed(
    std::vector<FrequentItemset> itemsets) {
  // Only itemsets of equal support can witness non-closedness.
  std::map<uint32_t, std::vector<size_t>> by_support;
  for (size_t i = 0; i < itemsets.size(); ++i) {
    by_support[itemsets[i].support].push_back(i);
  }
  std::vector<size_t> kept;
  for (const auto& [support, group] : by_support) {
    for (size_t i : group) {
      bool subsumed = false;
      for (size_t j : group) {
        if (i == j) continue;
        if (itemsets[j].items.size() > itemsets[i].items.size() &&
            IsSubsetOf(itemsets[i].items, itemsets[j].items)) {
          subsumed = true;
          break;
        }
      }
      if (!subsumed) kept.push_back(i);
    }
  }
  std::vector<FrequentItemset> closed;
  closed.reserve(kept.size());
  for (size_t i : kept) closed.push_back(std::move(itemsets[i]));
  return closed;
}

}  // namespace yver::mining
