#ifndef YVER_MINING_MAXIMAL_FILTER_H_
#define YVER_MINING_MAXIMAL_FILTER_H_

#include <vector>

#include "mining/itemset.h"

namespace yver::mining {

/// Reference maximality filter: keeps the itemsets that are not a strict
/// subset of any other itemset in the input. Quadratic; used for testing
/// the FPMax pruning inside MineMaximalItemsets and by the brute-force
/// miner.
std::vector<FrequentItemset> FilterMaximal(
    std::vector<FrequentItemset> itemsets);

/// Closedness filter: keeps the itemsets with no strict superset of the
/// SAME support in the input. The input must be a complete frequent-
/// itemset collection (e.g. from MineFrequentItemsets) for the result to
/// be the closed frequent itemsets. Closed sets subsume maximal sets and
/// retain exact support information — the alternative blocking-key family
/// discussed for MFIBlocks (maximality trades completeness for far fewer
/// keys).
std::vector<FrequentItemset> FilterClosed(
    std::vector<FrequentItemset> itemsets);

}  // namespace yver::mining

#endif  // YVER_MINING_MAXIMAL_FILTER_H_
