#include "ml/active_learning.h"

#include <algorithm>
#include <cmath>

#include "ml/metrics.h"
#include "util/check.h"
#include "util/rng.h"

namespace yver::ml {

ActiveLearningResult RunActiveLearning(
    const std::vector<Instance>& pool, const std::vector<Instance>& holdout,
    const ActiveLearningOptions& options) {
  YVER_CHECK(!pool.empty());
  YVER_CHECK(!holdout.empty());
  util::Rng rng(options.seed);

  std::vector<size_t> unlabeled(pool.size());
  for (size_t i = 0; i < unlabeled.size(); ++i) unlabeled[i] = i;
  rng.Shuffle(unlabeled);

  std::vector<Instance> labeled;
  auto take = [&](size_t position_in_unlabeled) {
    size_t pool_index = unlabeled[position_in_unlabeled];
    unlabeled.erase(unlabeled.begin() +
                    static_cast<long>(position_in_unlabeled));
    Instance inst = pool[pool_index];
    if (inst.tag == ExpertTag::kMaybe) return;  // expert cannot decide
    inst.label = (inst.tag == ExpertTag::kYes ||
                  inst.tag == ExpertTag::kProbablyYes)
                     ? +1
                     : -1;
    labeled.push_back(std::move(inst));
  };

  // Seed with random labels.
  for (size_t i = 0; i < options.initial_labels && !unlabeled.empty(); ++i) {
    take(unlabeled.size() - 1);
  }

  ActiveLearningResult result;
  for (;;) {
    result.model = TrainAdTree(labeled, options.trainer);
    double accuracy = EvaluateBinary(result.model, holdout).Accuracy();
    result.learning_curve.emplace_back(labeled.size(), accuracy);
    if (labeled.size() >= options.max_labels || unlabeled.empty()) break;

    for (size_t b = 0; b < options.batch_size && !unlabeled.empty(); ++b) {
      size_t pick;
      if (options.strategy == QueryStrategy::kRandom) {
        pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(unlabeled.size()) - 1));
      } else {
        // Uncertainty sampling: smallest |score| under the current model.
        pick = 0;
        double best = std::numeric_limits<double>::infinity();
        for (size_t u = 0; u < unlabeled.size(); ++u) {
          double margin =
              std::abs(result.model.Score(pool[unlabeled[u]].features));
          if (margin < best) {
            best = margin;
            pick = u;
          }
        }
      }
      take(pick);
    }
  }
  return result;
}

}  // namespace yver::ml
