#ifndef YVER_ML_ACTIVE_LEARNING_H_
#define YVER_ML_ACTIVE_LEARNING_H_

#include <cstdint>
#include <vector>

#include "ml/adtree_trainer.h"
#include "ml/instances.h"

namespace yver::ml {

/// Active-learning tagging loop. The deployment's tagging application
/// (Fig. 7) presented MFIBlocks candidates to the archival experts sorted
/// by similarity; active learning instead queries the pairs the current
/// model is least certain about (Sarawagi & Bhamidipaty's interactive
/// deduplication — the paper's reference [26]), stretching a limited
/// expert-tagging budget further.
enum class QueryStrategy : uint8_t {
  kUncertainty = 0,  // label the pair with the smallest |ADT score|
  kRandom,           // label a random unlabeled pair (baseline)
};

struct ActiveLearningOptions {
  QueryStrategy strategy = QueryStrategy::kUncertainty;
  size_t initial_labels = 50;
  size_t batch_size = 50;
  size_t max_labels = 500;
  AdTreeTrainerOptions trainer;
  uint64_t seed = 1;
};

struct ActiveLearningResult {
  AdTree model;
  /// (number of labels used, holdout accuracy) after each retraining.
  std::vector<std::pair<size_t, double>> learning_curve;
};

/// Runs the loop over an unlabeled pool whose `tag` fields act as the
/// queryable expert; accuracy is tracked on the labeled holdout.
/// Maybe-tagged pool pairs are skipped when queried (the expert cannot
/// decide), mirroring the omitted-Maybe training condition.
ActiveLearningResult RunActiveLearning(
    const std::vector<Instance>& pool, const std::vector<Instance>& holdout,
    const ActiveLearningOptions& options);

}  // namespace yver::ml

#endif  // YVER_ML_ACTIVE_LEARNING_H_
