#include "ml/adtree.h"

#include <cstdio>

#include "util/check.h"

namespace yver::ml {

namespace {

// Nominal value names for printing: trinary name agreement or binary.
const char* NominalName(const features::FeatureDef& def, int value) {
  if (def.num_nominal_values == 3) {
    switch (value) {
      case 0:
        return "no";
      case 1:
        return "partial";
      case 2:
        return "yes";
    }
  } else {
    switch (value) {
      case 0:
        return "no";
      case 1:
        return "yes";
    }
  }
  return "?";
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string AdtCondition::ToString() const {
  const auto& def = features::FeatureSchema::Get().def(feature);
  if (is_nominal) {
    return def.name + " = " + NominalName(def, nominal_value);
  }
  return def.name + " < " + FormatValue(threshold);
}

AdTree::AdTree(double prior) {
  predictions_.push_back(PredictionNode{prior, {}});
}

int AdTree::AddSplitter(int parent_prediction, const AdtCondition& condition,
                        double true_value, double false_value, int order) {
  YVER_CHECK(parent_prediction >= 0 &&
             static_cast<size_t>(parent_prediction) < predictions_.size());
  int splitter_index = static_cast<int>(splitters_.size());
  SplitterNode splitter;
  splitter.condition = condition;
  splitter.order = order;
  splitter.true_prediction = static_cast<int>(predictions_.size());
  predictions_.push_back(PredictionNode{true_value, {}});
  splitter.false_prediction = static_cast<int>(predictions_.size());
  predictions_.push_back(PredictionNode{false_value, {}});
  splitters_.push_back(splitter);
  predictions_[parent_prediction].child_splitters.push_back(splitter_index);
  return splitter_index;
}

double AdTree::Score(const features::FeatureVector& fv) const {
  YVER_CHECK(!predictions_.empty());
  double sum = 0.0;
  ScoreNode(root(), fv, &sum);
  return sum;
}

std::vector<double> AdTree::ScoreBatch(
    const std::vector<features::FeatureVector>& fvs,
    util::ThreadPool* pool) const {
  std::vector<double> scores(fvs.size(), 0.0);
  auto score_range = [this, &fvs, &scores](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) scores[i] = Score(fvs[i]);
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    score_range(0, fvs.size());
  } else {
    pool->ParallelForChunked(fvs.size(), score_range);
  }
  return scores;
}

void AdTree::ScoreNode(int prediction, const features::FeatureVector& fv,
                       double* sum) const {
  const PredictionNode& node = predictions_[prediction];
  *sum += node.value;
  for (int s : node.child_splitters) {
    const SplitterNode& splitter = splitters_[s];
    if (fv.IsMissing(splitter.condition.feature)) continue;
    double value = fv.values[splitter.condition.feature];
    int next = splitter.condition.Evaluate(value) ? splitter.true_prediction
                                                  : splitter.false_prediction;
    ScoreNode(next, fv, sum);
  }
}

std::vector<size_t> AdTree::UsedFeatures() const {
  std::vector<bool> used(features::FeatureSchema::Get().size(), false);
  for (const auto& s : splitters_) used[s.condition.feature] = true;
  std::vector<size_t> out;
  for (size_t i = 0; i < used.size(); ++i) {
    if (used[i]) out.push_back(i);
  }
  return out;
}

std::string AdTree::ToString() const {
  std::string out = ": " + FormatValue(predictions_[root()].value) + "\n";
  Print(root(), 1, &out);
  return out;
}

void AdTree::Print(int prediction, int depth, std::string* out) const {
  const PredictionNode& node = predictions_[prediction];
  for (int s : node.child_splitters) {
    const SplitterNode& splitter = splitters_[s];
    const auto& def =
        features::FeatureSchema::Get().def(splitter.condition.feature);
    std::string indent;
    for (int d = 0; d < depth; ++d) indent += "— ";
    std::string cond_true = splitter.condition.ToString();
    std::string cond_false;
    if (splitter.condition.is_nominal) {
      cond_false = def.name + " != " +
                   NominalName(def, splitter.condition.nominal_value);
    } else {
      cond_false =
          def.name + " >= " + FormatValue(splitter.condition.threshold);
    }
    char order_buf[16];
    std::snprintf(order_buf, sizeof(order_buf), "(%d)", splitter.order);
    *out += indent + order_buf + cond_true + ": " +
            FormatValue(predictions_[splitter.true_prediction].value) + "\n";
    Print(splitter.true_prediction, depth + 1, out);
    *out += indent + order_buf + cond_false + ": " +
            FormatValue(predictions_[splitter.false_prediction].value) + "\n";
    Print(splitter.false_prediction, depth + 1, out);
  }
}

}  // namespace yver::ml
