#ifndef YVER_ML_ADTREE_H_
#define YVER_ML_ADTREE_H_

#include <string>
#include <vector>

#include "features/feature_schema.h"
#include "util/thread_pool.h"

namespace yver::ml {

/// A splitter condition over one feature. Numeric features test
/// `value < threshold`; nominal features test `value == nominal_value`.
struct AdtCondition {
  size_t feature = 0;
  bool is_nominal = false;
  double threshold = 0.0;
  int nominal_value = 0;

  /// Evaluates the condition on a non-missing value.
  bool Evaluate(double value) const {
    return is_nominal ? static_cast<int>(value) == nominal_value
                      : value < threshold;
  }

  /// Human-readable form, e.g. "sameFFN = no" or "MFNdist < 0.728".
  std::string ToString() const;
};

/// Alternating decision tree (Freund & Mason 1999).
///
/// The model alternates prediction nodes (real-valued confidence
/// contributions) and splitter nodes (decision conditions). An instance's
/// score is the sum of the prediction values of every reachable prediction
/// node; the sign classifies, the magnitude ranks (the paper's ranked
/// resolution, §4.2). A splitter over a missing feature is simply not
/// descended — "the computation considers only reachable decision nodes".
class AdTree {
 public:
  struct SplitterNode {
    AdtCondition condition;
    int order = 0;          // 1-based boosting round, for printing
    int true_prediction = -1;
    int false_prediction = -1;
  };
  struct PredictionNode {
    double value = 0.0;
    std::vector<int> child_splitters;
  };

  AdTree() = default;

  /// Creates a tree with only the root prediction (the prior).
  explicit AdTree(double prior);

  /// Adds a splitter under the given prediction node; returns its index.
  /// Also creates the true/false prediction children.
  int AddSplitter(int parent_prediction, const AdtCondition& condition,
                  double true_value, double false_value, int order);

  /// Classification score: sum of reachable prediction values.
  double Score(const features::FeatureVector& fv) const;

  /// Scores a batch of vectors: result[i] == Score(fvs[i]). With a pool
  /// the batch is chunked across workers; scoring is a pure function of
  /// one vector, so the output is bit-identical for any thread count.
  std::vector<double> ScoreBatch(const std::vector<features::FeatureVector>& fvs,
                                 util::ThreadPool* pool = nullptr) const;

  /// Binary decision at threshold 0: score > 0 is a match (§5.2).
  bool Classify(const features::FeatureVector& fv) const {
    return Score(fv) > 0.0;
  }

  /// Number of splitter nodes (boosting rounds accepted).
  size_t num_splitters() const { return splitters_.size(); }

  /// True for a default-constructed tree with no prior and no splitters —
  /// the "no deployed model" state; Score() on such a tree aborts, so
  /// callers with an optional model branch on this instead.
  bool empty() const { return predictions_.empty(); }

  /// Indices of the features actually used by the model.
  std::vector<size_t> UsedFeatures() const;

  /// Multi-line rendering in the layout of the paper's Tables 7/8:
  ///   : -0.289
  ///   — (1)sameFFN = no: -1.314
  ///   — — (6)MFNdist < 0.728: -0.718
  std::string ToString() const;

  const std::vector<PredictionNode>& predictions() const {
    return predictions_;
  }
  const std::vector<SplitterNode>& splitters() const { return splitters_; }
  int root() const { return 0; }

 private:
  void ScoreNode(int prediction, const features::FeatureVector& fv,
                 double* sum) const;
  void Print(int prediction, int depth, std::string* out) const;

  std::vector<PredictionNode> predictions_;
  std::vector<SplitterNode> splitters_;
};

}  // namespace yver::ml

#endif  // YVER_ML_ADTREE_H_
