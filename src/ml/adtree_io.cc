#include "ml/adtree_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace yver::ml {

namespace {
constexpr char kMagic[] = "yver-adtree v1";

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Recovers the parent prediction index of each splitter by scanning the
// prediction nodes' child lists.
std::vector<int> ParentOfSplitters(const AdTree& tree) {
  std::vector<int> parent(tree.splitters().size(), -1);
  for (size_t p = 0; p < tree.predictions().size(); ++p) {
    for (int s : tree.predictions()[p].child_splitters) {
      parent[static_cast<size_t>(s)] = static_cast<int>(p);
    }
  }
  return parent;
}

}  // namespace

std::string SerializeAdTree(const AdTree& tree) {
  std::string out = kMagic;
  out.push_back('\n');
  out += "prior " + FormatDouble(tree.predictions()[tree.root()].value) +
         "\n";
  auto parents = ParentOfSplitters(tree);
  for (size_t i = 0; i < tree.splitters().size(); ++i) {
    const auto& s = tree.splitters()[i];
    out += "splitter " + std::to_string(s.order) + " " +
           std::to_string(parents[i]) + " " +
           (s.condition.is_nominal ? "M" : "N") + " " +
           std::to_string(s.condition.feature) + " " +
           (s.condition.is_nominal
                ? std::to_string(s.condition.nominal_value)
                : FormatDouble(s.condition.threshold)) +
           " " + FormatDouble(tree.predictions()[s.true_prediction].value) +
           " " + FormatDouble(tree.predictions()[s.false_prediction].value) +
           "\n";
  }
  return out;
}

std::optional<AdTree> ParseAdTree(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || util::Trim(line) != kMagic) {
    return std::nullopt;
  }
  if (!std::getline(in, line)) return std::nullopt;
  auto prior_fields = util::SplitWhitespace(line);
  if (prior_fields.size() != 2 || prior_fields[0] != "prior") {
    return std::nullopt;
  }
  AdTree tree(std::strtod(prior_fields[1].c_str(), nullptr));
  const size_t num_features = features::FeatureSchema::Get().size();
  while (std::getline(in, line)) {
    if (util::Trim(line).empty()) continue;
    auto fields = util::SplitWhitespace(line);
    if (fields.size() != 8 || fields[0] != "splitter") return std::nullopt;
    AdtCondition cond;
    int order = std::atoi(fields[1].c_str());
    int parent = std::atoi(fields[2].c_str());
    if (fields[3] != "N" && fields[3] != "M") return std::nullopt;
    cond.is_nominal = fields[3] == "M";
    cond.feature = static_cast<size_t>(std::atoll(fields[4].c_str()));
    if (cond.feature >= num_features) return std::nullopt;
    if (cond.is_nominal) {
      cond.nominal_value = std::atoi(fields[5].c_str());
    } else {
      cond.threshold = std::strtod(fields[5].c_str(), nullptr);
    }
    double true_value = std::strtod(fields[6].c_str(), nullptr);
    double false_value = std::strtod(fields[7].c_str(), nullptr);
    if (parent < 0 ||
        static_cast<size_t>(parent) >= tree.predictions().size()) {
      return std::nullopt;
    }
    tree.AddSplitter(parent, cond, true_value, false_value, order);
  }
  return tree;
}

bool SaveAdTree(const AdTree& tree, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << SerializeAdTree(tree);
  return static_cast<bool>(f);
}

std::optional<AdTree> LoadAdTree(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ParseAdTree(ss.str());
}

}  // namespace yver::ml
