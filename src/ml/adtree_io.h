#ifndef YVER_ML_ADTREE_IO_H_
#define YVER_ML_ADTREE_IO_H_

#include <optional>
#include <string>

#include "ml/adtree.h"

namespace yver::ml {

/// Text serialization of ADTree models, so a model trained on the tagged
/// subset can be deployed against the full corpus (the paper trained on
/// the Italy set and intends to apply the model generally).
///
/// Format (line oriented, versioned):
///   yver-adtree v1
///   prior <value>
///   splitter <order> <parent_prediction> N|M <feature_index>
///       <threshold_or_nominal> <true_value> <false_value>   (one line)
/// Splitters appear in insertion order; prediction node indices are
/// implied by that order (true child = 1 + 2*i, false child = 2 + 2*i).
std::string SerializeAdTree(const AdTree& tree);

/// Parses a serialized model; nullopt on malformed input or feature
/// indices outside the current schema.
std::optional<AdTree> ParseAdTree(const std::string& text);

/// File helpers; return false / nullopt on I/O failure.
bool SaveAdTree(const AdTree& tree, const std::string& path);
std::optional<AdTree> LoadAdTree(const std::string& path);

}  // namespace yver::ml

#endif  // YVER_ML_ADTREE_IO_H_
