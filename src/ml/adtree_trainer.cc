#include "ml/adtree_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace yver::ml {

namespace {

// Candidate split conditions for one feature.
struct FeatureCandidates {
  std::vector<AdtCondition> conditions;
};

std::vector<FeatureCandidates> BuildCandidates(
    const std::vector<Instance>& instances, size_t max_numeric_thresholds) {
  const auto& schema = features::FeatureSchema::Get();
  std::vector<FeatureCandidates> out(schema.size());
  for (size_t f = 0; f < schema.size(); ++f) {
    const auto& def = schema.def(f);
    if (def.kind == features::FeatureKind::kNominal) {
      for (int v = 0; v < def.num_nominal_values; ++v) {
        AdtCondition c;
        c.feature = f;
        c.is_nominal = true;
        c.nominal_value = v;
        out[f].conditions.push_back(c);
      }
      continue;
    }
    // Numeric: midpoints between consecutive distinct observed values,
    // thinned to at most max_numeric_thresholds quantiles.
    std::vector<double> values;
    for (const auto& inst : instances) {
      double v = inst.features.values[f];
      if (!std::isnan(v)) values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;
    std::vector<double> midpoints;
    midpoints.reserve(values.size() - 1);
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      midpoints.push_back((values[i] + values[i + 1]) / 2.0);
    }
    size_t stride =
        std::max<size_t>(1, midpoints.size() / max_numeric_thresholds);
    for (size_t i = 0; i < midpoints.size(); i += stride) {
      AdtCondition c;
      c.feature = f;
      c.is_nominal = false;
      c.threshold = midpoints[i];
      out[f].conditions.push_back(c);
    }
  }
  return out;
}

struct WeightSplit {
  double pos_true = 0.0;
  double neg_true = 0.0;
  double pos_false = 0.0;
  double neg_false = 0.0;
};

double ZValue(const WeightSplit& w, double residual) {
  return 2.0 * (std::sqrt(w.pos_true * w.neg_true) +
                std::sqrt(w.pos_false * w.neg_false)) +
         residual;
}

}  // namespace

AdTree TrainAdTree(const std::vector<Instance>& instances,
                   const AdTreeTrainerOptions& options) {
  YVER_CHECK(!instances.empty());
  const size_t n = instances.size();
  const double s = options.smoothing;

  std::vector<double> weights(n, 1.0);

  // Prior.
  double w_pos = 0.0;
  double w_neg = 0.0;
  for (size_t i = 0; i < n; ++i) {
    (instances[i].label > 0 ? w_pos : w_neg) += weights[i];
  }
  double prior = 0.5 * std::log((w_pos + s) / (w_neg + s));
  AdTree tree(prior);
  for (size_t i = 0; i < n; ++i) {
    weights[i] *= std::exp(-instances[i].label * prior);
  }

  // reach[p] = indices of instances reaching prediction node p.
  std::vector<std::vector<size_t>> reach;
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  reach.push_back(std::move(all));

  auto candidates = BuildCandidates(instances, options.max_numeric_thresholds);

  for (size_t round = 1; round <= options.num_rounds; ++round) {
    double total_weight = 0.0;
    for (size_t i = 0; i < n; ++i) total_weight += weights[i];

    double best_z = std::numeric_limits<double>::infinity();
    int best_prediction = -1;
    AdtCondition best_condition;
    WeightSplit best_split;

    for (size_t p = 0; p < reach.size(); ++p) {
      const auto& members = reach[p];
      if (members.empty()) continue;
      for (size_t f = 0; f < candidates.size(); ++f) {
        if (candidates[f].conditions.empty()) continue;
        // Weight of members whose feature f is present.
        double present_weight = 0.0;
        for (size_t idx : members) {
          if (!instances[idx].features.IsMissing(f)) {
            present_weight += weights[idx];
          }
        }
        if (present_weight <= 0.0) continue;
        double residual = total_weight - present_weight;
        for (const AdtCondition& cond : candidates[f].conditions) {
          WeightSplit split;
          for (size_t idx : members) {
            double v = instances[idx].features.values[f];
            if (std::isnan(v)) continue;
            bool truth = cond.Evaluate(v);
            double w = weights[idx];
            if (instances[idx].label > 0) {
              (truth ? split.pos_true : split.pos_false) += w;
            } else {
              (truth ? split.neg_true : split.neg_false) += w;
            }
          }
          double z = ZValue(split, residual);
          if (z < best_z) {
            best_z = z;
            best_prediction = static_cast<int>(p);
            best_condition = cond;
            best_split = split;
          }
        }
      }
    }
    if (best_prediction < 0) break;  // no usable condition anywhere

    double a = 0.5 * std::log((best_split.pos_true + s) /
                              (best_split.neg_true + s));
    double b = 0.5 * std::log((best_split.pos_false + s) /
                              (best_split.neg_false + s));
    tree.AddSplitter(best_prediction, best_condition, a, b,
                     static_cast<int>(round));

    // Route the affected instances and update their weights; instances
    // with the feature missing stay at the parent (un-routed).
    const auto& parent_members = reach[best_prediction];
    std::vector<size_t> true_members;
    std::vector<size_t> false_members;
    for (size_t idx : parent_members) {
      double v = instances[idx].features.values[best_condition.feature];
      if (std::isnan(v)) continue;
      if (best_condition.Evaluate(v)) {
        true_members.push_back(idx);
        weights[idx] *= std::exp(-instances[idx].label * a);
      } else {
        false_members.push_back(idx);
        weights[idx] *= std::exp(-instances[idx].label * b);
      }
    }
    reach.push_back(std::move(true_members));   // true prediction node
    reach.push_back(std::move(false_members));  // false prediction node
  }
  return tree;
}

ExpertTag ThreeClassAdt::Predict(const features::FeatureVector& fv) const {
  if (maybe_tree.Score(fv) > 0.0) return ExpertTag::kMaybe;
  return match_tree.Classify(fv) ? ExpertTag::kYes : ExpertTag::kNo;
}

ThreeClassAdt TrainThreeClass(const std::vector<Instance>& instances,
                              const AdTreeTrainerOptions& options) {
  // Binary match tree: Yes/ProbablyYes vs rest.
  std::vector<Instance> match_instances = instances;
  for (auto& inst : match_instances) {
    inst.label = (inst.tag == ExpertTag::kYes ||
                  inst.tag == ExpertTag::kProbablyYes)
                     ? +1
                     : -1;
  }
  // Maybe detector: Maybe vs rest.
  std::vector<Instance> maybe_instances = instances;
  for (auto& inst : maybe_instances) {
    inst.label = inst.tag == ExpertTag::kMaybe ? +1 : -1;
  }
  ThreeClassAdt model;
  model.match_tree = TrainAdTree(match_instances, options);
  model.maybe_tree = TrainAdTree(maybe_instances, options);
  return model;
}

}  // namespace yver::ml
