#ifndef YVER_ML_ADTREE_TRAINER_H_
#define YVER_ML_ADTREE_TRAINER_H_

#include <cstddef>
#include <vector>

#include "ml/adtree.h"
#include "ml/instances.h"

namespace yver::ml {

/// Boosting configuration for ADTree induction.
struct AdTreeTrainerOptions {
  /// Number of boosting rounds = number of splitter nodes. The paper's
  /// final models use 8-10 splitters.
  size_t num_rounds = 10;

  /// Cap on candidate thresholds per numeric feature (quantile-spaced
  /// midpoints of the observed values).
  size_t max_numeric_thresholds = 32;

  /// Laplace smoothing added inside the prediction-value logs (Weka's
  /// ADTree uses 1.0).
  double smoothing = 1.0;
};

/// Trains an alternating decision tree with the boosting procedure of
/// Freund & Mason (1999):
///   - every prediction node is a possible attachment point
///     (precondition);
///   - each round scans (precondition, condition) pairs and picks the one
///     minimizing Z = 2(√(W₊(p∧c)W₋(p∧c)) + √(W₊(p∧¬c)W₋(p∧¬c))) + W(¬p);
///   - the two new prediction values are ½ ln(W₊+s / W₋+s);
///   - weights of affected instances are multiplied by exp(-y·prediction).
/// Instances whose split feature is missing stay un-routed (counted in the
/// residual W(¬p) term), matching the scorer's skip-on-missing semantics.
AdTree TrainAdTree(const std::vector<Instance>& instances,
                   const AdTreeTrainerOptions& options);

/// Three-class wrapper for the "Identify Maybe values" condition of
/// Table 5: a binary match tree (Maybe treated as non-match) plus a
/// Maybe-vs-rest detector tree.
struct ThreeClassAdt {
  AdTree match_tree;
  AdTree maybe_tree;

  /// Predicted tag class: kYes, kNo, or kMaybe.
  ExpertTag Predict(const features::FeatureVector& fv) const;
};

/// Trains the three-class model from tagged instances.
ThreeClassAdt TrainThreeClass(const std::vector<Instance>& instances,
                              const AdTreeTrainerOptions& options);

}  // namespace yver::ml

#endif  // YVER_ML_ADTREE_TRAINER_H_
