#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace yver::ml {

namespace {

double Gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

struct SplitEval {
  double impurity = std::numeric_limits<double>::infinity();
  size_t feature = 0;
  bool is_nominal = false;
  double threshold = 0.0;
  int nominal_value = 0;
};

}  // namespace

DecisionTree DecisionTree::Train(const std::vector<Instance>& instances,
                                 const Options& options) {
  YVER_CHECK(!instances.empty());
  DecisionTree tree;
  std::vector<size_t> all(instances.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  tree.BuildNode(instances, all, 0, options);
  return tree;
}

int DecisionTree::BuildNode(const std::vector<Instance>& instances,
                            const std::vector<size_t>& members, size_t depth,
                            const Options& options) {
  int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  size_t positives = 0;
  for (size_t idx : members) positives += instances[idx].label > 0;
  {
    Node& node = nodes_[static_cast<size_t>(index)];
    node.positive_fraction = members.empty()
                                 ? 0.5
                                 : static_cast<double>(positives) /
                                       static_cast<double>(members.size());
  }
  if (depth >= options.max_depth || members.size() < 2 * options.min_leaf_size ||
      positives == 0 || positives == members.size()) {
    return index;
  }

  const auto& schema = features::FeatureSchema::Get();
  SplitEval best;
  for (size_t f = 0; f < schema.size(); ++f) {
    const auto& def = schema.def(f);
    // Present members, by value.
    std::vector<std::pair<double, int>> present;  // (value, label)
    for (size_t idx : members) {
      double v = instances[idx].features.values[f];
      if (!std::isnan(v)) present.emplace_back(v, instances[idx].label);
    }
    if (present.size() < 2 * options.min_leaf_size) continue;
    double missing_weight =
        static_cast<double>(members.size() - present.size());
    if (def.kind == features::FeatureKind::kNominal) {
      for (int v = 0; v < def.num_nominal_values; ++v) {
        double pos_t = 0, n_t = 0, pos_f = 0, n_f = 0;
        for (const auto& [value, label] : present) {
          if (static_cast<int>(value) == v) {
            ++n_t;
            pos_t += label > 0;
          } else {
            ++n_f;
            pos_f += label > 0;
          }
        }
        if (n_t < options.min_leaf_size || n_f < options.min_leaf_size) {
          continue;
        }
        double imp = n_t * Gini(pos_t, n_t) + n_f * Gini(pos_f, n_f) +
                     missing_weight;  // missing values count as impurity
        if (imp < best.impurity) {
          best = SplitEval{imp, f, true, 0.0, v};
        }
      }
    } else {
      std::sort(present.begin(), present.end());
      // Prefix sums over sorted values; candidate thresholds between
      // distinct consecutive values.
      size_t total_pos = 0;
      for (const auto& [value, label] : present) total_pos += label > 0;
      size_t pos_left = 0;
      for (size_t i = 0; i + 1 < present.size(); ++i) {
        pos_left += present[i].second > 0;
        if (present[i].first == present[i + 1].first) continue;
        double n_l = static_cast<double>(i + 1);
        double n_r = static_cast<double>(present.size() - i - 1);
        if (n_l < options.min_leaf_size || n_r < options.min_leaf_size) {
          continue;
        }
        double imp = n_l * Gini(static_cast<double>(pos_left), n_l) +
                     n_r * Gini(static_cast<double>(total_pos - pos_left),
                                n_r) +
                     missing_weight;
        if (imp < best.impurity) {
          best = SplitEval{imp, f, false,
                           (present[i].first + present[i + 1].first) / 2.0,
                           0};
        }
      }
    }
  }
  if (!std::isfinite(best.impurity)) return index;

  // Partition and recurse.
  std::vector<size_t> true_members;
  std::vector<size_t> false_members;
  for (size_t idx : members) {
    double v = instances[idx].features.values[best.feature];
    bool truth;
    if (std::isnan(v)) {
      truth = true_members.size() >= false_members.size();  // provisional
      // Missing values follow the (eventual) majority; to keep this
      // single-pass we route them after the split below instead.
      continue;
    }
    truth = best.is_nominal
                ? static_cast<int>(v) == best.nominal_value
                : v < best.threshold;
    (truth ? true_members : false_members).push_back(idx);
  }
  bool majority_true = true_members.size() >= false_members.size();
  for (size_t idx : members) {
    if (std::isnan(instances[idx].features.values[best.feature])) {
      (majority_true ? true_members : false_members).push_back(idx);
    }
  }
  if (true_members.empty() || false_members.empty()) return index;

  int true_child =
      BuildNode(instances, true_members, depth + 1, options);
  int false_child =
      BuildNode(instances, false_members, depth + 1, options);
  Node& node = nodes_[static_cast<size_t>(index)];
  node.is_leaf = false;
  node.feature = best.feature;
  node.is_nominal = best.is_nominal;
  node.threshold = best.threshold;
  node.nominal_value = best.nominal_value;
  node.majority_goes_true = majority_true;
  node.true_child = true_child;
  node.false_child = false_child;
  return index;
}

const DecisionTree::Node& DecisionTree::Leaf(
    const features::FeatureVector& fv) const {
  YVER_CHECK(!nodes_.empty());
  const Node* node = &nodes_[0];
  while (!node->is_leaf) {
    double v = fv.values[node->feature];
    bool truth;
    if (std::isnan(v)) {
      truth = node->majority_goes_true;
    } else {
      truth = node->is_nominal ? static_cast<int>(v) == node->nominal_value
                               : v < node->threshold;
    }
    node = &nodes_[static_cast<size_t>(truth ? node->true_child
                                             : node->false_child)];
  }
  return *node;
}

bool DecisionTree::Classify(const features::FeatureVector& fv) const {
  return Leaf(fv).positive_fraction > 0.5;
}

double DecisionTree::Score(const features::FeatureVector& fv) const {
  return Leaf(fv).positive_fraction;
}

}  // namespace yver::ml
