#ifndef YVER_ML_DECISION_TREE_H_
#define YVER_ML_DECISION_TREE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ml/instances.h"

namespace yver::ml {

/// A standard top-down decision tree (CART-style, Gini impurity) over the
/// pairwise features — the classical classifier the paper contrasts
/// ADTrees against (Fig. 5a). Provided as a comparison baseline: unlike
/// the ADTree it produces no additive confidence score and handles
/// missing values only by majority fallback, which is exactly why the
/// paper chose ADTrees for the multi-source, schema-diverse setting.
class DecisionTree {
 public:
  struct Options {
    size_t max_depth = 8;
    size_t min_leaf_size = 5;
  };

  DecisionTree() = default;

  /// Trains on labeled instances (+1/-1).
  static DecisionTree Train(const std::vector<Instance>& instances,
                            const Options& options);
  static DecisionTree Train(const std::vector<Instance>& instances) {
    return Train(instances, Options());
  }

  /// Classifies; missing split features fall through to the node's
  /// majority branch.
  bool Classify(const features::FeatureVector& fv) const;

  /// Leaf positive-fraction as a crude score in [0, 1].
  double Score(const features::FeatureVector& fv) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    bool is_leaf = true;
    double positive_fraction = 0.5;
    size_t feature = 0;
    bool is_nominal = false;
    double threshold = 0.0;
    int nominal_value = 0;
    bool majority_goes_true = true;  // routing for missing values
    int true_child = -1;
    int false_child = -1;
  };

  int BuildNode(const std::vector<Instance>& instances,
                const std::vector<size_t>& members, size_t depth,
                const Options& options);
  const Node& Leaf(const features::FeatureVector& fv) const;

  std::vector<Node> nodes_;
};

}  // namespace yver::ml

#endif  // YVER_ML_DECISION_TREE_H_
