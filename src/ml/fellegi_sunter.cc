#include "ml/fellegi_sunter.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace yver::ml {

FellegiSunter FellegiSunter::Train(const std::vector<Instance>& instances,
                                   const Options& options) {
  YVER_CHECK(!instances.empty());
  FellegiSunter model;
  model.options_ = options;
  const auto& schema = features::FeatureSchema::Get();
  model.bin_bounds_.resize(schema.size());
  model.log_ratios_.resize(schema.size());

  for (size_t f = 0; f < schema.size(); ++f) {
    const auto& def = schema.def(f);
    size_t num_levels;
    if (def.kind == features::FeatureKind::kNominal) {
      num_levels = static_cast<size_t>(def.num_nominal_values);
    } else {
      // Equal-frequency bin bounds over observed values.
      std::vector<double> values;
      for (const auto& inst : instances) {
        double v = inst.features.values[f];
        if (!std::isnan(v)) values.push_back(v);
      }
      num_levels = options.num_levels;
      if (values.size() < num_levels * 2) {
        model.log_ratios_[f].assign(std::max<size_t>(num_levels, 1), 0.0);
        continue;
      }
      std::sort(values.begin(), values.end());
      for (size_t level = 1; level < num_levels; ++level) {
        model.bin_bounds_[f].push_back(
            values[values.size() * level / num_levels]);
      }
    }
    // Count level occurrences among matches and non-matches.
    std::vector<double> m_counts(num_levels, options.smoothing);
    std::vector<double> u_counts(num_levels, options.smoothing);
    double m_total = options.smoothing * static_cast<double>(num_levels);
    double u_total = options.smoothing * static_cast<double>(num_levels);
    for (const auto& inst : instances) {
      double v = inst.features.values[f];
      if (std::isnan(v)) continue;
      int level = model.LevelOf(f, v);
      if (inst.label > 0) {
        ++m_counts[static_cast<size_t>(level)];
        ++m_total;
      } else {
        ++u_counts[static_cast<size_t>(level)];
        ++u_total;
      }
    }
    model.log_ratios_[f].resize(num_levels);
    for (size_t level = 0; level < num_levels; ++level) {
      double m = m_counts[level] / m_total;
      double u = u_counts[level] / u_total;
      model.log_ratios_[f][level] = std::log2(m / u);
    }
  }
  return model;
}

int FellegiSunter::LevelOf(size_t feature, double value) const {
  const auto& def = features::FeatureSchema::Get().def(feature);
  if (def.kind == features::FeatureKind::kNominal) {
    int v = static_cast<int>(value);
    return std::clamp(v, 0, def.num_nominal_values - 1);
  }
  const auto& bounds = bin_bounds_[feature];
  int level = 0;
  for (double bound : bounds) {
    if (value >= bound) ++level;
  }
  return level;
}

double FellegiSunter::Score(const features::FeatureVector& fv) const {
  YVER_CHECK(!log_ratios_.empty());
  double sum = 0.0;
  for (size_t f = 0; f < log_ratios_.size(); ++f) {
    double v = fv.values[f];
    if (std::isnan(v) || log_ratios_[f].empty()) continue;
    sum += log_ratios_[f][static_cast<size_t>(LevelOf(f, v))];
  }
  return sum;
}

}  // namespace yver::ml
