#ifndef YVER_ML_FELLEGI_SUNTER_H_
#define YVER_ML_FELLEGI_SUNTER_H_

#include <vector>

#include "ml/instances.h"

namespace yver::ml {

/// The classical Fellegi-Sunter record-linkage model (the paper's
/// reference [12]): each comparison feature is discretized into agreement
/// levels; the model learns per-level m-probabilities (level | match) and
/// u-probabilities (level | non-match) and scores a pair by the summed
/// log-likelihood ratio  Σ log2(m_i / u_i).  Missing features contribute
/// nothing (ratio 1), which makes the comparison with ADTrees fair on
/// schema-diverse data.
class FellegiSunter {
 public:
  struct Options {
    /// Agreement levels per numeric feature (equal-frequency bins).
    size_t num_levels = 3;
    /// Laplace smoothing for the level probabilities.
    double smoothing = 0.5;
    /// Decision threshold on the summed log-ratio.
    double threshold = 0.0;
  };

  FellegiSunter() = default;

  /// Supervised fit from labeled instances (the original model is often
  /// fit with EM; with expert tags available, direct estimation is
  /// exact).
  static FellegiSunter Train(const std::vector<Instance>& instances,
                             const Options& options);
  static FellegiSunter Train(const std::vector<Instance>& instances) {
    return Train(instances, Options());
  }

  /// Summed log2 likelihood ratio.
  double Score(const features::FeatureVector& fv) const;

  bool Classify(const features::FeatureVector& fv) const {
    return Score(fv) > options_.threshold;
  }

 private:
  int LevelOf(size_t feature, double value) const;

  Options options_;
  // Per feature: bin upper bounds for numerics (empty for nominals) and
  // per-level log ratios.
  std::vector<std::vector<double>> bin_bounds_;
  std::vector<std::vector<double>> log_ratios_;
};

}  // namespace yver::ml

#endif  // YVER_ML_FELLEGI_SUNTER_H_
