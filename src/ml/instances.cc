#include "ml/instances.h"

#include <algorithm>

#include "util/check.h"

namespace yver::ml {

const char* ExpertTagName(ExpertTag tag) {
  switch (tag) {
    case ExpertTag::kNo:
      return "No";
    case ExpertTag::kProbablyNo:
      return "Probably No";
    case ExpertTag::kMaybe:
      return "Maybe";
    case ExpertTag::kProbablyYes:
      return "Probably Yes";
    case ExpertTag::kYes:
      return "Yes";
  }
  return "?";
}

std::vector<Instance> ApplyMaybePolicy(std::vector<Instance> instances,
                                       MaybePolicy policy) {
  std::vector<Instance> out;
  out.reserve(instances.size());
  for (auto& inst : instances) {
    switch (inst.tag) {
      case ExpertTag::kYes:
      case ExpertTag::kProbablyYes:
        inst.label = +1;
        break;
      case ExpertTag::kNo:
      case ExpertTag::kProbablyNo:
        inst.label = -1;
        break;
      case ExpertTag::kMaybe:
        if (policy == MaybePolicy::kOmit) continue;
        // kAsNo and kOwnClass both map to -1 for the binary learner; under
        // kOwnClass the caller additionally trains a Maybe-detector (see
        // adtree_trainer.h).
        inst.label = -1;
        break;
    }
    out.push_back(std::move(inst));
  }
  return out;
}

TrainTestSplit SplitTrainTest(std::vector<Instance> instances,
                              double train_fraction, util::Rng& rng) {
  YVER_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  rng.Shuffle(instances);
  // Stratify: separate by label, then split each stream proportionally.
  TrainTestSplit split;
  std::vector<Instance> pos, neg;
  for (auto& inst : instances) {
    (inst.label > 0 ? pos : neg).push_back(std::move(inst));
  }
  auto divide = [&](std::vector<Instance>& v) {
    size_t cut = static_cast<size_t>(train_fraction * v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      (i < cut ? split.train : split.test).push_back(std::move(v[i]));
    }
  };
  divide(pos);
  divide(neg);
  rng.Shuffle(split.train);
  rng.Shuffle(split.test);
  return split;
}

std::vector<TrainTestSplit> KFolds(const std::vector<Instance>& instances,
                                   size_t k, util::Rng& rng) {
  YVER_CHECK(k >= 2);
  std::vector<size_t> order(instances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  // Stratified round-robin fold assignment.
  std::vector<size_t> fold_of(instances.size(), 0);
  size_t pos_counter = 0, neg_counter = 0;
  for (size_t idx : order) {
    if (instances[idx].label > 0) {
      fold_of[idx] = pos_counter++ % k;
    } else {
      fold_of[idx] = neg_counter++ % k;
    }
  }
  std::vector<TrainTestSplit> folds(k);
  for (size_t f = 0; f < k; ++f) {
    for (size_t i = 0; i < instances.size(); ++i) {
      (fold_of[i] == f ? folds[f].test : folds[f].train)
          .push_back(instances[i]);
    }
  }
  return folds;
}

}  // namespace yver::ml
