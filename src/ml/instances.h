#ifndef YVER_ML_INSTANCES_H_
#define YVER_ML_INSTANCES_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "features/feature_schema.h"
#include "util/rng.h"

namespace yver::ml {

/// Expert tag vocabulary used by the Yad Vashem archival experts (§5.1).
enum class ExpertTag : uint8_t {
  kNo = 0,
  kProbablyNo,
  kMaybe,
  kProbablyYes,
  kYes,
};

/// Returns the display name of a tag.
const char* ExpertTagName(ExpertTag tag);

/// One labeled candidate pair.
struct Instance {
  data::RecordPair pair;
  features::FeatureVector features;
  ExpertTag tag = ExpertTag::kNo;
  /// Binary label: +1 match, -1 non-match (set by the Maybe policy).
  int label = -1;
};

/// How Maybe-tagged pairs enter training (paper Table 5).
enum class MaybePolicy : uint8_t {
  kAsNo = 0,    // Maybe := No
  kOmit,        // drop Maybe instances
  kOwnClass,    // keep as a third class; see notes in adtree_trainer.h
};

/// Applies the tag simplification of §5.1 (Yes+ProbablyYes -> +1,
/// No+ProbablyNo -> -1) and the chosen Maybe policy. Instances removed by
/// kOmit are dropped from the returned set.
std::vector<Instance> ApplyMaybePolicy(std::vector<Instance> instances,
                                       MaybePolicy policy);

/// Shuffled stratified train/test split. `train_fraction` in (0, 1).
struct TrainTestSplit {
  std::vector<Instance> train;
  std::vector<Instance> test;
};
TrainTestSplit SplitTrainTest(std::vector<Instance> instances,
                              double train_fraction, util::Rng& rng);

/// K-fold cross-validation folds (stratified by label).
std::vector<TrainTestSplit> KFolds(const std::vector<Instance>& instances,
                                   size_t k, util::Rng& rng);

}  // namespace yver::ml

#endif  // YVER_ML_INSTANCES_H_
