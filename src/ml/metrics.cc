#include "ml/metrics.h"

#include "util/rng.h"

namespace yver::ml {

double Confusion::Accuracy() const {
  size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_pos + true_neg) / static_cast<double>(t);
}

double Confusion::Precision() const {
  size_t denom = true_pos + false_pos;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_pos) / static_cast<double>(denom);
}

double Confusion::Recall() const {
  size_t denom = true_pos + false_neg;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_pos) / static_cast<double>(denom);
}

double Confusion::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

Confusion EvaluateBinary(const AdTree& tree,
                         const std::vector<Instance>& instances) {
  Confusion c;
  for (const auto& inst : instances) {
    bool predicted = tree.Classify(inst.features);
    bool actual = inst.label > 0;
    if (predicted && actual) {
      ++c.true_pos;
    } else if (predicted && !actual) {
      ++c.false_pos;
    } else if (!predicted && actual) {
      ++c.false_neg;
    } else {
      ++c.true_neg;
    }
  }
  return c;
}

double EvaluateThreeClassAccuracy(const ThreeClassAdt& model,
                                  const std::vector<Instance>& instances) {
  if (instances.empty()) return 0.0;
  size_t correct = 0;
  for (const auto& inst : instances) {
    ExpertTag predicted = model.Predict(inst.features);
    ExpertTag actual;
    switch (inst.tag) {
      case ExpertTag::kYes:
      case ExpertTag::kProbablyYes:
        actual = ExpertTag::kYes;
        break;
      case ExpertTag::kMaybe:
        actual = ExpertTag::kMaybe;
        break;
      default:
        actual = ExpertTag::kNo;
        break;
    }
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(instances.size());
}

double CrossValidatedAccuracy(const std::vector<Instance>& instances,
                              const AdTreeTrainerOptions& options, size_t k,
                              uint64_t seed) {
  util::Rng rng(seed);
  auto folds = KFolds(instances, k, rng);
  double sum = 0.0;
  for (const auto& fold : folds) {
    AdTree tree = TrainAdTree(fold.train, options);
    sum += EvaluateBinary(tree, fold.test).Accuracy();
  }
  return sum / static_cast<double>(folds.size());
}

}  // namespace yver::ml
