#ifndef YVER_ML_METRICS_H_
#define YVER_ML_METRICS_H_

#include <cstddef>
#include <vector>

#include "ml/adtree.h"
#include "ml/adtree_trainer.h"
#include "ml/instances.h"

namespace yver::ml {

/// Binary confusion counts.
struct Confusion {
  size_t true_pos = 0;
  size_t false_pos = 0;
  size_t true_neg = 0;
  size_t false_neg = 0;

  size_t total() const {
    return true_pos + false_pos + true_neg + false_neg;
  }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Evaluates a binary ADTree against labeled instances.
Confusion EvaluateBinary(const AdTree& tree,
                         const std::vector<Instance>& instances);

/// Three-class accuracy for the Identify-Maybe condition: a prediction is
/// correct when it matches the instance's simplified tag class
/// (Yes+ProbablyYes -> Yes, No+ProbablyNo -> No, Maybe -> Maybe).
double EvaluateThreeClassAccuracy(const ThreeClassAdt& model,
                                  const std::vector<Instance>& instances);

/// Mean of k-fold cross-validated binary accuracy.
double CrossValidatedAccuracy(const std::vector<Instance>& instances,
                              const AdTreeTrainerOptions& options, size_t k,
                              uint64_t seed);

}  // namespace yver::ml

#endif  // YVER_ML_METRICS_H_
