#include "probdb/calibration.h"

#include <cmath>

#include "util/check.h"

namespace yver::probdb {

namespace {

double Sigmoid(double x) {
  if (x >= 0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

PlattScaler PlattScaler::Fit(const std::vector<double>& scores,
                             const std::vector<int>& labels,
                             size_t max_iterations) {
  YVER_CHECK(scores.size() == labels.size());
  YVER_CHECK(!scores.empty());
  // Targets with Platt's prior smoothing.
  size_t num_pos = 0;
  for (int y : labels) num_pos += y > 0;
  size_t num_neg = labels.size() - num_pos;
  double t_pos = (static_cast<double>(num_pos) + 1.0) /
                 (static_cast<double>(num_pos) + 2.0);
  double t_neg = 1.0 / (static_cast<double>(num_neg) + 2.0);

  double a = 1.0;
  double b = 0.0;
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    // Gradient and Hessian of the regularized log-loss.
    double ga = 0.0, gb = 0.0;
    double haa = 1e-8, hab = 0.0, hbb = 1e-8;
    for (size_t i = 0; i < scores.size(); ++i) {
      double t = labels[i] > 0 ? t_pos : t_neg;
      double p = Sigmoid(a * scores[i] + b);
      double d = p - t;
      ga += d * scores[i];
      gb += d;
      double w = p * (1.0 - p);
      haa += w * scores[i] * scores[i];
      hab += w * scores[i];
      hbb += w;
    }
    // Newton step: solve [haa hab; hab hbb] [da db] = [ga gb].
    double det = haa * hbb - hab * hab;
    if (std::abs(det) < 1e-12) break;
    double da = (hbb * ga - hab * gb) / det;
    double db = (haa * gb - hab * ga) / det;
    a -= da;
    b -= db;
    if (std::abs(da) < 1e-10 && std::abs(db) < 1e-10) break;
  }
  return PlattScaler(a, b);
}

double PlattScaler::Probability(double score) const {
  return Sigmoid(a_ * score + b_);
}

}  // namespace yver::probdb
