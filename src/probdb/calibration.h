#ifndef YVER_PROBDB_CALIBRATION_H_
#define YVER_PROBDB_CALIBRATION_H_

#include <vector>

#include "ml/instances.h"

namespace yver::probdb {

/// Platt scaling: maps raw ADTree confidence scores to calibrated match
/// probabilities P(match | score) = sigmoid(a * score + b). The paper's
/// probabilistic-database view (§3.2) needs probabilities, not margins;
/// fitting on the expert-tagged pairs turns the ranked resolution into a
/// same-as probability relation.
class PlattScaler {
 public:
  /// Identity-ish default (a=1, b=0).
  PlattScaler() = default;
  PlattScaler(double a, double b) : a_(a), b_(b) {}

  /// Fits by minimizing logistic loss over (score, label) pairs with
  /// Newton iterations; labels are +1/-1.
  static PlattScaler Fit(const std::vector<double>& scores,
                         const std::vector<int>& labels,
                         size_t max_iterations = 64);

  /// Calibrated probability for a raw score.
  double Probability(double score) const;

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_ = 1.0;
  double b_ = 0.0;
};

}  // namespace yver::probdb

#endif  // YVER_PROBDB_CALIBRATION_H_
