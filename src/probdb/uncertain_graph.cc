#include "probdb/uncertain_graph.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_set>

#include "util/check.h"

namespace yver::probdb {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

UncertainMatchGraph::UncertainMatchGraph(
    const core::RankedResolution& resolution, size_t num_records,
    const PlattScaler& scaler)
    : num_records_(num_records) {
  edges_.reserve(resolution.size());
  for (const auto& m : resolution.matches()) {
    YVER_CHECK(m.pair.a < num_records && m.pair.b < num_records);
    edges_.push_back(
        SameAsEdge{m.pair, scaler.Probability(m.confidence)});
  }
}

UncertainMatchGraph::UncertainMatchGraph(std::vector<SameAsEdge> edges,
                                         size_t num_records)
    : num_records_(num_records), edges_(std::move(edges)) {
  for (const auto& e : edges_) {
    YVER_CHECK(e.pair.a < num_records && e.pair.b < num_records);
    YVER_CHECK(e.probability >= 0.0 && e.probability <= 1.0);
  }
}

PossibleWorld UncertainMatchGraph::WorldFromKeptEdges(
    const std::vector<bool>& kept) const {
  UnionFind uf(num_records_);
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (kept[i]) uf.Union(edges_[i].pair.a, edges_[i].pair.b);
  }
  PossibleWorld world;
  world.cluster_of.assign(num_records_, 0);
  std::vector<long> root_to_cluster(num_records_, -1);
  for (size_t r = 0; r < num_records_; ++r) {
    size_t root = uf.Find(r);
    if (root_to_cluster[root] < 0) {
      root_to_cluster[root] = static_cast<long>(world.num_clusters++);
    }
    world.cluster_of[r] = static_cast<size_t>(root_to_cluster[root]);
  }
  return world;
}

PossibleWorld UncertainMatchGraph::SampleWorld(util::Rng& rng) const {
  std::vector<bool> kept(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    kept[i] = rng.Bernoulli(edges_[i].probability);
  }
  return WorldFromKeptEdges(kept);
}

PossibleWorld UncertainMatchGraph::MapWorld() const {
  std::vector<bool> kept(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    kept[i] = edges_[i].probability > 0.5;
  }
  return WorldFromKeptEdges(kept);
}

std::pair<double, double> UncertainMatchGraph::ExpectedNumEntities(
    size_t num_samples, util::Rng& rng) const {
  YVER_CHECK(num_samples > 0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t s = 0; s < num_samples; ++s) {
    double n = static_cast<double>(SampleWorld(rng).num_clusters);
    sum += n;
    sum_sq += n * n;
  }
  double mean = sum / static_cast<double>(num_samples);
  double var = std::max(0.0, sum_sq / static_cast<double>(num_samples) -
                                 mean * mean);
  return {mean, std::sqrt(var)};
}

double UncertainMatchGraph::SameEntityProbability(data::RecordIdx a,
                                                  data::RecordIdx b,
                                                  size_t num_samples,
                                                  util::Rng& rng) const {
  YVER_CHECK(num_samples > 0);
  size_t together = 0;
  for (size_t s = 0; s < num_samples; ++s) {
    PossibleWorld world = SampleWorld(rng);
    together += world.cluster_of[a] == world.cluster_of[b];
  }
  return static_cast<double>(together) / static_cast<double>(num_samples);
}

std::vector<AlternativeResolution> UncertainMatchGraph::AlternativesFor(
    data::RecordIdx record, size_t num_samples, util::Rng& rng) const {
  YVER_CHECK(num_samples > 0);
  std::map<std::vector<data::RecordIdx>, size_t> counts;
  for (size_t s = 0; s < num_samples; ++s) {
    PossibleWorld world = SampleWorld(rng);
    std::vector<data::RecordIdx> cluster;
    size_t target = world.cluster_of[record];
    for (size_t r = 0; r < num_records_; ++r) {
      if (world.cluster_of[r] == target) {
        cluster.push_back(static_cast<data::RecordIdx>(r));
      }
    }
    ++counts[cluster];
  }
  std::vector<AlternativeResolution> alternatives;
  alternatives.reserve(counts.size());
  for (auto& [cluster, count] : counts) {
    alternatives.push_back(AlternativeResolution{
        cluster, static_cast<double>(count) /
                     static_cast<double>(num_samples)});
  }
  std::sort(alternatives.begin(), alternatives.end(),
            [](const AlternativeResolution& x,
               const AlternativeResolution& y) {
              if (x.likelihood != y.likelihood) {
                return x.likelihood > y.likelihood;
              }
              return x.cluster < y.cluster;
            });
  return alternatives;
}

double UncertainMatchGraph::ExpectedEntitiesWhere(
    const std::function<bool(data::RecordIdx)>& predicate,
    size_t num_samples, util::Rng& rng) const {
  YVER_CHECK(num_samples > 0);
  // Precompute the predicate once.
  std::vector<bool> satisfies(num_records_);
  for (size_t r = 0; r < num_records_; ++r) {
    satisfies[r] = predicate(static_cast<data::RecordIdx>(r));
  }
  double sum = 0.0;
  std::unordered_set<size_t> counted;
  for (size_t s = 0; s < num_samples; ++s) {
    PossibleWorld world = SampleWorld(rng);
    counted.clear();
    for (size_t r = 0; r < num_records_; ++r) {
      if (satisfies[r]) counted.insert(world.cluster_of[r]);
    }
    sum += static_cast<double>(counted.size());
  }
  return sum / static_cast<double>(num_samples);
}

}  // namespace yver::probdb
