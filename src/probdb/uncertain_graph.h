#ifndef YVER_PROBDB_UNCERTAIN_GRAPH_H_
#define YVER_PROBDB_UNCERTAIN_GRAPH_H_

#include <functional>
#include <string>
#include <vector>

#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "probdb/calibration.h"
#include "util/rng.h"

namespace yver::probdb {

/// A probabilistic same-as edge between two records.
struct SameAsEdge {
  data::RecordPair pair;
  double probability = 0.0;
};

/// One possible world: a sampled deterministic resolution.
struct PossibleWorld {
  /// cluster id per record.
  std::vector<size_t> cluster_of;
  size_t num_clusters = 0;
};

/// A possible clustering of one record's neighborhood, with its estimated
/// likelihood (for presenting "alternative solutions ... ranked according
/// to some measure of likelihood", §3.2).
struct AlternativeResolution {
  std::vector<data::RecordIdx> cluster;  // records resolved together
  double likelihood = 0.0;               // fraction of sampled worlds
};

/// The probabilistic database of §3.2: all pairwise matching information
/// retained as an uncertain same-as relation over records. Tuple-
/// independent semantics: each edge exists independently with its
/// probability; a possible world is a sampled edge set whose connected
/// components form one deterministic entity resolution. Queries are
/// answered by Monte Carlo over possible worlds, or deterministically via
/// the MAP world for applications that need a single crisp answer.
class UncertainMatchGraph {
 public:
  /// Builds from a ranked resolution: edge probability is the calibrated
  /// probability of the match confidence.
  UncertainMatchGraph(const core::RankedResolution& resolution,
                      size_t num_records, const PlattScaler& scaler);

  /// Builds from explicit edges.
  UncertainMatchGraph(std::vector<SameAsEdge> edges, size_t num_records);

  size_t num_records() const { return num_records_; }
  const std::vector<SameAsEdge>& edges() const { return edges_; }

  /// Samples one possible world.
  PossibleWorld SampleWorld(util::Rng& rng) const;

  /// The maximum-a-posteriori world: keep edges with probability > 0.5.
  PossibleWorld MapWorld() const;

  /// Monte Carlo estimate (mean, standard deviation) of the number of
  /// distinct entities — the deterministic-answer use case ("the number
  /// of people perished ... requires a single deterministic answer").
  std::pair<double, double> ExpectedNumEntities(size_t num_samples,
                                                util::Rng& rng) const;

  /// Probability that two records resolve to the same entity (connected
  /// through any path, not just a direct edge).
  double SameEntityProbability(data::RecordIdx a, data::RecordIdx b,
                               size_t num_samples, util::Rng& rng) const;

  /// The alternative resolutions of one record's neighborhood, ranked by
  /// likelihood: each distinct sampled cluster containing `record` is an
  /// alternative narrative anchor.
  std::vector<AlternativeResolution> AlternativesFor(data::RecordIdx record,
                                                     size_t num_samples,
                                                     util::Rng& rng) const;

  /// Monte Carlo expectation of the number of distinct entities whose
  /// records satisfy `predicate` (e.g. "died in Poland") — each entity is
  /// counted once when any member satisfies it.
  double ExpectedEntitiesWhere(
      const std::function<bool(data::RecordIdx)>& predicate,
      size_t num_samples, util::Rng& rng) const;

 private:
  PossibleWorld WorldFromKeptEdges(const std::vector<bool>& kept) const;

  size_t num_records_ = 0;
  std::vector<SameAsEdge> edges_;
};

}  // namespace yver::probdb

#endif  // YVER_PROBDB_UNCERTAIN_GRAPH_H_
