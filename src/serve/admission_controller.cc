#include "serve/admission_controller.h"

#include <string>

namespace yver::serve {

util::Status AdmissionController::Admit(const util::Deadline& deadline) {
  if (unlimited()) return util::Status::Ok();
  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ < options_.max_in_flight) {
    ++in_flight_;
    ++admitted_;
    return util::Status::Ok();
  }
  if (queued_ >= options_.max_queue_depth) {
    ++shed_;
    return util::Status::ResourceExhausted(
        "in-flight budget (" + std::to_string(options_.max_in_flight) +
        ") and wait queue (" + std::to_string(options_.max_queue_depth) +
        ") are full");
  }
  ++queued_;
  bool got_slot;
  if (deadline.is_infinite()) {
    slot_free_.wait(lock,
                    [this] { return in_flight_ < options_.max_in_flight; });
    got_slot = true;
  } else {
    got_slot = slot_free_.wait_until(
        lock, deadline.time_point(),
        [this] { return in_flight_ < options_.max_in_flight; });
  }
  --queued_;
  if (!got_slot) {
    ++deadline_expired_;
    return deadline.Exceeded("admission queue");
  }
  ++in_flight_;
  ++admitted_;
  return util::Status::Ok();
}

void AdmissionController::Release() {
  if (unlimited()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ > 0) --in_flight_;
  }
  slot_free_.notify_one();
}

bool AdmissionController::Saturated() const {
  if (unlimited()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_ >= options_.max_in_flight &&
         queued_ >= options_.max_queue_depth;
}

AdmissionSnapshot AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionSnapshot s;
  s.admitted = admitted_;
  s.shed = shed_;
  s.deadline_expired = deadline_expired_;
  s.in_flight = in_flight_;
  s.queued = queued_;
  return s;
}

}  // namespace yver::serve
