#ifndef YVER_SERVE_ADMISSION_CONTROLLER_H_
#define YVER_SERVE_ADMISSION_CONTROLLER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/deadline.h"
#include "util/status.h"

namespace yver::serve {

/// Load-shedding knobs. The zero defaults disable admission control
/// entirely, preserving the pre-robustness behaviour for embedders that
/// never configure it.
struct AdmissionOptions {
  /// Queries allowed to execute concurrently; 0 = unlimited.
  size_t max_in_flight = 0;
  /// Callers allowed to wait for a slot once the budget is full. The
  /// queue is bounded: caller max_queue_depth+1 is shed immediately with
  /// RESOURCE_EXHAUSTED instead of queuing unboundedly.
  size_t max_queue_depth = 0;
};

/// Point-in-time admission counters.
struct AdmissionSnapshot {
  uint64_t admitted = 0;
  uint64_t shed = 0;              // rejected: queue full
  uint64_t deadline_expired = 0;  // gave up waiting for a slot
  size_t in_flight = 0;
  size_t queued = 0;
};

/// Bounded-concurrency gate in front of ResolutionService's query path:
/// overload turns into a typed RESOURCE_EXHAUSTED (load shedding) or
/// DEADLINE_EXCEEDED (bounded waiting) answer instead of an unbounded
/// queue of blocked callers. Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// True when admission control is disabled (max_in_flight == 0): Admit
  /// always succeeds without touching the lock.
  bool unlimited() const { return options_.max_in_flight == 0; }

  /// Takes one in-flight slot. Returns OK immediately when a slot is free;
  /// otherwise waits — bounded by `deadline` and by the queue depth:
  ///  - queue already holds max_queue_depth waiters -> RESOURCE_EXHAUSTED
  ///    without waiting (the shed path);
  ///  - `deadline` expires while queued -> DEADLINE_EXCEEDED.
  /// Every OK must be paired with exactly one Release().
  util::Status Admit(const util::Deadline& deadline);

  /// Returns the slot taken by a successful Admit.
  void Release();

  /// True when every in-flight slot and every queue slot is taken — the
  /// next Admit would shed. Always false when unlimited. The wire front
  /// end polls this to pause connection reads (DESIGN.md §15) instead of
  /// decoding queries that would only be shed.
  bool Saturated() const;

  AdmissionSnapshot snapshot() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t in_flight_ = 0;
  size_t queued_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t deadline_expired_ = 0;
};

}  // namespace yver::serve

#endif  // YVER_SERVE_ADMISSION_CONTROLLER_H_
