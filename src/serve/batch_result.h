#ifndef YVER_SERVE_BATCH_RESULT_H_
#define YVER_SERVE_BATCH_RESULT_H_

#include <cstdint>
#include <vector>

#include "serve/query.h"
#include "util/status.h"

namespace yver::serve {

/// The typed answer to a batch of queries: per-query statuses in request
/// order plus the aggregate counters every batch consumer was recomputing
/// by hand (serve-bench, the load generator, the net dispatcher). Replaces
/// the bare std::vector<StatusOr<QueryResult>> QueryBatch used to return.
///
/// The vector interface (size / operator[] / iteration) is preserved so a
/// BatchResult reads like the list it contains; the counters are derived
/// from the statuses by Tally() and satisfy:
///   ok + failed == size(), and shed + deadline_exceeded <= failed
///   degraded <= ok  (a degraded answer is still an answer)
struct BatchResult {
  std::vector<util::StatusOr<QueryResult>> results;

  /// Aggregate counters over `results` (valid after Tally).
  uint64_t ok = 0;                 // OK answers, degraded included
  uint64_t failed = 0;             // non-OK statuses of any code
  uint64_t shed = 0;               // RESOURCE_EXHAUSTED (admission shed)
  uint64_t deadline_exceeded = 0;  // DEADLINE_EXCEEDED
  uint64_t degraded = 0;           // OK but served stale under shed

  size_t size() const { return results.size(); }
  bool empty() const { return results.empty(); }
  util::StatusOr<QueryResult>& operator[](size_t i) { return results[i]; }
  const util::StatusOr<QueryResult>& operator[](size_t i) const {
    return results[i];
  }
  auto begin() { return results.begin(); }
  auto end() { return results.end(); }
  auto begin() const { return results.begin(); }
  auto end() const { return results.end(); }

  /// True when every query in the batch was answered OK.
  bool all_ok() const { return failed == 0; }

  /// Recomputes the counters from `results`. Idempotent.
  void Tally() {
    ok = failed = shed = deadline_exceeded = degraded = 0;
    for (const auto& r : results) {
      if (r.ok()) {
        ++ok;
        if (r->degraded) ++degraded;
        continue;
      }
      ++failed;
      switch (r.status().code()) {
        case util::StatusCode::kResourceExhausted:
          ++shed;
          break;
        case util::StatusCode::kDeadlineExceeded:
          ++deadline_exceeded;
          break;
        default:
          break;
      }
    }
  }
};

}  // namespace yver::serve

#endif  // YVER_SERVE_BATCH_RESULT_H_
