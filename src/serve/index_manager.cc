#include "serve/index_manager.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/fault_injector.h"

namespace yver::serve {

IndexManager::IndexManager(std::shared_ptr<const ResolutionIndex> initial) {
  YVER_CHECK_MSG(initial != nullptr, "IndexManager needs an initial index");
  slots_[0].index = std::move(initial);
  slots_[0].generation = 1;
  // current_ starts as slot 0 with a zero pin counter.
}

IndexManager::~IndexManager() = default;

IndexManager::PinnedIndex IndexManager::Acquire() const {
  // The one-instruction pin: bump the counter half and learn the slot half
  // of the packed word atomically. Because the counter rides the same word
  // as the slot index, this pin is attributed to exactly the snapshot that
  // was current at this instant — Publish() will see it in the grant total
  // it swaps out, so the slot below cannot be reclaimed or reused before
  // our matching release. That is what makes the plain shared_ptr copy
  // safe without a validate-retry loop.
  uint64_t packed = current_.fetch_add(kOnePin, std::memory_order_acquire);
  size_t slot = static_cast<size_t>(packed & kSlotMask);
  const Slot& s = slots_[slot];
  return PinnedIndex(this, slot, s.index, s.generation);
}

void IndexManager::PinnedIndex::Release() {
  if (manager_ == nullptr) return;
  const IndexManager* manager = manager_;
  size_t slot = slot_;
  manager_ = nullptr;
  // Drop our reference before counting the release: once the slot's last
  // release lands, "reclaimed" means the snapshot is genuinely freeable.
  index_.reset();
  manager->ReleasePin(slot);
}

void IndexManager::ReleasePin(size_t slot) const {
  Slot& s = slots_[slot];
  uint64_t released = s.releases.fetch_add(1, std::memory_order_acq_rel) + 1;
  // If the slot is retired and we were its last pinned reader, free it.
  // The publisher races this check from the retire side; MaybeReclaim is
  // idempotent under slots_mu_, so double reclaim attempts are benign.
  if (released == s.limit.load(std::memory_order_acquire)) {
    MaybeReclaim(slot);
  }
}

void IndexManager::MaybeReclaim(size_t slot) const {
  Slot& s = slots_[slot];
  std::shared_ptr<const ResolutionIndex> dropped;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    if (s.index == nullptr) return;  // already reclaimed
    uint64_t limit = s.limit.load(std::memory_order_acquire);
    if (limit == kNoLimit) return;  // current (or reinstalled) — keep
    if (s.releases.load(std::memory_order_acquire) != limit) return;
    dropped = std::move(s.index);
  }
  slot_freed_.notify_all();
  // `dropped` destroys the snapshot outside the lock.
}

util::StatusOr<uint64_t> IndexManager::Publish(
    std::shared_ptr<const ResolutionIndex> next) {
  YVER_CHECK_MSG(next != nullptr, "Publish needs an index");
  // Chaos seam: an injected failure aborts the publish before anything is
  // installed — the previous generation stays current and fully served.
  util::Status injected =
      util::FaultInjector::Global().InjectIo(util::FaultPoint::kIndexPublish);
  if (!injected.ok()) return injected;

  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  size_t cur =
      static_cast<size_t>(current_.load(std::memory_order_relaxed) & kSlotMask);
  size_t target = kNumSlots;
  {
    // Stage the new snapshot into a quiescent slot. Waiting here (ring
    // exhausted by slow readers) blocks only publishers — Acquire never
    // touches these locks.
    std::unique_lock<std::mutex> lock(slots_mu_);
    slot_freed_.wait(lock, [&] {
      for (size_t i = 1; i < kNumSlots; ++i) {
        size_t cand = (cur + i) % kNumSlots;
        if (slots_[cand].index == nullptr) {
          target = cand;
          return true;
        }
      }
      return false;
    });
    Slot& s = slots_[target];
    s.index = std::move(next);
    s.generation = generation_.load(std::memory_order_relaxed) + 1;
    s.releases.store(0, std::memory_order_relaxed);
    s.limit.store(kNoLimit, std::memory_order_relaxed);
  }
  // The swap: from here on every Acquire pins the new generation. The
  // packed word we swap out carries the exact number of pins granted
  // against the retired snapshot.
  uint64_t old_packed = current_.exchange(static_cast<uint64_t>(target),
                                          std::memory_order_acq_rel);
  size_t old_slot = static_cast<size_t>(old_packed & kSlotMask);
  uint64_t granted = old_packed >> kSlotBits;
  uint64_t new_generation = slots_[target].generation;
  generation_.store(new_generation, std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  // Retire the old snapshot: fix its grant total so the release side
  // knows when it has fully drained, then reclaim right away if it
  // already has.
  Slot& old_s = slots_[old_slot];
  old_s.limit.store(granted, std::memory_order_release);
  if (old_s.releases.load(std::memory_order_acquire) == granted) {
    MaybeReclaim(old_slot);
  }
  return new_generation;
}

uint64_t IndexManager::pinned_readers() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  uint64_t packed = current_.load(std::memory_order_acquire);
  size_t cur = static_cast<size_t>(packed & kSlotMask);
  uint64_t granted = packed >> kSlotBits;
  uint64_t released = slots_[cur].releases.load(std::memory_order_acquire);
  // Saturating: a release can land between the two loads above.
  uint64_t total = granted > released ? granted - released : 0;
  for (size_t i = 0; i < kNumSlots; ++i) {
    if (i == cur) continue;
    const Slot& s = slots_[i];
    if (s.index == nullptr) continue;
    uint64_t limit = s.limit.load(std::memory_order_acquire);
    if (limit == kNoLimit) continue;
    uint64_t rel = s.releases.load(std::memory_order_acquire);
    if (limit > rel) total += limit - rel;
  }
  return total;
}

size_t IndexManager::retained_snapshots() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  size_t n = 0;
  for (const Slot& s : slots_) n += (s.index != nullptr) ? 1 : 0;
  return n;
}

}  // namespace yver::serve
