#ifndef YVER_SERVE_INDEX_MANAGER_H_
#define YVER_SERVE_INDEX_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "serve/resolution_index.h"
#include "util/status.h"

namespace yver::serve {

/// Versioned, hot-swappable home of the served ResolutionIndex
/// (DESIGN.md §13). The manager owns a sequence of immutable index
/// snapshots, each tagged with a monotonically increasing generation.
/// Readers pin the current snapshot with `Acquire()` — a single atomic
/// fetch-add, genuinely wait-free, never blocked by a publish in
/// progress — and work against that snapshot for as long as they hold
/// the returned PinnedIndex. Writers install a new snapshot with
/// `Publish()`; the previous generation is retired immediately (no new
/// reader can pin it) but its memory is reclaimed only after the last
/// pinned reader releases, so an in-flight query never observes a torn
/// swap or a freed index.
///
/// The RCU scheme packs the acquire counter into the same 64-bit atomic
/// as the current slot index: `current_` = (acquires << 16) | slot.
/// Acquire() increments the counter half and reads the slot half in one
/// fetch-add, so every pin is attributed to exactly the snapshot that
/// was current at that instant — there is no pin-then-validate window
/// and no ABA hazard. Publish() swaps the whole word (resetting the
/// counter to zero for the new slot) and the value it swaps out tells
/// it precisely how many pins were granted against the retired
/// snapshot; once that many releases have come back, the snapshot is
/// freed. Snapshots live in a small fixed ring of slots; a slot is
/// reused only after it is fully quiescent, and Publish() (never a
/// reader) waits when the ring is momentarily exhausted by slow
/// readers.
class IndexManager {
 public:
  /// Movable pin on one index generation. While alive, the snapshot it
  /// points at cannot be reclaimed; destruction (or Release) returns the
  /// pin. Cheap to create and destroy — one fetch-add each way.
  class PinnedIndex {
   public:
    PinnedIndex() = default;
    PinnedIndex(PinnedIndex&& other) noexcept
        : manager_(other.manager_),
          slot_(other.slot_),
          index_(std::move(other.index_)),
          generation_(other.generation_) {
      other.manager_ = nullptr;
      other.index_ = nullptr;
    }
    PinnedIndex& operator=(PinnedIndex&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        slot_ = other.slot_;
        index_ = std::move(other.index_);
        generation_ = other.generation_;
        other.manager_ = nullptr;
        other.index_ = nullptr;
      }
      return *this;
    }
    PinnedIndex(const PinnedIndex&) = delete;
    PinnedIndex& operator=(const PinnedIndex&) = delete;
    ~PinnedIndex() { Release(); }

    /// Returns the pin early (idempotent; the dtor does this otherwise).
    void Release();

    const ResolutionIndex& operator*() const { return *index_; }
    const ResolutionIndex* operator->() const { return index_.get(); }
    const std::shared_ptr<const ResolutionIndex>& index() const {
      return index_;
    }
    uint64_t generation() const { return generation_; }
    bool valid() const { return index_ != nullptr; }

   private:
    friend class IndexManager;
    PinnedIndex(const IndexManager* manager, size_t slot,
                std::shared_ptr<const ResolutionIndex> index,
                uint64_t generation)
        : manager_(manager),
          slot_(slot),
          index_(std::move(index)),
          generation_(generation) {}

    const IndexManager* manager_ = nullptr;
    size_t slot_ = 0;
    std::shared_ptr<const ResolutionIndex> index_;
    uint64_t generation_ = 1;
  };

  /// Seeds the manager with the initial snapshot as generation 1.
  explicit IndexManager(std::shared_ptr<const ResolutionIndex> initial);
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Pins the current snapshot. Wait-free: one fetch-add, regardless of
  /// concurrent publishes. Generations observed by repeated Acquire calls
  /// on any one thread are non-decreasing.
  PinnedIndex Acquire() const;

  /// Atomically installs `next` as the new current snapshot and returns
  /// its generation. The previous generation is retired (no new pins) and
  /// freed once its last pinned reader releases. Serialized across
  /// callers; readers are never blocked. Fault seam: an injected I/O
  /// error at util::FaultPoint::kIndexPublish fails the publish with a
  /// typed UNAVAILABLE *without* installing anything — the previous
  /// generation stays current and the caller may retry.
  util::StatusOr<uint64_t> Publish(
      std::shared_ptr<const ResolutionIndex> next);

  /// Generation of the snapshot Acquire() would pin right now.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  /// Successful Publish() calls since construction.
  uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  /// Currently outstanding pins across all generations — the gauge the
  /// chaos harness drives back to zero to prove retired snapshots free.
  uint64_t pinned_readers() const;
  /// Snapshots currently held (current + retired-but-pinned). 1 when
  /// fully quiescent: every retired generation has been reclaimed.
  size_t retained_snapshots() const;

  /// Slots in the snapshot ring: at most this many generations can be
  /// simultaneously alive (1 current + kNumSlots-1 retired-but-pinned)
  /// before Publish waits for a slow reader.
  static constexpr size_t kNumSlots = 64;

 private:
  static constexpr uint64_t kSlotBits = 16;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  static constexpr uint64_t kOnePin = uint64_t{1} << kSlotBits;
  /// `limit` sentinel while a slot is still current (not yet retired).
  static constexpr uint64_t kNoLimit = ~uint64_t{0};

  struct Slot {
    /// Written only while the slot is quiescent (install / reclaim), read
    /// by pinned readers — the quiescence protocol is what makes the
    /// unsynchronized shared_ptr copy in Acquire safe.
    std::shared_ptr<const ResolutionIndex> index;
    uint64_t generation = 0;
    /// Pins returned so far.
    std::atomic<uint64_t> releases{0};
    /// Total pins granted while current; kNoLimit until retired. The slot
    /// is reclaimable once releases == limit.
    std::atomic<uint64_t> limit{kNoLimit};
  };

  void ReleasePin(size_t slot) const;
  /// Frees the slot's snapshot if it is retired and fully released.
  /// Idempotent; raced benignly between the last releaser and Publish.
  void MaybeReclaim(size_t slot) const;

  mutable Slot slots_[kNumSlots];
  /// (acquire count << kSlotBits) | current slot index.
  mutable std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> generation_{1};
  std::atomic<uint64_t> publishes_{0};

  /// Serializes publishers; never touched by Acquire.
  std::mutex publish_mu_;
  /// Guards slot install/reclaim transitions and wakes a publisher
  /// waiting for a quiescent slot.
  mutable std::mutex slots_mu_;
  mutable std::condition_variable slot_freed_;
};

using PinnedIndex = IndexManager::PinnedIndex;

}  // namespace yver::serve

#endif  // YVER_SERVE_INDEX_MANAGER_H_
