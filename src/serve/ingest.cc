#include "serve/ingest.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "data/csv_io.h"
#include "data/dataset.h"
#include "util/atomic_io.h"
#include "util/check.h"

namespace yver::serve {

LiveIndexBuilder::LiveIndexBuilder(
    std::shared_ptr<ResolutionService> service,
    std::unique_ptr<core::IncrementalResolver> resolver,
    IngestOptions options)
    : service_(std::move(service)),
      resolver_(std::move(resolver)),
      options_(options) {
  YVER_CHECK_MSG(service_ != nullptr, "LiveIndexBuilder needs a service");
  YVER_CHECK_MSG(resolver_ != nullptr, "LiveIndexBuilder needs a resolver");
  if (options_.publish_batch == 0) options_.publish_batch = 1;
  base_records_ = resolver_->dataset().size();
  if (options_.wal != nullptr) {
    YVER_CHECK_MSG(options_.wal_base_records <= base_records_,
                   "wal_base_records exceeds the seeded corpus");
    // Whatever was already replayed into the resolver counts as covered:
    // the next snapshot triggers snapshot_every appends from *here*.
    last_snapshot_count_ = base_records_ - options_.wal_base_records;
  }
  builder_ = std::thread([this] { Run(); });
}

LiveIndexBuilder::~LiveIndexBuilder() { Stop(); }

util::StatusOr<data::RecordIdx> LiveIndexBuilder::Submit(
    data::Record record) {
  if (options_.wal == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return util::Status::Unavailable("live ingest is shutting down");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      return util::Status::ResourceExhausted("ingest queue is full");
    }
    // The index is assigned here, at enqueue: base corpus + arrival
    // position. The builder applies strictly in queue order, so the record
    // is guaranteed to land at exactly this index in every generation that
    // contains it.
    data::RecordIdx idx =
        static_cast<data::RecordIdx>(base_records_ + submitted_);
    ++submitted_;
    queue_.push_back(std::move(record));
    work_cv_.notify_one();
    return idx;
  }

  // Durable path: submitters serialize through submit_mu_ so the WAL's
  // sequence order is exactly the queue's arrival order — the property
  // that lets replay reassign the same corpus indices the acks promised.
  // The fsync wait happens under submit_mu_ only; queries, stats, and the
  // builder's drain never block on it.
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return util::Status::Unavailable("live ingest is shutting down");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      return util::Status::ResourceExhausted("ingest queue is full");
    }
  }
  auto sequence = options_.wal->Append(record);
  if (!sequence.ok()) return sequence.status();
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    // The record is durable but the builder is gone: it will replay (and
    // take this same index) on the next startup. The caller still gets a
    // typed refusal — an ack must mean "in the index soon", not "maybe
    // after a restart".
    return util::Status::Unavailable("live ingest is shutting down");
  }
  data::RecordIdx idx =
      static_cast<data::RecordIdx>(base_records_ + submitted_);
  YVER_CHECK_MSG(WalSequenceFor(idx) == *sequence,
                 "wal sequence diverged from the corpus index");
  ++submitted_;
  queue_.push_back(std::move(record));
  work_cv_.notify_one();
  return idx;
}

util::Status LiveIndexBuilder::WaitForIdle(const util::Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  auto idle = [this] {
    return queue_.empty() && !dirty_ && applied_ == submitted_;
  };
  if (deadline.is_infinite()) {
    idle_cv_.wait(lock, idle);
    return util::Status::Ok();
  }
  while (!idle()) {
    if (deadline.HasExpired()) return deadline.Exceeded("ingest idle wait");
    idle_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
  return util::Status::Ok();
}

void LiveIndexBuilder::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !builder_.joinable()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (builder_.joinable()) builder_.join();
}

IngestStats LiveIndexBuilder::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats s;
  s.submitted = submitted_;
  s.applied = applied_;
  s.published = published_;
  s.publish_failures = publish_failures_;
  s.snapshots = snapshots_;
  s.snapshot_failures = snapshot_failures_;
  return s;
}

void LiveIndexBuilder::Run() {
  for (;;) {
    std::vector<data::Record> batch;
    bool need_publish = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (dirty_) {
        // A publish failed: retry shortly, or sooner if work arrives.
        work_cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
          return stopping_ || !queue_.empty();
        });
      } else {
        work_cv_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
      }
      if (stopping_ && queue_.empty() && !dirty_) return;
      size_t take = std::min(options_.publish_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      need_publish = dirty_ || !batch.empty();
    }
    if (!need_publish) continue;
    // Apply in arrival order — the whole determinism contract of live
    // ingest rests on this being the only order records ever enter the
    // resolver in.
    for (data::Record& record : batch) {
      resolver_->AddRecord(std::move(record));
    }
    // Snapshot the cumulative resolution and try to install it. The
    // snapshot is rebuilt from scratch per publish: generations are
    // immutable, so the previous one must not be mutated in place.
    auto snapshot = std::make_shared<const ResolutionIndex>(
        resolver_->Resolution(), resolver_->dataset().size());
    auto published = service_->PublishIndex(std::move(snapshot));
    {
      std::lock_guard<std::mutex> lock(mu_);
      applied_ += batch.size();
      if (published.ok()) {
        dirty_ = false;
        ++published_;
      } else {
        // Resolver state is cumulative; the next round republishes
        // everything applied so far. Nothing is lost.
        dirty_ = true;
        ++publish_failures_;
      }
    }
    if (published.ok()) MaybeSnapshot();
    idle_cv_.notify_all();
  }
}

void LiveIndexBuilder::MaybeSnapshot() {
  if (options_.wal == nullptr || options_.snapshot_every == 0 ||
      options_.snapshot_path.empty()) {
    return;
  }
  size_t appended = resolver_->dataset().size() - options_.wal_base_records;
  if (appended < last_snapshot_count_ + options_.snapshot_every) return;
  // Persist the appended suffix crash-atomically (stream the CSV to a tmp
  // path, fsync, rename), then retire the WAL segments it covers. A crash
  // between the rename and the Retire only leaves covered segments behind
  // — startup skips their records (sequence <= snapshot size) and the
  // next snapshot retires them.
  data::Dataset suffix;
  for (size_t i = options_.wal_base_records; i < resolver_->dataset().size();
       ++i) {
    suffix.Add(resolver_->dataset()[static_cast<data::RecordIdx>(i)]);
  }
  std::string tmp = options_.snapshot_path + ".tmp";
  util::Status persisted =
      data::SaveDatasetCsv(suffix, tmp)
          ? util::PromoteFileAtomic(tmp, options_.snapshot_path)
          : util::Status::Unavailable("cannot write " + tmp);
  if (persisted.ok()) {
    persisted = options_.wal->Retire(static_cast<uint64_t>(appended));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (persisted.ok()) {
    last_snapshot_count_ = appended;
    ++snapshots_;
  } else {
    // Non-fatal: the WAL still holds everything; retry at the next
    // publish boundary.
    ++snapshot_failures_;
  }
}

}  // namespace yver::serve
