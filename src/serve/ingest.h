#ifndef YVER_SERVE_INGEST_H_
#define YVER_SERVE_INGEST_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "core/incremental.h"
#include "data/record.h"
#include "serve/resolution_service.h"
#include "serve/wal.h"
#include "util/deadline.h"
#include "util/status.h"

namespace yver::serve {

/// Tuning knobs for a LiveIndexBuilder.
struct IngestOptions {
  /// Records drained from the queue per builder round; every round that
  /// applied at least one record ends in a publish, so this is the
  /// publish granularity (1 = a generation per record, larger batches
  /// amortize the snapshot build under bursty ingest).
  size_t publish_batch = 1;
  /// Submissions beyond this many undrained records are shed with
  /// RESOURCE_EXHAUSTED — ingest backpressure mirrors query admission.
  size_t max_queue_depth = 4096;
  /// Durable ingest (DESIGN.md §14): when set, Submit appends the record
  /// to this log and returns only once it is fsync'd — the returned index
  /// (and the wire ack built from it) means *durable*, not *enqueued*.
  /// Not owned; must outlive the builder.
  WriteAheadLog* wal = nullptr;
  /// Corpus records that are NOT in the WAL (the seed corpus the log's
  /// first record lands after): WAL sequence s occupies corpus index
  /// wal_base_records + s - 1. Only meaningful with `wal`.
  size_t wal_base_records = 0;
  /// Every this many applied records the builder persists the appended
  /// suffix as a crash-atomic CSV snapshot at `snapshot_path` and retires
  /// WAL segments the snapshot covers (0 = never snapshot).
  size_t snapshot_every = 0;
  std::string snapshot_path;
};

/// Point-in-time ingest counters.
struct IngestStats {
  uint64_t submitted = 0;        // records accepted into the queue
  uint64_t applied = 0;          // records run through the resolver
  uint64_t published = 0;        // successful index publishes
  uint64_t publish_failures = 0; // failed publishes (retried next round)
  uint64_t snapshots = 0;        // appended-suffix snapshots persisted
  uint64_t snapshot_failures = 0;// failed snapshot writes (retried later)
};

/// The live half of the archive (DESIGN.md §13): a single background
/// builder thread that turns appended reports into published index
/// generations. `Submit` assigns the record its corpus index at enqueue
/// time (base corpus size + arrival position) and returns immediately;
/// the builder drains the queue in arrival order, feeds each record
/// through core::IncrementalResolver (item interning, candidate
/// generation, scoring — the paper's trickle-ingest path), snapshots the
/// cumulative resolution into an immutable ResolutionIndex, and installs
/// it via ResolutionService::PublishIndex.
///
/// Determinism contract: the final published index is a pure function of
/// (seed corpus, submission order) — batch boundaries and publish
/// failures only change *which intermediate* generations exist, never
/// the bytes of the final one. The builder is deliberately one thread:
/// arrival order is the only order.
///
/// Failure model: a publish that fails (fault injection at
/// serve.index.publish) leaves the resolver state intact and the builder
/// dirty; the next round republishes the cumulative snapshot, so a
/// transiently failing publish delays visibility but never loses or
/// reorders records.
class LiveIndexBuilder {
 public:
  /// Takes ownership of a seeded resolver and starts the builder thread.
  /// The resolver must be seeded with exactly the corpus the service's
  /// current index was built over.
  LiveIndexBuilder(std::shared_ptr<ResolutionService> service,
                   std::unique_ptr<core::IncrementalResolver> resolver,
                   IngestOptions options = {});
  ~LiveIndexBuilder();

  LiveIndexBuilder(const LiveIndexBuilder&) = delete;
  LiveIndexBuilder& operator=(const LiveIndexBuilder&) = delete;

  /// Enqueues one report and returns the corpus index it will occupy once
  /// published. RESOURCE_EXHAUSTED when the queue is full, UNAVAILABLE
  /// after Stop. Thread-safe; arrival order across concurrent submitters
  /// is whatever order they won the queue lock in — each caller's records
  /// keep their relative order.
  ///
  /// With a WAL configured, Submit persists the record first (group
  /// commit; the call blocks on the fsync) and only then lets the builder
  /// see it, so a successful return means the record survives a crash.
  /// Submitters serialize through the log: WAL order *is* arrival order,
  /// which is what makes replay reproduce the exact corpus indices that
  /// were acked.
  util::StatusOr<data::RecordIdx> Submit(data::Record record);

  /// True when appends are written through a WAL (the ack means durable).
  bool durable() const { return options_.wal != nullptr; }

  /// The WAL sequence that produced (or will produce) corpus index `idx`.
  /// Only meaningful when durable().
  uint64_t WalSequenceFor(data::RecordIdx idx) const {
    return static_cast<uint64_t>(idx) - options_.wal_base_records + 1;
  }

  /// Blocks until everything submitted so far is applied AND published
  /// (the service is serving a generation that contains it), or the
  /// deadline expires (DEADLINE_EXCEEDED). Publish faults make this wait
  /// through the retry rounds.
  util::Status WaitForIdle(const util::Deadline& deadline = {});

  /// Drains the queue, publishes what it can, and joins the builder
  /// thread. Idempotent; the dtor calls it. New Submits are refused from
  /// the moment Stop begins.
  void Stop();

  IngestStats stats() const;

  /// Records in the seed corpus (the first appended record gets this
  /// index).
  size_t base_records() const { return base_records_; }

 private:
  void Run();

  /// Builder-thread only: persists the appended suffix of the corpus as a
  /// crash-atomic CSV and retires the WAL segments it covers.
  void MaybeSnapshot();

  std::shared_ptr<ResolutionService> service_;
  std::unique_ptr<core::IncrementalResolver> resolver_;  // builder thread only
  IngestOptions options_;
  size_t base_records_ = 0;
  uint64_t last_snapshot_count_ = 0;  // appended records covered (builder thread)

  /// Serializes durable submits: the WAL append (including the group-
  /// commit wait) and the enqueue happen under this lock so the log order
  /// equals the queue order. Never held while mu_ is wanted by others for
  /// long — the fsync wait happens here, not under mu_.
  std::mutex submit_mu_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // builder wakes on submit/stop
  std::condition_variable idle_cv_;   // waiters wake on publish
  std::deque<data::Record> queue_;
  bool stopping_ = false;
  /// Applied-but-not-yet-published records exist (a publish failed).
  bool dirty_ = false;
  uint64_t submitted_ = 0;
  uint64_t applied_ = 0;
  uint64_t published_ = 0;
  uint64_t publish_failures_ = 0;
  uint64_t snapshots_ = 0;
  uint64_t snapshot_failures_ = 0;

  std::thread builder_;
};

}  // namespace yver::serve

#endif  // YVER_SERVE_INGEST_H_
