#include "serve/lru_cache.h"

#include <algorithm>

#include "util/fault_injector.h"

namespace yver::serve {

ShardedQueryCache::ShardedQueryCache(size_t capacity, size_t num_shards) {
  num_shards = std::bit_ceil(std::max<size_t>(1, num_shards));
  if (capacity > 0) {
    // Never let sharding round the budget down to zero entries per shard.
    num_shards = std::min(num_shards, std::bit_floor(capacity));
    per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  }
  shards_ = std::vector<Shard>(num_shards);
  shard_mask_ = num_shards - 1;
}

std::shared_ptr<const QueryResult> ShardedQueryCache::Get(
    const Query& query, uint64_t generation) {
  // Chaos seam: an injected fault degrades the cache to a miss (the service
  // recomputes), never to wrong data — a cache can only lose, not lie.
  switch (util::FaultInjector::Global().Evaluate(util::FaultPoint::kCacheGet)) {
    case util::FaultKind::kIoError:
    case util::FaultKind::kShortRead:
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    default:
      break;
  }
  if (disabled()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Key key = MakeKey(query, generation);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it == shard.by_key.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ShardedQueryCache::Put(const Query& query, uint64_t generation,
                            std::shared_ptr<const QueryResult> result) {
  if (disabled()) return;
  Key key = MakeKey(query, generation);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    it->second->second = std::move(result);
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return;
  }
  if (shard.entries.size() >= per_shard_capacity_) {
    shard.by_key.erase(shard.entries.back().first);
    shard.entries.pop_back();
  }
  shard.entries.emplace_front(key, std::move(result));
  shard.by_key[key] = shard.entries.begin();
}

void ShardedQueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.by_key.clear();
  }
}

size_t ShardedQueryCache::EvictOlderThan(uint64_t min_generation) {
  size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->first.generation < min_generation) {
        shard.by_key.erase(it->first);
        it = shard.entries.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

size_t ShardedQueryCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

}  // namespace yver::serve
