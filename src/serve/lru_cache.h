#ifndef YVER_SERVE_LRU_CACHE_H_
#define YVER_SERVE_LRU_CACHE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/query.h"

namespace yver::serve {

/// A thread-safe LRU cache of query results, sharded by key hash so
/// concurrent lookups on different shards never contend on one mutex.
/// Values are shared_ptr<const QueryResult>: hits hand out refcounted
/// pointers, so eviction never invalidates a result a reader still holds.
///
/// Keyed by the full (generation, record, certainty-bits, k, granularity)
/// tuple — certainty participates as its raw bit pattern, so 0.0 and -0.0
/// are distinct keys (harmless: both would cache correct results). The
/// generation is the index snapshot the result was computed against
/// (IndexManager); including it in the key is what prevents a post-swap
/// lookup from serving an answer computed on a retired generation as
/// fresh. Entries from older generations simply age out of the LRU.
class ShardedQueryCache {
 public:
  /// `capacity` is the total entry budget across all shards; 0 disables
  /// caching entirely (Get always misses, Put is a no-op). `num_shards`
  /// is rounded up to a power of two, minimum 1.
  explicit ShardedQueryCache(size_t capacity, size_t num_shards = 16);

  ShardedQueryCache(const ShardedQueryCache&) = delete;
  ShardedQueryCache& operator=(const ShardedQueryCache&) = delete;

  /// The result cached for `query` against index `generation`, or nullptr
  /// on miss. Promotes the entry to most-recently-used and bumps the
  /// hit/miss counters.
  std::shared_ptr<const QueryResult> Get(const Query& query,
                                         uint64_t generation);

  /// Inserts (or refreshes) the result for `query` under `generation`,
  /// evicting the shard's least-recently-used entry when the shard is at
  /// capacity.
  void Put(const Query& query, uint64_t generation,
           std::shared_ptr<const QueryResult> result);

  /// Drops all entries (counters are kept).
  void Clear();

  /// Drops every entry computed against a generation older than
  /// `min_generation` and returns how many were evicted. Bounds how stale
  /// a degraded (served-from-cache-under-shed) answer can be: the service
  /// calls this on publish so retired generations age out deterministically
  /// instead of lingering until LRU pressure happens to reach them.
  size_t EvictOlderThan(uint64_t min_generation);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Current number of cached entries across all shards.
  size_t size() const;

  /// True when caching is disabled (capacity 0).
  bool disabled() const { return per_shard_capacity_ == 0; }

 private:
  struct Key {
    uint64_t record_and_granularity = 0;  // record << 8 | granularity
    uint64_t certainty_bits = 0;
    uint64_t k = 0;
    uint64_t generation = 0;  // index snapshot identity

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (uint64_t v : {key.record_and_granularity, key.certainty_bits,
                         key.k, key.generation}) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
      }
      return static_cast<size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    // MRU at front; list nodes own the key so the map can reference it.
    std::list<std::pair<Key, std::shared_ptr<const QueryResult>>> entries;
    std::unordered_map<Key, decltype(entries)::iterator, KeyHash> by_key;
  };

  static Key MakeKey(const Query& query, uint64_t generation) {
    Key key;
    key.record_and_granularity =
        (static_cast<uint64_t>(query.record) << 8) |
        static_cast<uint64_t>(query.granularity);
    key.certainty_bits = std::bit_cast<uint64_t>(query.certainty);
    key.k = query.k;
    key.generation = generation;
    return key;
  }

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) & shard_mask_];
  }

  std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace yver::serve

#endif  // YVER_SERVE_LRU_CACHE_H_
