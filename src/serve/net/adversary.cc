#include "serve/net/adversary.h"

#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/query.h"
#include "serve/wire.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "util/socket.h"

namespace yver::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::steady_clock::duration MillisDuration(double ms) {
  return std::chrono::nanoseconds(static_cast<int64_t>(ms * 1e6));
}

/// One connection's view of the attack; summed into the report.
struct ConnOutcome {
  bool opened = false;
  uint64_t bytes_sent = 0;
  uint64_t frames_sent = 0;
  uint64_t responses_read = 0;
  uint64_t ok_responses = 0;
  uint64_t error_responses = 0;
  bool server_closed = false;
  bool clean_eof = false;
};

std::string RandomQueryFrame(util::Rng& rng) {
  Query query;
  query.record = static_cast<data::RecordIdx>(rng.UniformInt(0, 31));
  query.certainty = rng.UniformDouble();
  query.k = static_cast<size_t>(rng.UniformInt(1, 5));
  query.granularity =
      rng.Bernoulli(0.5) ? Granularity::kEntity : Granularity::kMatches;
  std::string bytes;
  wire::EncodeQuery(query, 0, &bytes);
  return bytes;
}

/// Reads one whole response frame (blocking socket, bounded by
/// `deadline`). UNAVAILABLE from ReadFull means the server closed.
util::StatusOr<std::string> ReadOneFrame(util::Socket& sock,
                                         const util::Deadline& deadline) {
  std::string frame(wire::kHeaderSize, '\0');
  util::Status st = sock.ReadFull(frame.data(), wire::kHeaderSize, deadline);
  if (!st.ok()) return st;
  wire::FrameHeader header;
  auto peeked = wire::PeekFrameHeader(frame, &header);
  if (!peeked.ok()) return peeked.status();
  size_t off = frame.size();
  frame.resize(off + header.payload_length);
  if (header.payload_length > 0) {
    st = sock.ReadFull(frame.data() + off, header.payload_length, deadline);
    if (!st.ok()) return st;
  }
  return frame;
}

void BookResponse(const std::string& frame, ConnOutcome& out) {
  out.responses_read++;
  if (frame.size() > 3 &&
      static_cast<uint8_t>(frame[3]) ==
          static_cast<uint8_t>(wire::FrameType::kError)) {
    out.error_responses++;
  } else {
    out.ok_responses++;
  }
}

/// True when a read/write status says the server ended the connection.
bool IsServerClose(const util::Status& status) {
  return status.code() == util::StatusCode::kUnavailable;
}

/// A valid header declaring a 4 KiB query payload that will never fully
/// arrive — the classic slow-loris shape: always "almost" a frame.
std::string SlowlorisHeader() {
  constexpr uint32_t kDeclared = 4096;
  std::string bytes;
  bytes.push_back(0x59);  // 'Y'
  bytes.push_back(0x57);  // 'W'
  bytes.push_back(static_cast<char>(wire::kVersion));
  bytes.push_back(static_cast<char>(wire::FrameType::kQuery));
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((kDeclared >> (8 * i)) & 0xff));
  }
  return bytes;
}

ConnOutcome RunSlowloris(const AdversaryOptions& options,
                         Clock::time_point stop_at, util::Rng& rng) {
  ConnOutcome out;
  auto sock = util::Socket::ConnectLoopback(options.port);
  if (!sock.ok()) return out;
  out.opened = true;
  std::string header = SlowlorisHeader();
  util::Status st = sock->WriteFull(header.data(), header.size(),
                                    util::Deadline::AfterMillis(1000));
  if (!st.ok()) {
    out.server_closed = IsServerClose(st);
    return out;
  }
  out.bytes_sent += header.size();
  // Dribble payload bytes far below any plausible minimum rate. The 1 ms
  // read probe doubles as the close detector: the server's slow-loris
  // disconnect surfaces as EOF here.
  while (Clock::now() < stop_at) {
    char byte = static_cast<char>(rng.Next() & 0xff);
    st = sock->WriteFull(&byte, 1, util::Deadline::AfterMillis(200));
    if (!st.ok()) {
      out.server_closed = IsServerClose(st);
      return out;
    }
    out.bytes_sent++;
    char probe;
    util::Status read =
        sock->ReadFull(&probe, 1, util::Deadline::AfterMillis(1));
    if (IsServerClose(read)) {
      out.server_closed = true;
      return out;
    }
    std::this_thread::sleep_for(MillisDuration(options.write_interval_ms));
  }
  return out;
}

ConnOutcome RunDribble(const AdversaryOptions& options,
                       Clock::time_point stop_at, util::Rng& rng) {
  ConnOutcome out;
  auto sock = util::Socket::ConnectLoopback(options.port);
  if (!sock.ok()) return out;
  out.opened = true;
  while (Clock::now() < stop_at) {
    std::string frame = RandomQueryFrame(rng);
    for (char byte : frame) {
      if (Clock::now() >= stop_at) return out;
      util::Status st =
          sock->WriteFull(&byte, 1, util::Deadline::AfterMillis(1000));
      if (!st.ok()) {
        out.server_closed = IsServerClose(st);
        return out;
      }
      out.bytes_sent++;
      std::this_thread::sleep_for(
          MillisDuration(options.write_interval_ms));
    }
    out.frames_sent++;
    auto response = ReadOneFrame(
        *sock, util::Deadline::AfterMillis(options.read_timeout_ms));
    if (!response.ok()) {
      out.server_closed = IsServerClose(response.status());
      return out;
    }
    BookResponse(*response, out);
  }
  return out;
}

ConnOutcome RunNeverRead(const AdversaryOptions& options,
                         Clock::time_point stop_at, util::Rng& rng) {
  ConnOutcome out;
  auto sock = util::Socket::ConnectLoopback(options.port);
  if (!sock.ok()) return out;
  out.opened = true;
  // Clamp the receive buffer to a few KB: Linux auto-tunes loopback
  // receive queues to megabytes, and a kernel that quietly absorbs the
  // responses this client refuses to read would keep the server's out
  // backlog empty and mask the very write-stall defense under test.
  int rcvbuf = 4096;
  ::setsockopt(sock->fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  // Non-blocking writes keep framing valid while the server's
  // backpressure freezes the pipe: the offset tracks exactly how much of
  // the current frame went out, so every byte on the wire is a whole
  // prefix of real frames — the server keeps answering into its (bounded)
  // out buffer until the write-stall defense fires.
  if (!sock->SetNonBlocking(true).ok()) return out;
  std::string frame;
  size_t off = 0;
  while (Clock::now() < stop_at) {
    if (off == frame.size()) {
      frame = RandomQueryFrame(rng);
      off = 0;
      out.frames_sent++;
    }
    auto wrote = sock->WriteSome(frame.data() + off, frame.size() - off);
    if (!wrote.ok()) {
      out.server_closed = IsServerClose(wrote.status());
      return out;
    }
    if (wrote->would_block || wrote->bytes == 0) {
      std::this_thread::sleep_for(MillisDuration(5));
      continue;
    }
    off += wrote->bytes;
    out.bytes_sent += wrote->bytes;
  }
  // Frames counted are the fully written ones.
  if (off < frame.size() && out.frames_sent > 0) out.frames_sent--;
  return out;
}

ConnOutcome RunGarbage(const AdversaryOptions& options,
                       Clock::time_point stop_at, util::Rng& rng) {
  ConnOutcome out;
  auto sock = util::Socket::ConnectLoopback(options.port);
  if (!sock.ok()) return out;
  out.opened = true;
  std::string junk(256, '\0');
  junk[0] = '\x00';  // never the magic: the first frame is already poison
  for (size_t i = 1; i < junk.size(); ++i) {
    junk[i] = static_cast<char>(rng.Next() & 0xff);
  }
  util::Status st = sock->WriteFull(junk.data(), junk.size(),
                                    util::Deadline::AfterMillis(1000));
  if (!st.ok()) {
    out.server_closed = IsServerClose(st);
    return out;
  }
  out.bytes_sent += junk.size();
  // Expected: one typed error frame, then EOF.
  util::Deadline deadline = util::Deadline::At(stop_at);
  auto response = ReadOneFrame(*sock, deadline);
  if (response.ok()) {
    BookResponse(*response, out);
    char probe;
    util::Status read = sock->ReadFull(&probe, 1, deadline);
    out.server_closed = IsServerClose(read);
  } else {
    out.server_closed = IsServerClose(response.status());
  }
  return out;
}

ConnOutcome RunHalfClose(const AdversaryOptions& options,
                         Clock::time_point stop_at, util::Rng& rng) {
  ConnOutcome out;
  auto sock = util::Socket::ConnectLoopback(options.port);
  if (!sock.ok()) return out;
  out.opened = true;
  constexpr size_t kBurst = 16;
  for (size_t i = 0; i < kBurst; ++i) {
    std::string frame = RandomQueryFrame(rng);
    util::Status st = sock->WriteFull(frame.data(), frame.size(),
                                      util::Deadline::AfterMillis(1000));
    if (!st.ok()) {
      out.server_closed = IsServerClose(st);
      return out;
    }
    out.bytes_sent += frame.size();
    out.frames_sent++;
  }
  if (::shutdown(sock->fd(), SHUT_WR) != 0) return out;
  // The contract under test: half-close means "no more requests" — every
  // burst answer still arrives, in order, then a clean EOF.
  util::Deadline deadline = util::Deadline::At(stop_at);
  for (size_t i = 0; i < kBurst; ++i) {
    auto response = ReadOneFrame(*sock, deadline);
    if (!response.ok()) {
      out.server_closed = IsServerClose(response.status());
      return out;
    }
    BookResponse(*response, out);
  }
  char probe;
  util::Status read = sock->ReadFull(&probe, 1, deadline);
  out.clean_eof = IsServerClose(read);  // EOF exactly after the answers
  return out;
}

ConnOutcome RunOne(const AdversaryOptions& options,
                   Clock::time_point stop_at, uint64_t seed) {
  util::Rng rng(seed);
  switch (options.mode) {
    case AdversaryMode::kSlowloris:
      return RunSlowloris(options, stop_at, rng);
    case AdversaryMode::kDribble:
      return RunDribble(options, stop_at, rng);
    case AdversaryMode::kNeverRead:
      return RunNeverRead(options, stop_at, rng);
    case AdversaryMode::kGarbage:
      return RunGarbage(options, stop_at, rng);
    case AdversaryMode::kHalfClose:
      return RunHalfClose(options, stop_at, rng);
  }
  return ConnOutcome{};
}

}  // namespace

util::StatusOr<AdversaryMode> ParseAdversaryMode(std::string_view name) {
  if (name == "slowloris") return AdversaryMode::kSlowloris;
  if (name == "dribble") return AdversaryMode::kDribble;
  if (name == "never-read") return AdversaryMode::kNeverRead;
  if (name == "garbage") return AdversaryMode::kGarbage;
  if (name == "half-close") return AdversaryMode::kHalfClose;
  return util::Status::InvalidArgument(
      "unknown adversary mode '" + std::string(name) +
      "' (want slowloris|dribble|never-read|garbage|half-close)");
}

const char* AdversaryModeName(AdversaryMode mode) {
  switch (mode) {
    case AdversaryMode::kSlowloris:
      return "slowloris";
    case AdversaryMode::kDribble:
      return "dribble";
    case AdversaryMode::kNeverRead:
      return "never-read";
    case AdversaryMode::kGarbage:
      return "garbage";
    case AdversaryMode::kHalfClose:
      return "half-close";
  }
  return "unknown";
}

util::StatusOr<AdversaryReport> RunAdversary(
    const AdversaryOptions& options) {
  if (options.port == 0) {
    return util::Status::InvalidArgument("adversary needs a port");
  }
  if (options.connections == 0) {
    return util::Status::InvalidArgument(
        "adversary needs at least one connection");
  }
  Clock::time_point stop_at =
      Clock::now() + MillisDuration(options.duration_ms);
  std::vector<ConnOutcome> outcomes(options.connections);
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (size_t i = 0; i < options.connections; ++i) {
    threads.emplace_back([&, i] {
      outcomes[i] = RunOne(options, stop_at, options.seed + i * 7919);
    });
  }
  for (std::thread& t : threads) t.join();
  AdversaryReport report;
  for (const ConnOutcome& out : outcomes) {
    if (out.opened) report.connections_opened++;
    report.bytes_sent += out.bytes_sent;
    report.frames_sent += out.frames_sent;
    report.responses_read += out.responses_read;
    report.ok_responses += out.ok_responses;
    report.error_responses += out.error_responses;
    if (out.server_closed) report.server_closed++;
    if (out.clean_eof) report.clean_eofs++;
  }
  return report;
}

std::string FormatAdversaryReport(AdversaryMode mode,
                                  const AdversaryReport& report) {
  return std::string(AdversaryModeName(mode)) + ": opened " +
         std::to_string(report.connections_opened) + ", sent " +
         std::to_string(report.bytes_sent) + " bytes / " +
         std::to_string(report.frames_sent) + " frames, read " +
         std::to_string(report.responses_read) + " responses (" +
         std::to_string(report.ok_responses) + " ok, " +
         std::to_string(report.error_responses) + " error), server closed " +
         std::to_string(report.server_closed) + ", clean EOFs " +
         std::to_string(report.clean_eofs);
}

}  // namespace yver::serve::net
