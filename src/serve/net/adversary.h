#ifndef YVER_SERVE_NET_ADVERSARY_H_
#define YVER_SERVE_NET_ADVERSARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace yver::serve::net {

/// The hostile-client repertoire the defense layer (DESIGN.md §15) is
/// built against. Each mode is a distinct misbehaviour with a distinct
/// expected server response:
///  - kSlowloris: sends a valid frame header, then dribbles payload bytes
///    far below any plausible rate — expects a slow-loris disconnect.
///  - kDribble: a *legitimately* slow client: whole frames, one byte at a
///    time, but above the configured minimum rate, reading every answer —
///    expects to be served normally and NEVER disconnected.
///  - kNeverRead: pipelines queries forever and never reads a response —
///    expects a write-stall disconnect once the server's bounded out
///    buffer fills (memory stays capped meanwhile).
///  - kGarbage: writes random bytes — expects one typed error frame, then
///    EOF.
///  - kHalfClose: sends a burst of queries, shutdown(SHUT_WR), and reads —
///    expects every answer in order followed by clean EOF (this adversary
///    is well-behaved; the server must treat half-close as "no more
///    requests", not as an abort).
enum class AdversaryMode : uint8_t {
  kSlowloris,
  kDribble,
  kNeverRead,
  kGarbage,
  kHalfClose,
};

/// Parses "slowloris" | "dribble" | "never-read" | "garbage" |
/// "half-close" (the --adversary spellings).
util::StatusOr<AdversaryMode> ParseAdversaryMode(std::string_view name);

const char* AdversaryModeName(AdversaryMode mode);

struct AdversaryOptions {
  uint16_t port = 0;
  AdversaryMode mode = AdversaryMode::kSlowloris;
  /// Concurrent hostile connections (each on its own thread).
  size_t connections = 4;
  /// Wall-clock budget for the attack; connections that are still alive
  /// when it elapses are closed by the adversary.
  double duration_ms = 2000;
  /// Pause between dribbled writes (slowloris / dribble pacing).
  double write_interval_ms = 50;
  /// Read deadline for the modes that read responses.
  double read_timeout_ms = 10000;
  uint64_t seed = 1;
};

/// What the attack observed, summed over all connections.
struct AdversaryReport {
  uint64_t connections_opened = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_sent = 0;     // complete frames put on the wire
  uint64_t responses_read = 0;  // whole response frames read back
  uint64_t ok_responses = 0;    // kResult frames among those
  uint64_t error_responses = 0;
  /// Connections the SERVER terminated (EOF or reset seen while the
  /// adversary still wanted to talk) — the defense layer firing.
  uint64_t server_closed = 0;
  /// Half-close mode only: connections whose every answer arrived in
  /// order before the clean EOF.
  uint64_t clean_eofs = 0;
};

/// Runs the attack against 127.0.0.1:port and reports what happened.
/// Errors reaching this Status are harness failures (could not connect at
/// all, bad options) — a server that drops hostile connections is success,
/// recorded in the report, not an error.
util::StatusOr<AdversaryReport> RunAdversary(const AdversaryOptions& options);

/// One-line summary for logs: mode, connections, bytes, server closes.
std::string FormatAdversaryReport(AdversaryMode mode,
                                  const AdversaryReport& report);

}  // namespace yver::serve::net

#endif  // YVER_SERVE_NET_ADVERSARY_H_
