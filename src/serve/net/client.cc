#include "serve/net/client.h"

#include <sys/socket.h>

#include <utility>

namespace yver::serve::net {

util::StatusOr<Client> Client::Connect(uint16_t port) {
  auto sock = util::Socket::ConnectLoopback(port);
  if (!sock.ok()) return sock.status();
  util::Status nd = sock->SetNoDelay(true);
  if (!nd.ok()) return nd;
  return Client(std::move(*sock));
}

util::Status Client::FinishSending() {
  if (::shutdown(sock_.fd(), SHUT_WR) != 0) {
    return util::Status::Unavailable("shutdown(SHUT_WR) failed");
  }
  return util::Status::Ok();
}

util::Status Client::SendQuery(const Query& query, double deadline_ms) {
  std::string bytes;
  wire::EncodeQuery(query, deadline_ms, &bytes);
  return SendBytes(bytes);
}

util::Status Client::SendBytes(std::string_view bytes,
                               const util::Deadline& deadline) {
  return sock_.WriteFull(bytes.data(), bytes.size(), deadline);
}

util::Status Client::SendInfoRequest() {
  std::string bytes;
  wire::EncodeInfoRequest(&bytes);
  return SendBytes(bytes);
}

util::Deadline Client::EffectiveDeadline(
    const util::Deadline& deadline) const {
  if (!deadline.is_infinite() || read_timeout_ms_ <= 0) return deadline;
  return util::Deadline::AfterMillis(read_timeout_ms_);
}

util::StatusOr<std::string> Client::ReadFrameBytes(
    const util::Deadline& deadline) {
  // Header first: PeekFrameHeader validates the whole envelope (magic,
  // version, type, declared length bound) from the 8 header bytes, so a
  // hostile length field is rejected before a single payload byte is
  // reserved or awaited — the same pre-allocation check the server runs.
  util::Deadline budget = EffectiveDeadline(deadline);
  std::string frame(wire::kHeaderSize, '\0');
  util::Status st = sock_.ReadFull(frame.data(), wire::kHeaderSize, budget);
  if (!st.ok()) return st;
  wire::FrameHeader header;
  auto peeked = wire::PeekFrameHeader(frame, &header);
  if (!peeked.ok()) return peeked.status();
  size_t off = frame.size();
  frame.resize(off + header.payload_length);
  if (header.payload_length > 0) {
    st = sock_.ReadFull(frame.data() + off, header.payload_length, budget);
    if (!st.ok()) return st;
  }
  return frame;
}

util::StatusOr<QueryResult> Client::ReadResult(
    const util::Deadline& deadline) {
  auto bytes = ReadFrameBytes(deadline);
  if (!bytes.ok()) return bytes.status();
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(*bytes, &frame);
  if (!consumed.ok()) return consumed.status();
  if (*consumed != bytes->size()) {
    return util::Status::DataLoss("response frame size mismatch");
  }
  return wire::DecodeResult(frame);
}

util::StatusOr<QueryResult> Client::Call(const Query& query,
                                         double deadline_ms,
                                         const util::Deadline& deadline) {
  util::Status st = SendQuery(query, deadline_ms);
  if (!st.ok()) return st;
  return ReadResult(deadline);
}

util::StatusOr<wire::ServerInfo> Client::Info(const util::Deadline& deadline) {
  util::Status st = SendInfoRequest();
  if (!st.ok()) return st;
  auto bytes = ReadFrameBytes(deadline);
  if (!bytes.ok()) return bytes.status();
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(*bytes, &frame);
  if (!consumed.ok()) return consumed.status();
  return wire::DecodeInfo(frame);
}

util::Status Client::SendAppend(const data::Record& record) {
  std::string bytes;
  wire::EncodeAppend(record, &bytes);
  return SendBytes(bytes);
}

util::StatusOr<wire::AppendAck> Client::ReadAppendAck(
    const util::Deadline& deadline) {
  auto bytes = ReadFrameBytes(deadline);
  if (!bytes.ok()) return bytes.status();
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(*bytes, &frame);
  if (!consumed.ok()) return consumed.status();
  if (frame.type == wire::FrameType::kError) {
    // DecodeResult owns the error-frame decoding; surface its Status.
    auto result = wire::DecodeResult(frame);
    if (result.ok()) {
      return util::Status::DataLoss("error frame decoded as a result");
    }
    return result.status();
  }
  return wire::DecodeAppendAck(frame);
}

util::StatusOr<wire::AppendAck> Client::Append(
    const data::Record& record, const util::Deadline& deadline) {
  util::Status st = SendAppend(record);
  if (!st.ok()) return st;
  return ReadAppendAck(deadline);
}

}  // namespace yver::serve::net
