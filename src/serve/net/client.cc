#include "serve/net/client.h"

#include <sys/socket.h>

#include <utility>

namespace yver::serve::net {

util::StatusOr<Client> Client::Connect(uint16_t port) {
  auto sock = util::Socket::ConnectLoopback(port);
  if (!sock.ok()) return sock.status();
  util::Status nd = sock->SetNoDelay(true);
  if (!nd.ok()) return nd;
  return Client(std::move(*sock));
}

util::Status Client::FinishSending() {
  if (::shutdown(sock_.fd(), SHUT_WR) != 0) {
    return util::Status::Unavailable("shutdown(SHUT_WR) failed");
  }
  return util::Status::Ok();
}

util::Status Client::SendQuery(const Query& query, double deadline_ms) {
  std::string bytes;
  wire::EncodeQuery(query, deadline_ms, &bytes);
  return SendBytes(bytes);
}

util::Status Client::SendBytes(std::string_view bytes,
                               const util::Deadline& deadline) {
  return sock_.WriteFull(bytes.data(), bytes.size(), deadline);
}

util::Status Client::SendInfoRequest() {
  std::string bytes;
  wire::EncodeInfoRequest(&bytes);
  return SendBytes(bytes);
}

util::StatusOr<std::string> Client::ReadFrameBytes(
    const util::Deadline& deadline) {
  // Header first: the length field says how much more to read. Validation
  // (magic, version, type, length bound) is ExtractFrame's job — done once
  // the frame is whole, so client and server reject bad frames through the
  // exact same code path.
  std::string frame(wire::kHeaderSize, '\0');
  util::Status st = sock_.ReadFull(frame.data(), wire::kHeaderSize, deadline);
  if (!st.ok()) return st;
  uint32_t payload_len = 0;
  for (int i = 3; i >= 0; --i) {
    payload_len = (payload_len << 8) |
                  static_cast<uint8_t>(frame[4 + static_cast<size_t>(i)]);
  }
  if (payload_len > wire::kMaxFramePayload) {
    return util::Status::DataLoss("response frame length out of bounds");
  }
  size_t off = frame.size();
  frame.resize(off + payload_len);
  if (payload_len > 0) {
    st = sock_.ReadFull(frame.data() + off, payload_len, deadline);
    if (!st.ok()) return st;
  }
  return frame;
}

util::StatusOr<QueryResult> Client::ReadResult(
    const util::Deadline& deadline) {
  auto bytes = ReadFrameBytes(deadline);
  if (!bytes.ok()) return bytes.status();
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(*bytes, &frame);
  if (!consumed.ok()) return consumed.status();
  if (*consumed != bytes->size()) {
    return util::Status::DataLoss("response frame size mismatch");
  }
  return wire::DecodeResult(frame);
}

util::StatusOr<QueryResult> Client::Call(const Query& query,
                                         double deadline_ms,
                                         const util::Deadline& deadline) {
  util::Status st = SendQuery(query, deadline_ms);
  if (!st.ok()) return st;
  return ReadResult(deadline);
}

util::StatusOr<wire::ServerInfo> Client::Info(const util::Deadline& deadline) {
  util::Status st = SendInfoRequest();
  if (!st.ok()) return st;
  auto bytes = ReadFrameBytes(deadline);
  if (!bytes.ok()) return bytes.status();
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(*bytes, &frame);
  if (!consumed.ok()) return consumed.status();
  return wire::DecodeInfo(frame);
}

util::Status Client::SendAppend(const data::Record& record) {
  std::string bytes;
  wire::EncodeAppend(record, &bytes);
  return SendBytes(bytes);
}

util::StatusOr<wire::AppendAck> Client::ReadAppendAck(
    const util::Deadline& deadline) {
  auto bytes = ReadFrameBytes(deadline);
  if (!bytes.ok()) return bytes.status();
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(*bytes, &frame);
  if (!consumed.ok()) return consumed.status();
  if (frame.type == wire::FrameType::kError) {
    // DecodeResult owns the error-frame decoding; surface its Status.
    auto result = wire::DecodeResult(frame);
    if (result.ok()) {
      return util::Status::DataLoss("error frame decoded as a result");
    }
    return result.status();
  }
  return wire::DecodeAppendAck(frame);
}

util::StatusOr<wire::AppendAck> Client::Append(
    const data::Record& record, const util::Deadline& deadline) {
  util::Status st = SendAppend(record);
  if (!st.ok()) return st;
  return ReadAppendAck(deadline);
}

}  // namespace yver::serve::net
