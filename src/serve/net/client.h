#ifndef YVER_SERVE_NET_CLIENT_H_
#define YVER_SERVE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/query.h"
#include "serve/wire.h"
#include "util/deadline.h"
#include "util/socket.h"
#include "util/status.h"

namespace yver::serve::net {

/// A blocking wire client for one connection to a serve::net::Server.
///
/// The API splits sends from receives so callers can pipeline: any number
/// of SendQuery/SendBytes calls may be outstanding, and responses come
/// back strictly in send order (the server's ordering contract). The
/// receive side exposes both decoded results (ReadResult) and the raw
/// response frame bytes (ReadFrameBytes) — the raw form is what the
/// byte-equality tests and the load generator's response hash consume.
///
/// Not thread-safe; one Client per thread.
class Client {
 public:
  Client() = default;

  /// Blocking connect to 127.0.0.1:`port` (TCP_NODELAY on).
  static util::StatusOr<Client> Connect(uint16_t port);

  bool connected() const { return sock_.valid(); }

  /// Default budget for every blocking read whose caller passes no
  /// explicit deadline: after this many milliseconds without the frame
  /// arriving, the read returns a typed DEADLINE_EXCEEDED instead of
  /// hanging forever on a stalled or hostile server. 0 (the default)
  /// keeps the historical block-forever behaviour. An explicit per-call
  /// deadline always wins over this knob.
  void set_read_timeout_ms(double ms) { read_timeout_ms_ = ms; }
  double read_timeout_ms() const { return read_timeout_ms_; }

  /// Half-closes the send direction: the server sees EOF, answers every
  /// query already sent, then closes. Reads still work.
  util::Status FinishSending();

  void Close() { sock_.Close(); }

  /// Encodes and sends one query frame with a relative millisecond
  /// deadline budget (0 = none). Does not wait for the response.
  util::Status SendQuery(const Query& query, double deadline_ms = 0.0);

  /// Sends pre-encoded frame bytes verbatim — the replay path: captured
  /// query frames go back on the wire byte-identically.
  util::Status SendBytes(std::string_view bytes,
                         const util::Deadline& deadline = {});

  /// Sends a kInfoRequest frame.
  util::Status SendInfoRequest();

  /// Reads exactly one response frame and returns its raw bytes (header +
  /// payload). UNAVAILABLE when the server closed the connection first.
  util::StatusOr<std::string> ReadFrameBytes(
      const util::Deadline& deadline = {});

  /// Reads one response frame and decodes it as the answer to the oldest
  /// unanswered query: the QueryResult on kResult, the server's typed
  /// Status on kError (so a shed query surfaces here as RESOURCE_EXHAUSTED,
  /// exactly like the in-process API).
  util::StatusOr<QueryResult> ReadResult(const util::Deadline& deadline = {});

  /// SendQuery + ReadResult: the convenience round trip.
  util::StatusOr<QueryResult> Call(const Query& query,
                                   double deadline_ms = 0.0,
                                   const util::Deadline& deadline = {});

  /// SendInfoRequest + read + decode.
  util::StatusOr<wire::ServerInfo> Info(const util::Deadline& deadline = {});

  /// Encodes and sends one kAppendRequest frame carrying `record`. Does
  /// not wait for the ack.
  util::Status SendAppend(const data::Record& record);

  /// Reads one response frame as the answer to the oldest unanswered
  /// append: the AppendAck on kAppendAck, the server's typed Status on
  /// kError (UNAVAILABLE when the server runs without live ingest).
  util::StatusOr<wire::AppendAck> ReadAppendAck(
      const util::Deadline& deadline = {});

  /// SendAppend + ReadAppendAck: the convenience round trip.
  util::StatusOr<wire::AppendAck> Append(const data::Record& record,
                                         const util::Deadline& deadline = {});

 private:
  explicit Client(util::Socket sock) : sock_(std::move(sock)) {}

  /// The caller's deadline when it has one; otherwise a fresh deadline
  /// from read_timeout_ms (infinite when the knob is unset).
  util::Deadline EffectiveDeadline(const util::Deadline& deadline) const;

  util::Socket sock_;
  double read_timeout_ms_ = 0;
};

}  // namespace yver::serve::net

#endif  // YVER_SERVE_NET_CLIENT_H_
