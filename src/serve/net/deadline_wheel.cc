#include "serve/net/deadline_wheel.h"

#include <algorithm>

#include "util/check.h"

namespace yver::serve::net {

DeadlineWheel::DeadlineWheel(Clock::duration tick, size_t num_slots)
    : tick_(tick),
      num_slots_(num_slots),
      slots_(num_slots),
      cursor_(Clock::now()) {
  YVER_CHECK_MSG(tick > Clock::duration::zero(),
                 "DeadlineWheel tick must be positive");
  YVER_CHECK_MSG(num_slots > 0, "DeadlineWheel needs at least one slot");
}

void DeadlineWheel::Schedule(uint64_t key, Clock::time_point deadline) {
  // An already-due deadline still needs a slot the cursor will visit:
  // bucket it at the cursor so the next ExpireUntil fires it.
  Clock::time_point bucket_at = deadline;
  if (bucket_at < cursor_) bucket_at = cursor_;
  int64_t bucket = TickIndex(bucket_at);
  auto& entry = live_[key];
  if (entry.generation != 0 && entry.bucket_tick == bucket) {
    // Rescheduled within the same tick window: the existing slot entry
    // still covers it — just update the deadline. This keeps slots from
    // growing under frequent reschedules (every read/write event
    // reschedules its connection's timer).
    entry.deadline = deadline;
    return;
  }
  entry.generation = next_generation_++;
  entry.deadline = deadline;
  entry.bucket_tick = bucket;
  slots_[static_cast<size_t>(bucket) % num_slots_].push_back(
      SlotEntry{key, entry.generation});
}

void DeadlineWheel::Cancel(uint64_t key) { live_.erase(key); }

std::vector<uint64_t> DeadlineWheel::ExpireUntil(Clock::time_point now) {
  std::vector<uint64_t> expired;
  if (now < cursor_) return expired;
  int64_t from = TickIndex(cursor_);
  int64_t to = TickIndex(now);
  int64_t span = std::min<int64_t>(to - from + 1,
                                   static_cast<int64_t>(num_slots_));
  for (int64_t i = 0; i < span; ++i) {
    auto& slot = slots_[static_cast<size_t>(from + i) % num_slots_];
    for (size_t j = 0; j < slot.size();) {
      const SlotEntry& entry = slot[j];
      auto it = live_.find(entry.key);
      if (it == live_.end() || it->second.generation != entry.generation) {
        // Cancelled or rescheduled elsewhere: lazy cleanup.
        slot[j] = slot.back();
        slot.pop_back();
        continue;
      }
      if (it->second.deadline <= now) {
        expired.push_back(entry.key);
        live_.erase(it);
        slot[j] = slot.back();
        slot.pop_back();
        continue;
      }
      // A future round (or later this tick): stays for the next visit.
      ++j;
    }
  }
  cursor_ = now;
  return expired;
}

int DeadlineWheel::MillisUntilNext(Clock::time_point now) const {
  if (live_.empty()) return -1;
  int64_t from = std::min(TickIndex(cursor_), TickIndex(now));
  for (size_t i = 0; i < num_slots_; ++i) {
    const auto& slot = slots_[static_cast<size_t>(from + static_cast<int64_t>(i)) %
                              num_slots_];
    Clock::time_point earliest = Clock::time_point::max();
    for (const SlotEntry& entry : slot) {
      auto it = live_.find(entry.key);
      if (it != live_.end() && it->second.generation == entry.generation) {
        earliest = std::min(earliest, it->second.deadline);
      }
    }
    if (earliest == Clock::time_point::max()) continue;
    if (earliest <= now) return 0;
    // A far-round entry can sit in a near slot; wake at the slot boundary
    // at the latest so the true deadline is never slept through.
    Clock::time_point slot_end =
        now + tick_ * static_cast<int64_t>(i + 1);
    auto wait = std::min(earliest, slot_end) - now;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(wait);
    return static_cast<int>(std::max<int64_t>(1, ms.count()));
  }
  return -1;
}

}  // namespace yver::serve::net
