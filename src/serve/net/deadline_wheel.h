#ifndef YVER_SERVE_NET_DEADLINE_WHEEL_H_
#define YVER_SERVE_NET_DEADLINE_WHEEL_H_

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace yver::serve::net {

/// A hashed timer wheel for the epoll loop (DESIGN.md §15): at most one
/// pending deadline per key (the connection id), O(1) schedule, cancel,
/// and reschedule, and expiry by advancing a cursor over fixed-width time
/// slots — the loop's idle/slow-loris/write-stall timeouts all ride on it
/// without a per-connection heap.
///
/// Entries are bucketed by `tick_index(deadline) % num_slots`, so a slot
/// mixes deadlines from different wheel "rounds". ExpireUntil walks only
/// the slots the cursor passed and fires entries whose absolute deadline
/// is actually due; far-future entries stay in place (no cascading) and
/// are revisited a round later — a little repeat scanning traded for
/// constant-time inserts. Cancellation is lazy: each Schedule/Cancel bumps
/// the key's generation and stale slot entries are dropped when their slot
/// is next visited.
///
/// Single-threaded by design: owned and driven by the event-loop thread.
class DeadlineWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// `tick` is the expiry granularity (deadlines may fire up to one tick
  /// late); `num_slots * tick` is the horizon within which a deadline is
  /// reached without spurious wakeups.
  DeadlineWheel(Clock::duration tick, size_t num_slots);

  /// Schedules (or reschedules) the deadline for `key`. A deadline at or
  /// before the cursor fires on the next ExpireUntil.
  void Schedule(uint64_t key, Clock::time_point deadline);

  /// Drops `key`'s pending deadline, if any.
  void Cancel(uint64_t key);

  /// Advances the cursor to `now` and returns every key whose deadline has
  /// passed. Each key fires at most once and is deregistered; reschedule
  /// via Schedule if the timer should persist.
  std::vector<uint64_t> ExpireUntil(Clock::time_point now);

  /// Milliseconds the loop may sleep before the next live deadline could
  /// come due: -1 (sleep forever) when nothing is scheduled. Conservative:
  /// a far-round entry sharing a near slot can wake the loop early — a
  /// spurious scan, never a late timer.
  int MillisUntilNext(Clock::time_point now) const;

  /// Live (scheduled, not yet expired or cancelled) keys.
  size_t size() const { return live_.size(); }

 private:
  struct SlotEntry {
    uint64_t key = 0;
    uint64_t generation = 0;
  };
  struct LiveEntry {
    uint64_t generation = 0;
    Clock::time_point deadline;
    int64_t bucket_tick = 0;  // tick index the slot entry was filed under
  };

  int64_t TickIndex(Clock::time_point t) const {
    return static_cast<int64_t>(t.time_since_epoch() / tick_);
  }

  Clock::duration tick_;
  size_t num_slots_;
  std::vector<std::vector<SlotEntry>> slots_;
  std::unordered_map<uint64_t, LiveEntry> live_;
  uint64_t next_generation_ = 1;
  Clock::time_point cursor_;  // slots up to here have been expired
};

}  // namespace yver::serve::net

#endif  // YVER_SERVE_NET_DEADLINE_WHEEL_H_
