#include "serve/net/loadgen.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <thread>
#include <utility>

#include "serve/net/client.h"
#include "serve/net/replay.h"
#include "serve/query.h"
#include "serve/wire.h"
#include "util/rng.h"
#include "util/timer.h"

namespace yver::serve::net {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t hash, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// What one connection worker accumulates; merged in connection order
/// after join, so the totals are deterministic.
struct ConnStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t hash = kFnvOffset;  // FNV-1a over raw response frames, in order
  std::vector<uint64_t> hist =
      std::vector<uint64_t>(kServiceLatencyBuckets, 0);
  util::Status status = util::Status::Ok();  // first hard failure
};

void RecordLatencyNs(ConnStats& stats, uint64_t ns) {
  size_t bucket = static_cast<size_t>(std::bit_width(ns));
  if (bucket >= kServiceLatencyBuckets) bucket = kServiceLatencyBuckets - 1;
  stats.hist[bucket]++;
}

/// Classifies a raw response frame by its type byte and folds it into the
/// per-connection hash and counters.
void BookResponse(ConnStats& stats, const std::string& frame) {
  stats.hash = FnvMix(stats.hash, frame.data(), frame.size());
  if (frame.size() > 3 &&
      static_cast<uint8_t>(frame[3]) ==
          static_cast<uint8_t>(wire::FrameType::kError)) {
    stats.errors++;
  } else {
    stats.ok++;
  }
}

/// Closed loop: one round trip at a time; latency is the full round trip.
void RunClosedLoop(Client& client, const std::vector<std::string>& frames,
                   ConnStats& stats) {
  for (const std::string& frame : frames) {
    auto start = std::chrono::steady_clock::now();
    util::Status sent = client.SendBytes(frame);
    if (!sent.ok()) {
      stats.status = std::move(sent);
      return;
    }
    stats.sent++;
    auto response = client.ReadFrameBytes();
    if (!response.ok()) {
      stats.status = response.status();
      return;
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    RecordLatencyNs(stats,
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            elapsed)
                            .count()));
    BookResponse(stats, *response);
  }
}

/// Open loop: a sender thread puts queries on the wire on schedule while
/// this thread reads responses, so server-side queueing delay lands in
/// the measured latency instead of throttling the offered load.
void RunOpenLoop(Client& client, const std::vector<std::string>& frames,
                 double interval_ns, ConnStats& stats) {
  std::vector<std::chrono::steady_clock::time_point> send_times(
      frames.size());
  std::atomic<size_t> sent_count{0};
  std::atomic<bool> send_failed{false};
  std::thread sender([&] {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < frames.size(); ++i) {
      auto due = t0 + std::chrono::nanoseconds(static_cast<int64_t>(
                          interval_ns * static_cast<double>(i)));
      std::this_thread::sleep_until(due);
      send_times[i] = std::chrono::steady_clock::now();
      // Publish the timestamp before the bytes can generate a response.
      sent_count.store(i + 1, std::memory_order_release);
      if (!client.SendBytes(frames[i]).ok()) {
        send_failed.store(true, std::memory_order_release);
        return;
      }
    }
  });
  for (size_t i = 0; i < frames.size(); ++i) {
    while (sent_count.load(std::memory_order_acquire) <= i) {
      if (send_failed.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
    if (send_failed.load(std::memory_order_acquire) &&
        sent_count.load(std::memory_order_acquire) <= i) {
      break;
    }
    auto response = client.ReadFrameBytes();
    if (!response.ok()) {
      stats.status = response.status();
      break;
    }
    auto elapsed = std::chrono::steady_clock::now() - send_times[i];
    RecordLatencyNs(stats,
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            elapsed)
                            .count()));
    BookResponse(stats, *response);
  }
  sender.join();
  stats.sent = sent_count.load(std::memory_order_acquire);
  if (send_failed.load(std::memory_order_acquire) && stats.status.ok()) {
    stats.status = util::Status::Unavailable("load generator send failed");
  }
}

/// Splits `frames` into `parts` contiguous blocks, sizes as equal as
/// possible (the first `n % parts` blocks get one extra). Deterministic,
/// so record and replay agree on per-connection streams.
std::vector<std::vector<std::string>> Partition(
    std::vector<std::string> frames, size_t parts) {
  std::vector<std::vector<std::string>> out(parts);
  size_t n = frames.size();
  size_t base = n / parts;
  size_t extra = n % parts;
  size_t pos = 0;
  for (size_t c = 0; c < parts; ++c) {
    size_t take = base + (c < extra ? 1 : 0);
    out[c].reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out[c].push_back(std::move(frames[pos++]));
    }
  }
  return out;
}

}  // namespace

double LoadGenReport::LatencyPercentileMs(double p) const {
  // Same log2 buckets as the server: borrow its percentile math.
  ServiceMetrics metrics;
  metrics.latency_histogram_ns = latency_histogram_ns;
  return metrics.LatencyPercentileMs(p);
}

util::StatusOr<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  size_t connections = std::max<size_t>(1, options.connections);

  // The query stream, as raw frames.
  std::vector<std::string> frames;
  if (!options.replay_path.empty()) {
    auto loaded = LoadCapture(options.replay_path);
    if (!loaded.ok()) return loaded.status();
    frames = std::move(*loaded);
  } else {
    // Shape the synthetic workload from the server's own corpus size.
    auto info_client = Client::Connect(options.port);
    if (!info_client.ok()) return info_client.status();
    info_client->set_read_timeout_ms(options.read_timeout_ms);
    auto info = info_client->Info();
    if (!info.ok()) return info.status();
    if (info->num_records == 0) {
      return util::Status::InvalidArgument("server corpus is empty");
    }
    size_t hot = std::min<size_t>(std::max<size_t>(1, options.hot_set),
                                  info->num_records);
    util::Rng rng(options.seed);
    frames.reserve(options.num_queries);
    for (size_t i = 0; i < options.num_queries; ++i) {
      Query query;
      query.record = static_cast<data::RecordIdx>(
          rng.UniformInt(0, static_cast<int64_t>(hot) - 1));
      query.certainty = options.certainty;
      query.k = options.k;
      query.granularity = rng.Bernoulli(options.entity_fraction)
                              ? Granularity::kEntity
                              : Granularity::kMatches;
      std::string frame;
      wire::EncodeQuery(query, options.deadline_ms, &frame);
      frames.push_back(std::move(frame));
    }
  }
  if (frames.empty()) {
    return util::Status::InvalidArgument("load generator has no queries");
  }

  auto per_conn = Partition(std::move(frames), connections);

  if (!options.record_path.empty()) {
    auto writer = CaptureWriter::Open(options.record_path);
    if (!writer.ok()) return writer.status();
    for (const auto& conn_frames : per_conn) {
      for (const auto& frame : conn_frames) {
        util::Status appended = writer->Append(frame);
        if (!appended.ok()) return appended;
      }
    }
    util::Status closed = writer->Close();
    if (!closed.ok()) return closed;
  }

  // Connect everything before the clock starts.
  std::vector<Client> clients;
  clients.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    auto client = Client::Connect(options.port);
    if (!client.ok()) return client.status();
    client->set_read_timeout_ms(options.read_timeout_ms);
    clients.push_back(std::move(*client));
  }

  std::vector<ConnStats> stats(connections);
  double interval_ns =
      options.qps > 0
          ? 1e9 * static_cast<double>(connections) / options.qps
          : 0;
  util::Timer timer;
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      if (options.qps > 0) {
        RunOpenLoop(clients[c], per_conn[c], interval_ns, stats[c]);
      } else {
        RunClosedLoop(clients[c], per_conn[c], stats[c]);
      }
    });
  }
  for (auto& w : workers) w.join();
  double wall_seconds = timer.ElapsedSeconds();

  LoadGenReport report;
  report.wall_seconds = wall_seconds;
  report.latency_histogram_ns.assign(kServiceLatencyBuckets, 0);
  report.response_hash = kFnvOffset;
  for (size_t c = 0; c < connections; ++c) {
    if (!stats[c].status.ok()) return stats[c].status;
    report.queries_sent += stats[c].sent;
    report.ok += stats[c].ok;
    report.errors += stats[c].errors;
    for (size_t b = 0; b < kServiceLatencyBuckets; ++b) {
      report.latency_histogram_ns[b] += stats[c].hist[b];
    }
    // Connection-order combine: scheduling cannot reorder it.
    report.response_hash =
        FnvMix(report.response_hash, &stats[c].hash, sizeof(stats[c].hash));
  }
  report.qps_achieved =
      wall_seconds > 0
          ? static_cast<double>(report.queries_sent) / wall_seconds
          : 0;

  // Server-side view, over the same wire.
  auto info_client = Client::Connect(options.port);
  if (info_client.ok()) {
    info_client->set_read_timeout_ms(options.read_timeout_ms);
    auto info = info_client->Info();
    if (info.ok()) report.server_metrics = std::move(info->metrics);
  }
  return report;
}

}  // namespace yver::serve::net
