#ifndef YVER_SERVE_NET_LOADGEN_H_
#define YVER_SERVE_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/resolution_service.h"
#include "util/status.h"

namespace yver::serve::net {

/// Workload shape and pacing for RunLoadGen. The synthetic workload
/// mirrors `serve-bench`: record lookups drawn uniformly from a hot
/// subset of the corpus (sized by Info from the server), with an optional
/// slice of entity-granularity queries mixed in.
struct LoadGenOptions {
  uint16_t port = 0;
  size_t connections = 1;
  /// Total queries across all connections (synthetic mode; replay mode
  /// sends exactly what the capture holds).
  size_t num_queries = 1000;
  /// Total target queries/second across all connections. 0 = closed loop
  /// (each connection sends, waits for the response, sends the next);
  /// > 0 = open loop (sends are paced on schedule regardless of
  /// responses, so queueing delay shows up in the latencies).
  double qps = 0;
  // Synthetic workload shape:
  double certainty = 0.0;
  size_t k = 0;
  double deadline_ms = 0;       // per-query wire budget; 0 = none
  size_t hot_set = 1024;        // distinct hot records (clamped to corpus)
  double entity_fraction = 0;   // fraction at entity granularity
  uint64_t seed = 17;
  /// Client-side I/O budget per blocking read: a stalled or hostile
  /// server surfaces as a typed DEADLINE_EXCEEDED instead of hanging the
  /// load generator forever. 0 = block indefinitely (historical
  /// behaviour).
  double read_timeout_ms = 30000;
  /// Record mode: write every query frame sent (per-connection streams
  /// concatenated in connection order) to this capture file.
  std::string record_path;
  /// Replay mode: ignore the synthetic knobs and send the frames from
  /// this capture, byte-identically. The capture is split across
  /// connections contiguously and deterministically, so a replay with the
  /// same --connections reproduces the recorded per-connection streams.
  std::string replay_path;
};

/// What one load-generator run measured.
struct LoadGenReport {
  uint64_t queries_sent = 0;
  uint64_t ok = 0;        // kResult responses
  uint64_t errors = 0;    // kError responses (shed, deadline, invalid, ...)
  double wall_seconds = 0;
  double qps_achieved = 0;
  /// FNV-1a over each connection's raw response bytes in receive order,
  /// combined across connections in connection order. Two runs that got
  /// byte-identical answers — the determinism contract — report equal
  /// hashes; any single differing byte changes it.
  uint64_t response_hash = 0;
  /// Client-observed latency (send to last response byte), log2-bucketed
  /// exactly like ServiceMetrics (bucket i counts [2^(i-1), 2^i) ns).
  std::vector<uint64_t> latency_histogram_ns;
  /// The server's own ServiceMetrics snapshot, fetched via a kInfoRequest
  /// after the run: server-side percentiles without a side channel.
  ServiceMetrics server_metrics;

  /// Client-side percentile from the histogram (upper bucket bound).
  double LatencyPercentileMs(double p) const;
};

/// Runs the workload against a serve::net::Server on 127.0.0.1 and blocks
/// until every response arrived. Per-query failures (typed kError frames)
/// are counted, not fatal; connect/capture/socket failures are.
util::StatusOr<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

}  // namespace yver::serve::net

#endif  // YVER_SERVE_NET_LOADGEN_H_
