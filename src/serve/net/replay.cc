#include "serve/net/replay.h"

#include <sstream>
#include <utility>

#include "serve/wire.h"

namespace yver::serve::net {

util::StatusOr<CaptureWriter> CaptureWriter::Open(const std::string& path) {
  CaptureWriter writer;
  writer.f_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.f_.is_open()) {
    return util::Status::NotFound("cannot open capture file for writing: " +
                                  path);
  }
  char header[kCaptureHeaderSize] = {};
  header[0] = kCaptureMagic[0];
  header[1] = kCaptureMagic[1];
  header[2] = kCaptureMagic[2];
  header[3] = kCaptureMagic[3];
  header[4] = static_cast<char>(wire::kVersion);
  writer.f_.write(header, sizeof(header));
  if (!writer.f_.good()) {
    return util::Status::DataLoss("capture header write failed: " + path);
  }
  return writer;
}

util::Status CaptureWriter::Append(std::string_view frame_bytes) {
  f_.write(frame_bytes.data(),
           static_cast<std::streamsize>(frame_bytes.size()));
  if (!f_.good()) return util::Status::DataLoss("capture write failed");
  return util::Status::Ok();
}

util::Status CaptureWriter::Close() {
  if (!f_.is_open()) return util::Status::Ok();
  f_.close();
  if (f_.fail()) return util::Status::DataLoss("capture close failed");
  return util::Status::Ok();
}

util::StatusOr<std::vector<std::string>> LoadCapture(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return util::Status::NotFound("cannot open capture file: " + path);
  }
  std::ostringstream contents;
  contents << f.rdbuf();
  std::string data = contents.str();
  if (data.size() < kCaptureHeaderSize) {
    return util::Status::DataLoss("capture file truncated before header: " +
                                  path);
  }
  if (data[0] != kCaptureMagic[0] || data[1] != kCaptureMagic[1] ||
      data[2] != kCaptureMagic[2] || data[3] != kCaptureMagic[3]) {
    return util::Status::InvalidArgument("not a capture file: " + path);
  }
  uint8_t version = static_cast<uint8_t>(data[4]);
  if (version == 0 || version > wire::kVersion) {
    return util::Status::InvalidArgument(
        "unsupported capture version " + std::to_string(version) + ": " +
        path);
  }
  std::vector<std::string> frames;
  std::string_view rest(data);
  rest.remove_prefix(kCaptureHeaderSize);
  while (!rest.empty()) {
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(rest, &frame);
    if (!consumed.ok()) return consumed.status();
    if (*consumed == 0) {
      return util::Status::DataLoss("capture file truncated mid-frame: " +
                                    path);
    }
    if (frame.type != wire::FrameType::kQuery) {
      return util::Status::InvalidArgument(
          "capture holds a non-query frame: " + path);
    }
    frames.emplace_back(rest.substr(0, *consumed));
    rest.remove_prefix(*consumed);
  }
  return frames;
}

}  // namespace yver::serve::net
