#ifndef YVER_SERVE_NET_REPLAY_H_
#define YVER_SERVE_NET_REPLAY_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace yver::serve::net {

/// Record/replay capture files (DESIGN.md §12): the load generator's
/// record mode writes every query frame it puts on the wire, byte for
/// byte, so a later replay run sends the identical byte stream and — by
/// the server's determinism contract — receives identical response bytes.
///
/// File layout:
///
///   offset 0  magic    "YWRC" (0x59 0x57 0x52 0x43)
///   offset 4  version  wire::kVersion
///   offset 5  reserved 3 zero bytes
///   offset 8  concatenated wire frames, exactly as sent
///
/// The frames carry their own lengths, so the file needs no frame count:
/// a truncated tail is detected (DATA_LOSS) rather than silently dropped.

inline constexpr char kCaptureMagic[4] = {0x59, 0x57, 0x52, 0x43};
inline constexpr size_t kCaptureHeaderSize = 8;

/// Streaming writer for record mode. Append takes raw frame bytes
/// (already encoded); Close flushes and reports write errors. The
/// destructor closes without error reporting — call Close when the
/// capture matters.
class CaptureWriter {
 public:
  static util::StatusOr<CaptureWriter> Open(const std::string& path);

  CaptureWriter(CaptureWriter&&) = default;
  CaptureWriter& operator=(CaptureWriter&&) = default;

  util::Status Append(std::string_view frame_bytes);
  util::Status Close();

 private:
  CaptureWriter() = default;

  std::ofstream f_;
};

/// Reads a capture back as one raw frame per entry, validating the header
/// and every frame (magic, version, type, length) on the way in.
/// NOT_FOUND when the file cannot be opened, INVALID_ARGUMENT on a bad
/// header or a non-query frame, DATA_LOSS on a truncated tail.
util::StatusOr<std::vector<std::string>> LoadCapture(
    const std::string& path);

}  // namespace yver::serve::net

#endif  // YVER_SERVE_NET_REPLAY_H_
