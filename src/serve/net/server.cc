#include "serve/net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace yver::serve::net {

namespace {

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;
constexpr size_t kReadChunk = 64 * 1024;
// Per-wakeup ceiling on buffered-but-undecoded input. Without it a
// firehose peer gets its whole kernel receive queue slurped into `in`
// even though the pending cap will only admit a handful of frames —
// megabytes of user-space buffer doing the kernel's job. Stopping here
// leaves the backlog in the socket where TCP flow control pushes back on
// the sender; level-triggered epoll re-fires while bytes remain, and a
// frame larger than the cap still grows `in` one chunk per wakeup until
// it completes.
constexpr size_t kInSoftCap = 256 * 1024;
// 512 slots x the (default 20ms) tick ≈ a 10s horizon: every defense
// timeout inside it fires without spurious wakeups; longer ones (idle)
// cost one early wake per wheel round.
constexpr size_t kWheelSlots = 512;

std::chrono::steady_clock::duration MillisDuration(double ms) {
  return std::chrono::nanoseconds(static_cast<int64_t>(ms * 1e6));
}

void BumpPeak(std::atomic<uint64_t>& peak, uint64_t value) {
  uint64_t current = peak.load(std::memory_order_relaxed);
  while (value > current &&
         !peak.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Server::TokenBucket::TryTake(double rate, double burst,
                                  Clock::time_point now) {
  if (rate <= 0) return true;
  if (burst <= 0) burst = rate;
  if (!primed) {
    tokens = burst;
    last = now;
    primed = true;
  }
  double elapsed = std::chrono::duration<double>(now - last).count();
  tokens = std::min(burst, tokens + elapsed * rate);
  last = now;
  if (tokens < 1.0) return false;
  tokens -= 1.0;
  return true;
}

Server::Server(std::shared_ptr<ResolutionService> service,
               ServerOptions options,
               std::shared_ptr<LiveIndexBuilder> builder)
    : service_(std::move(service)),
      options_(options),
      builder_(std::move(builder)) {
  YVER_CHECK_MSG(service_ != nullptr, "Server needs a ResolutionService");
  if (options_.dispatch_threads == 0) options_.dispatch_threads = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.timer_tick_ms <= 0) options_.timer_tick_ms = 20;
}

Server::~Server() { Shutdown(); }

size_t Server::PendingCap() const {
  return options_.max_pending > 0 ? options_.max_pending
                                  : 2 * options_.max_batch;
}

size_t Server::MaxFramePayload() const {
  size_t cap = options_.max_frame_payload > 0 ? options_.max_frame_payload
                                              : wire::kMaxFramePayload;
  return std::min(cap, wire::kMaxFramePayload);
}

util::Status Server::Start() {
  if (running()) return util::Status::Ok();
  auto listener = util::Socket::Listen(options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  auto port = listener_.LocalPort();
  if (!port.ok()) return port.status();
  port_ = *port;
  util::Status nb = listener_.SetNonBlocking(true);
  if (!nb.ok()) return nb;

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return util::Status::Unavailable("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return util::Status::Unavailable("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  wheel_ = std::make_unique<DeadlineWheel>(
      MillisDuration(options_.timer_tick_ms), kWheelSlots);
  global_bucket_ = TokenBucket{};
  admission_saturated_ = false;
  dispatchers_ =
      std::make_unique<util::ThreadPool>(options_.dispatch_threads);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return util::Status::Ok();
}

void Server::Shutdown() {
  if (!loop_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  loop_.join();
  // The loop has exited: it drained the dispatchers before leaving and
  // every connection is closed. Tear down the fds.
  dispatchers_.reset();
  conns_.clear();
  wheel_.reset();
  listener_.Close();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_closed = closed_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.queries_dispatched = queries_dispatched_.load(std::memory_order_relaxed);
  s.appends_accepted = appends_accepted_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.socket_errors = socket_errors_.load(std::memory_order_relaxed);
  s.open_connections = open_connections_.load(std::memory_order_relaxed);
  s.paused_reads = paused_reads_.load(std::memory_order_relaxed);
  s.disconnects_idle = disconnects_idle_.load(std::memory_order_relaxed);
  s.disconnects_slowloris =
      disconnects_slowloris_.load(std::memory_order_relaxed);
  s.disconnects_oversize =
      disconnects_oversize_.load(std::memory_order_relaxed);
  s.disconnects_rate_limited =
      disconnects_rate_limited_.load(std::memory_order_relaxed);
  s.disconnects_write_stall =
      disconnects_write_stall_.load(std::memory_order_relaxed);
  s.rate_limited_frames =
      rate_limited_frames_.load(std::memory_order_relaxed);
  s.peak_out_buffer = peak_out_buffer_.load(std::memory_order_relaxed);
  s.peak_in_buffer = peak_in_buffer_.load(std::memory_order_relaxed);
  return s;
}

wire::ServerInfo Server::MakeInfo() const {
  wire::ServerInfo info;
  // One pin for the whole snapshot: records/matches/checksum all describe
  // the same generation even if a publish lands mid-call.
  PinnedIndex pin = service_->PinIndex();
  info.num_records = pin->num_records();
  info.num_matches = pin->num_matches();
  info.checksum = pin->Checksum();
  info.metrics = service_->metrics();
  // v4: the defense layer's observable state.
  info.net.open_connections =
      open_connections_.load(std::memory_order_relaxed);
  info.net.paused_reads = paused_reads_.load(std::memory_order_relaxed);
  info.net.disconnects_idle =
      disconnects_idle_.load(std::memory_order_relaxed);
  info.net.disconnects_slowloris =
      disconnects_slowloris_.load(std::memory_order_relaxed);
  info.net.disconnects_oversize =
      disconnects_oversize_.load(std::memory_order_relaxed);
  info.net.disconnects_rate_limited =
      disconnects_rate_limited_.load(std::memory_order_relaxed);
  info.net.disconnects_write_stall =
      disconnects_write_stall_.load(std::memory_order_relaxed);
  info.net.rate_limited_frames =
      rate_limited_frames_.load(std::memory_order_relaxed);
  return info;
}

void Server::Loop() {
  std::vector<epoll_event> events(128);
  bool draining = false;
  Clock::time_point drain_deadline{};
  for (;;) {
    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      // Graceful shutdown begins: no new connections, no new reads; every
      // already-decoded query still gets dispatched, answered, flushed.
      draining = true;
      drain_deadline = Clock::now() + MillisDuration(options_.drain_timeout_ms);
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
      for (auto& [id, conn] : conns_) {
        if (conn.dead) continue;
        conn.closing = true;
        // Buffered-but-undecoded bytes are abandoned at drain: decode
        // while closing is reserved for peer EOF, where every complete
        // frame already received still deserves its answer.
        conn.in.clear();
        conn.partial_frame = false;
        conn.reads_armed = false;
        if (conn.read_paused) {
          conn.read_paused = false;
          paused_reads_.fetch_sub(1, std::memory_order_relaxed);
        }
        epoll_event ev{};
        ev.events = conn.want_write ? static_cast<uint32_t>(EPOLLOUT)
                                    : 0u;  // reads off
        ev.data.u64 = id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
        MaybeDispatch(id, conn);
      }
    }
    if (draining) {
      for (auto& [id, conn] : conns_) {
        if (!conn.dead && !conn.in_flight && conn.pending.empty() &&
            conn.out_off >= conn.out.size()) {
          MarkDead(id, conn);
        }
      }
    }
    ReapDead();
    if (draining &&
        (conns_.empty() || Clock::now() >= drain_deadline)) {
      break;
    }

    int timeout_ms =
        draining ? 10 : wheel_->MillisUntilNext(Clock::now());
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      uint32_t mask = events[i].events;
      if (id == kListenerId) {
        if (!draining) AcceptAll();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        DrainCompletions();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end() || it->second.dead) continue;
      Connection& conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0 && !conn.in_flight &&
          conn.pending.empty()) {
        MarkDead(id, conn);
        continue;
      }
      // EPOLLRDHUP (peer half-closed) rides the read path: the next read
      // returns EOF, which flips the connection to closing/draining.
      if ((mask & (EPOLLIN | EPOLLRDHUP)) != 0 && !draining) {
        HandleReadable(id, conn);
      }
      if (!conn.dead && (mask & EPOLLOUT) != 0) HandleWritable(id, conn);
    }
    // Completions can land between epoll wakeups; always sweep.
    DrainCompletions();
    if (!draining) {
      for (uint64_t id : wheel_->ExpireUntil(Clock::now())) {
        auto it = conns_.find(id);
        if (it == conns_.end() || it->second.dead) continue;
        OnConnDeadline(id, it->second);
      }
    }
  }
  // Drain-deadline expiry or epoll failure: force-close stragglers so
  // peers see EOF rather than a hung connection.
  for (auto& [id, conn] : conns_) {
    if (!conn.dead) MarkDead(id, conn);
  }
  ReapDead();
  // Dispatched batches may still be running; their completions go to a
  // queue nobody reads past this point, which is fine — but the tasks
  // must finish before the dispatcher pool is destroyed in Shutdown().
  dispatchers_->Wait();
}

void Server::AcceptAll() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!accepted->valid()) return;  // EAGAIN: backlog empty
    if (conns_.size() >= options_.max_connections) {
      // Over the cap: closing immediately beats an invisible backlog queue.
      continue;
    }
    util::Socket sock = std::move(*accepted);
    if (!sock.SetNonBlocking(true).ok() || !sock.SetNoDelay(true).ok()) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (options_.so_sndbuf > 0) {
      // Best-effort: an unclamped kernel send buffer auto-tunes to MBs
      // per peer, hiding a dead reader from the out-buffer cap.
      int sndbuf = static_cast<int>(std::min<size_t>(
          options_.so_sndbuf,
          static_cast<size_t>(std::numeric_limits<int>::max())));
      ::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDBUF, &sndbuf,
                   sizeof(sndbuf));
    }
    uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, sock.fd(), &ev) != 0) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Connection conn;
    conn.sock = std::move(sock);
    Clock::time_point now = Clock::now();
    conn.last_activity = now;
    conn.last_write_progress = now;
    auto [it, inserted] = conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    UpdateConnState(id, it->second);  // arms the idle timer
  }
}

void Server::HandleReadable(uint64_t id, Connection& conn) {
  if (conn.dead || conn.closing) return;
  char buf[kReadChunk];
  for (;;) {
    auto r = conn.sock.ReadSome(buf, sizeof(buf));
    if (!r.ok()) {
      // Hard or injected socket error: the stream is gone; drop the
      // connection (in-flight work completes and is discarded).
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      MarkDead(id, conn);
      return;
    }
    if (r->would_block) break;
    if (r->eof) {
      // Peer finished sending: answer what we have, then close.
      conn.closing = true;
      break;
    }
    conn.in.append(buf, r->bytes);
    conn.bytes_read += r->bytes;
    conn.last_activity = Clock::now();
    BumpPeak(peak_in_buffer_, conn.in.size());
    if (options_.max_in_buffer > 0 &&
        conn.in.size() > options_.max_in_buffer) {
      Disconnect(id, conn, DisconnectReason::kOversize);
      return;
    }
    if (r->bytes < sizeof(buf)) break;  // level-triggered: rest next round
    if (conn.in.size() >= kInSoftCap) break;  // decode before slurping more
  }
  DecodeFrames(id, conn);
  if (conn.dead) return;
  MaybeDispatch(id, conn);
  // EOF with nothing outstanding: close now.
  if (!conn.dead && conn.closing && !conn.in_flight && conn.in.empty() &&
      conn.pending.empty() && conn.out_off >= conn.out.size()) {
    MarkDead(id, conn);
    return;
  }
  if (!conn.dead) UpdateConnState(id, conn);
}

void Server::DecodeFrames(uint64_t id, Connection& conn) {
  // Frame decode loop over whatever accumulated. It stops at the pending
  // cap (backpressure: reads pause, frames stay buffered in `in` and the
  // kernel) and on a partial frame (slow-loris tracking takes over).
  // Consumed frames advance `off`; one erase at the end keeps the cost
  // linear even when the cap leaves many decoded-but-not-admitted frames
  // buffered (per-frame front erases on a large `in` are quadratic).
  bool partial = false;
  size_t off = 0;
  // `closing` does not stop the loop: after a clean half-close (EOF with
  // buffered frames) every complete frame already received is decoded and
  // answered. The paths that must NOT decode further — poisoned framing
  // and server drain — clear `in`, which stops the loop by emptiness.
  while (!conn.dead && off < conn.in.size() &&
         conn.pending.size() < PendingCap()) {
    std::string_view rest = std::string_view(conn.in).substr(off);
    wire::FrameHeader header;
    auto peeked = wire::PeekFrameHeader(rest, &header);
    if (!peeked.ok()) {
      // Framing is poisoned: one typed error frame, then close after
      // flushing (closing + cleared input stops further reads).
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      std::string bytes;
      wire::EncodeResult(peeked.status(), &bytes);
      conn.closing = true;
      conn.in.clear();
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(id, conn, std::move(bytes));
      return;
    }
    if (*peeked == 0) {
      partial = true;  // header itself is incomplete
      break;
    }
    if (header.payload_length > MaxFramePayload()) {
      // Rejected from the header alone — before one payload byte is
      // buffered or a reservation made (DESIGN.md §15).
      std::string bytes;
      wire::EncodeResult(
          util::Status::ResourceExhausted(
              "frame payload length " +
              std::to_string(header.payload_length) +
              " exceeds the server limit (" +
              std::to_string(MaxFramePayload()) + ")"),
          &bytes);
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(id, conn, std::move(bytes));
      if (!conn.dead) Disconnect(id, conn, DisconnectReason::kOversize);
      return;
    }
    if (rest.size() < wire::kHeaderSize + header.payload_length) {
      partial = true;  // wait for the rest of the payload
      break;
    }
    // A whole frame is present. Rate-gate queries/appends before paying
    // for the payload decode; info requests are exempt (observability).
    if (header.type == wire::FrameType::kQuery ||
        header.type == wire::FrameType::kAppendRequest) {
      Clock::time_point now = Clock::now();
      bool admitted = conn.bucket.TryTake(options_.conn_rate_limit,
                                          options_.conn_rate_burst, now) &&
                      global_bucket_.TryTake(options_.global_rate_limit,
                                             options_.global_rate_burst,
                                             now);
      if (!admitted) {
        off += wire::kHeaderSize + header.payload_length;
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        rate_limited_frames_.fetch_add(1, std::memory_order_relaxed);
        conn.rate_limited_streak++;
        conn.pending.push_back(
            PendingEntry{PendingEntry::Kind::kRateLimited, Query{}, {}});
        if (options_.rate_limit_disconnect_streak > 0 &&
            conn.rate_limited_streak >=
                options_.rate_limit_disconnect_streak) {
          // A sustained flood: answer the queued typed errors in order,
          // then drop the connection.
          MaybeDispatch(id, conn);
          if (!conn.dead) {
            Disconnect(id, conn, DisconnectReason::kRateLimited);
          }
          return;
        }
        continue;
      }
      conn.rate_limited_streak = 0;
    }
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(rest, &frame);
    if (!consumed.ok() || *consumed == 0) {
      // Unreachable after the header peek; defend anyway.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      std::string bytes;
      wire::EncodeResult(consumed.ok()
                             ? util::Status::Internal("frame decode stalled")
                             : consumed.status(),
                         &bytes);
      conn.closing = true;
      conn.in.clear();
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(id, conn, std::move(bytes));
      return;
    }
    off += *consumed;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    if (frame.type == wire::FrameType::kQuery) {
      auto decoded = wire::DecodeQuery(frame);
      if (decoded.ok()) {
        conn.pending.push_back(PendingEntry{PendingEntry::Kind::kQuery,
                                            std::move(decoded->query), {}});
      } else {
        // Well-formed frame, malformed query payload: a typed error
        // response that must not overtake earlier queries — it rides the
        // pending queue as a marker and is answered at head-of-line.
        conn.pending.push_back(
            PendingEntry{PendingEntry::Kind::kDecodeError, Query{}, {}});
      }
    } else if (frame.type == wire::FrameType::kInfoRequest) {
      conn.pending.push_back(
          PendingEntry{PendingEntry::Kind::kInfoRequest, Query{}, {}});
    } else if (frame.type == wire::FrameType::kAppendRequest) {
      auto record = wire::DecodeAppend(frame);
      if (record.ok()) {
        conn.pending.push_back(PendingEntry{PendingEntry::Kind::kAppend,
                                            Query{}, std::move(*record)});
      } else {
        conn.pending.push_back(
            PendingEntry{PendingEntry::Kind::kAppendError, Query{}, {}});
      }
    } else {
      // kResult/kError/kInfo from a client: protocol violation.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      std::string bytes;
      wire::EncodeResult(
          util::Status::InvalidArgument("unexpected client frame type"),
          &bytes);
      conn.closing = true;
      conn.in.clear();
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(id, conn, std::move(bytes));
      return;
    }
  }
  if (off > 0) conn.in.erase(0, off);
  if (conn.dead) return;
  if (conn.closing && partial) {
    // A truncated trailing frame at EOF can never complete (the peer is
    // done writing): drop the fragment so the connection can drain shut.
    conn.in.clear();
    partial = false;
  }
  bool was_partial = conn.partial_frame;
  conn.partial_frame = partial;
  if (partial && !was_partial) {
    // A frame prefix just appeared: start the slow-loris progress window.
    conn.window_start = Clock::now();
    conn.window_start_bytes = conn.bytes_read;
  }
}

void Server::MaybeDispatch(uint64_t id, Connection& conn) {
  if (conn.dead || conn.in_flight) return;
  // Markers at the head of the line (decode errors / info requests /
  // rate-limited frames that queued behind queries) are answered inline,
  // in arrival order.
  while (!conn.dead && !conn.pending.empty() &&
         conn.pending.front().kind != PendingEntry::Kind::kQuery) {
    PendingEntry entry = std::move(conn.pending.front());
    conn.pending.pop_front();
    std::string bytes;
    switch (entry.kind) {
      case PendingEntry::Kind::kInfoRequest:
        wire::EncodeInfo(MakeInfo(), &bytes);
        break;
      case PendingEntry::Kind::kAppend: {
        // Ingest is answered inline, in line: the ack (or typed error)
        // keeps its place among the connection's responses.
        if (builder_ == nullptr) {
          wire::EncodeResult(
              util::Status::Unavailable("live ingest disabled"), &bytes);
          break;
        }
        auto submitted = builder_->Submit(std::move(entry.record));
        if (!submitted.ok()) {
          wire::EncodeResult(submitted.status(), &bytes);
          break;
        }
        appends_accepted_.fetch_add(1, std::memory_order_relaxed);
        wire::AppendAck ack;
        ack.record_idx = *submitted;
        ack.generation = service_->index_manager().generation();
        // v3: with a WAL behind the builder, Submit returned only after
        // the fsync — tell the client this ack survives a crash.
        ack.durable = builder_->durable();
        ack.wal_sequence =
            ack.durable ? builder_->WalSequenceFor(
                              static_cast<data::RecordIdx>(*submitted))
                        : 0;
        wire::EncodeAppendAck(ack, &bytes);
        break;
      }
      case PendingEntry::Kind::kAppendError:
        wire::EncodeResult(
            util::Status::InvalidArgument("malformed append payload"),
            &bytes);
        break;
      case PendingEntry::Kind::kRateLimited:
        wire::EncodeResult(
            util::Status::ResourceExhausted("rate limited"), &bytes);
        break;
      case PendingEntry::Kind::kDecodeError:
      default:
        wire::EncodeResult(
            util::Status::InvalidArgument("malformed query payload"),
            &bytes);
        break;
    }
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    QueueWrite(id, conn, std::move(bytes));
  }
  if (conn.dead || conn.pending.empty()) return;
  size_t take = std::min(options_.max_batch, conn.pending.size());
  // Stop the batch at the next marker so markers stay in sequence.
  for (size_t i = 0; i < take; ++i) {
    if (conn.pending[i].kind != PendingEntry::Kind::kQuery) {
      take = i;
      break;
    }
  }
  if (take == 0) return;
  auto batch = std::make_shared<std::vector<Query>>();
  batch->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch->push_back(conn.pending.front().query);
    conn.pending.pop_front();
  }
  conn.in_flight = true;
  queries_dispatched_.fetch_add(take, std::memory_order_relaxed);
  dispatchers_->Submit([this, id, batch] {
    BatchResult results = service_->QueryBatch(*batch);
    std::string bytes;
    for (const auto& result : results) wire::EncodeResult(result, &bytes);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{id, std::move(bytes), results.size()});
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  });
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;
    if (it->second.dead) {
      // The connection died while this batch was computing: drop the
      // response, but release the tombstone so ReapDead can erase it.
      it->second.in_flight = false;
      continue;
    }
    Connection& conn = it->second;
    conn.in_flight = false;
    responses_sent_.fetch_add(c.responses, std::memory_order_relaxed);
    QueueWrite(c.conn_id, conn, std::move(c.bytes));
    if (conn.dead) continue;
    // Reads were paused for the in-flight batch; frames may be waiting
    // already-buffered in `in` — decode them before re-arming EPOLLIN
    // (level-triggered epoll only fires on new kernel bytes).
    DecodeFrames(c.conn_id, conn);
    if (conn.dead) continue;
    MaybeDispatch(c.conn_id, conn);
    if (!conn.dead && conn.closing && !conn.in_flight && conn.in.empty() &&
        conn.pending.empty() && conn.out_off >= conn.out.size()) {
      MarkDead(c.conn_id, conn);
      continue;
    }
    if (!conn.dead) UpdateConnState(c.conn_id, conn);
  }
  // Admission saturation is shared state: a flip pauses or resumes reads
  // on every connection, not just the ones with completions.
  bool saturated = service_->admission().Saturated();
  if (saturated != admission_saturated_) {
    admission_saturated_ = saturated;
    for (auto& [id, conn] : conns_) {
      if (!conn.dead && !conn.closing) UpdateConnState(id, conn);
    }
  }
}

void Server::QueueWrite(uint64_t id, Connection& conn, std::string bytes) {
  if (conn.dead) return;
  if (conn.out_off == conn.out.size()) {
    conn.out = std::move(bytes);
    conn.out_off = 0;
  } else {
    conn.out.append(bytes);
  }
  BumpPeak(peak_out_buffer_, conn.out.size() - conn.out_off);
  HandleWritable(id, conn);
  if (conn.dead) return;
  // The slow-reader bound: responses the peer refuses to drain pile up
  // here; past the cap the connection is dropped instead of letting one
  // peer hold server memory hostage.
  if (options_.max_out_buffer > 0 &&
      conn.out.size() - conn.out_off > options_.max_out_buffer) {
    Disconnect(id, conn, DisconnectReason::kWriteStall);
  }
}

void Server::HandleWritable(uint64_t id, Connection& conn) {
  if (conn.dead) return;
  while (conn.out_off < conn.out.size()) {
    auto r = conn.sock.WriteSome(conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off);
    if (!r.ok()) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      MarkDead(id, conn);
      return;
    }
    if (r->would_block || r->bytes == 0) break;
    conn.out_off += r->bytes;
    conn.last_write_progress = Clock::now();
    conn.last_activity = conn.last_write_progress;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.closing && !conn.in_flight && conn.in.empty() &&
        conn.pending.empty()) {
      MarkDead(id, conn);
      return;
    }
  }
  UpdateConnState(id, conn);
}

void Server::UpdateConnState(uint64_t id, Connection& conn) {
  if (conn.dead) return;
  bool stopping = stop_requested_.load(std::memory_order_acquire);
  // The backpressure predicate: pause reads while a batch is in flight,
  // while the pending queue is full, or while admission is saturated —
  // the kernel socket buffer and TCP flow control take it from there.
  bool pressure = conn.in_flight || conn.pending.size() >= PendingCap() ||
                  admission_saturated_;
  bool want_read = !conn.closing && !stopping && !pressure;
  bool want_write = conn.out_off < conn.out.size();
  bool was_armed = conn.reads_armed;
  if (want_read != conn.reads_armed || want_write != conn.want_write) {
    conn.reads_armed = want_read;
    conn.want_write = want_write;
    epoll_event ev{};
    // EPOLLRDHUP only rides along with reads: once reads are off (paused
    // or closing) a level-triggered RDHUP would spin the loop.
    ev.events = (want_read ? (EPOLLIN | EPOLLRDHUP) : 0u) |
                (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
  }
  // The paused gauge counts backpressure pauses, not closing/draining.
  bool paused = !conn.closing && !stopping && pressure;
  if (paused != conn.read_paused) {
    conn.read_paused = paused;
    if (paused) {
      paused_reads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      paused_reads_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // A pause the server imposed must not count against the peer's read
  // rate: restart the slow-loris window when reads resume.
  if (want_read && !was_armed && conn.partial_frame) {
    conn.window_start = Clock::now();
    conn.window_start_bytes = conn.bytes_read;
  }
  if (stopping) return;  // drain mode: the drain deadline governs
  // Schedule the connection's nearest defense deadline on the wheel.
  Clock::time_point next = Clock::time_point::max();
  size_t backlog = conn.out.size() - conn.out_off;
  bool quiescent = !conn.in_flight && conn.pending.empty() &&
                   backlog == 0 && conn.in.empty();
  if (options_.idle_timeout_ms > 0 && quiescent && !conn.closing) {
    next = std::min(next, conn.last_activity +
                              MillisDuration(options_.idle_timeout_ms));
  }
  if (conn.partial_frame && conn.reads_armed &&
      options_.min_read_bytes_per_sec > 0 &&
      options_.progress_window_ms > 0) {
    next = std::min(next, conn.window_start +
                              MillisDuration(options_.progress_window_ms));
  }
  if (backlog > 0 && options_.write_stall_timeout_ms > 0) {
    next = std::min(next,
                    conn.last_write_progress +
                        MillisDuration(options_.write_stall_timeout_ms));
  }
  if (next == Clock::time_point::max()) {
    wheel_->Cancel(id);
  } else {
    wheel_->Schedule(id, next);
  }
}

void Server::OnConnDeadline(uint64_t id, Connection& conn) {
  Clock::time_point now = Clock::now();
  size_t backlog = conn.out.size() - conn.out_off;
  bool quiescent = !conn.in_flight && conn.pending.empty() &&
                   backlog == 0 && conn.in.empty();
  if (options_.idle_timeout_ms > 0 && quiescent && !conn.closing &&
      now - conn.last_activity >=
          MillisDuration(options_.idle_timeout_ms)) {
    Disconnect(id, conn, DisconnectReason::kIdle);
    return;
  }
  if (conn.partial_frame && conn.reads_armed &&
      options_.min_read_bytes_per_sec > 0 &&
      options_.progress_window_ms > 0 &&
      now - conn.window_start >=
          MillisDuration(options_.progress_window_ms)) {
    double window_sec =
        std::chrono::duration<double>(now - conn.window_start).count();
    double needed = options_.min_read_bytes_per_sec * window_sec;
    double got =
        static_cast<double>(conn.bytes_read - conn.window_start_bytes);
    if (got < needed) {
      Disconnect(id, conn, DisconnectReason::kSlowloris);
      return;
    }
    // Progress was made: a fresh window.
    conn.window_start = now;
    conn.window_start_bytes = conn.bytes_read;
  }
  if (backlog > 0 && options_.write_stall_timeout_ms > 0 &&
      now - conn.last_write_progress >=
          MillisDuration(options_.write_stall_timeout_ms)) {
    Disconnect(id, conn, DisconnectReason::kWriteStall);
    return;
  }
  UpdateConnState(id, conn);  // reschedules whatever deadline is next
}

void Server::Disconnect(uint64_t id, Connection& conn,
                        DisconnectReason reason) {
  if (conn.dead) return;
  switch (reason) {
    case DisconnectReason::kIdle:
      disconnects_idle_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DisconnectReason::kSlowloris:
      disconnects_slowloris_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DisconnectReason::kOversize:
      disconnects_oversize_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DisconnectReason::kRateLimited:
      disconnects_rate_limited_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DisconnectReason::kWriteStall:
      disconnects_write_stall_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  MarkDead(id, conn);
}

void Server::MarkDead(uint64_t id, Connection& conn) {
  if (conn.dead) return;
  if (wheel_ != nullptr) wheel_->Cancel(id);
  if (conn.read_paused) {
    conn.read_paused = false;
    paused_reads_.fetch_sub(1, std::memory_order_relaxed);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.sock.fd(), nullptr);
  conn.sock.Close();
  conn.dead = true;
  closed_.fetch_add(1, std::memory_order_relaxed);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::ReapDead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    // A dead connection with a batch still at the dispatchers keeps its
    // entry (as a tombstone) so the completion can be matched and dropped;
    // it is reaped once the batch lands.
    if (it->second.dead && !it->second.in_flight) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace yver::serve::net
