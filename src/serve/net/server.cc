#include "serve/net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace yver::serve::net {

namespace {

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

Server::Server(std::shared_ptr<ResolutionService> service,
               ServerOptions options,
               std::shared_ptr<LiveIndexBuilder> builder)
    : service_(std::move(service)),
      options_(options),
      builder_(std::move(builder)) {
  YVER_CHECK_MSG(service_ != nullptr, "Server needs a ResolutionService");
  if (options_.dispatch_threads == 0) options_.dispatch_threads = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

Server::~Server() { Shutdown(); }

util::Status Server::Start() {
  if (running()) return util::Status::Ok();
  auto listener = util::Socket::Listen(options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  auto port = listener_.LocalPort();
  if (!port.ok()) return port.status();
  port_ = *port;
  util::Status nb = listener_.SetNonBlocking(true);
  if (!nb.ok()) return nb;

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return util::Status::Unavailable("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return util::Status::Unavailable("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  dispatchers_ =
      std::make_unique<util::ThreadPool>(options_.dispatch_threads);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return util::Status::Ok();
}

void Server::Shutdown() {
  if (!loop_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  loop_.join();
  // The loop has exited: it drained the dispatchers before leaving and
  // every connection is closed. Tear down the fds.
  dispatchers_.reset();
  conns_.clear();
  listener_.Close();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_closed = closed_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.queries_dispatched = queries_dispatched_.load(std::memory_order_relaxed);
  s.appends_accepted = appends_accepted_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.socket_errors = socket_errors_.load(std::memory_order_relaxed);
  return s;
}

wire::ServerInfo Server::MakeInfo() const {
  wire::ServerInfo info;
  // One pin for the whole snapshot: records/matches/checksum all describe
  // the same generation even if a publish lands mid-call.
  PinnedIndex pin = service_->PinIndex();
  info.num_records = pin->num_records();
  info.num_matches = pin->num_matches();
  info.checksum = pin->Checksum();
  info.metrics = service_->metrics();
  return info;
}

void Server::Loop() {
  std::vector<epoll_event> events(128);
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  for (;;) {
    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      // Graceful shutdown begins: no new connections, no new reads; every
      // already-decoded query still gets dispatched, answered, flushed.
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(static_cast<int64_t>(
                           options_.drain_timeout_ms * 1000));
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
      for (auto& [id, conn] : conns_) {
        if (conn.dead) continue;
        conn.closing = true;
        epoll_event ev{};
        ev.events = conn.want_write ? static_cast<uint32_t>(EPOLLOUT)
                                    : 0u;  // reads off
        ev.data.u64 = id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
        MaybeDispatch(id, conn);
      }
    }
    if (draining) {
      for (auto& [id, conn] : conns_) {
        if (!conn.dead && !conn.in_flight && conn.pending.empty() &&
            conn.out_off >= conn.out.size()) {
          MarkDead(conn);
        }
      }
    }
    ReapDead();
    if (draining &&
        (conns_.empty() ||
         std::chrono::steady_clock::now() >= drain_deadline)) {
      break;
    }

    int timeout_ms = draining ? 10 : -1;
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      uint32_t mask = events[i].events;
      if (id == kListenerId) {
        if (!draining) AcceptAll();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        DrainCompletions();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end() || it->second.dead) continue;
      Connection& conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0 && !conn.in_flight &&
          conn.pending.empty()) {
        MarkDead(conn);
        continue;
      }
      if ((mask & EPOLLIN) != 0 && !draining) HandleReadable(id, conn);
      if (!conn.dead && (mask & EPOLLOUT) != 0) HandleWritable(id, conn);
    }
    // Completions can land between epoll wakeups; always sweep.
    DrainCompletions();
  }
  // Drain-deadline expiry or epoll failure: force-close stragglers so
  // peers see EOF rather than a hung connection.
  for (auto& [id, conn] : conns_) {
    if (!conn.dead) MarkDead(conn);
  }
  ReapDead();
  // Dispatched batches may still be running; their completions go to a
  // queue nobody reads past this point, which is fine — but the tasks
  // must finish before the dispatcher pool is destroyed in Shutdown().
  dispatchers_->Wait();
}

void Server::AcceptAll() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!accepted->valid()) return;  // EAGAIN: backlog empty
    if (conns_.size() >= options_.max_connections) {
      // Over the cap: closing immediately beats an invisible backlog queue.
      continue;
    }
    util::Socket sock = std::move(*accepted);
    if (!sock.SetNonBlocking(true).ok() || !sock.SetNoDelay(true).ok()) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, sock.fd(), &ev) != 0) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Connection conn;
    conn.sock = std::move(sock);
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(uint64_t id, Connection& conn) {
  char buf[kReadChunk];
  for (;;) {
    auto r = conn.sock.ReadSome(buf, sizeof(buf));
    if (!r.ok()) {
      // Hard or injected socket error: the stream is gone; drop the
      // connection (in-flight work completes and is discarded).
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      MarkDead(conn);
      return;
    }
    if (r->would_block) break;
    if (r->eof) {
      // Peer finished sending: answer what we have, then close.
      conn.closing = true;
      break;
    }
    conn.in.append(buf, r->bytes);
    if (r->bytes < sizeof(buf)) break;  // level-triggered: rest next round
  }
  // Frame decode loop over whatever accumulated (partial frames stay).
  while (!conn.dead && !conn.in.empty()) {
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(conn.in, &frame);
    if (!consumed.ok()) {
      // Framing is poisoned: one typed error frame, then close after
      // flushing (closing + cleared input stops further reads).
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      std::string bytes;
      wire::EncodeResult(consumed.status(), &bytes);
      conn.closing = true;
      conn.in.clear();
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(id, conn, std::move(bytes));
      break;
    }
    if (*consumed == 0) break;  // partial frame: wait for more bytes
    conn.in.erase(0, *consumed);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    if (frame.type == wire::FrameType::kQuery) {
      auto decoded = wire::DecodeQuery(frame);
      if (decoded.ok()) {
        conn.pending.push_back(PendingEntry{PendingEntry::Kind::kQuery,
                                            std::move(decoded->query), {}});
      } else {
        // Well-formed frame, malformed query payload: a typed error
        // response that must not overtake earlier queries — it rides the
        // pending queue as a marker and is answered at head-of-line.
        conn.pending.push_back(
            PendingEntry{PendingEntry::Kind::kDecodeError, Query{}, {}});
      }
    } else if (frame.type == wire::FrameType::kInfoRequest) {
      conn.pending.push_back(
          PendingEntry{PendingEntry::Kind::kInfoRequest, Query{}, {}});
    } else if (frame.type == wire::FrameType::kAppendRequest) {
      auto record = wire::DecodeAppend(frame);
      if (record.ok()) {
        conn.pending.push_back(PendingEntry{PendingEntry::Kind::kAppend,
                                            Query{}, std::move(*record)});
      } else {
        conn.pending.push_back(
            PendingEntry{PendingEntry::Kind::kAppendError, Query{}, {}});
      }
    } else {
      // kResult/kError/kInfo from a client: protocol violation.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      std::string bytes;
      wire::EncodeResult(
          util::Status::InvalidArgument("unexpected client frame type"),
          &bytes);
      conn.closing = true;
      conn.in.clear();
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      QueueWrite(id, conn, std::move(bytes));
      break;
    }
  }
  if (conn.dead) return;
  MaybeDispatch(id, conn);
  // EOF with nothing outstanding: close now.
  if (!conn.dead && conn.closing && !conn.in_flight &&
      conn.pending.empty() && conn.out_off >= conn.out.size()) {
    MarkDead(conn);
  }
}

void Server::MaybeDispatch(uint64_t id, Connection& conn) {
  if (conn.dead || conn.in_flight) return;
  // Markers at the head of the line (decode errors / info requests that
  // queued behind queries) are answered inline, in arrival order.
  while (!conn.dead && !conn.pending.empty() &&
         conn.pending.front().kind != PendingEntry::Kind::kQuery) {
    PendingEntry entry = std::move(conn.pending.front());
    conn.pending.pop_front();
    std::string bytes;
    switch (entry.kind) {
      case PendingEntry::Kind::kInfoRequest:
        wire::EncodeInfo(MakeInfo(), &bytes);
        break;
      case PendingEntry::Kind::kAppend: {
        // Ingest is answered inline, in line: the ack (or typed error)
        // keeps its place among the connection's responses.
        if (builder_ == nullptr) {
          wire::EncodeResult(
              util::Status::Unavailable("live ingest disabled"), &bytes);
          break;
        }
        auto submitted = builder_->Submit(std::move(entry.record));
        if (!submitted.ok()) {
          wire::EncodeResult(submitted.status(), &bytes);
          break;
        }
        appends_accepted_.fetch_add(1, std::memory_order_relaxed);
        wire::AppendAck ack;
        ack.record_idx = *submitted;
        ack.generation = service_->index_manager().generation();
        // v3: with a WAL behind the builder, Submit returned only after
        // the fsync — tell the client this ack survives a crash.
        ack.durable = builder_->durable();
        ack.wal_sequence =
            ack.durable ? builder_->WalSequenceFor(
                              static_cast<data::RecordIdx>(*submitted))
                        : 0;
        wire::EncodeAppendAck(ack, &bytes);
        break;
      }
      case PendingEntry::Kind::kAppendError:
        wire::EncodeResult(
            util::Status::InvalidArgument("malformed append payload"),
            &bytes);
        break;
      case PendingEntry::Kind::kDecodeError:
      default:
        wire::EncodeResult(
            util::Status::InvalidArgument("malformed query payload"),
            &bytes);
        break;
    }
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    QueueWrite(id, conn, std::move(bytes));
  }
  if (conn.dead || conn.pending.empty()) return;
  size_t take = std::min(options_.max_batch, conn.pending.size());
  // Stop the batch at the next marker so markers stay in sequence.
  for (size_t i = 0; i < take; ++i) {
    if (conn.pending[i].kind != PendingEntry::Kind::kQuery) {
      take = i;
      break;
    }
  }
  if (take == 0) return;
  auto batch = std::make_shared<std::vector<Query>>();
  batch->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch->push_back(conn.pending.front().query);
    conn.pending.pop_front();
  }
  conn.in_flight = true;
  queries_dispatched_.fetch_add(take, std::memory_order_relaxed);
  dispatchers_->Submit([this, id, batch] {
    BatchResult results = service_->QueryBatch(*batch);
    std::string bytes;
    for (const auto& result : results) wire::EncodeResult(result, &bytes);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{id, std::move(bytes), results.size()});
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  });
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;
    if (it->second.dead) {
      // The connection died while this batch was computing: drop the
      // response, but release the tombstone so ReapDead can erase it.
      it->second.in_flight = false;
      continue;
    }
    Connection& conn = it->second;
    conn.in_flight = false;
    responses_sent_.fetch_add(c.responses, std::memory_order_relaxed);
    QueueWrite(c.conn_id, conn, std::move(c.bytes));
    if (conn.dead) continue;
    MaybeDispatch(c.conn_id, conn);
    if (!conn.dead && conn.closing && !conn.in_flight &&
        conn.pending.empty() && conn.out_off >= conn.out.size()) {
      MarkDead(conn);
    }
  }
}

void Server::QueueWrite(uint64_t id, Connection& conn, std::string bytes) {
  if (conn.dead) return;
  if (conn.out_off == conn.out.size()) {
    conn.out = std::move(bytes);
    conn.out_off = 0;
  } else {
    conn.out.append(bytes);
  }
  HandleWritable(id, conn);
}

void Server::HandleWritable(uint64_t id, Connection& conn) {
  if (conn.dead) return;
  while (conn.out_off < conn.out.size()) {
    auto r = conn.sock.WriteSome(conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off);
    if (!r.ok()) {
      socket_errors_.fetch_add(1, std::memory_order_relaxed);
      MarkDead(conn);
      return;
    }
    if (r->would_block || r->bytes == 0) break;
    conn.out_off += r->bytes;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.closing && !conn.in_flight && conn.pending.empty()) {
      MarkDead(conn);
      return;
    }
  }
  UpdateWriteInterest(id, conn);
}

void Server::UpdateWriteInterest(uint64_t id, Connection& conn) {
  if (conn.dead) return;
  bool want = conn.out_off < conn.out.size();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  bool reading =
      !conn.closing && !stop_requested_.load(std::memory_order_acquire);
  ev.events = (reading ? EPOLLIN : 0u) | (want ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
}

void Server::MarkDead(Connection& conn) {
  if (conn.dead) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.sock.fd(), nullptr);
  conn.sock.Close();
  conn.dead = true;
  closed_.fetch_add(1, std::memory_order_relaxed);
}

void Server::ReapDead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    // A dead connection with a batch still at the dispatchers keeps its
    // entry (as a tombstone) so the completion can be matched and dropped;
    // it is reaped once the batch lands.
    if (it->second.dead && !it->second.in_flight) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace yver::serve::net
