#ifndef YVER_SERVE_NET_SERVER_H_
#define YVER_SERVE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "serve/ingest.h"
#include "serve/net/deadline_wheel.h"
#include "serve/resolution_service.h"
#include "serve/wire.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace yver::serve::net {

/// Tuning knobs for a wire Server.
struct ServerOptions {
  /// TCP port on 127.0.0.1 (0 = kernel-assigned; read back via port()).
  uint16_t port = 0;
  int backlog = 128;
  /// Threads running ResolutionService::QueryBatch on behalf of
  /// connections. The service fans each batch out over its own pool, so
  /// one dispatcher already keeps every service worker busy; more
  /// dispatchers let independent connections overlap their batches.
  size_t dispatch_threads = 1;
  /// Decoded queries handed to the service per dispatch. Batching
  /// amortizes the fan-out latch; responses stay in request order.
  size_t max_batch = 64;
  /// Connections beyond this are accepted and immediately closed (the
  /// listen backlog would otherwise queue them invisibly).
  size_t max_connections = 1024;
  /// Graceful-shutdown bound: in-flight and already-decoded queries get
  /// this long to drain and flush before connections are force-closed.
  double drain_timeout_ms = 5000;

  // --- Connection-lifecycle defense (DESIGN.md §15). Each knob's zero
  // --- disables it unless noted; the defaults are generous enough that a
  // --- well-behaved client can never trip them.
  /// Per-connection cap on buffered unwritten response bytes. A peer that
  /// stops reading while responses accumulate past this is disconnected
  /// (reason: write-stall) — the cap is what bounds server memory against
  /// a never-reading client. 0 = unbounded.
  size_t max_out_buffer = 64u << 20;
  /// SO_SNDBUF for accepted sockets. The kernel send buffer auto-tunes to
  /// megabytes per connection, which both evades the out-buffer cap (the
  /// kernel absorbs responses a dead reader never drains, so the
  /// userspace backlog stays small) and is itself unbounded per-peer
  /// memory. Clamping it makes `max_out_buffer` the real bound.
  /// 0 = kernel default (auto-tuned).
  size_t so_sndbuf = 0;
  /// Per-connection cap on buffered unparsed input bytes. Backpressure
  /// (the pending cap) already bounds this path, so the cap is a
  /// belt-and-braces bound; exceeding it disconnects (reason: oversize).
  /// 0 = unbounded.
  size_t max_in_buffer = 64u << 20;
  /// Server-side cap on a declared frame payload length: a frame header
  /// declaring more is rejected — with a typed error frame, then a close —
  /// before a single payload byte is buffered (reason: oversize). 0 = the
  /// protocol maximum, wire::kMaxFramePayload.
  size_t max_frame_payload = 0;
  /// Decoded-but-undispatched frames a connection may queue before the
  /// loop deregisters EPOLLIN for it (backpressure; the kernel socket
  /// buffer and TCP flow control push back on the peer from there).
  /// 0 = 2 * max_batch.
  size_t max_pending = 0;
  /// Disconnect a connection with nothing outstanding in either direction
  /// after this long without a byte of traffic (reason: idle). 0 = never.
  double idle_timeout_ms = 300000;
  /// Slow-loris defense: while a partial frame is pending, the peer must
  /// average at least this many received bytes/sec over each
  /// progress_window_ms window or be disconnected (reason: slowloris).
  /// Windows only run while reads are armed — a pause the server itself
  /// imposed never counts against the peer. 0 = disabled.
  double min_read_bytes_per_sec = 64;
  double progress_window_ms = 5000;
  /// Disconnect when buffered responses make no progress into the kernel
  /// for this long (reason: write-stall). 0 = never.
  double write_stall_timeout_ms = 30000;
  /// Token-bucket rate limits on query/append frames, answered in order
  /// with RESOURCE_EXHAUSTED error frames. Info requests are exempt (they
  /// are the observability path). 0 = unlimited; burst 0 = one second's
  /// worth of tokens.
  double conn_rate_limit = 0;    // frames/sec per connection
  double conn_rate_burst = 0;
  double global_rate_limit = 0;  // frames/sec across all connections
  double global_rate_burst = 0;
  /// A peer whose frames get rate-limited this many times consecutively
  /// (no admitted frame in between) is disconnected (reason:
  /// rate-limited). 0 = never disconnect, keep answering typed errors.
  size_t rate_limit_disconnect_streak = 1024;
  /// Granularity of the loop's deadline wheel (timers fire up to one tick
  /// late).
  double timer_tick_ms = 20;
};

/// Monotonic counters, readable while the server runs.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;   // well-formed frames parsed
  uint64_t queries_dispatched = 0;
  uint64_t appends_accepted = 0;  // kAppendRequest frames acked into ingest
  uint64_t responses_sent = 0;    // result/error/info frames fully written
  uint64_t protocol_errors = 0;   // malformed frames (connection poisoned)
  uint64_t socket_errors = 0;     // read/write failures (incl. injected)
  // Connection-lifecycle defense (DESIGN.md §15):
  uint64_t open_connections = 0;  // gauge: live (not yet reaped)
  uint64_t paused_reads = 0;      // gauge: EPOLLIN deregistered for pressure
  uint64_t disconnects_idle = 0;
  uint64_t disconnects_slowloris = 0;
  uint64_t disconnects_oversize = 0;
  uint64_t disconnects_rate_limited = 0;
  uint64_t disconnects_write_stall = 0;
  uint64_t rate_limited_frames = 0;   // answered RESOURCE_EXHAUSTED
  uint64_t peak_out_buffer = 0;       // high-water mark of any conn's out
  uint64_t peak_in_buffer = 0;        // high-water mark of any conn's in
};

/// The TCP front end over a ResolutionService (DESIGN.md §12): one epoll
/// event-loop thread owns every connection — per-connection read/write
/// buffers with partial-read and short-write handling, wire framing, and
/// strict in-order request/response pipelining — while query execution
/// happens off-loop on a small dispatcher pool that feeds batches into
/// ResolutionService::QueryBatch (and through it the service's
/// ThreadPool, AdmissionController, deadlines, and cache).
///
/// Ordering contract: responses on a connection are sent in the order the
/// queries arrived, one response frame per query frame, regardless of
/// dispatcher or service-thread scheduling — at most one batch per
/// connection is in flight and batches never reorder internally. Combined
/// with the codec's exclusion of server-side observability bits, this is
/// what makes a replayed capture byte-identical run over run and wire
/// answers byte-equal to the in-process API.
///
/// Connection lifecycle (DESIGN.md §15): reading → paused → draining →
/// dead. Reads pause (EPOLLIN deregistered) while a batch is in flight,
/// while the pending queue is at its cap, or while the service's
/// AdmissionController is saturated — TCP flow control then pushes back
/// on the peer instead of the server buffering unboundedly. A deadline
/// wheel in the loop drives idle timeouts, slow-loris progress timeouts,
/// and write-stall detection; token buckets rate-limit query/append
/// frames. Every defensive disconnect is typed (idle / slowloris /
/// oversize / rate-limited / write-stall) and surfaced both in
/// ServerStats and on the wire via the v4 kInfo NetGauges.
///
/// Failure model: a malformed frame gets a typed kError frame and a
/// connection close (protocol errors poison framing); a query that fails
/// validation/admission/deadline gets its typed kError frame and the
/// connection lives on; socket errors (including injected faults at
/// net.socket.read/write) close the connection. The process never aborts
/// on network input.
///
/// Shutdown() is graceful: stop accepting, stop reading, drain every
/// dispatched and already-decoded query, flush the write buffers, then
/// close — bounded by ServerOptions::drain_timeout_ms.
class Server {
 public:
  /// `builder`, when non-null, enables live ingest: kAppendRequest frames
  /// are submitted to it and acked with the assigned record index. With
  /// no builder, append frames get a typed UNAVAILABLE ("live ingest
  /// disabled") and the connection lives on.
  Server(std::shared_ptr<ResolutionService> service,
         ServerOptions options = {},
         std::shared_ptr<LiveIndexBuilder> builder = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event-loop thread. UNAVAILABLE when
  /// the port cannot be bound.
  util::Status Start();

  /// The bound port (after Start; resolves port 0 to the ephemeral pick).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful shutdown; idempotent; blocks until the loop thread exits.
  void Shutdown();

  ServerStats stats() const;

  const ResolutionService& service() const { return *service_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Why the defense layer dropped a connection; each maps to one
  /// ServerStats / wire::NetGauges counter.
  enum class DisconnectReason : uint8_t {
    kIdle,
    kSlowloris,
    kOversize,
    kRateLimited,
    kWriteStall,
  };

  /// A refill-on-demand token bucket (one per connection, plus a global
  /// one). Loop-thread only.
  struct TokenBucket {
    double tokens = 0;
    Clock::time_point last{};
    bool primed = false;
    /// Refills at `rate`/sec up to `burst` (burst <= 0 means one second's
    /// worth) and tries to take one token. rate <= 0 always admits.
    bool TryTake(double rate, double burst, Clock::time_point now);
  };

  /// One element of a connection's in-order pending queue. Besides real
  /// queries it carries inline-answerable markers — a malformed query or
  /// append payload (answers INVALID_ARGUMENT), an info request, a
  /// decoded append, and a rate-limited frame (answers
  /// RESOURCE_EXHAUSTED) — which must hold their place in line so
  /// responses never overtake earlier queries.
  struct PendingEntry {
    enum class Kind : uint8_t {
      kQuery,
      kDecodeError,
      kInfoRequest,
      kAppend,
      kAppendError,
      kRateLimited,
    };
    Kind kind = Kind::kQuery;
    Query query;
    data::Record record;  // kAppend only
  };

  struct Connection {
    util::Socket sock;
    std::string in;                         // unparsed wire bytes
    std::deque<PendingEntry> pending;       // decoded, not yet dispatched
    std::string out;                        // encoded frames awaiting write
    size_t out_off = 0;                     // bytes of `out` already sent
    bool in_flight = false;                 // a batch is at the dispatchers
    bool closing = false;                   // drain then close (EOF/protocol)
    bool want_write = false;                // EPOLLOUT currently armed
    bool reads_armed = true;                // EPOLLIN|EPOLLRDHUP armed
    bool read_paused = false;               // counted in the paused gauge
    bool dead = false;                      // socket closed; erased at reap
    // Defense-layer bookkeeping (loop-thread only):
    uint64_t bytes_read = 0;                // total bytes ever received
    bool partial_frame = false;             // `in` ends mid-frame
    Clock::time_point last_activity{};      // last byte in either direction
    Clock::time_point last_write_progress{};
    Clock::time_point window_start{};       // slow-loris progress window
    uint64_t window_start_bytes = 0;
    TokenBucket bucket;
    uint64_t rate_limited_streak = 0;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;        // encoded response frames, request order
    uint64_t responses = 0;
  };

  void Loop();
  void AcceptAll();
  void HandleReadable(uint64_t id, Connection& conn);
  void HandleWritable(uint64_t id, Connection& conn);
  /// Decodes frames out of conn.in into the pending queue, stopping at
  /// the pending cap (backpressure) — also the enforcement point for the
  /// frame-size cap and the rate limits.
  void DecodeFrames(uint64_t id, Connection& conn);
  void MaybeDispatch(uint64_t id, Connection& conn);
  void DrainCompletions();
  /// Recomputes and applies the connection's epoll interest set (pause /
  /// resume reads, write interest) and its next wheel deadline. The one
  /// place connection state maps to kernel + timer state; call after any
  /// state change.
  void UpdateConnState(uint64_t id, Connection& conn);
  /// Fires when the wheel expires a connection's deadline: decides idle /
  /// slowloris / write-stall, disconnects or reschedules.
  void OnConnDeadline(uint64_t id, Connection& conn);
  /// Appends bytes to the connection's write buffer and pushes them into
  /// the kernel immediately (short writes leave the rest for EPOLLOUT).
  /// Enforces the out-buffer cap.
  void QueueWrite(uint64_t id, Connection& conn, std::string bytes);
  /// Counts the typed reason, then MarkDead.
  void Disconnect(uint64_t id, Connection& conn, DisconnectReason reason);
  /// Closes the socket and flags the connection; the entry itself is
  /// erased only by ReapDead at a safe point in the loop, so nested
  /// handlers never hold a dangling Connection reference.
  void MarkDead(uint64_t id, Connection& conn);
  void ReapDead();
  wire::ServerInfo MakeInfo() const;
  size_t PendingCap() const;
  size_t MaxFramePayload() const;

  std::shared_ptr<ResolutionService> service_;
  ServerOptions options_;
  std::shared_ptr<LiveIndexBuilder> builder_;  // nullptr = ingest disabled
  util::Socket listener_;
  uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions + shutdown wakeups

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::unique_ptr<util::ThreadPool> dispatchers_;

  std::unordered_map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake fd

  // Loop-thread only: connection deadlines + the global rate bucket and
  // the cached admission-saturation state (recomputed when completions
  // land; a flip sweeps every connection's read interest).
  std::unique_ptr<DeadlineWheel> wheel_;
  TokenBucket global_bucket_;
  bool admission_saturated_ = false;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  // Counters are atomics: the loop and dispatchers write, stats() reads.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> queries_dispatched_{0};
  std::atomic<uint64_t> appends_accepted_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> socket_errors_{0};
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> paused_reads_{0};
  std::atomic<uint64_t> disconnects_idle_{0};
  std::atomic<uint64_t> disconnects_slowloris_{0};
  std::atomic<uint64_t> disconnects_oversize_{0};
  std::atomic<uint64_t> disconnects_rate_limited_{0};
  std::atomic<uint64_t> disconnects_write_stall_{0};
  std::atomic<uint64_t> rate_limited_frames_{0};
  std::atomic<uint64_t> peak_out_buffer_{0};
  std::atomic<uint64_t> peak_in_buffer_{0};
};

}  // namespace yver::serve::net

#endif  // YVER_SERVE_NET_SERVER_H_
