#ifndef YVER_SERVE_NET_SERVER_H_
#define YVER_SERVE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "serve/ingest.h"
#include "serve/resolution_service.h"
#include "serve/wire.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace yver::serve::net {

/// Tuning knobs for a wire Server.
struct ServerOptions {
  /// TCP port on 127.0.0.1 (0 = kernel-assigned; read back via port()).
  uint16_t port = 0;
  int backlog = 128;
  /// Threads running ResolutionService::QueryBatch on behalf of
  /// connections. The service fans each batch out over its own pool, so
  /// one dispatcher already keeps every service worker busy; more
  /// dispatchers let independent connections overlap their batches.
  size_t dispatch_threads = 1;
  /// Decoded queries handed to the service per dispatch. Batching
  /// amortizes the fan-out latch; responses stay in request order.
  size_t max_batch = 64;
  /// Connections beyond this are accepted and immediately closed (the
  /// listen backlog would otherwise queue them invisibly).
  size_t max_connections = 1024;
  /// Graceful-shutdown bound: in-flight and already-decoded queries get
  /// this long to drain and flush before connections are force-closed.
  double drain_timeout_ms = 5000;
};

/// Monotonic counters, readable while the server runs.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;   // well-formed frames parsed
  uint64_t queries_dispatched = 0;
  uint64_t appends_accepted = 0;  // kAppendRequest frames acked into ingest
  uint64_t responses_sent = 0;    // result/error/info frames fully written
  uint64_t protocol_errors = 0;   // malformed frames (connection poisoned)
  uint64_t socket_errors = 0;     // read/write failures (incl. injected)
};

/// The TCP front end over a ResolutionService (DESIGN.md §12): one epoll
/// event-loop thread owns every connection — per-connection read/write
/// buffers with partial-read and short-write handling, wire::ExtractFrame
/// framing, and strict in-order request/response pipelining — while query
/// execution happens off-loop on a small dispatcher pool that feeds
/// batches into ResolutionService::QueryBatch (and through it the
/// service's ThreadPool, AdmissionController, deadlines, and cache).
///
/// Ordering contract: responses on a connection are sent in the order the
/// queries arrived, one response frame per query frame, regardless of
/// dispatcher or service-thread scheduling — at most one batch per
/// connection is in flight and batches never reorder internally. Combined
/// with the codec's exclusion of server-side observability bits, this is
/// what makes a replayed capture byte-identical run over run and wire
/// answers byte-equal to the in-process API.
///
/// Failure model: a malformed frame gets a typed kError frame and a
/// connection close (protocol errors poison framing); a query that fails
/// validation/admission/deadline gets its typed kError frame and the
/// connection lives on; socket errors (including injected faults at
/// net.socket.read/write) close the connection. The process never aborts
/// on network input.
///
/// Shutdown() is graceful: stop accepting, stop reading, drain every
/// dispatched and already-decoded query, flush the write buffers, then
/// close — bounded by ServerOptions::drain_timeout_ms.
class Server {
 public:
  /// `builder`, when non-null, enables live ingest: kAppendRequest frames
  /// are submitted to it and acked with the assigned record index. With
  /// no builder, append frames get a typed UNAVAILABLE ("live ingest
  /// disabled") and the connection lives on.
  Server(std::shared_ptr<ResolutionService> service,
         ServerOptions options = {},
         std::shared_ptr<LiveIndexBuilder> builder = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event-loop thread. UNAVAILABLE when
  /// the port cannot be bound.
  util::Status Start();

  /// The bound port (after Start; resolves port 0 to the ephemeral pick).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful shutdown; idempotent; blocks until the loop thread exits.
  void Shutdown();

  ServerStats stats() const;

  const ResolutionService& service() const { return *service_; }

 private:
  /// One element of a connection's in-order pending queue. Besides real
  /// queries it carries inline-answerable markers — a malformed query or
  /// append payload (answers INVALID_ARGUMENT), an info request, and a
  /// decoded append — which must hold their place in line so responses
  /// never overtake earlier queries.
  struct PendingEntry {
    enum class Kind : uint8_t {
      kQuery,
      kDecodeError,
      kInfoRequest,
      kAppend,
      kAppendError,
    };
    Kind kind = Kind::kQuery;
    Query query;
    data::Record record;  // kAppend only
  };

  struct Connection {
    util::Socket sock;
    std::string in;                         // unparsed wire bytes
    std::deque<PendingEntry> pending;       // decoded, not yet dispatched
    std::string out;                        // encoded frames awaiting write
    size_t out_off = 0;                     // bytes of `out` already sent
    bool in_flight = false;                 // a batch is at the dispatchers
    bool closing = false;                   // drain then close (EOF/protocol)
    bool want_write = false;                // EPOLLOUT currently armed
    bool dead = false;                      // socket closed; erased at reap
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;        // encoded response frames, request order
    uint64_t responses = 0;
  };

  void Loop();
  void AcceptAll();
  void HandleReadable(uint64_t id, Connection& conn);
  void HandleWritable(uint64_t id, Connection& conn);
  void MaybeDispatch(uint64_t id, Connection& conn);
  void DrainCompletions();
  void UpdateWriteInterest(uint64_t id, Connection& conn);
  /// Appends bytes to the connection's write buffer and pushes them into
  /// the kernel immediately (short writes leave the rest for EPOLLOUT).
  void QueueWrite(uint64_t id, Connection& conn, std::string bytes);
  /// Closes the socket and flags the connection; the entry itself is
  /// erased only by ReapDead at a safe point in the loop, so nested
  /// handlers never hold a dangling Connection reference.
  void MarkDead(Connection& conn);
  void ReapDead();
  wire::ServerInfo MakeInfo() const;

  std::shared_ptr<ResolutionService> service_;
  ServerOptions options_;
  std::shared_ptr<LiveIndexBuilder> builder_;  // nullptr = ingest disabled
  util::Socket listener_;
  uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions + shutdown wakeups

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::unique_ptr<util::ThreadPool> dispatchers_;

  std::unordered_map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake fd

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  // Counters are atomics: the loop and dispatchers write, stats() reads.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> queries_dispatched_{0};
  std::atomic<uint64_t> appends_accepted_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> socket_errors_{0};
};

}  // namespace yver::serve::net

#endif  // YVER_SERVE_NET_SERVER_H_
