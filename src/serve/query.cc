#include "serve/query.h"

#include <cmath>
#include <string>

namespace yver::serve {

util::Status ValidateQuery(const Query& query, size_t num_records) {
  if (std::isnan(query.certainty)) {
    return util::Status::InvalidArgument("certainty is NaN");
  }
  if (query.granularity != Granularity::kMatches &&
      query.granularity != Granularity::kEntity) {
    return util::Status::InvalidArgument("unknown granularity");
  }
  if (static_cast<size_t>(query.record) >= num_records) {
    return util::Status::OutOfRange(
        "record " + std::to_string(query.record) + " beyond corpus of " +
        std::to_string(num_records) + " records");
  }
  return util::Status::Ok();
}

}  // namespace yver::serve
