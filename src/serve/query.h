#ifndef YVER_SERVE_QUERY_H_
#define YVER_SERVE_QUERY_H_

#include <cstddef>
#include <vector>

#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "util/status.h"

namespace yver::serve {

/// What a query resolves to: the raw ranked matches of a record, or the
/// entity (connected component above the certainty threshold) the record
/// belongs to — §4.1's "multiple levels of granularity" dial.
enum class Granularity {
  kMatches = 0,
  kEntity = 1,
};

/// One typed query against a served resolution. This is the single
/// interface shared by serve::ResolutionService, the CLI subcommands, and
/// tests — replacing per-call ad-hoc flag plumbing.
struct Query {
  /// Record whose matches / entity are requested.
  data::RecordIdx record = 0;
  /// Only matches with confidence strictly above this count (§4.2's
  /// tunable certainty threshold). Must be finite; NaN is rejected.
  double certainty = 0.0;
  /// Truncate the response to the k best matches (or the first k entity
  /// members). 0 means unlimited.
  size_t k = 0;
  Granularity granularity = Granularity::kMatches;

  friend bool operator==(const Query&, const Query&) = default;
};

/// The response to a Query.
struct QueryResult {
  Query query;
  /// Granularity::kMatches — the record's matches above the threshold,
  /// best first (RankedResolution ordering contract).
  std::vector<core::RankedMatch> matches;
  /// Granularity::kEntity — sorted members of the record's entity cluster,
  /// including the record itself.
  std::vector<data::RecordIdx> entity;
  /// True when the service answered from its LRU cache.
  bool from_cache = false;
};

/// Validates a query against a corpus of `num_records` records: rejects
/// NaN certainty (INVALID_ARGUMENT) and out-of-corpus records
/// (OUT_OF_RANGE).
util::Status ValidateQuery(const Query& query, size_t num_records);

}  // namespace yver::serve

#endif  // YVER_SERVE_QUERY_H_
