#ifndef YVER_SERVE_QUERY_H_
#define YVER_SERVE_QUERY_H_

#include <cstddef>
#include <vector>

#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "util/deadline.h"
#include "util/status.h"

namespace yver::serve {

/// What a query resolves to: the raw ranked matches of a record, or the
/// entity (connected component above the certainty threshold) the record
/// belongs to — §4.1's "multiple levels of granularity" dial.
enum class Granularity {
  kMatches = 0,
  kEntity = 1,
};

/// One typed query against a served resolution. This is the single
/// interface shared by serve::ResolutionService, the CLI subcommands, and
/// tests — replacing per-call ad-hoc flag plumbing.
struct Query {
  /// Record whose matches / entity are requested.
  data::RecordIdx record = 0;
  /// Only matches with confidence strictly above this count (§4.2's
  /// tunable certainty threshold). Must be finite; NaN is rejected.
  double certainty = 0.0;
  /// Truncate the response to the k best matches (or the first k entity
  /// members). 0 means unlimited.
  size_t k = 0;
  Granularity granularity = Granularity::kMatches;
  /// When to stop trying: the service checks at admission, at fan-out,
  /// and at per-chunk boundaries, answering DEADLINE_EXCEEDED once
  /// expired. Default is infinite (pre-deadline behaviour).
  util::Deadline deadline;

  /// Semantic equality: the deadline is delivery metadata, not part of
  /// what is being asked, so it is excluded (the result cache likewise
  /// keys on the semantic fields only).
  friend bool operator==(const Query& a, const Query& b) {
    return a.record == b.record && a.certainty == b.certainty &&
           a.k == b.k && a.granularity == b.granularity;
  }
};

/// The response to a Query.
struct QueryResult {
  Query query;
  /// Granularity::kMatches — the record's matches above the threshold,
  /// best first (RankedResolution ordering contract).
  std::vector<core::RankedMatch> matches;
  /// Granularity::kEntity — sorted members of the record's entity cluster,
  /// including the record itself.
  std::vector<data::RecordIdx> entity;
  /// True when the service answered from its LRU cache.
  bool from_cache = false;
  /// True when this is a degraded answer: the service was saturated (the
  /// admission controller shed the query) but a previously cached result
  /// existed, so the caller gets the possibly-stale answer instead of
  /// RESOURCE_EXHAUSTED.
  bool degraded = false;
  /// Index generation this answer was computed against (IndexManager's
  /// monotonic snapshot counter; 1 is the initially served index). Every
  /// answer — fresh, cached, or degraded — is internally consistent with
  /// exactly this generation; the swap-under-load chaos harness compares
  /// each answer against the serial baseline of its generation.
  uint64_t generation = 1;
};

/// Validates a query against a corpus of `num_records` records: rejects
/// NaN certainty (INVALID_ARGUMENT) and out-of-corpus records
/// (OUT_OF_RANGE).
util::Status ValidateQuery(const Query& query, size_t num_records);

}  // namespace yver::serve

#endif  // YVER_SERVE_QUERY_H_
