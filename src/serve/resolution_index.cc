#include "serve/resolution_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "util/atomic_io.h"
#include "util/check.h"
#include "util/fault_injector.h"

namespace yver::serve {

namespace {

// Artifact layout (little-endian, no padding):
//   8 bytes  magic "YVERIDX1"
//   u64      num_records
//   u64      num_matches
//   repeated u32 a, u32 b, f64 confidence, f64 block_score
//   u64      FNV-1a checksum of everything after the magic
constexpr char kMagic[8] = {'Y', 'V', 'E', 'R', 'I', 'D', 'X', '1'};

class Fnv1a {
 public:
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class Writer {
 public:
  explicit Writer(std::ofstream& f) : f_(f) {}
  template <typename T>
  void Put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    f_.write(reinterpret_cast<const char*>(&v), sizeof(v));
    fnv_.Update(&v, sizeof(v));
  }
  uint64_t digest() const { return fnv_.digest(); }

 private:
  std::ofstream& f_;
  Fnv1a fnv_;
};

class Reader {
 public:
  explicit Reader(std::ifstream& f) : f_(f) {}
  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!f_.read(reinterpret_cast<char*>(v), sizeof(*v))) return false;
    fnv_.Update(v, sizeof(*v));
    return true;
  }
  uint64_t digest() const { return fnv_.digest(); }

 private:
  std::ifstream& f_;
  Fnv1a fnv_;
};

}  // namespace

ResolutionIndex::ResolutionIndex(const core::RankedResolution& resolution,
                                 size_t num_records)
    : num_records_(num_records),
      arena_(resolution.matches()),
      adjacency_(arena_, num_records) {
  for (const auto& m : arena_) {
    YVER_CHECK_MSG(m.pair.b < num_records,
                   "match references record beyond the corpus");
  }
}

util::StatusOr<ResolutionIndex> ResolutionIndex::Build(
    const core::RankedResolution& resolution, size_t num_records) {
  for (const auto& m : resolution.matches()) {
    if (m.pair.b >= num_records) {
      return util::Status::DataLoss(
          "match (" + std::to_string(m.pair.a) + ", " +
          std::to_string(m.pair.b) + ") references a record beyond the " +
          std::to_string(num_records) + "-record corpus");
    }
  }
  return ResolutionIndex(resolution, num_records);
}

std::vector<core::RankedMatch> ResolutionIndex::ForRecord(data::RecordIdx r,
                                                          double certainty,
                                                          size_t k) const {
  std::vector<core::RankedMatch> out;
  auto neighbors = adjacency_.Neighbors(r);
  if (neighbors.empty()) return out;
  out.reserve(std::min<size_t>(k == 0 ? 8 : k, neighbors.size()));
  for (uint32_t idx : neighbors) {
    const core::RankedMatch& m = arena_[idx];
    if (!(m.confidence > certainty)) break;  // confidence-descending
    out.push_back(m);
    if (k != 0 && out.size() == k) break;
  }
  return out;
}

size_t ResolutionIndex::CountAbove(double certainty) const {
  auto it = std::partition_point(arena_.begin(), arena_.end(),
                                 [certainty](const core::RankedMatch& m) {
                                   return m.confidence > certainty;
                                 });
  return static_cast<size_t>(it - arena_.begin());
}

std::vector<core::RankedMatch> ResolutionIndex::AboveThreshold(
    double certainty) const {
  size_t n = CountAbove(certainty);
  return std::vector<core::RankedMatch>(arena_.begin(), arena_.begin() + n);
}

std::vector<core::RankedMatch> ResolutionIndex::TopK(size_t k) const {
  k = std::min(k, arena_.size());
  return std::vector<core::RankedMatch>(arena_.begin(), arena_.begin() + k);
}

core::EntityClusters ResolutionIndex::ClustersAt(double certainty) const {
  return core::EntityClusters(arena_, num_records_, certainty);
}

uint64_t ResolutionIndex::Checksum() const {
  // Must hash exactly the byte sequence Save writes after the magic, so
  // Checksum() equals the digest embedded in the artifact.
  Fnv1a fnv;
  auto put = [&fnv](auto v) { fnv.Update(&v, sizeof(v)); };
  put(static_cast<uint64_t>(num_records_));
  put(static_cast<uint64_t>(arena_.size()));
  for (const auto& m : arena_) {
    put(static_cast<uint32_t>(m.pair.a));
    put(static_cast<uint32_t>(m.pair.b));
    put(m.confidence);
    put(m.block_score);
  }
  return fnv.digest();
}

util::Status ResolutionIndex::Save(const std::string& path) const {
  // Crash-atomic: serialize in memory, write to path.tmp, fsync, then
  // rename over the destination (DESIGN.md §14). A crash — or an injected
  // serve.index.save fault — anywhere in here leaves whatever artifact
  // stood at `path` fully intact; a torn .yvx can never replace a good
  // one.
  util::Status injected =
      util::FaultInjector::Global().InjectIo(util::FaultPoint::kIndexSave);
  if (!injected.ok()) return injected;
  std::string bytes;
  bytes.reserve(sizeof(kMagic) + 16 + arena_.size() * 24 + 8);
  bytes.append(kMagic, sizeof(kMagic));
  Fnv1a fnv;
  auto put = [&bytes, &fnv](auto v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
    fnv.Update(&v, sizeof(v));
  };
  put(static_cast<uint64_t>(num_records_));
  put(static_cast<uint64_t>(arena_.size()));
  for (const auto& m : arena_) {
    put(static_cast<uint32_t>(m.pair.a));
    put(static_cast<uint32_t>(m.pair.b));
    put(m.confidence);
    put(m.block_score);
  }
  uint64_t digest = fnv.digest();
  bytes.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
  return util::WriteFileAtomic(path, bytes);
}

util::StatusOr<ResolutionIndex> ResolutionIndex::Load(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return util::Status::NotFound("cannot read " + path);
  util::Status injected =
      util::FaultInjector::Global().InjectIo(util::FaultPoint::kIndexLoadOpen);
  if (!injected.ok()) return injected;
  char magic[sizeof(kMagic)];
  if (!f.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::DataLoss(path + ": not a YVERIDX1 artifact");
  }
  Reader r(f);
  uint64_t num_records = 0, num_matches = 0;
  if (!r.Get(&num_records) || !r.Get(&num_matches)) {
    return util::Status::DataLoss(path + ": truncated header");
  }
  ResolutionIndex index;
  index.num_records_ = static_cast<size_t>(num_records);
  index.arena_.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_matches, 1u << 20)));  // distrust huge counts
  double prev_confidence = std::numeric_limits<double>::infinity();
  for (uint64_t i = 0; i < num_matches; ++i) {
    injected = util::FaultInjector::Global().InjectIo(
        util::FaultPoint::kIndexLoadRead);
    if (!injected.ok()) return injected;
    uint32_t a = 0, b = 0;
    double confidence = 0, block_score = 0;
    if (!r.Get(&a) || !r.Get(&b) || !r.Get(&confidence) ||
        !r.Get(&block_score)) {
      return util::Status::DataLoss(path + ": truncated match arena");
    }
    if (a >= b || b >= num_records) {
      return util::Status::DataLoss(path + ": malformed record pair");
    }
    if (std::isnan(confidence) || confidence > prev_confidence) {
      return util::Status::DataLoss(path + ": arena not confidence-sorted");
    }
    prev_confidence = confidence;
    core::RankedMatch m;
    m.pair = data::RecordPair(a, b);
    m.confidence = confidence;
    m.block_score = block_score;
    index.arena_.push_back(m);
  }
  uint64_t expected = r.digest();
  uint64_t stored = 0;
  if (!f.read(reinterpret_cast<char*>(&stored), sizeof(stored)) ||
      stored != expected) {
    return util::Status::DataLoss(path + ": checksum mismatch");
  }
  index.adjacency_ = core::MatchAdjacency(index.arena_, index.num_records_);
  return index;
}

util::StatusOr<ResolutionIndex> ResolutionIndex::LoadWithRetry(
    const std::string& path, const util::RetryPolicy& policy,
    util::RetryStats* stats, const util::Deadline& deadline) {
  return util::RetryWithPolicy(
      policy, [&path] { return Load(path); }, stats, deadline);
}

}  // namespace yver::serve
