#ifndef YVER_SERVE_RESOLUTION_INDEX_H_
#define YVER_SERVE_RESOLUTION_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/entity_clusters.h"
#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "util/retry.h"
#include "util/status.h"

namespace yver::serve {

/// An immutable, servable snapshot of a pipeline run: the confidence-sorted
/// match arena (RankedResolution ordering contract) plus a record-keyed
/// CSR adjacency into it. Built once from a RankedResolution — or loaded
/// from the binary artifact `Save` writes — and then queried concurrently
/// without locks: every accessor is const and the structure never mutates
/// after construction.
///
/// This is what makes §4.2's query-time uncertain resolution servable at
/// scale: `yver_cli resolve` output becomes an on-disk artifact that a
/// ResolutionService maps back in and answers from, instead of re-running
/// the pipeline or re-scanning a CSV per query.
class ResolutionIndex {
 public:
  ResolutionIndex() = default;

  /// Snapshots `resolution` over a corpus of `num_records` records. All
  /// match record indices must be < num_records — this ctor CHECK-fails
  /// otherwise and is for trusted, in-process pipeline output. Untrusted
  /// input (anything read off disk) goes through Build instead.
  ResolutionIndex(const core::RankedResolution& resolution,
                  size_t num_records);

  /// Validating factory for untrusted resolutions (e.g. matches loaded
  /// from a CSV): DATA_LOSS when a match references a record beyond the
  /// corpus, instead of aborting the process.
  static util::StatusOr<ResolutionIndex> Build(
      const core::RankedResolution& resolution, size_t num_records);

  /// Records in the indexed corpus.
  size_t num_records() const { return num_records_; }
  /// Total matches in the arena.
  size_t num_matches() const { return arena_.size(); }
  bool empty() const { return arena_.empty(); }

  /// The match arena, best first (RankedResolution ordering contract).
  const std::vector<core::RankedMatch>& matches() const { return arena_; }

  /// Arena indices of record r's matches, confidence-descending.
  std::span<const uint32_t> Neighbors(data::RecordIdx r) const {
    return adjacency_.Neighbors(r);
  }

  /// Record r's matches with confidence > certainty, best first, truncated
  /// to k entries (0 = unlimited). Cost is O(answer), not O(num_matches).
  std::vector<core::RankedMatch> ForRecord(data::RecordIdx r,
                                           double certainty,
                                           size_t k = 0) const;

  /// Number of arena matches with confidence > certainty (binary search).
  size_t CountAbove(double certainty) const;

  /// The qualifying arena prefix with confidence > certainty, best first.
  std::vector<core::RankedMatch> AboveThreshold(double certainty) const;

  /// The k best matches overall.
  std::vector<core::RankedMatch> TopK(size_t k) const;

  /// Entity clusters at a certainty threshold — connected components of
  /// the match graph restricted to confidence > certainty (§4.1
  /// granularity dial). O(num_matches α(num_records)); the service caches
  /// these per threshold.
  core::EntityClusters ClustersAt(double certainty) const;

  /// FNV-1a digest of the index content (num_records, match count, raw
  /// arena bytes) — exactly the checksum `Save` embeds in the artifact,
  /// so two indexes with equal checksums serve identical bytes and an
  /// in-memory index can be compared against an on-disk artifact without
  /// re-serializing. The determinism harness compares these across
  /// thread counts.
  uint64_t Checksum() const;

  /// Serializes the index to a binary artifact (magic, version, counts,
  /// raw match arena). The adjacency is rebuilt on load — it is a pure
  /// function of the arena, so round-tripping preserves query results
  /// bit-for-bit.
  util::Status Save(const std::string& path) const;

  /// Loads an artifact written by Save. NOT_FOUND when the file cannot be
  /// opened, DATA_LOSS on bad magic / version / truncation / malformed
  /// pairs. Fault-injection points: serve.index_load.open,
  /// serve.index_load.read (util::FaultInjector).
  static util::StatusOr<ResolutionIndex> Load(const std::string& path);

  /// Load wrapped in util::RetryWithPolicy: transient failures
  /// (UNAVAILABLE, DATA_LOSS — a torn concurrent write looks like
  /// corruption) are retried with jittered exponential backoff; permanent
  /// ones (NOT_FOUND) are returned immediately. `stats`, when non-null,
  /// receives the attempt count and total backoff for observability.
  static util::StatusOr<ResolutionIndex> LoadWithRetry(
      const std::string& path, const util::RetryPolicy& policy = {},
      util::RetryStats* stats = nullptr,
      const util::Deadline& deadline = util::Deadline());

 private:
  size_t num_records_ = 0;
  std::vector<core::RankedMatch> arena_;
  core::MatchAdjacency adjacency_;
};

}  // namespace yver::serve

#endif  // YVER_SERVE_RESOLUTION_INDEX_H_
