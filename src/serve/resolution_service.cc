#include "serve/resolution_service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <latch>

#include "util/check.h"

namespace yver::serve {

ResolutionService::ResolutionService(
    std::shared_ptr<const ResolutionIndex> index, ServiceOptions options)
    : index_(std::move(index)),
      options_(options),
      pool_(util::ResolveNumThreads(options.num_threads)),
      cache_(options.cache_capacity, options.cache_shards) {
  YVER_CHECK_MSG(index_ != nullptr, "ResolutionService needs an index");
}

util::StatusOr<QueryResult> ResolutionService::QueryRecord(
    const Query& query) {
  auto start = std::chrono::steady_clock::now();
  queries_.fetch_add(1, std::memory_order_relaxed);
  util::Status status = ValidateQuery(query, index_->num_records());
  if (!status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  std::shared_ptr<const QueryResult> cached = cache_.Get(query);
  QueryResult result;
  if (cached != nullptr) {
    result = *cached;
    result.from_cache = true;
  } else {
    result = *Compute(query);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  latency_ns_.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
      std::memory_order_relaxed);
  return result;
}

std::vector<util::StatusOr<QueryResult>> ResolutionService::QueryBatch(
    const std::vector<Query>& queries) {
  std::vector<util::StatusOr<QueryResult>> results(
      queries.size(), util::Status::Internal("unanswered"));
  QueryStream(queries,
              [&results](size_t i, util::StatusOr<QueryResult> result) {
                // Each i is written by exactly one worker; the latch inside
                // QueryStream orders these writes before the return.
                results[i] = std::move(result);
              });
  return results;
}

void ResolutionService::QueryStream(
    const std::vector<Query>& queries,
    const std::function<void(size_t, util::StatusOr<QueryResult>)>& sink) {
  if (queries.empty()) return;
  // Chunked fan-out with a local latch, so concurrent QueryStream calls
  // from different threads never wait on each other's tasks (as a global
  // ThreadPool::Wait would).
  size_t num_chunks =
      std::min(queries.size(), pool_.num_threads() * 4);
  size_t chunk = (queries.size() + num_chunks - 1) / num_chunks;
  num_chunks = (queries.size() + chunk - 1) / chunk;
  std::latch done(static_cast<ptrdiff_t>(num_chunks));
  for (size_t begin = 0; begin < queries.size(); begin += chunk) {
    size_t end = std::min(queries.size(), begin + chunk);
    pool_.Submit([this, &queries, &sink, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        sink(i, QueryRecord(queries[i]));
      }
      done.count_down();
    });
  }
  done.wait();
}

std::shared_ptr<const QueryResult> ResolutionService::Compute(
    const Query& query) {
  auto result = std::make_shared<QueryResult>();
  result->query = query;
  switch (query.granularity) {
    case Granularity::kMatches:
      result->matches = index_->ForRecord(query.record, query.certainty,
                                          query.k);
      break;
    case Granularity::kEntity: {
      auto clusters = ClustersAt(query.certainty);
      const auto& members = clusters->Members(query.record);
      size_t n = query.k == 0 ? members.size()
                              : std::min(query.k, members.size());
      result->entity.assign(members.begin(), members.begin() + n);
      break;
    }
  }
  cache_.Put(query, result);
  return result;
}

std::shared_ptr<const core::EntityClusters> ResolutionService::ClustersAt(
    double certainty) {
  uint64_t key = std::bit_cast<uint64_t>(certainty);
  std::lock_guard<std::mutex> lock(clusters_mu_);
  auto it = cluster_slices_.find(key);
  if (it != cluster_slices_.end()) return it->second;
  if (cluster_slices_.size() >= options_.max_cluster_slices) {
    cluster_slices_.clear();  // simple pressure valve; slices are cheap to rebuild
  }
  // Built under the lock: a thundering herd on a brand-new threshold would
  // otherwise cluster the same slice N times; serialize instead.
  auto clusters =
      std::make_shared<const core::EntityClusters>(index_->ClustersAt(certainty));
  cluster_slices_.emplace(key, clusters);
  return clusters;
}

ServiceMetrics ResolutionService::metrics() const {
  ServiceMetrics m;
  m.queries = queries_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  m.cache_hits = cache_.hits();
  m.cache_misses = cache_.misses();
  m.total_latency_ms =
      static_cast<double>(latency_ns_.load(std::memory_order_relaxed)) / 1e6;
  return m;
}

void ResolutionService::ResetMetrics() {
  queries_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  latency_ns_.store(0, std::memory_order_relaxed);
  // Cache hit/miss counters live in the cache; recreate-level reset is not
  // needed for the benches, which read deltas via metrics() snapshots.
}

}  // namespace yver::serve
