#include "serve/resolution_service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <latch>

#include "util/check.h"
#include "util/fault_injector.h"

namespace yver::serve {

double ServiceMetrics::LatencyPercentileMs(double p) const {
  uint64_t total = 0;
  for (uint64_t c : latency_histogram_ns) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(p * total));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < latency_histogram_ns.size(); ++i) {
    seen += latency_histogram_ns[i];
    if (seen >= target) {
      // Upper bound of bucket i is 2^i ns.
      return std::ldexp(1.0, static_cast<int>(i)) / 1e6;
    }
  }
  return std::ldexp(1.0, static_cast<int>(latency_histogram_ns.size())) / 1e6;
}

ResolutionService::ResolutionService(
    std::shared_ptr<const ResolutionIndex> index, ServiceOptions options)
    : manager_(std::move(index)),
      options_(options),
      pool_(util::ResolveNumThreads(options.num_threads)),
      cache_(options.cache_capacity, options.cache_shards),
      admission_(AdmissionOptions{options.max_in_flight,
                                  options.max_queue_depth}) {}

util::StatusOr<uint64_t> ResolutionService::PublishIndex(
    std::shared_ptr<const ResolutionIndex> next) {
  auto published = manager_.Publish(std::move(next));
  if (!published.ok()) return published;
  {
    // Invalidate cluster memos of retired generations. An in-flight query
    // still pinning an old snapshot may transiently rebuild one; the
    // max_cluster_slices pressure valve bounds that.
    std::lock_guard<std::mutex> lock(clusters_mu_);
    std::erase_if(cluster_slices_, [&](const auto& kv) {
      return kv.first.first < *published;
    });
  }
  if (options_.max_stale_generations > 0) {
    // Bound serve-stale degradation: entries older than the window can no
    // longer be handed to a shed query, so "degraded" has a hard age cap
    // instead of depending on LRU pressure.
    uint64_t min_gen = *published > options_.max_stale_generations
                           ? *published - options_.max_stale_generations
                           : 0;
    evicted_stale_.fetch_add(cache_.EvictOlderThan(min_gen),
                             std::memory_order_relaxed);
  }
  return published;
}

util::Status ResolutionService::Fail(util::Status status) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  switch (status.code()) {
    case util::StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case util::StatusCode::kResourceExhausted:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  return status;
}

void ResolutionService::RecordLatency(
    std::chrono::steady_clock::time_point start) {
  auto elapsed = std::chrono::steady_clock::now() - start;
  uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  latency_ns_.fetch_add(ns, std::memory_order_relaxed);
  size_t bucket = static_cast<size_t>(std::bit_width(ns));
  if (bucket >= kServiceLatencyBuckets) bucket = kServiceLatencyBuckets - 1;
  latency_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
}

util::StatusOr<QueryResult> ResolutionService::QueryRecord(
    const Query& query) {
  auto start = std::chrono::steady_clock::now();
  queries_.fetch_add(1, std::memory_order_relaxed);
  // Pin the current snapshot for the whole query: validation, cache, and
  // compute all see one generation, even if a publish lands mid-flight.
  PinnedIndex pin = manager_.Acquire();
  util::Status status = ValidateQuery(query, pin->num_records());
  if (!status.ok()) return Fail(std::move(status));
  // Deadline check #1 — admission boundary: zero and already-expired
  // deadlines never reach the cache or the compute path.
  if (query.deadline.HasExpired()) {
    return Fail(query.deadline.Exceeded("admission"));
  }
  util::Status admit = admission_.Admit(query.deadline);
  if (!admit.ok()) {
    if (admit.code() == util::StatusCode::kResourceExhausted) {
      // Degraded mode: a shed query still gets its answer if one is
      // cached — stale beats unavailable. The lookup is against the
      // pinned generation, so even a degraded answer is consistent with
      // the index being served right now.
      std::shared_ptr<const QueryResult> cached =
          cache_.Get(query, pin.generation());
      if (cached != nullptr) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        degraded_.fetch_add(1, std::memory_order_relaxed);
        QueryResult result = *cached;
        result.from_cache = true;
        result.degraded = true;
        RecordLatency(start);
        return result;
      }
    }
    return Fail(std::move(admit));
  }
  // Admitted: the slot is held for the remainder of the query.
  struct SlotGuard {
    AdmissionController& admission;
    ~SlotGuard() { admission.Release(); }
  } guard{admission_};
  std::shared_ptr<const QueryResult> cached =
      cache_.Get(query, pin.generation());
  QueryResult result;
  if (cached != nullptr) {
    result = *cached;
    result.from_cache = true;
  } else {
    // Deadline check #2 — compute boundary: don't start work the caller
    // has already abandoned (the admission wait may have eaten the rest
    // of the budget).
    if (query.deadline.HasExpired()) {
      return Fail(query.deadline.Exceeded("compute start"));
    }
    auto computed = Compute(query, pin);
    if (!computed.ok()) return Fail(computed.status());
    result = **computed;
    // Deadline check #3 — delivery boundary: the answer is computed (and
    // cached for the next caller), but this caller's budget is gone.
    if (query.deadline.HasExpired()) {
      return Fail(query.deadline.Exceeded("compute"));
    }
  }
  RecordLatency(start);
  return result;
}

BatchResult ResolutionService::QueryBatch(
    const std::vector<Query>& queries) {
  BatchResult batch;
  batch.results.assign(queries.size(), util::Status::Internal("unanswered"));
  QueryStream(queries,
              [&batch](size_t i, util::StatusOr<QueryResult> result) {
                // Each i is written by exactly one worker; the latch inside
                // QueryStream orders these writes before the return.
                batch.results[i] = std::move(result);
              });
  batch.Tally();
  return batch;
}

void ResolutionService::QueryStream(
    const std::vector<Query>& queries,
    const std::function<void(size_t, util::StatusOr<QueryResult>)>& sink) {
  if (queries.empty()) return;
  // Chunked fan-out with a local latch, so concurrent QueryStream calls
  // from different threads never wait on each other's tasks (as a global
  // ThreadPool::Wait would).
  size_t num_chunks =
      std::min(queries.size(), pool_.num_threads() * 4);
  size_t chunk = (queries.size() + num_chunks - 1) / num_chunks;
  num_chunks = (queries.size() + chunk - 1) / chunk;
  std::latch done(static_cast<ptrdiff_t>(num_chunks));
  for (size_t begin = 0; begin < queries.size(); begin += chunk) {
    size_t end = std::min(queries.size(), begin + chunk);
    pool_.Submit([this, &queries, &sink, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        // Per-chunk deadline boundary: an expired query is answered
        // DEADLINE_EXCEEDED (with counters) by QueryRecord's admission
        // check without touching the cache or compute paths, so a slow
        // chunk cannot make later queries burn work nobody is awaiting.
        sink(i, QueryRecord(queries[i]));
      }
      done.count_down();
    });
  }
  done.wait();
}

util::StatusOr<std::shared_ptr<const QueryResult>> ResolutionService::Compute(
    const Query& query, const PinnedIndex& pin) {
  // Chaos seam: an injected latency spike stalls the compute (driving the
  // deadline checks around it); an injected I/O error models a failing
  // backing store and surfaces as a typed UNAVAILABLE / DATA_LOSS.
  util::Status injected =
      util::FaultInjector::Global().InjectIo(util::FaultPoint::kServiceCompute);
  if (!injected.ok()) return injected;
  auto result = std::make_shared<QueryResult>();
  result->query = query;
  result->generation = pin.generation();
  switch (query.granularity) {
    case Granularity::kMatches:
      result->matches = pin->ForRecord(query.record, query.certainty,
                                       query.k);
      break;
    case Granularity::kEntity: {
      auto clusters = ClustersAt(pin, query.certainty);
      const auto& members = clusters->Members(query.record);
      size_t n = query.k == 0 ? members.size()
                              : std::min(query.k, members.size());
      result->entity.assign(members.begin(), members.begin() + n);
      break;
    }
  }
  cache_.Put(query, pin.generation(), result);
  return std::shared_ptr<const QueryResult>(std::move(result));
}

std::shared_ptr<const core::EntityClusters> ResolutionService::ClustersAt(
    const PinnedIndex& pin, double certainty) {
  std::pair<uint64_t, uint64_t> key{pin.generation(),
                                    std::bit_cast<uint64_t>(certainty)};
  std::lock_guard<std::mutex> lock(clusters_mu_);
  auto it = cluster_slices_.find(key);
  if (it != cluster_slices_.end()) return it->second;
  if (cluster_slices_.size() >= options_.max_cluster_slices) {
    cluster_slices_.clear();  // simple pressure valve; slices are cheap to rebuild
  }
  // Built under the lock: a thundering herd on a brand-new threshold would
  // otherwise cluster the same slice N times; serialize instead.
  auto clusters =
      std::make_shared<const core::EntityClusters>(pin->ClustersAt(certainty));
  cluster_slices_.emplace(key, clusters);
  return clusters;
}

ServiceMetrics ResolutionService::metrics() const {
  ServiceMetrics m;
  m.queries = queries_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  m.cache_hits = cache_.hits();
  m.cache_misses = cache_.misses();
  m.shed = shed_.load(std::memory_order_relaxed);
  m.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  m.degraded = degraded_.load(std::memory_order_relaxed);
  m.generation = manager_.generation();
  m.publishes = manager_.publishes();
  m.pinned_readers = manager_.pinned_readers();
  m.evicted_stale = evicted_stale_.load(std::memory_order_relaxed);
  m.total_latency_ms =
      static_cast<double>(latency_ns_.load(std::memory_order_relaxed)) / 1e6;
  m.latency_histogram_ns.resize(kServiceLatencyBuckets);
  for (size_t i = 0; i < kServiceLatencyBuckets; ++i) {
    m.latency_histogram_ns[i] =
        latency_hist_[i].load(std::memory_order_relaxed);
  }
  return m;
}

void ResolutionService::ResetMetrics() {
  queries_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  latency_ns_.store(0, std::memory_order_relaxed);
  for (auto& bucket : latency_hist_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  // Cache hit/miss counters live in the cache; recreate-level reset is not
  // needed for the benches, which read deltas via metrics() snapshots.
}

}  // namespace yver::serve
