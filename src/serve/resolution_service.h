#ifndef YVER_SERVE_RESOLUTION_SERVICE_H_
#define YVER_SERVE_RESOLUTION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/entity_clusters.h"
#include "serve/lru_cache.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace yver::serve {

/// Tuning knobs for a ResolutionService.
struct ServiceOptions {
  /// Worker threads for QueryBatch / QueryStream fan-out
  /// (0 = one per hardware thread, via util::ResolveNumThreads).
  size_t num_threads = 0;
  /// Total LRU entries across shards; 0 disables result caching.
  size_t cache_capacity = 1 << 16;
  /// LRU shards (rounded up to a power of two).
  size_t cache_shards = 16;
  /// Distinct certainty thresholds whose entity clusterings are memoized;
  /// the memo is dropped wholesale when it outgrows this.
  size_t max_cluster_slices = 64;
};

/// Point-in-time service counters. Latency covers cache hits and misses
/// alike; hit rate is hits / (hits + misses) of the result cache.
struct ServiceMetrics {
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double total_latency_ms = 0.0;

  double HitRate() const {
    uint64_t looked = cache_hits + cache_misses;
    return looked == 0 ? 0.0 : static_cast<double>(cache_hits) / looked;
  }
  double MeanLatencyMs() const {
    return queries == 0 ? 0.0 : total_latency_ms / static_cast<double>(queries);
  }
};

/// Thread-safe query front end over an immutable ResolutionIndex: the
/// paper's query-time uncertain resolution (§4.2) packaged for serving.
/// Single (`QueryRecord`), batch (`QueryBatch`, fanned out over a
/// util::ThreadPool), and streaming-style (`QueryStream`, results pushed to
/// a sink as they complete) APIs all answer through one code path, so a
/// batch answer is always identical to the per-query answer.
///
/// Repeated (record, certainty, k, granularity) lookups are served from a
/// sharded LRU cache; entity-granularity queries additionally memoize the
/// union-find clustering per certainty threshold, so slicing the corpus at
/// a handful of operating points costs one clustering each.
///
/// All public methods may be called concurrently from any thread.
class ResolutionService {
 public:
  explicit ResolutionService(std::shared_ptr<const ResolutionIndex> index,
                             ServiceOptions options = {});

  ResolutionService(const ResolutionService&) = delete;
  ResolutionService& operator=(const ResolutionService&) = delete;

  /// Answers one query. INVALID_ARGUMENT for NaN certainty, OUT_OF_RANGE
  /// for a record beyond the indexed corpus.
  util::StatusOr<QueryResult> QueryRecord(const Query& query);

  /// Answers a batch concurrently; results[i] corresponds to queries[i]
  /// and equals what QueryRecord(queries[i]) would return. Blocks until
  /// the whole batch is done.
  std::vector<util::StatusOr<QueryResult>> QueryBatch(
      const std::vector<Query>& queries);

  /// Streaming-style variant: `sink(i, result)` is invoked once per query,
  /// from worker threads, as each result becomes ready (order is not
  /// deterministic). The sink must be thread-safe. Blocks until all sinks
  /// have returned.
  void QueryStream(
      const std::vector<Query>& queries,
      const std::function<void(size_t, util::StatusOr<QueryResult>)>& sink);

  const ResolutionIndex& index() const { return *index_; }
  const ServiceOptions& options() const { return options_; }

  /// Actual worker count (options().num_threads resolved against the
  /// hardware).
  size_t num_threads() const { return pool_.num_threads(); }

  /// Snapshot of the counters (monotonic since construction or the last
  /// ResetMetrics).
  ServiceMetrics metrics() const;
  void ResetMetrics();

 private:
  /// Cache-miss path: computes the result and inserts it.
  std::shared_ptr<const QueryResult> Compute(const Query& query);

  /// Memoized entity clustering at a certainty threshold.
  std::shared_ptr<const core::EntityClusters> ClustersAt(double certainty);

  std::shared_ptr<const ResolutionIndex> index_;
  ServiceOptions options_;
  util::ThreadPool pool_;
  ShardedQueryCache cache_;

  std::mutex clusters_mu_;
  std::map<uint64_t, std::shared_ptr<const core::EntityClusters>>
      cluster_slices_;  // keyed by certainty bit pattern

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> latency_ns_{0};
};

}  // namespace yver::serve

#endif  // YVER_SERVE_RESOLUTION_SERVICE_H_
