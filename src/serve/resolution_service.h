#ifndef YVER_SERVE_RESOLUTION_SERVICE_H_
#define YVER_SERVE_RESOLUTION_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/entity_clusters.h"
#include "serve/admission_controller.h"
#include "serve/batch_result.h"
#include "serve/index_manager.h"
#include "serve/lru_cache.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace yver::serve {

/// Tuning knobs for a ResolutionService.
struct ServiceOptions {
  /// Worker threads for QueryBatch / QueryStream fan-out
  /// (0 = one per hardware thread, via util::ResolveNumThreads).
  size_t num_threads = 0;
  /// Total LRU entries across shards; 0 disables result caching.
  size_t cache_capacity = 1 << 16;
  /// LRU shards (rounded up to a power of two).
  size_t cache_shards = 16;
  /// Distinct certainty thresholds whose entity clusterings are memoized;
  /// the memo is dropped wholesale when it outgrows this.
  size_t max_cluster_slices = 64;
  /// Admission control (load shedding): queries allowed to execute
  /// concurrently, and callers allowed to queue for a slot beyond that.
  /// max_in_flight == 0 disables admission entirely (the default).
  size_t max_in_flight = 0;
  size_t max_queue_depth = 0;
  /// Bound on serve-stale degradation under live updates: on every
  /// publish, cached results (and cluster memos) computed against a
  /// generation more than this many publishes behind the new one are
  /// evicted, so a degraded answer can never be older than
  /// max_stale_generations generations. 0 disables the sweep (entries age
  /// out under LRU pressure only).
  uint64_t max_stale_generations = 4;
};

/// Number of power-of-two latency-histogram buckets a ResolutionService
/// keeps (bucket i counts answers with latency in [2^(i-1), 2^i) ns).
inline constexpr size_t kServiceLatencyBuckets = 48;

/// Point-in-time service counters. Latency covers cache hits and misses
/// alike; hit rate is hits / (hits + misses) of the result cache.
struct ServiceMetrics {
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Failure-model counters: queries shed with RESOURCE_EXHAUSTED,
  /// queries answered DEADLINE_EXCEEDED (at admission, while queued, or
  /// at a compute boundary), and degraded answers (stale cache served to
  /// a shed query instead of an error).
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t degraded = 0;
  /// Live-index counters (IndexManager): generation currently served,
  /// successful publishes since construction, and the point-in-time
  /// pinned-reader gauge (0 when no query holds a snapshot).
  uint64_t generation = 1;
  uint64_t publishes = 0;
  uint64_t pinned_readers = 0;
  /// Cache entries evicted by the staleness bound
  /// (ServiceOptions::max_stale_generations) across all publishes.
  uint64_t evicted_stale = 0;
  double total_latency_ms = 0.0;
  /// Log2-bucketed latency histogram of answered queries (see
  /// kServiceLatencyBuckets); feeds the percentile estimates below.
  std::vector<uint64_t> latency_histogram_ns;

  double HitRate() const {
    uint64_t looked = cache_hits + cache_misses;
    return looked == 0 ? 0.0 : static_cast<double>(cache_hits) / looked;
  }
  double MeanLatencyMs() const {
    return queries == 0 ? 0.0 : total_latency_ms / static_cast<double>(queries);
  }
  /// Approximate latency percentile (p in [0, 1], e.g. 0.99) from the
  /// log2 histogram: the upper bound of the bucket containing the p-th
  /// answer. 0 when no latencies were recorded.
  double LatencyPercentileMs(double p) const;
};

/// Thread-safe query front end over an immutable ResolutionIndex: the
/// paper's query-time uncertain resolution (§4.2) packaged for serving.
/// Single (`QueryRecord`), batch (`QueryBatch`, fanned out over a
/// util::ThreadPool), and streaming-style (`QueryStream`, results pushed to
/// a sink as they complete) APIs all answer through one code path, so a
/// batch answer is always identical to the per-query answer.
///
/// Failure model (DESIGN.md §11): every query resolves to OK or a typed
/// util::Status — never an abort. Per-query deadlines are honoured at
/// admission, fan-out, and compute boundaries (DEADLINE_EXCEEDED); an
/// optional AdmissionController bounds concurrent execution and sheds
/// excess load (RESOURCE_EXHAUSTED) instead of queuing unboundedly; a
/// shed query whose answer is still in the LRU cache gets the stale
/// result flagged `degraded` instead of an error.
///
/// Live updates (DESIGN.md §13): the served index lives in an
/// IndexManager. Every query pins the current snapshot for its whole
/// execution — validation, cache lookup, compute, and cache fill all see
/// one generation, so an in-flight query never observes a torn swap.
/// `PublishIndex` installs a new generation atomically; cache entries are
/// keyed by generation (a retired answer can never be served as fresh)
/// and the per-threshold cluster memo is invalidated on publish.
///
/// Repeated (record, certainty, k, granularity) lookups are served from a
/// sharded LRU cache; entity-granularity queries additionally memoize the
/// union-find clustering per certainty threshold, so slicing the corpus at
/// a handful of operating points costs one clustering each.
///
/// All public methods may be called concurrently from any thread.
class ResolutionService {
 public:
  explicit ResolutionService(std::shared_ptr<const ResolutionIndex> index,
                             ServiceOptions options = {});

  ResolutionService(const ResolutionService&) = delete;
  ResolutionService& operator=(const ResolutionService&) = delete;

  /// Answers one query. INVALID_ARGUMENT for NaN certainty, OUT_OF_RANGE
  /// for a record beyond the indexed corpus.
  util::StatusOr<QueryResult> QueryRecord(const Query& query);

  /// Answers a batch concurrently; results[i] corresponds to queries[i]
  /// and equals what QueryRecord(queries[i]) would return. Blocks until
  /// the whole batch is done. The returned BatchResult carries the tallied
  /// per-batch counters (ok / shed / deadline / degraded) alongside the
  /// per-query statuses.
  BatchResult QueryBatch(const std::vector<Query>& queries);

  /// Streaming-style variant: `sink(i, result)` is invoked once per query,
  /// from worker threads, as each result becomes ready (order is not
  /// deterministic). The sink must be thread-safe. Blocks until all sinks
  /// have returned.
  void QueryStream(
      const std::vector<Query>& queries,
      const std::function<void(size_t, util::StatusOr<QueryResult>)>& sink);

  /// Atomically installs `next` as the new served snapshot and returns
  /// its generation. In-flight queries finish on whatever generation they
  /// pinned; queries admitted after the publish see the new one. Typed
  /// UNAVAILABLE (nothing installed) under an injected fault at
  /// serve.index.publish — safe to retry.
  util::StatusOr<uint64_t> PublishIndex(
      std::shared_ptr<const ResolutionIndex> next);

  /// Pins and returns the currently served snapshot — the only way to
  /// look at the index from outside a query. Hold the pin only as long
  /// as needed; a live pin keeps its whole generation in memory.
  PinnedIndex PinIndex() const { return manager_.Acquire(); }

  /// The snapshot-swap machinery itself (generation / publish / pin
  /// gauges beyond what metrics() snapshots).
  const IndexManager& index_manager() const { return manager_; }

  /// The admission gate in front of the query path. The wire front end
  /// reads its saturation state to pause connection-level reads
  /// (DESIGN.md §15) rather than decode queries that would be shed.
  const AdmissionController& admission() const { return admission_; }

  const ServiceOptions& options() const { return options_; }

  /// Actual worker count (options().num_threads resolved against the
  /// hardware).
  size_t num_threads() const { return pool_.num_threads(); }

  /// Snapshot of the counters (monotonic since construction or the last
  /// ResetMetrics).
  ServiceMetrics metrics() const;
  void ResetMetrics();

 private:
  /// Cache-miss path: computes the result against the pinned snapshot and
  /// inserts it under the pin's generation. UNAVAILABLE / DATA_LOSS only
  /// under fault injection (util::FaultInjector).
  util::StatusOr<std::shared_ptr<const QueryResult>> Compute(
      const Query& query, const PinnedIndex& pin);

  /// Memoized entity clustering at a certainty threshold, keyed by
  /// (generation, threshold) so a swapped index never serves a stale
  /// clustering.
  std::shared_ptr<const core::EntityClusters> ClustersAt(
      const PinnedIndex& pin, double certainty);

  /// Books a non-OK answer: bumps errors_ plus the matching failure-model
  /// counter, and returns the status unchanged.
  util::Status Fail(util::Status status);

  /// Records the latency of an answered query into the total and the
  /// log2 histogram.
  void RecordLatency(std::chrono::steady_clock::time_point start);

  IndexManager manager_;
  ServiceOptions options_;
  util::ThreadPool pool_;
  ShardedQueryCache cache_;
  AdmissionController admission_;

  std::mutex clusters_mu_;
  std::map<std::pair<uint64_t, uint64_t>,
           std::shared_ptr<const core::EntityClusters>>
      cluster_slices_;  // keyed by (generation, certainty bit pattern)

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> evicted_stale_{0};
  std::atomic<uint64_t> latency_ns_{0};
  std::array<std::atomic<uint64_t>, kServiceLatencyBuckets> latency_hist_{};
};

}  // namespace yver::serve

#endif  // YVER_SERVE_RESOLUTION_SERVICE_H_
