#include "serve/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "serve/wire.h"
#include "util/fault_injector.h"

namespace yver::serve {

namespace {

// Same FNV-1a the .yvx artifact uses; one record's digest covers its
// (length, sequence, payload) bytes exactly as they sit in the file.
class Fnv1a {
 public:
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

constexpr char kSegmentMagic[8] = {'Y', 'V', 'E', 'R', 'W', 'A', 'L', '1'};
constexpr size_t kSegmentHeaderSize = 16;  // magic + first_sequence
constexpr size_t kRecordOverhead = 4 + 8 + 8;  // length + sequence + digest
// A WAL payload is one wire append frame; anything claiming to be larger
// cannot have been written by us.
constexpr size_t kMaxWalPayload = wire::kMaxFramePayload + wire::kHeaderSize;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string SegmentName(uint64_t first_sequence) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".yvw", first_sequence);
  return buf;
}

util::Status Errno(const std::string& what) {
  return util::Status::Unavailable(what + ": " + std::strerror(errno));
}

util::Status WriteFully(int fd, const char* data, size_t n, off_t offset) {
  while (n > 0) {
    ssize_t wrote = ::pwrite(fd, data, n, offset);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("wal write");
    }
    data += wrote;
    n -= static_cast<size_t>(wrote);
    offset += wrote;
  }
  return util::Status::Ok();
}

util::Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open wal dir " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync wal dir " + dir);
  return util::Status::Ok();
}

/// Appends one framed record (length | sequence | payload | digest) to
/// `out`.
void FrameRecord(uint64_t sequence, std::string_view payload,
                 std::string* out) {
  size_t start = out->size();
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU64(out, sequence);
  out->append(payload);
  Fnv1a fnv;
  fnv.Update(out->data() + start, 12 + payload.size());
  PutU64(out, fnv.digest());
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.segment_bytes < kSegmentHeaderSize + kRecordOverhead) {
    options_.segment_bytes = kSegmentHeaderSize + kRecordOverhead;
  }
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

util::StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, const WalOptions& options,
    std::vector<WalRecoveredRecord>* recovered) {
  recovered->clear();
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir " + dir);
  }
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(dir, options));

  // Enumerate segments, oldest first.
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir " + dir);
  while (struct dirent* ent = ::readdir(d)) {
    uint64_t first = 0;
    int consumed = 0;
    if (std::sscanf(ent->d_name, "wal-%16" SCNx64 ".yvw%n", &first,
                    &consumed) == 1 &&
        static_cast<size_t>(consumed) == std::strlen(ent->d_name) &&
        first > 0) {
      wal->segments_.push_back(Segment{first, dir + "/" + ent->d_name});
    }
  }
  ::closedir(d);
  std::sort(wal->segments_.begin(), wal->segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.first_sequence < b.first_sequence;
            });

  auto& injector = util::FaultInjector::Global();
  uint64_t next_expected =
      wal->segments_.empty() ? 1 : wal->segments_.front().first_sequence;

  for (size_t s = 0; s < wal->segments_.size(); ++s) {
    const Segment& seg = wal->segments_[s];
    bool last_segment = (s + 1 == wal->segments_.size());
    int fd = ::open(seg.path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open " + seg.path);
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
      ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Errno("read " + seg.path);
      }
      if (got == 0) break;
      bytes.append(buf, static_cast<size_t>(got));
    }
    ::close(fd);

    if (bytes.size() < kSegmentHeaderSize) {
      // A header shorter than 16 bytes can only be a segment torn at
      // creation; tolerable only at the very tail of the log.
      if (!last_segment) {
        return util::Status::DataLoss(seg.path +
                                      ": truncated segment header "
                                      "before the final segment");
      }
      bytes.clear();
    } else {
      if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) !=
          0) {
        return util::Status::DataLoss(seg.path + ": not a YVERWAL1 segment");
      }
      uint64_t header_first = ReadU64(bytes.data() + 8);
      if (header_first != seg.first_sequence ||
          header_first != next_expected) {
        return util::Status::DataLoss(
            seg.path + ": segment sequence header mismatch (header says " +
            std::to_string(header_first) + ", expected " +
            std::to_string(next_expected) + ")");
      }
    }

    size_t off = bytes.empty() ? 0 : kSegmentHeaderSize;
    size_t valid_end = off;
    util::Status tail_damage = util::Status::Ok();
    while (off < bytes.size()) {
      size_t remaining = bytes.size() - off;
      if (remaining < kRecordOverhead) {
        tail_damage = util::Status::DataLoss(
            seg.path + ": incomplete record framing at offset " +
            std::to_string(off));
        break;
      }
      uint32_t len = ReadU32(bytes.data() + off);
      if (len > kMaxWalPayload) {
        tail_damage = util::Status::DataLoss(
            seg.path + ": implausible record length " + std::to_string(len) +
            " at offset " + std::to_string(off));
        break;
      }
      if (remaining < kRecordOverhead + len) {
        tail_damage = util::Status::DataLoss(
            seg.path + ": record extends past end of segment at offset " +
            std::to_string(off));
        break;
      }
      Fnv1a fnv;
      fnv.Update(bytes.data() + off, 12 + len);
      uint64_t stored = ReadU64(bytes.data() + off + 12 + len);
      if (stored != fnv.digest()) {
        tail_damage = util::Status::DataLoss(
            seg.path + ": record checksum mismatch at offset " +
            std::to_string(off));
        break;
      }
      uint64_t sequence = ReadU64(bytes.data() + off + 4);
      if (sequence != next_expected) {
        return util::Status::DataLoss(
            seg.path + ": sequence gap (record says " +
            std::to_string(sequence) + ", expected " +
            std::to_string(next_expected) + ")");
      }
      util::Status injected = injector.InjectIo(util::FaultPoint::kWalReplay);
      if (!injected.ok()) return injected;
      // The payload is a full wire append frame; a checksum-valid frame
      // that fails to decode was written wrong, which is corruption, not
      // a crash artifact.
      wire::Frame frame;
      auto consumed = wire::ExtractFrame(
          std::string_view(bytes.data() + off + 12, len), &frame);
      if (!consumed.ok() || *consumed != len ||
          frame.type != wire::FrameType::kAppendRequest) {
        return util::Status::DataLoss(seg.path +
                                      ": undecodable append frame at "
                                      "sequence " +
                                      std::to_string(sequence));
      }
      auto record = wire::DecodeAppend(frame);
      if (!record.ok()) {
        return util::Status::DataLoss(
            seg.path + ": undecodable append payload at sequence " +
            std::to_string(sequence) + ": " + record.status().message());
      }
      recovered->push_back(
          WalRecoveredRecord{sequence, *std::move(record)});
      ++next_expected;
      off += kRecordOverhead + len;
      valid_end = off;
    }

    if (!tail_damage.ok()) {
      // A bad record with nothing after it in the final segment is a torn
      // write: drop the tail and keep serving. The same damage anywhere
      // else means acked records were corrupted — refuse, typed.
      if (!last_segment) return tail_damage;
      wal->truncated_tail_bytes_ += bytes.size() - valid_end;
      bytes.resize(valid_end);
    }

    if (last_segment) {
      // Reopen for appending, truncating torn bytes (and rewriting a torn
      // header) so the on-disk state is exactly the recovered records.
      int wfd = ::open(seg.path.c_str(), O_WRONLY);
      if (wfd < 0) return Errno("open " + seg.path);
      if (bytes.empty()) {
        // The name encodes the first sequence; a torn header is only
        // rewritable when the name agrees with where the log actually is.
        if (seg.first_sequence != next_expected) {
          ::close(wfd);
          return util::Status::DataLoss(
              seg.path + ": torn header disagrees with the log position");
        }
        std::string header(kSegmentMagic, sizeof(kSegmentMagic));
        PutU64(&header, next_expected);
        if (::ftruncate(wfd, 0) != 0) {
          ::close(wfd);
          return Errno("truncate " + seg.path);
        }
        util::Status wrote = WriteFully(wfd, header.data(), header.size(), 0);
        if (!wrote.ok()) {
          ::close(wfd);
          return wrote;
        }
        bytes = header;
      } else if (::ftruncate(wfd, static_cast<off_t>(bytes.size())) != 0) {
        ::close(wfd);
        return Errno("truncate " + seg.path);
      }
      if (::fsync(wfd) != 0) {
        ::close(wfd);
        return Errno("fsync " + seg.path);
      }
      wal->fd_ = wfd;
      wal->active_size_ = bytes.size();
    }
  }

  if (wal->segments_.empty()) {
    util::Status created = wal->RotateLocked(1);
    if (!created.ok()) return created;
    util::Status synced = FsyncDir(dir);
    if (!synced.ok()) return synced;
  }

  wal->next_sequence_ = next_expected;
  wal->durable_sequence_ = next_expected - 1;
  wal->recovered_records_ = recovered->size();
  return wal;
}

util::Status WriteAheadLog::RotateLocked(uint64_t first_sequence) {
  std::string path = dir_ + "/" + SegmentName(first_sequence);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("create " + path);
  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  PutU64(&header, first_sequence);
  util::Status wrote = WriteFully(fd, header.data(), header.size(), 0);
  if (!wrote.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return wrote;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return Errno("fsync " + path);
  }
  if (fd_ >= 0) {
    ::close(fd_);
    ++rotations_;
  }
  fd_ = fd;
  active_size_ = kSegmentHeaderSize;
  segments_.push_back(Segment{first_sequence, std::move(path)});
  return util::Status::Ok();
}

util::Status WriteAheadLog::WriteAndSync(const std::string& batch,
                                         uint64_t first_sequence_in_batch) {
  // Called with flushing_ held (the leader token), never with mu_: other
  // appenders keep buffering while this batch hits the disk.
  if (active_size_ >= options_.segment_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    util::Status rotated = RotateLocked(first_sequence_in_batch);
    if (!rotated.ok()) return rotated;
    util::Status synced = FsyncDir(dir_);
    if (!synced.ok()) return synced;
  }
  uint64_t offset_before = active_size_;
  util::Status wrote = WriteFully(fd_, batch.data(), batch.size(),
                                  static_cast<off_t>(offset_before));
  if (wrote.ok()) {
    wrote = util::FaultInjector::Global().InjectIo(
        util::FaultPoint::kWalFsync);
    if (wrote.ok() && ::fsync(fd_) != 0) wrote = Errno("wal fsync");
  }
  if (!wrote.ok()) {
    // Roll the segment back to the last durable byte: a failed (unacked)
    // batch must never survive to replay. If even the rollback fails the
    // on-disk state is unknowable and the log refuses further appends.
    if (::ftruncate(fd_, static_cast<off_t>(offset_before)) != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      poisoned_ = true;
      return util::Status::DataLoss(
          "wal rollback failed after a write error; log is poisoned (" +
          wrote.message() + ")");
    }
    return wrote;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_size_ = offset_before + batch.size();
    ++fsyncs_;
  }
  return util::Status::Ok();
}

util::StatusOr<uint64_t> WriteAheadLog::Append(const data::Record& record) {
  util::Status injected =
      util::FaultInjector::Global().InjectIo(util::FaultPoint::kWalAppend);
  if (!injected.ok()) return injected;

  // Encode outside the lock; the payload is a full wire append frame.
  std::string payload;
  wire::EncodeAppend(record, &payload);

  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) {
    return util::Status::DataLoss(
        "wal is poisoned (a rollback failed; on-disk state is unknowable)");
  }
  uint64_t sequence = next_sequence_++;
  uint64_t my_epoch = abort_epoch_;
  FrameRecord(sequence, payload, &pending_);

  for (;;) {
    if (abort_epoch_ != my_epoch) {
      // A leader failed the batch this record was buffered into; the
      // bytes were rolled back and the sequence will be reassigned.
      return last_error_;
    }
    if (durable_sequence_ >= sequence) {
      ++appends_;
      return sequence;
    }
    if (!flushing_) break;  // no leader in flight — become one
    cv_.wait(lock);
  }

  flushing_ = true;
  std::string batch;
  std::swap(batch, pending_);
  uint64_t batch_first = durable_sequence_ + 1;
  uint64_t batch_last = next_sequence_ - 1;
  lock.unlock();
  util::Status flushed = WriteAndSync(batch, batch_first);
  lock.lock();
  flushing_ = false;
  if (flushed.ok()) {
    durable_sequence_ = batch_last;
    ++appends_;
    cv_.notify_all();
    return sequence;
  }
  // Fail everything buffered for or during this flush: their bytes are
  // gone (rolled back or never written) and their sequences are reused,
  // so on-disk bytes stay exactly the acked records.
  pending_.clear();
  next_sequence_ = durable_sequence_ + 1;
  ++abort_epoch_;
  last_error_ = flushed;
  cv_.notify_all();
  return flushed;
}

util::Status WriteAheadLog::Retire(uint64_t through_sequence) {
  std::lock_guard<std::mutex> lock(mu_);
  bool removed = false;
  // A segment is covered iff every sequence it holds is <= through; its
  // last sequence is the next segment's first minus one. The newest
  // segment always stays: it carries the sequence counter across
  // restarts.
  while (segments_.size() > 1 &&
         segments_[1].first_sequence <= through_sequence + 1) {
    if (::unlink(segments_.front().path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink " + segments_.front().path);
    }
    segments_.erase(segments_.begin());
    removed = true;
  }
  if (removed) return FsyncDir(dir_);
  return util::Status::Ok();
}

uint64_t WriteAheadLog::durable_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_sequence_;
}

WalStats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats s;
  s.appends = appends_;
  s.fsyncs = fsyncs_;
  s.rotations = rotations_;
  s.segments = segments_.size();
  s.durable_sequence = durable_sequence_;
  s.recovered_records = recovered_records_;
  s.truncated_tail_bytes = truncated_tail_bytes_;
  return s;
}

}  // namespace yver::serve
