#ifndef YVER_SERVE_WAL_H_
#define YVER_SERVE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/record.h"
#include "util/status.h"

namespace yver::serve {

/// Tuning knobs for a WriteAheadLog.
struct WalOptions {
  /// A segment that has grown past this many bytes is sealed and the next
  /// batch opens a fresh one. Small values exercise rotation; production
  /// wants megabytes so retirement reclaims space in coarse units.
  size_t segment_bytes = 4u << 20;
};

/// Point-in-time WAL counters.
struct WalStats {
  uint64_t appends = 0;            // records durably appended since Open
  uint64_t fsyncs = 0;             // group-commit fsync calls issued
  uint64_t rotations = 0;          // segments sealed since Open
  uint64_t segments = 0;           // segment files currently on disk
  uint64_t durable_sequence = 0;   // highest sequence known durable
  uint64_t recovered_records = 0;  // records replayed by Open
  uint64_t truncated_tail_bytes = 0;  // torn bytes dropped by recovery
};

/// One record replayed by recovery: the decoded report plus the sequence
/// it was acked under. Sequences are 1-based and contiguous — sequence s
/// is the s-th record ever acked through this log.
struct WalRecoveredRecord {
  uint64_t sequence = 0;
  data::Record record;
};

/// Append-only durable log of ingested reports (DESIGN.md §14): the
/// persistence half of live ingest. `Append` returns only after the
/// record's bytes are on disk (fsync'd), so an acked append survives any
/// crash; `Open` replays what survived, tolerating a torn tail (a crash
/// mid-write) but refusing mid-file corruption with a typed DATA_LOSS.
///
/// On-disk layout: the directory holds segment files named
/// `wal-<first_sequence 016x>.yvw`. Each segment is
///
///   8 bytes  magic "YVERWAL1"
///   u64      first_sequence (little-endian; must match the name)
///   repeated records:
///     u32    payload length
///     u64    sequence
///     bytes  payload — one wire kAppendRequest frame (serve::wire), so
///            the log speaks the exact dialect the TCP front end does and
///            replay reuses the append codec's validation
///     u64    FNV-1a over (length, sequence, payload) bytes
///
/// Durability contract: the bytes on disk are exactly the acked records.
/// Group commit batches concurrent appenders behind one fsync (a leader
/// writes everybody's buffered bytes and syncs once); a failed write or
/// fsync truncates the segment back to the last durable offset and fails
/// every append in the batch typed — a failed (unacked) append can never
/// reappear at recovery. The only permitted divergence is the
/// durable-but-unacked window: a crash after fsync but before the ack
/// reaches the client may replay a few records the client never saw the
/// ack for; those are always a contiguous suffix of the durable stream,
/// so the acked records are always a prefix of what recovery returns.
///
/// Recovery contract (`Open`): records are replayed in sequence order and
/// sequences must be contiguous across segments. A record that fails its
/// checksum (or is incomplete) at the very tail of the *last* segment is
/// a torn write: the tail is truncated and the log reopens for appending.
/// The same damage anywhere else — mid-file, in a non-final segment, or
/// with valid bytes after it — is corruption, not a crash artifact, and
/// Open fails with DATA_LOSS rather than silently dropping acked records.
///
/// Thread-safe: Append may be called from any number of threads; Retire
/// and stats may race with appends.
class WriteAheadLog {
 public:
  /// Opens (creating the directory and first segment if needed) and
  /// replays the log: `*recovered` receives every surviving record in
  /// sequence order. Typed DATA_LOSS on mid-file corruption, UNAVAILABLE
  /// on I/O errors (including injected serve.wal.replay faults).
  static util::StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& dir, const WalOptions& options,
      std::vector<WalRecoveredRecord>* recovered);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Durably appends one record and returns its sequence. Blocks until
  /// the record's batch is fsync'd (group commit: concurrent appenders
  /// share one fsync). On failure (typed UNAVAILABLE / DATA_LOSS) the
  /// record is guaranteed NOT to be on disk and its sequence is reused —
  /// on-disk bytes always equal the acked records exactly.
  util::StatusOr<uint64_t> Append(const data::Record& record);

  /// Deletes segments whose every record has sequence <= through_sequence
  /// (they are covered by a persisted snapshot). The newest segment is
  /// never deleted, even when fully covered: it carries the sequence
  /// counter across restarts.
  util::Status Retire(uint64_t through_sequence);

  /// Highest sequence known durable (0 before the first append).
  uint64_t durable_sequence() const;

  WalStats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    uint64_t first_sequence = 0;
    std::string path;
  };

  WriteAheadLog(std::string dir, WalOptions options);

  /// Leader half of group commit: writes `batch` (rotating first when the
  /// active segment is full), fsyncs, and on failure truncates back to
  /// the pre-batch offset. Called without mu_ held.
  util::Status WriteAndSync(const std::string& batch,
                            uint64_t first_sequence_in_batch);

  util::Status RotateLocked(uint64_t first_sequence);

  std::string dir_;
  WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Segment> segments_;  // oldest first; back() is active
  int fd_ = -1;                    // active segment, O_APPEND-less plain fd
  uint64_t active_size_ = 0;       // bytes in the active segment
  uint64_t next_sequence_ = 1;     // next sequence to assign
  uint64_t durable_sequence_ = 0;  // highest fsync'd sequence
  std::string pending_;            // encoded records awaiting the leader
  bool flushing_ = false;          // a leader is inside WriteAndSync
  bool poisoned_ = false;          // a rollback failed; refuse all appends
  uint64_t abort_epoch_ = 0;       // bumped when a batch fails; fails waiters
  util::Status last_error_ = util::Status::Ok();
  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t rotations_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
};

}  // namespace yver::serve

#endif  // YVER_SERVE_WAL_H_
