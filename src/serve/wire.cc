#include "serve/wire.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace yver::serve::wire {

namespace {

// Little-endian primitives, written byte-by-byte so the codec is
// byte-order independent (the determinism contract is about bytes on the
// wire, not host memory layout).

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

/// Bounds-checked sequential reader over a frame payload. Every Read*
/// returns false once the payload is exhausted; callers bail out with one
/// typed DATA_LOSS instead of checking lengths at every field.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload)
      : p_(reinterpret_cast<const uint8_t*>(payload.data())),
        n_(payload.size()) {}

  bool ReadU8(uint8_t* v) {
    if (n_ - off_ < 1) return false;
    *v = p_[off_++];
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (n_ - off_ < 2) return false;
    *v = static_cast<uint16_t>(p_[off_] | (p_[off_ + 1] << 8));
    off_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (n_ - off_ < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(p_[off_ + i]) << (8 * i);
    off_ += 4;
    *v = r;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (n_ - off_ < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(p_[off_ + i]) << (8 * i);
    off_ += 8;
    *v = r;
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool ReadBytes(std::string* out, size_t len) {
    if (n_ - off_ < len) return false;
    out->assign(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return true;
  }

  size_t remaining() const { return n_ - off_; }
  bool Done() const { return off_ == n_; }

 private:
  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
};

util::Status Truncated(const char* what) {
  return util::Status::DataLoss(std::string("truncated ") + what +
                                " payload");
}

util::Status TrailingBytes(const char* what) {
  return util::Status::DataLoss(std::string(what) +
                                " payload has trailing bytes");
}

/// StatusCode <-> wire byte. The wire values are frozen independently of
/// the enum so reordering StatusCode can never silently change captures.
uint8_t StatusCodeToWire(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk: return 0;
    case util::StatusCode::kInvalidArgument: return 1;
    case util::StatusCode::kNotFound: return 2;
    case util::StatusCode::kOutOfRange: return 3;
    case util::StatusCode::kDataLoss: return 4;
    case util::StatusCode::kInternal: return 5;
    case util::StatusCode::kDeadlineExceeded: return 6;
    case util::StatusCode::kResourceExhausted: return 7;
    case util::StatusCode::kUnavailable: return 8;
  }
  return 5;  // unreachable; map to kInternal
}

bool StatusCodeFromWire(uint8_t byte, util::StatusCode* code) {
  switch (byte) {
    case 0: *code = util::StatusCode::kOk; return true;
    case 1: *code = util::StatusCode::kInvalidArgument; return true;
    case 2: *code = util::StatusCode::kNotFound; return true;
    case 3: *code = util::StatusCode::kOutOfRange; return true;
    case 4: *code = util::StatusCode::kDataLoss; return true;
    case 5: *code = util::StatusCode::kInternal; return true;
    case 6: *code = util::StatusCode::kDeadlineExceeded; return true;
    case 7: *code = util::StatusCode::kResourceExhausted; return true;
    case 8: *code = util::StatusCode::kUnavailable; return true;
    default: return false;
  }
}

// Frame types are versioned: v1 defined kQuery..kInfo, v2 added the
// append pair (v3/v4 added no types, only trailing payload fields). A frame
// whose version predates its own type is a protocol violation, not a
// forward-compat case.
bool KnownFrameType(uint8_t byte, uint8_t version) {
  uint8_t last = static_cast<uint8_t>(version >= 2 ? FrameType::kAppendAck
                                                   : FrameType::kInfo);
  return byte >= static_cast<uint8_t>(FrameType::kQuery) && byte <= last;
}

void PutQueryEcho(std::string* out, const Query& query) {
  PutU32(out, query.record);
  PutF64(out, query.certainty);
  PutU64(out, query.k);
  PutU8(out, static_cast<uint8_t>(query.granularity));
}

bool ReadQueryEcho(PayloadReader* r, Query* query, bool* bad_granularity) {
  uint64_t k = 0;
  uint8_t granularity = 0;
  *bad_granularity = false;
  if (!r->ReadU32(&query->record) || !r->ReadF64(&query->certainty) ||
      !r->ReadU64(&k) || !r->ReadU8(&granularity)) {
    return false;
  }
  query->k = static_cast<size_t>(k);
  if (granularity > static_cast<uint8_t>(Granularity::kEntity)) {
    *bad_granularity = true;
    return true;
  }
  query->granularity = static_cast<Granularity>(granularity);
  return true;
}

}  // namespace

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  out->reserve(out->size() + kHeaderSize + payload.size());
  PutU8(out, kMagic0);
  PutU8(out, kMagic1);
  PutU8(out, kVersion);
  PutU8(out, static_cast<uint8_t>(type));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

util::StatusOr<size_t> PeekFrameHeader(std::string_view buffer,
                                       FrameHeader* header) {
  if (buffer.size() < kHeaderSize) return size_t{0};
  const auto* p = reinterpret_cast<const uint8_t*>(buffer.data());
  if (p[0] != kMagic0 || p[1] != kMagic1) {
    return util::Status::DataLoss("bad frame magic");
  }
  uint8_t version = p[2];
  if (version == 0 || version > kVersion) {
    return util::Status::InvalidArgument(
        "unsupported wire version " + std::to_string(version) +
        " (this binary speaks <= " + std::to_string(kVersion) + ")");
  }
  if (!KnownFrameType(p[3], version)) {
    return util::Status::InvalidArgument(
        "unknown frame type " + std::to_string(p[3]) + " for version " +
        std::to_string(version));
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(p[4 + i]) << (8 * i);
  }
  if (length > kMaxFramePayload) {
    return util::Status::DataLoss("frame payload length " +
                                  std::to_string(length) +
                                  " exceeds the protocol maximum");
  }
  header->version = version;
  header->type = static_cast<FrameType>(p[3]);
  header->payload_length = length;
  return kHeaderSize;
}

util::StatusOr<size_t> ExtractFrame(std::string_view buffer, Frame* frame) {
  FrameHeader header;
  auto peeked = PeekFrameHeader(buffer, &header);
  if (!peeked.ok()) return peeked.status();
  if (*peeked == 0) return size_t{0};
  if (buffer.size() < kHeaderSize + header.payload_length) return size_t{0};
  frame->type = header.type;
  frame->version = header.version;
  frame->payload.assign(buffer.data() + kHeaderSize, header.payload_length);
  return kHeaderSize + header.payload_length;
}

// ---------------------------------------------------------------------------
// Query

void EncodeQuery(const Query& query, double deadline_ms, std::string* out) {
  std::string payload;
  payload.reserve(29);
  PutU32(&payload, query.record);
  PutF64(&payload, query.certainty);
  PutU64(&payload, query.k);
  PutU8(&payload, static_cast<uint8_t>(query.granularity));
  PutF64(&payload, deadline_ms);
  AppendFrame(FrameType::kQuery, payload, out);
}

util::StatusOr<DecodedQuery> DecodeQuery(const Frame& frame) {
  if (frame.type != FrameType::kQuery) {
    return util::Status::InvalidArgument("not a query frame");
  }
  PayloadReader r(frame.payload);
  DecodedQuery decoded;
  bool bad_granularity = false;
  uint64_t k = 0;
  uint8_t granularity = 0;
  if (!r.ReadU32(&decoded.query.record) ||
      !r.ReadF64(&decoded.query.certainty) || !r.ReadU64(&k) ||
      !r.ReadU8(&granularity) || !r.ReadF64(&decoded.deadline_ms)) {
    return Truncated("query");
  }
  if (!r.Done()) return TrailingBytes("query");
  decoded.query.k = static_cast<size_t>(k);
  if (granularity > static_cast<uint8_t>(Granularity::kEntity)) {
    bad_granularity = true;
  } else {
    decoded.query.granularity = static_cast<Granularity>(granularity);
  }
  if (bad_granularity) {
    return util::Status::InvalidArgument("unknown granularity " +
                                         std::to_string(granularity));
  }
  if (std::isnan(decoded.deadline_ms)) {
    return util::Status::InvalidArgument("query deadline is NaN");
  }
  // All-zero bits (= +0.0) is the "no deadline" sentinel; anything else is
  // a relative budget whose clock starts now, at decode time.
  if (std::bit_cast<uint64_t>(decoded.deadline_ms) != 0) {
    decoded.query.deadline = util::Deadline::AfterMillis(decoded.deadline_ms);
  }
  return decoded;
}

// ---------------------------------------------------------------------------
// Result / error

void EncodeResult(const util::StatusOr<QueryResult>& result,
                  std::string* out) {
  std::string payload;
  if (!result.ok()) {
    const util::Status& status = result.status();
    payload.reserve(3 + status.message().size());
    PutU8(&payload, StatusCodeToWire(status.code()));
    size_t len = std::min<size_t>(status.message().size(), 0xffff);
    PutU16(&payload, static_cast<uint16_t>(len));
    payload.append(status.message(), 0, len);
    AppendFrame(FrameType::kError, payload, out);
    return;
  }
  const QueryResult& r = *result;
  payload.reserve(22 + 8 + r.matches.size() * 24 + r.entity.size() * 4);
  uint8_t flags = r.degraded ? 1 : 0;
  PutU8(&payload, flags);
  PutQueryEcho(&payload, r.query);
  PutU32(&payload, static_cast<uint32_t>(r.matches.size()));
  for (const core::RankedMatch& m : r.matches) {
    PutU32(&payload, m.pair.a);
    PutU32(&payload, m.pair.b);
    PutF64(&payload, m.confidence);
    PutF64(&payload, m.block_score);
  }
  PutU32(&payload, static_cast<uint32_t>(r.entity.size()));
  for (data::RecordIdx member : r.entity) PutU32(&payload, member);
  PutU64(&payload, r.generation);  // v2: which snapshot answered
  AppendFrame(FrameType::kResult, payload, out);
}

util::StatusOr<QueryResult> DecodeResult(const Frame& frame) {
  if (frame.type == FrameType::kError) {
    PayloadReader r(frame.payload);
    uint8_t code_byte = 0;
    uint16_t len = 0;
    std::string message;
    if (!r.ReadU8(&code_byte) || !r.ReadU16(&len) ||
        !r.ReadBytes(&message, len)) {
      return Truncated("error");
    }
    if (!r.Done()) return TrailingBytes("error");
    util::StatusCode code;
    if (!StatusCodeFromWire(code_byte, &code) ||
        code == util::StatusCode::kOk) {
      return util::Status::InvalidArgument("unknown status code " +
                                           std::to_string(code_byte) +
                                           " in error frame");
    }
    return util::Status(code, std::move(message));
  }
  if (frame.type != FrameType::kResult) {
    return util::Status::InvalidArgument("not a result frame");
  }
  PayloadReader r(frame.payload);
  QueryResult result;
  uint8_t flags = 0;
  bool bad_granularity = false;
  if (!r.ReadU8(&flags) ||
      !ReadQueryEcho(&r, &result.query, &bad_granularity)) {
    return Truncated("result");
  }
  if (bad_granularity) {
    return util::Status::InvalidArgument(
        "unknown granularity in result echo");
  }
  if ((flags & ~uint8_t{1}) != 0) {
    return util::Status::InvalidArgument("unknown result flags");
  }
  result.degraded = (flags & 1) != 0;
  uint32_t match_count = 0;
  if (!r.ReadU32(&match_count)) return Truncated("result");
  if (r.remaining() < static_cast<size_t>(match_count) * 24) {
    return Truncated("result match list");
  }
  result.matches.reserve(match_count);
  for (uint32_t i = 0; i < match_count; ++i) {
    core::RankedMatch m;
    // RecordPair's ctor canonicalizes a <= b; read into locals so an
    // arbitrary (a, b) on the wire round-trips through the same ctor the
    // in-process path used.
    uint32_t a = 0, b = 0;
    if (!r.ReadU32(&a) || !r.ReadU32(&b) || !r.ReadF64(&m.confidence) ||
        !r.ReadF64(&m.block_score)) {
      return Truncated("result match list");
    }
    m.pair = data::RecordPair(a, b);
    result.matches.push_back(m);
  }
  uint32_t entity_count = 0;
  if (!r.ReadU32(&entity_count)) return Truncated("result");
  if (r.remaining() < static_cast<size_t>(entity_count) * 4) {
    return Truncated("result entity list");
  }
  result.entity.reserve(entity_count);
  for (uint32_t i = 0; i < entity_count; ++i) {
    uint32_t member = 0;
    if (!r.ReadU32(&member)) return Truncated("result entity list");
    result.entity.push_back(member);
  }
  if (frame.version >= 2) {
    if (!r.ReadU64(&result.generation)) return Truncated("result");
  } else {
    result.generation = 1;  // a v1 server only ever serves generation 1
  }
  if (!r.Done()) return TrailingBytes("result");
  return result;
}

// ---------------------------------------------------------------------------
// Server info

void EncodeInfoRequest(std::string* out) {
  AppendFrame(FrameType::kInfoRequest, {}, out);
}

void EncodeInfo(const ServerInfo& info, std::string* out) {
  std::string payload;
  payload.reserve(3 * 8 + 10 * 8 + 4 + kServiceLatencyBuckets * 8);
  PutU64(&payload, info.num_records);
  PutU64(&payload, info.num_matches);
  PutU64(&payload, info.checksum);
  PutU64(&payload, info.metrics.queries);
  PutU64(&payload, info.metrics.errors);
  PutU64(&payload, info.metrics.cache_hits);
  PutU64(&payload, info.metrics.cache_misses);
  PutU64(&payload, info.metrics.shed);
  PutU64(&payload, info.metrics.deadline_exceeded);
  PutU64(&payload, info.metrics.degraded);
  PutF64(&payload, info.metrics.total_latency_ms);
  PutU32(&payload, static_cast<uint32_t>(
                       info.metrics.latency_histogram_ns.size()));
  for (uint64_t bucket : info.metrics.latency_histogram_ns) {
    PutU64(&payload, bucket);
  }
  // v2: live-index gauges, appended so a v1 decoder's layout is a prefix.
  PutU64(&payload, info.metrics.generation);
  PutU64(&payload, info.metrics.publishes);
  PutU64(&payload, info.metrics.pinned_readers);
  // v3: staleness-bound eviction counter, appended likewise.
  PutU64(&payload, info.metrics.evicted_stale);
  // v4: connection-lifecycle gauges (DESIGN.md §15), appended likewise.
  PutU64(&payload, info.net.open_connections);
  PutU64(&payload, info.net.paused_reads);
  PutU64(&payload, info.net.disconnects_idle);
  PutU64(&payload, info.net.disconnects_slowloris);
  PutU64(&payload, info.net.disconnects_oversize);
  PutU64(&payload, info.net.disconnects_rate_limited);
  PutU64(&payload, info.net.disconnects_write_stall);
  PutU64(&payload, info.net.rate_limited_frames);
  AppendFrame(FrameType::kInfo, payload, out);
}

util::StatusOr<ServerInfo> DecodeInfo(const Frame& frame) {
  if (frame.type != FrameType::kInfo) {
    return util::Status::InvalidArgument("not an info frame");
  }
  PayloadReader r(frame.payload);
  ServerInfo info;
  uint32_t buckets = 0;
  if (!r.ReadU64(&info.num_records) || !r.ReadU64(&info.num_matches) ||
      !r.ReadU64(&info.checksum) || !r.ReadU64(&info.metrics.queries) ||
      !r.ReadU64(&info.metrics.errors) ||
      !r.ReadU64(&info.metrics.cache_hits) ||
      !r.ReadU64(&info.metrics.cache_misses) ||
      !r.ReadU64(&info.metrics.shed) ||
      !r.ReadU64(&info.metrics.deadline_exceeded) ||
      !r.ReadU64(&info.metrics.degraded) ||
      !r.ReadF64(&info.metrics.total_latency_ms) || !r.ReadU32(&buckets)) {
    return Truncated("info");
  }
  if (buckets > 1024 || r.remaining() < static_cast<size_t>(buckets) * 8) {
    return Truncated("info histogram");
  }
  info.metrics.latency_histogram_ns.reserve(buckets);
  for (uint32_t i = 0; i < buckets; ++i) {
    uint64_t bucket = 0;
    if (!r.ReadU64(&bucket)) return Truncated("info histogram");
    info.metrics.latency_histogram_ns.push_back(bucket);
  }
  if (frame.version >= 2) {
    if (!r.ReadU64(&info.metrics.generation) ||
        !r.ReadU64(&info.metrics.publishes) ||
        !r.ReadU64(&info.metrics.pinned_readers)) {
      return Truncated("info");
    }
  } else {
    info.metrics.generation = 1;
    info.metrics.publishes = 0;
    info.metrics.pinned_readers = 0;
  }
  if (frame.version >= 3) {
    if (!r.ReadU64(&info.metrics.evicted_stale)) return Truncated("info");
  } else {
    info.metrics.evicted_stale = 0;
  }
  if (frame.version >= 4) {
    if (!r.ReadU64(&info.net.open_connections) ||
        !r.ReadU64(&info.net.paused_reads) ||
        !r.ReadU64(&info.net.disconnects_idle) ||
        !r.ReadU64(&info.net.disconnects_slowloris) ||
        !r.ReadU64(&info.net.disconnects_oversize) ||
        !r.ReadU64(&info.net.disconnects_rate_limited) ||
        !r.ReadU64(&info.net.disconnects_write_stall) ||
        !r.ReadU64(&info.net.rate_limited_frames)) {
      return Truncated("info");
    }
  } else {
    info.net = NetGauges{};
  }
  if (!r.Done()) return TrailingBytes("info");
  return info;
}

// ---------------------------------------------------------------------------
// Live ingest (v2)

void EncodeAppend(const data::Record& record, std::string* out) {
  std::string payload;
  payload.reserve(31 + record.entries().size() * 12);
  PutU64(&payload, record.book_id);
  PutU32(&payload, record.source_id);
  PutU8(&payload, static_cast<uint8_t>(record.source_kind));
  PutU64(&payload, std::bit_cast<uint64_t>(record.entity_id));
  PutU64(&payload, std::bit_cast<uint64_t>(record.family_id));
  PutU16(&payload, static_cast<uint16_t>(
                       std::min<size_t>(record.entries().size(), 0xffff)));
  size_t n = std::min<size_t>(record.entries().size(), 0xffff);
  for (size_t i = 0; i < n; ++i) {
    const data::Record::Entry& entry = record.entries()[i];
    PutU8(&payload, static_cast<uint8_t>(entry.attr));
    size_t len = std::min<size_t>(entry.value.size(), 0xffff);
    PutU16(&payload, static_cast<uint16_t>(len));
    payload.append(entry.value, 0, len);
  }
  AppendFrame(FrameType::kAppendRequest, payload, out);
}

util::StatusOr<data::Record> DecodeAppend(const Frame& frame) {
  if (frame.type != FrameType::kAppendRequest) {
    return util::Status::InvalidArgument("not an append frame");
  }
  PayloadReader r(frame.payload);
  data::Record record;
  uint8_t source_kind = 0;
  uint64_t entity_bits = 0;
  uint64_t family_bits = 0;
  uint16_t num_entries = 0;
  if (!r.ReadU64(&record.book_id) || !r.ReadU32(&record.source_id) ||
      !r.ReadU8(&source_kind) || !r.ReadU64(&entity_bits) ||
      !r.ReadU64(&family_bits) || !r.ReadU16(&num_entries)) {
    return Truncated("append");
  }
  if (source_kind > static_cast<uint8_t>(data::SourceKind::kVictimList)) {
    return util::Status::InvalidArgument("unknown source kind " +
                                         std::to_string(source_kind));
  }
  record.source_kind = static_cast<data::SourceKind>(source_kind);
  record.entity_id = std::bit_cast<int64_t>(entity_bits);
  record.family_id = std::bit_cast<int64_t>(family_bits);
  for (uint16_t i = 0; i < num_entries; ++i) {
    uint8_t attr = 0;
    uint16_t len = 0;
    std::string value;
    if (!r.ReadU8(&attr) || !r.ReadU16(&len) || !r.ReadBytes(&value, len)) {
      return Truncated("append entry list");
    }
    if (attr >= data::kNumAttributes) {
      return util::Status::InvalidArgument("out-of-schema attribute " +
                                           std::to_string(attr));
    }
    // Record::Add drops empty values silently; that would make the decoded
    // record differ from the encoded one, so reject them typed instead.
    if (value.empty()) {
      return util::Status::InvalidArgument("empty attribute value");
    }
    record.Add(static_cast<data::AttributeId>(attr), std::move(value));
  }
  if (!r.Done()) return TrailingBytes("append");
  return record;
}

void EncodeAppendAck(const AppendAck& ack, std::string* out) {
  std::string payload;
  payload.reserve(25);
  PutU64(&payload, ack.record_idx);
  PutU64(&payload, ack.generation);
  // v3: durability of the ack, appended so a v2 decoder's layout is a
  // prefix.
  PutU8(&payload, ack.durable ? 1 : 0);
  PutU64(&payload, ack.wal_sequence);
  AppendFrame(FrameType::kAppendAck, payload, out);
}

util::StatusOr<AppendAck> DecodeAppendAck(const Frame& frame) {
  if (frame.type != FrameType::kAppendAck) {
    return util::Status::InvalidArgument("not an append ack frame");
  }
  PayloadReader r(frame.payload);
  AppendAck ack;
  if (!r.ReadU64(&ack.record_idx) || !r.ReadU64(&ack.generation)) {
    return Truncated("append ack");
  }
  if (frame.version >= 3) {
    uint8_t durable = 0;
    if (!r.ReadU8(&durable) || !r.ReadU64(&ack.wal_sequence)) {
      return Truncated("append ack");
    }
    if (durable > 1) {
      return util::Status::InvalidArgument("unknown durable flag " +
                                           std::to_string(durable));
    }
    ack.durable = durable != 0;
  } else {
    ack.durable = false;
    ack.wal_sequence = 0;
  }
  if (!r.Done()) return TrailingBytes("append ack");
  return ack;
}

}  // namespace yver::serve::wire
