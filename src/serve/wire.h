#ifndef YVER_SERVE_WIRE_H_
#define YVER_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "data/record.h"
#include "serve/query.h"
#include "serve/resolution_service.h"
#include "util/status.h"

namespace yver::serve::wire {

/// The transport-neutral serialization layer of the serving protocol
/// (DESIGN.md §12): one typed codec shared by the TCP front end
/// (serve::net), the record/replay capture format, and any future
/// transport. Everything on the wire is a length-prefixed frame:
///
///   offset 0  magic      0x59 'Y'
///   offset 1  magic      0x57 'W'
///   offset 2  version    kVersion (compat rules below)
///   offset 3  frame type FrameType
///   offset 4  payload length, uint32 little-endian
///   offset 8  payload (length bytes)
///
/// All integers are little-endian; doubles travel as their IEEE-754 bit
/// patterns (bit-exact round-trip, NaN payloads included). Malformed input
/// always yields a typed util::Status — the decoder never crashes, never
/// over-reads, and never allocates more than kMaxFramePayload.
///
/// Version/compat rules: a decoder accepts frames with version in
/// [1, kVersion] (payload layouts are append-only within a frame type, so
/// an old capture stays replayable against a newer binary); versions
/// beyond kVersion are rejected with INVALID_ARGUMENT ("speak an older
/// dialect, never guess a newer one").
///
/// Version history:
///   v1 — queries, results, errors, info.
///   v2 — live index updates: kResult gains a trailing generation field,
///        kInfo gains generation/publishes/pinned_readers, and the
///        kAppendRequest/kAppendAck frames (record ingest) are added.
///        v1 payloads decode with generation defaulted to 1 (the only
///        generation a v1 server ever serves).
///   v3 — durable ingest: kAppendAck gains trailing durable/wal_sequence
///        fields (an ack from a WAL-backed server means the record is
///        fsync'd, DESIGN.md §14), kInfo gains evicted_stale (the
///        serve-stale degradation bound). No new frame types; v2 payloads
///        decode with durable = false and evicted_stale = 0.
///   v4 — connection-lifecycle defense (DESIGN.md §15): kInfo gains the
///        NetGauges block — open connections, paused reads, disconnect
///        counts by reason (idle, slowloris, oversize, rate-limited,
///        write-stall), and rate-limited frame count. No new frame types;
///        pre-v4 payloads decode with all gauges zero.

inline constexpr uint8_t kMagic0 = 0x59;  // 'Y'
inline constexpr uint8_t kMagic1 = 0x57;  // 'W'
inline constexpr uint8_t kVersion = 4;
inline constexpr size_t kHeaderSize = 8;
/// Upper bound on a single frame payload: a decode of a hostile length
/// field fails typed instead of attempting a huge allocation.
inline constexpr size_t kMaxFramePayload = 16u << 20;

enum class FrameType : uint8_t {
  kQuery = 1,          // client -> server: one serve::Query
  kResult = 2,         // server -> client: the OK answer to a query
  kError = 3,          // server -> client: a typed non-OK util::Status
  kInfoRequest = 4,    // client -> server: corpus + metrics snapshot request
  kInfo = 5,           // server -> client: ServerInfo
  kAppendRequest = 6,  // client -> server: one data::Record to ingest (v2)
  kAppendAck = 7,      // server -> client: assigned index + generation (v2)
};

/// One decoded frame: the type plus the raw payload bytes. The payload is
/// owned so a frame outlives the connection buffer it was parsed from.
struct Frame {
  FrameType type = FrameType::kQuery;
  uint8_t version = kVersion;
  std::string payload;
};

/// Appends a complete frame (header + payload) to `out`.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);

/// The fixed fields of one frame header, parsed without touching payload.
struct FrameHeader {
  uint8_t version = kVersion;
  FrameType type = FrameType::kQuery;
  uint32_t payload_length = 0;
};

/// Validates and parses just the 8-byte header at the start of `buffer`.
/// Returns 0 when fewer than kHeaderSize bytes are available (read more
/// and retry), kHeaderSize with `*header` filled when the header is
/// well-formed, or the typed errors ExtractFrame gives for bad magic, an
/// unsupported version, an unknown type, or a declared length beyond
/// kMaxFramePayload. This is the hostile-input gate: callers learn the
/// declared payload length — and can reject it against their own tighter
/// caps — BEFORE reserving a single byte of payload buffer.
util::StatusOr<size_t> PeekFrameHeader(std::string_view buffer,
                                       FrameHeader* header);

/// Tries to parse one frame from the start of `buffer`. Returns the number
/// of bytes consumed (header + payload) with `*frame` filled, or 0 when
/// the buffer holds only a prefix of a frame (read more and retry — the
/// partial-read half of the protocol). Bad magic, an unsupported version,
/// an unknown frame type, or an oversized length field are typed errors:
/// the connection is poisoned and must be closed.
util::StatusOr<size_t> ExtractFrame(std::string_view buffer, Frame* frame);

// ---------------------------------------------------------------------------
// Query

/// A query as it travels: the semantic fields of serve::Query plus the
/// deadline as a relative millisecond budget (a steady-clock time_point is
/// meaningless across machines). `deadline_ms` encodes as its f64 bit
/// pattern; all-zero bits mean "no deadline". The decoder materializes the
/// budget into `query.deadline` at decode time, which is what propagates a
/// wire deadline into the service's admission/compute checks.
struct DecodedQuery {
  Query query;
  double deadline_ms = 0.0;  // 0 = infinite
};

/// Appends a kQuery frame for `query` with the given millisecond budget
/// (0 = none). The query's own `deadline` member is ignored — budgets are
/// wire metadata, exactly like Query::operator== treats them.
void EncodeQuery(const Query& query, double deadline_ms, std::string* out);

/// Decodes a kQuery frame. DATA_LOSS on a payload size mismatch,
/// INVALID_ARGUMENT on an unknown granularity or a NaN deadline. A NaN
/// certainty decodes fine and is rejected by serve::ValidateQuery
/// server-side, so the client gets the same typed error the in-process
/// API gives.
util::StatusOr<DecodedQuery> DecodeQuery(const Frame& frame);

// ---------------------------------------------------------------------------
// Result / error

/// Appends the answer to a query: a kResult frame when `result` is OK, a
/// kError frame (status code + message) otherwise. The result encoding
/// carries the semantic query echo, the degraded flag, and the
/// matches/entity payload — but NOT `from_cache` (server-side
/// observability, not part of the answer; excluding it is what makes wire
/// responses byte-equal across cache states and server thread counts).
void EncodeResult(const util::StatusOr<QueryResult>& result,
                  std::string* out);

/// Decodes a kResult or kError frame into exactly what the in-process
/// ResolutionService::QueryRecord would have returned: the QueryResult on
/// kResult, the typed Status on kError. DATA_LOSS on truncated or
/// inconsistent payloads, INVALID_ARGUMENT on an unknown status code.
util::StatusOr<QueryResult> DecodeResult(const Frame& frame);

// ---------------------------------------------------------------------------
// Server info

/// v4: connection-lifecycle gauges from the TCP front end (DESIGN.md §15)
/// — how many peers are connected, how many have reads paused for
/// backpressure, and why hostile ones were disconnected. The disconnect
/// counters are the observable half of the defense layer's typed-reason
/// taxonomy; the chaos harness asserts each adversary mode lands in the
/// right one.
struct NetGauges {
  uint64_t open_connections = 0;   // live (not yet reaped) connections
  uint64_t paused_reads = 0;       // connections with EPOLLIN deregistered
  uint64_t disconnects_idle = 0;
  uint64_t disconnects_slowloris = 0;
  uint64_t disconnects_oversize = 0;
  uint64_t disconnects_rate_limited = 0;
  uint64_t disconnects_write_stall = 0;
  uint64_t rate_limited_frames = 0;  // frames answered RESOURCE_EXHAUSTED
};

/// Corpus identity plus a ServiceMetrics snapshot: what a load generator
/// needs to shape a workload (record count) and report the server-side
/// latency histogram without a side channel.
struct ServerInfo {
  uint64_t num_records = 0;
  uint64_t num_matches = 0;
  uint64_t checksum = 0;
  ServiceMetrics metrics;
  NetGauges net;  // v4; zero when decoded from a pre-v4 frame
};

/// Appends a kInfoRequest frame (empty payload).
void EncodeInfoRequest(std::string* out);

/// Appends a kInfo frame for `info`.
void EncodeInfo(const ServerInfo& info, std::string* out);

/// Decodes a kInfo frame. DATA_LOSS on size mismatch. A v1 payload
/// decodes with metrics.generation = 1 and publishes/pinned_readers = 0;
/// a pre-v3 payload decodes with metrics.evicted_stale = 0; a pre-v4
/// payload decodes with every NetGauges field zero.
util::StatusOr<ServerInfo> DecodeInfo(const Frame& frame);

// ---------------------------------------------------------------------------
// Live ingest (v2)

/// The server's answer to a kAppendRequest: the record index the appended
/// report was assigned (it becomes queryable at that index once the
/// builder publishes) and the generation being served at ack time — the
/// client polls Info until the generation advances past this to know the
/// record is live.
struct AppendAck {
  uint64_t record_idx = 0;
  uint64_t generation = 0;
  /// v3: true when the server wrote the record through a write-ahead log
  /// before acking — this ack survives a server crash (DESIGN.md §14). A
  /// v2 ack (or a server running without --wal-dir) decodes as false:
  /// the record is enqueued but a crash before the next snapshot loses it.
  bool durable = false;
  /// v3: the WAL sequence the record occupies when durable (1-based;
  /// 0 when not durable). Mostly diagnostic — the record_idx is the
  /// queryable identity — but lets a client correlate acks with WAL
  /// segment files during recovery drills.
  uint64_t wal_sequence = 0;
};

/// Appends a kAppendRequest frame carrying one report: source metadata
/// plus the raw (attribute, value) entries. Values are length-prefixed
/// bytes, entries travel in insertion order (the item-interning sequence
/// depends on it, so the order is part of the determinism contract).
void EncodeAppend(const data::Record& record, std::string* out);

/// Decodes a kAppendRequest frame. DATA_LOSS on truncation or trailing
/// bytes, INVALID_ARGUMENT on an unknown source kind, an out-of-schema
/// attribute id, or an empty value (Record::Add would silently drop it,
/// breaking the round trip — reject instead).
util::StatusOr<data::Record> DecodeAppend(const Frame& frame);

/// Appends a kAppendAck frame.
void EncodeAppendAck(const AppendAck& ack, std::string* out);

/// Decodes a kAppendAck frame. DATA_LOSS on size mismatch. A v2 payload
/// decodes with durable = false and wal_sequence = 0.
util::StatusOr<AppendAck> DecodeAppendAck(const Frame& frame);

}  // namespace yver::serve::wire

#endif  // YVER_SERVE_WIRE_H_
