#include "synth/gazetteer.h"

#include <algorithm>
#include <memory>

#include "util/check.h"

namespace yver::synth {

namespace {

std::vector<Place> PolandCities() {
  return {
      {"Warszawa", "Warszawa", "Mazowieckie", "Poland", {52.23, 21.01}},
      {"Lodz", "Lodz", "Lodzkie", "Poland", {51.76, 19.46}},
      {"Krakow", "Krakow", "Malopolskie", "Poland", {50.06, 19.94}},
      {"Lublin", "Lublin", "Lubelskie", "Poland", {51.25, 22.57}},
      {"Lwow", "Lwow", "Lwowskie", "Poland", {49.84, 24.03}},
      {"Bialystok", "Bialystok", "Bialostockie", "Poland", {53.13, 23.16}},
      {"Wilno", "Wilno", "Wilenskie", "Poland", {54.69, 25.28}},
      {"Lubaczow", "Lubaczow", "Lwowskie", "Poland", {50.16, 23.12}},
      {"Antopol", "Kobryn", "Polesie", "Poland", {52.20, 24.78}},
      {"Pinsk", "Pinsk", "Polesie", "Poland", {52.11, 26.10}},
      {"Radom", "Radom", "Kieleckie", "Poland", {51.40, 21.15}},
      {"Czestochowa", "Czestochowa", "Kieleckie", "Poland", {50.81, 19.12}},
      {"Przemysl", "Przemysl", "Lwowskie", "Poland", {49.78, 22.77}},
      {"Tarnow", "Tarnow", "Krakowskie", "Poland", {50.01, 20.99}},
      {"Grodno", "Grodno", "Bialostockie", "Poland", {53.68, 23.83}},
      {"Kielce", "Kielce", "Kieleckie", "Poland", {50.87, 20.63}},
  };
}

std::vector<Place> ItalyCities() {
  return {
      {"Torino", "Torino", "Piemonte", "Italy", {45.07, 7.69}},
      {"Turin", "Torino", "Piemonte", "Italy", {45.07, 7.69}},
      {"Moncalieri", "Torino", "Piemonte", "Italy", {45.00, 7.68}},
      {"Cuorgne", "Torino", "Piemonte", "Italy", {45.39, 7.65}},
      {"Canischio", "Torino", "Piemonte", "Italy", {45.37, 7.60}},
      {"Milano", "Milano", "Lombardia", "Italy", {45.46, 9.19}},
      {"Roma", "Roma", "Lazio", "Italy", {41.90, 12.50}},
      {"Firenze", "Firenze", "Toscana", "Italy", {43.77, 11.26}},
      {"Venezia", "Venezia", "Veneto", "Italy", {45.44, 12.32}},
      {"Trieste", "Trieste", "Friuli", "Italy", {45.65, 13.78}},
      {"Genova", "Genova", "Liguria", "Italy", {44.41, 8.93}},
      {"Livorno", "Livorno", "Toscana", "Italy", {43.55, 10.31}},
      {"Ferrara", "Ferrara", "Emilia", "Italy", {44.84, 11.62}},
      {"Ancona", "Ancona", "Marche", "Italy", {43.62, 13.51}},
      {"Casale", "Alessandria", "Piemonte", "Italy", {45.13, 8.45}},
      {"Asti", "Asti", "Piemonte", "Italy", {44.90, 8.21}},
  };
}

std::vector<Place> HungaryCities() {
  return {
      {"Budapest", "Pest", "Pest", "Hungary", {47.50, 19.04}},
      {"Debrecen", "Hajdu", "Hajdu", "Hungary", {47.53, 21.63}},
      {"Szeged", "Csongrad", "Csongrad", "Hungary", {46.25, 20.15}},
      {"Miskolc", "Borsod", "Borsod", "Hungary", {48.10, 20.78}},
      {"Pecs", "Baranya", "Baranya", "Hungary", {46.07, 18.23}},
      {"Gyor", "Gyor", "Gyor", "Hungary", {47.69, 17.63}},
      {"Kassa", "Abauj", "Felvidek", "Hungary", {48.72, 21.26}},
      {"Nagyvarad", "Bihar", "Partium", "Hungary", {47.07, 21.93}},
      {"Szatmar", "Szatmar", "Partium", "Hungary", {47.79, 22.89}},
      {"Munkacs", "Bereg", "Karpatalja", "Hungary", {48.44, 22.72}},
      {"Ungvar", "Ung", "Karpatalja", "Hungary", {48.62, 22.30}},
      {"Sopron", "Sopron", "Sopron", "Hungary", {47.68, 16.58}},
  };
}

std::vector<Place> GermanyCities() {
  return {
      {"Berlin", "Berlin", "Brandenburg", "Germany", {52.52, 13.40}},
      {"Frankfurt", "Frankfurt", "Hessen", "Germany", {50.11, 8.68}},
      {"Hamburg", "Hamburg", "Hamburg", "Germany", {53.55, 9.99}},
      {"Koeln", "Koeln", "Rheinland", "Germany", {50.94, 6.96}},
      {"Muenchen", "Muenchen", "Bayern", "Germany", {48.14, 11.58}},
      {"Leipzig", "Leipzig", "Sachsen", "Germany", {51.34, 12.37}},
      {"Breslau", "Breslau", "Schlesien", "Germany", {51.11, 17.03}},
      {"Nuernberg", "Nuernberg", "Bayern", "Germany", {49.45, 11.08}},
      {"Stuttgart", "Stuttgart", "Wuerttemberg", "Germany", {48.78, 9.18}},
      {"Mannheim", "Mannheim", "Baden", "Germany", {49.49, 8.47}},
      {"Wuerzburg", "Wuerzburg", "Bayern", "Germany", {49.79, 9.93}},
      {"Dresden", "Dresden", "Sachsen", "Germany", {51.05, 13.74}},
  };
}

std::vector<Place> GreeceCities() {
  return {
      {"Rhodes", "Rhodes", "Dodecanese", "Greece", {36.43, 28.22}},
      {"Salonika", "Salonika", "Macedonia", "Greece", {40.64, 22.94}},
      {"Athens", "Attica", "Attica", "Greece", {37.98, 23.73}},
      {"Ioannina", "Ioannina", "Epirus", "Greece", {39.66, 20.85}},
      {"Kavala", "Kavala", "Macedonia", "Greece", {40.94, 24.41}},
      {"Corfu", "Corfu", "Ionian", "Greece", {39.62, 19.92}},
      {"Kos", "Kos", "Dodecanese", "Greece", {36.89, 27.29}},
      {"Volos", "Magnesia", "Thessaly", "Greece", {39.36, 22.94}},
      {"Larissa", "Larissa", "Thessaly", "Greece", {39.64, 22.42}},
      {"Drama", "Drama", "Macedonia", "Greece", {41.15, 24.15}},
  };
}

std::vector<Place> RomaniaCities() {
  return {
      {"Iasi", "Iasi", "Moldova", "Romania", {47.16, 27.59}},
      {"Bucuresti", "Ilfov", "Muntenia", "Romania", {44.43, 26.10}},
      {"Cernauti", "Cernauti", "Bukovina", "Romania", {48.29, 25.94}},
      {"Chisinau", "Lapusna", "Bessarabia", "Romania", {47.01, 28.86}},
      {"Botosani", "Botosani", "Moldova", "Romania", {47.75, 26.67}},
      {"Galati", "Covurlui", "Moldova", "Romania", {45.44, 28.05}},
      {"Cluj", "Cluj", "Transylvania", "Romania", {46.77, 23.60}},
      {"Timisoara", "Timis", "Banat", "Romania", {45.76, 21.23}},
      {"Suceava", "Suceava", "Bukovina", "Romania", {47.65, 26.26}},
      {"Dorohoi", "Dorohoi", "Moldova", "Romania", {47.96, 26.40}},
      {"Radauti", "Radauti", "Bukovina", "Romania", {47.84, 25.92}},
      {"Balti", "Balti", "Bessarabia", "Romania", {47.76, 27.93}},
  };
}

std::vector<Place> WartimeDestinations() {
  return {
      {"Auschwitz", "Oswiecim", "Krakowskie", "Poland", {50.03, 19.20}},
      {"Sobibor", "Wlodawa", "Lubelskie", "Poland", {51.45, 23.59}},
      {"Treblinka", "Sokolow", "Mazowieckie", "Poland", {52.63, 22.05}},
      {"Mauthausen", "Perg", "Oberoesterreich", "Austria", {48.26, 14.52}},
      {"Drancy", "Seine", "IleDeFrance", "France", {48.92, 2.45}},
      {"Theresienstadt", "Litomerice", "Bohemia", "Czechoslovakia",
       {50.51, 14.15}},
      {"Bergen-Belsen", "Celle", "Niedersachsen", "Germany", {52.76, 9.91}},
      {"Dachau", "Dachau", "Bayern", "Germany", {48.27, 11.47}},
      {"Transnistria", "Moghilev", "Transnistria", "Ukraine", {48.45, 27.80}},
      {"Majdanek", "Lublin", "Lubelskie", "Poland", {51.22, 22.60}},
      {"Stutthof", "Danzig", "Pomorze", "Poland", {54.33, 19.15}},
      {"Ravensbrueck", "Templin", "Brandenburg", "Germany", {53.19, 13.17}},
  };
}

}  // namespace

Gazetteer::Gazetteer() {
  cities_.resize(kNumRegions);
  cities_[static_cast<size_t>(Region::kPoland)] = PolandCities();
  cities_[static_cast<size_t>(Region::kItaly)] = ItalyCities();
  cities_[static_cast<size_t>(Region::kHungary)] = HungaryCities();
  cities_[static_cast<size_t>(Region::kGermany)] = GermanyCities();
  cities_[static_cast<size_t>(Region::kGreece)] = GreeceCities();
  cities_[static_cast<size_t>(Region::kRomania)] = RomaniaCities();
  wartime_ = WartimeDestinations();
}

const std::vector<Place>& Gazetteer::CitiesOf(Region region) const {
  return cities_[static_cast<size_t>(region)];
}

const std::vector<Place>& Gazetteer::WartimePlaces() const {
  return wartime_;
}

const Place& Gazetteer::SampleCity(Region region, util::Rng& rng) const {
  const auto& cities = CitiesOf(region);
  return cities[rng.Zipf(cities.size(), 0.9)];
}

const Place& Gazetteer::SampleWartime(util::Rng& rng) const {
  return wartime_[rng.Zipf(wartime_.size(), 0.8)];
}

const Place& Gazetteer::SampleNearby(Region region, const Place& home,
                                     util::Rng& rng) const {
  const auto& cities = CitiesOf(region);
  // Pick among the 4 closest cities (including home itself).
  std::vector<std::pair<double, size_t>> by_distance;
  by_distance.reserve(cities.size());
  for (size_t i = 0; i < cities.size(); ++i) {
    by_distance.emplace_back(geo::HaversineKm(home.point, cities[i].point),
                             i);
  }
  std::sort(by_distance.begin(), by_distance.end());
  size_t k = std::min<size_t>(4, by_distance.size());
  return cities[by_distance[static_cast<size_t>(
                                rng.UniformInt(0, static_cast<int64_t>(k) - 1))]
                    .second];
}

std::optional<geo::GeoPoint> Gazetteer::Lookup(std::string_view city) const {
  for (const auto& region_cities : cities_) {
    for (const auto& place : region_cities) {
      if (place.city == city) return place.point;
    }
  }
  for (const auto& place : wartime_) {
    if (place.city == city) return place.point;
  }
  return std::nullopt;
}

data::GeoResolver Gazetteer::MakeGeoResolver() const {
  return [this](data::AttributeId, std::string_view value) {
    return Lookup(value);
  };
}

data::GeoResolver Gazetteer::MakeOwnedGeoResolver() {
  auto gazetteer = std::make_shared<const Gazetteer>();
  return [gazetteer](data::AttributeId, std::string_view value) {
    return gazetteer->Lookup(value);
  };
}

}  // namespace yver::synth
