#ifndef YVER_SYNTH_GAZETTEER_H_
#define YVER_SYNTH_GAZETTEER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/item_dictionary.h"
#include "geo/geo.h"
#include "synth/name_pool.h"
#include "util/rng.h"

namespace yver::synth {

/// A fully qualified place: the four components of the Names Project place
/// hierarchy plus coordinates.
struct Place {
  std::string city;
  std::string county;
  std::string region;
  std::string country;
  geo::GeoPoint point;
};

/// A small geo-coded gazetteer of pre-war Jewish communities across the
/// six sampling regions, plus wartime destination places (ghettos, camps).
/// Stands in for the Yad Vashem place equivalence tables; coordinates are
/// approximate but internally consistent so PlaceXGeoDistance behaves like
/// the paper's (e.g. Turin-Moncalieri ≈ 9 km).
class Gazetteer {
 public:
  Gazetteer();

  /// Cities of a region.
  const std::vector<Place>& CitiesOf(Region region) const;

  /// Wartime destinations (deportation/death places), shared across
  /// regions.
  const std::vector<Place>& WartimePlaces() const;

  /// Samples a home city of a region (Zipf-skewed toward the large
  /// communities).
  const Place& SampleCity(Region region, util::Rng& rng) const;

  /// Samples a wartime destination.
  const Place& SampleWartime(util::Rng& rng) const;

  /// Samples a nearby city in the same region (for plausible
  /// permanent-vs-birth place divergence); may return `home` itself.
  const Place& SampleNearby(Region region, const Place& home,
                            util::Rng& rng) const;

  /// Coordinates of a city by (possibly variant) name; exact match only.
  std::optional<geo::GeoPoint> Lookup(std::string_view city) const;

  /// A data::GeoResolver backed by this gazetteer (resolves city-class
  /// attributes). The gazetteer must outlive the resolver.
  data::GeoResolver MakeGeoResolver() const;

  /// A self-owning GeoResolver over a fresh gazetteer: the returned
  /// callable keeps its gazetteer alive for its own lifetime, so it is
  /// safe to hand to long-lived consumers — a serving resolver used from
  /// a background thread — with no scoping contract to get wrong.
  static data::GeoResolver MakeOwnedGeoResolver();

 private:
  std::vector<std::vector<Place>> cities_;  // by region
  std::vector<Place> wartime_;
};

}  // namespace yver::synth

#endif  // YVER_SYNTH_GAZETTEER_H_
