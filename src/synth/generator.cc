#include "synth/generator.h"

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/check.h"

namespace yver::synth {

namespace {

using data::AttributeId;
using data::Record;

// Reports-per-person distribution; archival experts bound duplicate sets
// at eight records (§4.1).
size_t SampleReportCount(util::Rng& rng) {
  static const std::vector<double> kWeights = {0.55, 0.22, 0.12, 0.06,
                                               0.03, 0.012, 0.006, 0.002};
  return rng.PickWeighted(kWeights) + 1;
}

// Applies the name-noise pipeline to a name.
std::string NoisyName(const std::string& name, const NoiseConfig& noise,
                      util::Rng& rng) {
  std::string out = name;
  if (rng.Bernoulli(noise.nickname)) out = NamePool::Nickname(out, rng);
  if (rng.Bernoulli(noise.transliteration)) {
    out = NamePool::TransliterationVariant(out, rng);
  }
  if (rng.Bernoulli(noise.clerical)) out = NamePool::ClericalError(out, rng);
  return out;
}

// Emits the components of a place the source's layout records; the city
// may get a spelling variant (which then no longer geo-resolves — as in
// the real data).
void EmitPlace(Record* record, data::PlaceType type, const Place& place,
               const Source& source, const NoiseConfig& noise,
               util::Rng& rng) {
  if (HasPlacePart(source, data::PlacePart::kCity)) {
    std::string city = place.city;
    if (rng.Bernoulli(noise.city_variant)) {
      city = NamePool::TransliterationVariant(city, rng);
    }
    record->Add(data::PlaceAttribute(type, data::PlacePart::kCity),
                std::move(city));
  }
  if (HasPlacePart(source, data::PlacePart::kCounty)) {
    record->Add(data::PlaceAttribute(type, data::PlacePart::kCounty),
                place.county);
  }
  if (HasPlacePart(source, data::PlacePart::kRegion)) {
    record->Add(data::PlaceAttribute(type, data::PlacePart::kRegion),
                place.region);
  }
  if (HasPlacePart(source, data::PlacePart::kCountry)) {
    record->Add(data::PlaceAttribute(type, data::PlacePart::kCountry),
                place.country);
  }
}

// Emits one report of `person` through a source with pattern `mask`.
Record EmitReport(const Person& person, const Source& source,
                  const NoiseConfig& noise, uint64_t book_id,
                  util::Rng& rng) {
  Record r;
  r.book_id = book_id;
  r.source_id = source.id;
  r.source_kind = source.kind;
  r.entity_id = person.entity_id;
  r.family_id = person.family_id;
  FieldMask mask = source.pattern;

  // Per-record field omission is a Pages-of-Testimony phenomenon (a
  // relative did not know / left a box blank); list layouts are filled
  // uniformly, which is what concentrates records into few data patterns
  // (Fig. 11).
  double omit = source.kind == data::SourceKind::kPageOfTestimony
                    ? noise.omit_value
                    : 0.0;
  auto keep = [&](ReportField f) {
    return HasField(mask, f) && !rng.Bernoulli(omit);
  };

  if (keep(ReportField::kFirstName)) {
    r.Add(AttributeId::kFirstName,
          NoisyName(person.first_names[0], noise, rng));
    if (person.first_names.size() > 1 && rng.Bernoulli(0.6)) {
      r.Add(AttributeId::kFirstName,
            NoisyName(person.first_names[1], noise, rng));
    }
  }
  if (keep(ReportField::kLastName)) {
    r.Add(AttributeId::kLastName, NoisyName(person.last_name, noise, rng));
  }
  if (keep(ReportField::kGender)) {
    r.Add(AttributeId::kGender, person.male ? "M" : "F");
  }
  if (keep(ReportField::kDob)) {
    int year = person.birth_year;
    if (rng.Bernoulli(noise.year_error)) {
      year += static_cast<int>(rng.UniformInt(1, 3)) *
              (rng.Bernoulli(0.5) ? 1 : -1);
    }
    r.Add(AttributeId::kBirthYear, std::to_string(year));
    // Some layouts carry the year only; day/month presence is a property
    // of the source, not of the record.
    if (source.dob_day_month) {
      r.Add(AttributeId::kBirthMonth, std::to_string(person.birth_month));
      r.Add(AttributeId::kBirthDay, std::to_string(person.birth_day));
    }
  }
  if (keep(ReportField::kFatherName) && !person.father_first.empty()) {
    r.Add(AttributeId::kFathersName,
          NoisyName(person.father_first, noise, rng));
  }
  if (keep(ReportField::kMotherName) && !person.mother_first.empty()) {
    r.Add(AttributeId::kMothersName,
          NoisyName(person.mother_first, noise, rng));
  }
  if (keep(ReportField::kSpouseName) && !person.spouse_first.empty()) {
    r.Add(AttributeId::kSpouseName,
          NoisyName(person.spouse_first, noise, rng));
  }
  if (keep(ReportField::kMaidenName) && !person.maiden_name.empty()) {
    r.Add(AttributeId::kMaidenName,
          NoisyName(person.maiden_name, noise, rng));
  }
  if (keep(ReportField::kMothersMaiden) && !person.mother_maiden.empty()) {
    r.Add(AttributeId::kMothersMaiden,
          NoisyName(person.mother_maiden, noise, rng));
  }
  if (keep(ReportField::kPermPlace)) {
    EmitPlace(&r, data::PlaceType::kPermanent, person.permanent_place,
              source, noise, rng);
  }
  if (keep(ReportField::kWarPlace)) {
    EmitPlace(&r, data::PlaceType::kWartime, person.wartime_place, source,
              noise, rng);
  }
  if (keep(ReportField::kBirthPlace)) {
    EmitPlace(&r, data::PlaceType::kBirth, person.birth_place, source,
              noise, rng);
  }
  if (keep(ReportField::kDeathPlace)) {
    EmitPlace(&r, data::PlaceType::kDeath, person.death_place, source,
              noise, rng);
  }
  if (keep(ReportField::kProfession) && !person.profession.empty()) {
    r.Add(AttributeId::kProfession, person.profession);
  }
  return r;
}

}  // namespace

GeneratedData Generate(const GeneratorConfig& config) {
  YVER_CHECK(config.num_persons > 0);
  util::Rng rng(config.seed);
  Gazetteer gazetteer;
  PersonSampler person_sampler(&gazetteer);
  SourceModel source_model;
  std::array<std::unique_ptr<NamePool>, kNumRegions> pools;
  for (size_t r = 0; r < kNumRegions; ++r) {
    pools[r] = std::make_unique<NamePool>(static_cast<Region>(r));
  }

  std::vector<double> region_weights = config.region_weights;
  if (region_weights.empty()) {
    region_weights.assign(kNumRegions, 1.0);
  }
  YVER_CHECK(region_weights.size() == kNumRegions);

  GeneratedData out;
  int64_t next_entity = 0;
  int64_t next_family = 0;
  uint32_t next_source = 100;  // ids below 100 reserved (kMvSourceId = 1)

  // --- Latent persons, family by family.
  std::vector<Family> families;
  while (out.persons.size() < config.num_persons) {
    Region region = static_cast<Region>(rng.PickWeighted(region_weights));
    Family family =
        person_sampler.SampleFamily(region, &next_entity, &next_family, rng);
    for (const Person& p : family.members) {
      if (out.persons.size() < config.num_persons) out.persons.push_back(p);
    }
    families.push_back(std::move(family));
  }
  // Trim the last family's overflow members from the family list too (the
  // persons vector is authoritative: entity_id == index).
  out.persons.resize(config.num_persons);

  // --- Sources. Per-family submitters (a surviving relative), shared
  // regional victim lists, optional MV.
  std::unordered_map<int64_t, Source> family_submitter;
  std::vector<std::vector<Source>> region_lists(kNumRegions);
  Source mv_source;
  if (config.include_mv) {
    mv_source.id = kMvSourceId;
    mv_source.kind = data::SourceKind::kPageOfTestimony;
    mv_source.pattern = SourceModel::MvPattern();
    mv_source.place_parts = 0x09;  // city + country only
    mv_source.dob_day_month = false;
  }

  // Emits the persona of a newly registered submitter into the submitter
  // table: a surviving relative of the family — shares the family name
  // and home region. Across collection campaigns the same relative may
  // register again under a variant spelling (§2's submitter-duplicate
  // problem: "some are obvious duplicates, misspellings of names ...
  // short of performing entity resolution on the submitter data").
  std::unordered_map<int64_t, const Family*> family_by_id;
  for (const auto& family : families) {
    family_by_id[family.family_id] = &family;
  }
  auto emit_submitter_persona = [&](uint32_t source_id, Region region,
                                    int64_t family_id) {
    const NamePool& pool = *pools[static_cast<size_t>(region)];
    bool male = rng.Bernoulli(0.5);
    std::string first = pool.SampleFirstName(male, rng);
    auto family_it = family_by_id.find(family_id);
    std::string last =
        (family_it != family_by_id.end() &&
         !family_it->second->members.empty() && rng.Bernoulli(0.7))
            ? family_it->second->members[0].last_name
            : pool.SampleLastName(rng);
    const Place& city = gazetteer.SampleCity(region, rng);
    size_t registrations = rng.Bernoulli(0.3) ? 2 : 1;
    for (size_t k = 0; k < registrations; ++k) {
      data::Record r;
      r.book_id = 500000u + static_cast<uint64_t>(source_id) * 4 + k;
      r.entity_id = static_cast<int64_t>(source_id);  // latent submitter
      r.source_id = static_cast<uint32_t>(k);  // registration campaign
      std::string fn = first;
      std::string ln = last;
      if (k > 0) {
        // Campaign re-registration: a different clerk, a different
        // transliteration.
        if (rng.Bernoulli(0.7)) {
          fn = NamePool::TransliterationVariant(fn, rng);
        }
        if (rng.Bernoulli(0.5)) {
          ln = NamePool::TransliterationVariant(ln, rng);
        }
      }
      r.Add(data::AttributeId::kFirstName, fn);
      r.Add(data::AttributeId::kLastName, ln);
      r.Add(data::AttributeId::kGender, male ? "M" : "F");
      r.Add(data::AttributeId::kPermCity, city.city);
      r.Add(data::AttributeId::kPermCountry, city.country);
      out.submitters.Add(std::move(r));
    }
  };

  auto get_family_submitter = [&](int64_t family_id,
                                  Region region) -> const Source& {
    auto it = family_submitter.find(family_id);
    if (it == family_submitter.end()) {
      Source s;
      s.id = next_source++;
      s.kind = data::SourceKind::kPageOfTestimony;
      s.pattern = source_model.SampleSubmitterPattern(region, rng);
      s.place_parts = source_model.SamplePlaceParts(rng);
      s.dob_day_month = rng.Bernoulli(0.7);
      it = family_submitter.emplace(family_id, s).first;
      ++out.num_submitters;
      emit_submitter_persona(it->second.id, region, family_id);
    }
    return it->second;
  };

  auto get_list = [&](Region region) -> const Source& {
    auto& lists = region_lists[static_cast<size_t>(region)];
    // Open a new list with probability 1/mean_list_size, so lists average
    // about mean_list_size reports.
    if (lists.empty() ||
        rng.Bernoulli(1.0 / static_cast<double>(config.mean_list_size))) {
      Source s;
      s.id = next_source++;
      s.kind = data::SourceKind::kVictimList;
      s.pattern = source_model.SampleListPattern(region, rng);
      s.place_parts = source_model.SamplePlaceParts(rng);
      s.dob_day_month = rng.Bernoulli(0.5);
      lists.push_back(s);
      ++out.num_list_sources;
    }
    // Recent lists are the active ones; pick among the last few.
    size_t window = std::min<size_t>(4, lists.size());
    size_t pick = lists.size() - 1 -
                  static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(window) - 1));
    return lists[pick];
  };

  // --- Reports.
  uint64_t next_book_id = 1000000;
  std::vector<uint32_t> used_sources;
  for (const Person& person : out.persons) {
    size_t num_reports = SampleReportCount(rng);
    bool used_family_pot = false;
    used_sources.clear();
    for (size_t k = 0; k < num_reports; ++k) {
      bool pot = rng.Bernoulli(config.pot_fraction);
      const Source* source;
      if (pot && !used_family_pot) {
        // A single PoT per person from the family's submitter: the same
        // relative rarely files two pages about the same person (SameSrc
        // rationale, §6.5).
        source = &get_family_submitter(person.family_id, person.region);
        used_family_pot = true;
      } else {
        // A person appears at most once per victim list ("it is deemed
        // unlikely that the same person would appear twice in the same
        // source") — resample on collision.
        source = &get_list(person.region);
        for (int attempt = 0;
             attempt < 8 &&
             std::find(used_sources.begin(), used_sources.end(),
                       source->id) != used_sources.end();
             ++attempt) {
          source = &get_list(person.region);
        }
        if (std::find(used_sources.begin(), used_sources.end(),
                      source->id) != used_sources.end()) {
          continue;  // give up on this report rather than duplicate
        }
      }
      used_sources.push_back(source->id);
      out.dataset.Add(
          EmitReport(person, *source, config.noise, next_book_id++, rng));
    }
    if (config.include_mv && person.region == Region::kItaly &&
        rng.Bernoulli(config.mv_person_fraction)) {
      // MV transcribed from meticulous research; his reports are uniform
      // and essentially noise-free, which is what makes MV-involved pairs
      // easy for the classifier (Table 6: accuracy drops without them).
      NoiseConfig clean;
      clean.transliteration = 0.0;
      clean.nickname = 0.0;
      clean.clerical = 0.0;
      clean.omit_value = 0.0;
      clean.year_error = 0.0;
      clean.city_variant = 0.0;
      out.dataset.Add(
          EmitReport(person, mv_source, clean, next_book_id++, rng));
    }
  }
  if (config.include_mv) ++out.num_submitters;
  return out;
}

GeneratorConfig ItalyConfig() {
  GeneratorConfig config;
  config.num_persons = 3800;
  config.region_weights.assign(kNumRegions, 0.0);
  config.region_weights[static_cast<size_t>(Region::kItaly)] = 1.0;
  config.include_mv = true;
  config.seed = 7;
  return config;
}

GeneratorConfig RandomSetConfig(double scale) {
  GeneratorConfig config;
  config.num_persons = static_cast<size_t>(53000 * scale);
  // Stratified: six communities with different weights.
  config.region_weights = {0.30, 0.08, 0.20, 0.12, 0.10, 0.20};
  config.seed = 11;
  return config;
}

}  // namespace yver::synth
