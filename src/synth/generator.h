#ifndef YVER_SYNTH_GENERATOR_H_
#define YVER_SYNTH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "synth/gazetteer.h"
#include "synth/name_pool.h"
#include "synth/person_sampler.h"
#include "synth/source_model.h"
#include "util/rng.h"

namespace yver::synth {

/// Noise rates applied when a source emits a report about a person.
/// Defaults model the *post-cleaning* Names Project data: Yad Vashem's
/// equivalence classes for names/places removed most spelling variants
/// ("the preprocessing of all misspelling and name synonyms led to a large
/// yet relatively clean database", §2), so residual noise is modest.
struct NoiseConfig {
  double transliteration = 0.07;  // spelling variant of a name
  double nickname = 0.05;         // diminutive / full-form swap
  double clerical = 0.03;         // single-character error (Bella->Della)
  double omit_value = 0.05;       // drop a field the pattern would record
  double year_error = 0.12;       // birth year off by 1-3 years
  double city_variant = 0.04;     // city name spelling variant
};

/// Configuration of the synthetic Names-Project generator.
struct GeneratorConfig {
  /// Number of latent persons (reports ≈ 1.9x persons).
  size_t num_persons = 5000;

  /// Sampling weight per region (size kNumRegions); zero excludes a
  /// region. Defaults to uniform across all six regions.
  std::vector<double> region_weights;

  NoiseConfig noise;

  /// Probability that a report is a Page of Testimony (the corpus is about
  /// one third PoT, §2).
  double pot_fraction = 0.34;

  /// Adds the Italy-only MV bulk submitter of §6.4 (fixed sparse pattern,
  /// ~28% of Italian persons get one extra MV report, matching 1,400 of
  /// 9,499 records).
  bool include_mv = false;
  double mv_person_fraction = 0.28;

  /// Mean victim-list size (reports per list source).
  size_t mean_list_size = 300;

  uint64_t seed = 42;
};

/// Well-known source id of the MV bulk submitter when include_mv is set.
inline constexpr uint32_t kMvSourceId = 1;

/// Output of generation.
struct GeneratedData {
  data::Dataset dataset;
  std::vector<Person> persons;  // latent truth, index = entity_id

  /// The submitter table (§2): one record per registered submitter
  /// identity, with first/last name and city. The same latent relative
  /// may have registered more than once across collection campaigns with
  /// variant spellings — the paper's observation that grouping by
  /// (first, last, city) leaves "obvious duplicates ... short of
  /// performing entity resolution on the submitter data". Records carry
  /// the latent submitter as entity_id; book_id is the registration id.
  data::Dataset submitters;

  size_t num_list_sources = 0;
  size_t num_submitters = 0;
};

/// Generates a synthetic Names-Project dataset: latent families/persons,
/// multi-source reports with per-source data patterns and name/date/place
/// noise, ground-truth entity and family ids.
GeneratedData Generate(const GeneratorConfig& config);

/// Preset mirroring the ItalySet (§5.1): Italy region only, ~9.5K reports,
/// MV submitter included.
GeneratorConfig ItalyConfig();

/// Preset mirroring the 100K stratified RandomSet, scaled by `scale`
/// (scale=1.0 gives ~100K reports; use smaller scales for quick runs).
GeneratorConfig RandomSetConfig(double scale = 1.0);

}  // namespace yver::synth

#endif  // YVER_SYNTH_GENERATOR_H_
