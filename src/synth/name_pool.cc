#include "synth/name_pool.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "util/check.h"
#include "util/string_util.h"

namespace yver::synth {

namespace {

// Shared Ashkenazi/Hebrew first names appearing across regions.
const char* kMaleCommon[] = {
    "Avraham", "Yitzhak", "Yaakov",  "Moshe",   "David",   "Shlomo",
    "Mordechai", "Chaim", "Shmuel",  "Yosef",   "Aharon",  "Baruch",
    "Eliezer", "Menachem", "Naftali", "Pinchas", "Reuven",  "Shimon",
    "Zeev",    "Tuvia",
};
const char* kFemaleCommon[] = {
    "Sara",   "Rivka",  "Rachel", "Leah",  "Chana",  "Miriam", "Esther",
    "Dvora",  "Yehudit", "Bella", "Golda", "Feiga",  "Gitel",  "Perla",
    "Rosa",   "Frida",  "Mina",   "Tova",  "Zelda",  "Bracha",
};

struct RegionNames {
  std::vector<const char*> male;
  std::vector<const char*> female;
  std::vector<const char*> last;
};

RegionNames PolandNames() {
  return {
      {"Mendel", "Hersh", "Leib", "Motel", "Velvel", "Zalman", "Itzik",
       "Berek", "Srul", "Moishe", "Yankel", "Fishel", "Getzel", "Kalman",
       "Lemel", "Nuchim", "Pesach", "Rafal", "Szymon", "Wolf"},
      {"Chaya", "Sheindel", "Ryfka", "Zlata", "Frumet", "Malka", "Pessia",
       "Hinda", "Brocha", "Dobra", "Etel", "Fruma", "Genia", "Hadasa",
       "Ita", "Keila", "Liba", "Mindel", "Necha", "Raizel"},
      {"Kesler", "Postel", "Apoteker", "Goldberg", "Rosenbaum", "Weiss",
       "Szwarc", "Kaminski", "Lewin", "Grinberg", "Zylberman", "Frydman",
       "Wajnsztok", "Cukierman", "Sztern", "Blumenfeld", "Rotsztejn",
       "Mandelbaum", "Perelman", "Najman", "Kirszenbaum", "Edelman",
       "Gelbart", "Herszkowicz", "Jakubowicz", "Kohn", "Lipszyc",
       "Minkowski", "Nudelman", "Okon", "Piekarski", "Rubinsztajn",
       "Szapiro", "Tenenbaum", "Urbach", "Wasserman", "Zajdel", "Bialer",
       "Cygler", "Dancyger"},
  };
}

RegionNames ItalyNames() {
  return {
      {"Guido", "Massimo", "Donato", "Italo", "Alberto", "Emanuele",
       "Giorgio", "Renato", "Vittorio", "Bruno", "Cesare", "Dario",
       "Enrico", "Franco", "Gino", "Lazzaro", "Marco", "Nino", "Paolo",
       "Ugo"},
      {"Estela", "Helena", "Olga", "Giulia", "Elsa", "Zimbul", "Clotilde",
       "Ada", "Bianca", "Carla", "Diana", "Elena", "Fortunata", "Gemma",
       "Ida", "Luisa", "Marcella", "Noemi", "Pia", "Vittoria"},
      {"Foa", "Capelluto", "Levi", "Segre", "Ottolenghi", "Artom",
       "Bassani", "Coen", "DeBenedetti", "Finzi", "Jona", "Lattes",
       "Momigliano", "Norsa", "Pavia", "Recanati", "Sacerdote", "Terracini",
       "Valabrega", "Zargani", "Alatri", "Bemporad", "Castelnuovo",
       "DellaSeta", "Errera", "Fubini", "Genazzani", "Luzzatto", "Milano",
       "Orvieto", "Pontecorvo", "Ravenna", "Sonnino", "Treves", "Usigli",
       "Vivanti", "Zevi", "Ascoli", "Bolaffi", "Colombo"},
  };
}

RegionNames HungaryNames() {
  return {
      {"Laszlo", "Ferenc", "Gyula", "Istvan", "Janos", "Karoly", "Miklos",
       "Sandor", "Tibor", "Zoltan", "Andor", "Bela", "Dezso", "Erno",
       "Geza", "Imre", "Jeno", "Kalman", "Lajos", "Matyas"},
      {"Ilona", "Erzsebet", "Margit", "Katalin", "Maria", "Julia", "Aranka",
       "Borbala", "Cecilia", "Edit", "Flora", "Gizella", "Hajnal", "Iren",
       "Jolan", "Klara", "Lili", "Magda", "Olga", "Piroska"},
      {"Kovacs", "Szabo", "Weisz", "Klein", "Grosz", "Braun", "Fischer",
       "Friedmann", "Gluck", "Hoffmann", "Kertesz", "Lakatos", "Molnar",
       "Nemeth", "Polgar", "Reich", "Schwartz", "Toth", "Vamos", "Winkler",
       "Balazs", "Czukor", "Deutsch", "Engel", "Farkas", "Gardos", "Halasz",
       "Izsak", "Jozsa", "Katona"},
  };
}

RegionNames GermanyNames() {
  return {
      {"Siegfried", "Heinrich", "Ludwig", "Walter", "Kurt", "Fritz",
       "Hermann", "Julius", "Max", "Otto", "Richard", "Arnold", "Bernhard",
       "Emil", "Georg", "Hans", "Josef", "Leopold", "Norbert", "Wilhelm"},
      {"Hannelore", "Ingrid", "Margarete", "Charlotte", "Elfriede", "Erna",
       "Gertrud", "Hedwig", "Ilse", "Johanna", "Kaethe", "Lotte", "Martha",
       "Paula", "Recha", "Selma", "Thea", "Ursula", "Wilhelmine", "Else"},
      {"Rosenthal", "Blumenthal", "Hirsch", "Kaufmann", "Loewenstein",
       "Meyer", "Neumann", "Oppenheim", "Rothschild", "Simon", "Stern",
       "Ullmann", "Wolff", "Baum", "Cahn", "Dreyfus", "Ehrlich",
       "Feuchtwanger", "Guttmann", "Heymann", "Israel", "Jacobsohn",
       "Katzenstein", "Liebermann", "Marx", "Nathan", "Oppenheimer",
       "Praeger", "Rosenberg", "Salomon"},
  };
}

RegionNames GreeceNames() {
  return {
      {"Alberto", "Isaac", "Moise", "Salomon", "Bohor", "Daniel", "Eliau",
       "Haim", "Jacob", "Leon", "Mair", "Nissim", "Ovadia", "Pepo",
       "Raphael", "Sabetay", "Vitali", "Yomtov", "Zadik", "Menahem"},
      {"Zimbul", "Reina", "Djoya", "Estrea", "Fortunee", "Gracia", "Kadun",
       "Luna", "Mazaltov", "Oro", "Palomba", "Rebeka", "Signora", "Sol",
       "Sultana", "Vida", "Allegra", "Bienvenida", "Clara", "Dudun"},
      {"Capelluto", "Alhadeff", "Benveniste", "Codron", "Franco", "Galante",
       "Hasson", "Israel", "Levy", "Menashe", "Notrica", "Pizanti",
       "Rahamim", "Soriano", "Tarica", "Amato", "Berro", "Cohenca",
       "DeMayo", "Eskenazi", "Fintz", "Gabriel", "Habib", "Jahiel",
       "Koen", "Leon", "Matalon", "Nahmias", "Pelosof", "Russo"},
  };
}

RegionNames RomaniaNames() {
  return {
      {"Iancu", "Strul", "Marcu", "Avram", "Burah", "Copel", "Dumitru",
       "Efraim", "Froim", "Ghidale", "Herscu", "Iosif", "Lupu", "Mihail",
       "Nathan", "Oisie", "Pincu", "Rubin", "Simon", "Zeilic"},
      {"Ruhla", "Perla", "Sura", "Tauba", "Udl", "Vigder", "Ana", "Betti",
       "Clara", "Dora", "Ernestina", "Fani", "Golda", "Haia", "Idesa",
       "Jeni", "Klara", "Liza", "Mali", "Neti"},
      {"Abramovici", "Bercovici", "Davidovici", "Goldenberg", "Herscovici",
       "Iancovici", "Katz", "Leibovici", "Moscovici", "Nusbaum",
       "Rabinovici", "Segal", "Solomon", "Weissman", "Zisman", "Avramescu",
       "Brener", "Croitoru", "Feldman", "Grunberg", "Haimovici", "Itic",
       "Kahane", "Lazarovici", "Marcovici", "Negru", "Olaru", "Pascal",
       "Rosen", "Smil"},
  };
}

const char* kProfessions[] = {
    "merchant",  "tailor",   "shoemaker", "teacher",  "physician",
    "carpenter", "baker",    "watchmaker", "lawyer",  "butcher",
    "furrier",   "glazier",  "printer",   "rabbi",    "seamstress",
    "clerk",     "pharmacist", "engineer", "peddler", "farmer",
};

bool IsVowel(char c) {
  c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

// Morpheme-product surname grids. Real Names-Project cardinalities are
// high (Table 4: 1,495 distinct last names in 9,402 Italian records); small
// curated pools would collapse the item-type cardinality and flood the
// blocking supports, so each region's curated list is extended with a
// culturally plausible prefix x suffix product.
std::vector<std::string> AshkenaziGrid() {
  static const char* kPrefixes[] = {
      "Gold", "Rosen", "Silber", "Blum", "Grun", "Wein", "Apfel", "Birn",
      "Lilien", "Mandel", "Korn", "Perl", "Rubin", "Saphir", "Stern",
      "Zucker", "Himmel", "Morgen", "Sommer", "Winter", "Licht", "Fein",
  };
  static const char* kSuffixes[] = {
      "berg", "stein", "man", "feld", "thal", "baum", "blatt", "zweig",
      "garten", "wasser", "stamm", "kranz",
  };
  std::vector<std::string> out;
  for (const char* p : kPrefixes) {
    for (const char* s : kSuffixes) {
      out.push_back(std::string(p) + s);
    }
  }
  return out;
}

std::vector<std::string> SlavicGrid() {
  static const char* kStems[] = {
      "Kowal", "Wisniew", "Lewandow", "Zielin", "Szyman", "Wozniak",
      "Kozlow", "Jablon", "Kwiatkow", "Pietrzak", "Grabow", "Sokolow",
      "Malinow", "Czarnec", "Wilczyn", "Borkow",
  };
  static const char* kSuffixes[] = {"ski", "sky", "icz", "owicz", "er",
                                    "man"};
  std::vector<std::string> out;
  for (const char* p : kStems) {
    for (const char* s : kSuffixes) {
      out.push_back(std::string(p) + s);
    }
  }
  return out;
}

std::vector<std::string> ItalianGrid() {
  // Italian-Jewish surnames are frequently toponymic; combine city stems
  // with common endings.
  static const char* kStems[] = {
      "Mode", "Anco", "Vero", "Padu", "Mant", "Ferra", "Luc", "Pis",
      "Sien", "Urbin", "Fan", "Osim", "Cagl", "Trevi", "Spole", "Maser",
  };
  static const char* kSuffixes[] = {"na", "nese", "no", "ni", "nti", "lli"};
  std::vector<std::string> out;
  for (const char* p : kStems) {
    for (const char* s : kSuffixes) {
      out.push_back(std::string(p) + s);
    }
  }
  return out;
}

std::vector<std::string> SephardiGrid() {
  static const char* kStems[] = {
      "Alba", "Beha", "Cue", "Espe", "Fara", "Gale", "Habi", "Isra",
      "Kame", "Leva", "Mizra", "Nava", "Pala", "Sara", "Tole", "Vare",
  };
  static const char* kSuffixes[] = {"no", "ro", "lli", "nte", "ssi", "chi"};
  std::vector<std::string> out;
  for (const char* p : kStems) {
    for (const char* s : kSuffixes) {
      out.push_back(std::string(p) + s);
    }
  }
  return out;
}

// First-name pools are widened with deterministic variant forms so that
// distinct persons can carry near-but-distinct names (e.g. Mosze vs Moshe
// as different people's registered forms), matching the real cardinality.
std::vector<std::string> ExpandFirstNames(std::vector<std::string> base) {
  // Order is preserved: the Zipf sampler favors early entries, so curated
  // common names stay common and variants form the tail.
  std::vector<std::string> out;
  std::set<std::string> seen;
  util::Rng rng(0xF00D);  // fixed seed: the pool itself is deterministic
  auto add = [&out, &seen](std::string name) {
    if (seen.insert(name).second) out.push_back(std::move(name));
  };
  for (const auto& name : base) add(name);
  for (const auto& name : base) {
    std::string v1 = NamePool::TransliterationVariant(name, rng);
    std::string v2 = NamePool::TransliterationVariant(v1, rng);
    add(std::move(v1));
    add(std::move(v2));
  }
  return out;
}

}  // namespace

std::string_view RegionName(Region region) {
  switch (region) {
    case Region::kPoland:
      return "Poland";
    case Region::kItaly:
      return "Italy";
    case Region::kHungary:
      return "Hungary";
    case Region::kGermany:
      return "Germany";
    case Region::kGreece:
      return "Greece";
    case Region::kRomania:
      return "Romania";
  }
  return "?";
}

NamePool::NamePool(Region region) : region_(region) {
  RegionNames names;
  switch (region) {
    case Region::kPoland:
      names = PolandNames();
      break;
    case Region::kItaly:
      names = ItalyNames();
      break;
    case Region::kHungary:
      names = HungaryNames();
      break;
    case Region::kGermany:
      names = GermanyNames();
      break;
    case Region::kGreece:
      names = GreeceNames();
      break;
    case Region::kRomania:
      names = RomaniaNames();
      break;
  }
  for (const char* n : kMaleCommon) male_first_.push_back(n);
  for (const char* n : names.male) male_first_.push_back(n);
  for (const char* n : kFemaleCommon) female_first_.push_back(n);
  for (const char* n : names.female) female_first_.push_back(n);
  male_first_ = ExpandFirstNames(std::move(male_first_));
  female_first_ = ExpandFirstNames(std::move(female_first_));
  for (const char* n : names.last) last_.push_back(n);
  // Widen the surname pool with the culturally matching morpheme grid(s).
  std::vector<std::string> grid;
  switch (region) {
    case Region::kItaly: {
      grid = ItalianGrid();
      auto sephardi = SephardiGrid();
      grid.insert(grid.end(), sephardi.begin(), sephardi.end());
      break;
    }
    case Region::kGreece:
      grid = SephardiGrid();
      break;
    case Region::kPoland:
    case Region::kRomania: {
      grid = AshkenaziGrid();
      auto slavic = SlavicGrid();
      grid.insert(grid.end(), slavic.begin(), slavic.end());
      break;
    }
    case Region::kGermany:
    case Region::kHungary:
      grid = AshkenaziGrid();
      break;
  }
  last_.insert(last_.end(), grid.begin(), grid.end());
  for (const char* p : kProfessions) professions_.push_back(p);
  male_sampler_.emplace(male_first_.size(), 0.6);
  female_sampler_.emplace(female_first_.size(), 0.6);
  last_sampler_.emplace(last_.size(), 0.5);
}

std::string NamePool::SampleFirstName(bool male, util::Rng& rng) const {
  const auto& pool = male ? male_first_ : female_first_;
  const auto& sampler = male ? male_sampler_ : female_sampler_;
  return pool[sampler->Sample(rng)];
}

std::string NamePool::SampleLastName(util::Rng& rng) const {
  return last_[last_sampler_->Sample(rng)];
}

std::string NamePool::SampleProfession(util::Rng& rng) const {
  return professions_[rng.Zipf(professions_.size(), 0.9)];
}

std::string NamePool::TransliterationVariant(std::string_view name,
                                             util::Rng& rng) {
  std::string s(name);
  // Apply one randomly chosen rule that actually fires; try a few times.
  for (int attempt = 0; attempt < 6; ++attempt) {
    std::string candidate = s;
    switch (rng.UniformInt(0, 6)) {
      case 0:  // c <-> k
        for (auto& c : candidate) {
          if (c == 'c') {
            c = 'k';
            break;
          }
          if (c == 'k') {
            c = 'c';
            break;
          }
        }
        break;
      case 1:  // w <-> v
        for (auto& c : candidate) {
          if (c == 'w') {
            c = 'v';
            break;
          }
          if (c == 'v') {
            c = 'w';
            break;
          }
        }
        break;
      case 2:  // y <-> i
        for (auto& c : candidate) {
          if (c == 'y') {
            c = 'i';
            break;
          }
          if (c == 'i') {
            c = 'y';
            break;
          }
        }
        break;
      case 3: {  // -ski <-> -sky suffix
        if (util::EndsWith(candidate, "ski")) {
          candidate.back() = 'y';
        } else if (util::EndsWith(candidate, "sky")) {
          candidate.back() = 'i';
        }
        break;
      }
      case 4: {  // double a single consonant (never triple an existing one)
        for (size_t i = 1; i + 1 < candidate.size(); ++i) {
          if (!IsVowel(candidate[i]) && candidate[i] != candidate[i - 1] &&
              candidate[i] != candidate[i + 1]) {
            candidate.insert(candidate.begin() + static_cast<long>(i),
                             candidate[i]);
            break;
          }
        }
        break;
      }
      case 5: {  // vowel shift a<->o, e<->i
        for (auto& c : candidate) {
          if (c == 'a') {
            c = 'o';
            break;
          }
          if (c == 'e') {
            c = 'i';
            break;
          }
        }
        break;
      }
      case 6: {  // trailing vowel drop (Foa -> Fo ... rarely useful) or
                 // h-insertion after initial consonant (Chaim ~ Haim)
        if (candidate.size() > 3 && IsVowel(candidate.back())) {
          candidate.pop_back();
        }
        break;
      }
    }
    if (candidate != s) return candidate;
  }
  return s;
}

std::string NamePool::Nickname(std::string_view name, util::Rng& rng) {
  struct Pair {
    const char* full;
    const char* nick;
  };
  static constexpr Pair kNicknames[] = {
      {"Avraham", "Avrum"},   {"Yitzhak", "Itzik"},  {"Moshe", "Moishe"},
      {"Mordechai", "Motel"}, {"Shmuel", "Szmul"},   {"Yosef", "Yossel"},
      {"Esther", "Etel"},     {"Rivka", "Ryfka"},    {"Sara", "Surele"},
      {"Elisabetta", "Elsa"}, {"Erzsebet", "Bozsi"}, {"Margit", "Manci"},
      {"Giulia", "Giulietta"}, {"Alberto", "Berto"}, {"Massimo", "Mino"},
      {"Wilhelm", "Willi"},   {"Heinrich", "Heini"}, {"Salomon", "Shelomo"},
      {"Chana", "Anna"},      {"Miriam", "Mirel"},
  };
  std::vector<const char*> options;
  for (const auto& p : kNicknames) {
    if (name == p.full) options.push_back(p.nick);
    if (name == p.nick) options.push_back(p.full);
  }
  if (options.empty()) return std::string(name);
  return options[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(options.size()) - 1))];
}

std::string NamePool::ClericalError(std::string_view name, util::Rng& rng) {
  if (name.size() < 2) return std::string(name);
  std::string s(name);
  size_t pos = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
  switch (rng.UniformInt(0, 3)) {
    case 0: {  // substitute (Bella -> Della)
      char replacement =
          static_cast<char>('a' + rng.UniformInt(0, 25));
      if (pos == 0) {
        replacement = static_cast<char>(
            std::toupper(static_cast<unsigned char>(replacement)));
      }
      s[pos] = replacement;
      break;
    }
    case 1:  // drop
      if (s.size() > 2) s.erase(pos, 1);
      break;
    case 2: {  // insert
      char extra = static_cast<char>('a' + rng.UniformInt(0, 25));
      s.insert(s.begin() + static_cast<long>(pos), extra);
      break;
    }
    case 3:  // transpose
      if (pos + 1 < s.size()) std::swap(s[pos], s[pos + 1]);
      break;
  }
  return s;
}

}  // namespace yver::synth
