#ifndef YVER_SYNTH_NAME_POOL_H_
#define YVER_SYNTH_NAME_POOL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace yver::synth {

/// Cultural-linguistic region of a pre-Holocaust Jewish community. The
/// paper's 100K stratified sample selected six regions differing either
/// culturally-linguistically or in the progression of the persecution
/// (§5.1); we mirror that structure.
enum class Region : uint8_t {
  kPoland = 0,
  kItaly,
  kHungary,
  kGermany,
  kGreece,   // incl. Rhodes (Italian-controlled, cf. Capelluto example)
  kRomania,  // stands in for Transnistria-deportation communities
};

inline constexpr size_t kNumRegions = 6;

/// Display name of a region.
std::string_view RegionName(Region region);

/// Pools of period-appropriate names per region, plus noise machinery
/// reproducing the dataset's "vast array of different spellings and
/// semantic variants" (§2): transliteration variants, nicknames, and
/// clerical errors.
class NamePool {
 public:
  explicit NamePool(Region region);

  /// Samples a male/female first name (Zipf-skewed: common names dominate).
  std::string SampleFirstName(bool male, util::Rng& rng) const;

  /// Samples a last name (Zipf-skewed).
  std::string SampleLastName(util::Rng& rng) const;

  /// Samples a profession label.
  std::string SampleProfession(util::Rng& rng) const;

  /// Returns a transliteration/spelling variant of a name (deterministic
  /// rule chosen by the rng): c<->k, w<->v, y<->i/j, doubled consonants,
  /// -sky/-ski/-szky suffix alternation, vowel shifts.
  static std::string TransliterationVariant(std::string_view name,
                                            util::Rng& rng);

  /// Returns a nickname/diminutive when one is known, otherwise the name
  /// itself (e.g. Avraham -> Avrum, Elisabetta -> Elsa).
  static std::string Nickname(std::string_view name, util::Rng& rng);

  /// Injects a single clerical error (substitute/drop/insert/transpose one
  /// character), e.g. Bella -> Della (§5.1).
  static std::string ClericalError(std::string_view name, util::Rng& rng);

  const std::vector<std::string>& male_first_names() const {
    return male_first_;
  }
  const std::vector<std::string>& female_first_names() const {
    return female_first_;
  }
  const std::vector<std::string>& last_names() const { return last_; }

 private:
  Region region_;
  std::vector<std::string> male_first_;
  std::vector<std::string> female_first_;
  std::vector<std::string> last_;
  std::vector<std::string> professions_;
  // Precomputed Zipf CDFs (hot path: every sampled person draws 5+ names).
  std::optional<util::ZipfSampler> male_sampler_;
  std::optional<util::ZipfSampler> female_sampler_;
  std::optional<util::ZipfSampler> last_sampler_;
};

}  // namespace yver::synth

#endif  // YVER_SYNTH_NAME_POOL_H_
