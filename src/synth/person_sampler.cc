#include "synth/person_sampler.h"

#include <algorithm>

#include "util/check.h"

namespace yver::synth {

namespace {

int SampleBirthYear(bool adult, util::Rng& rng) {
  // Adults born 1880-1920, children 1925-1942.
  return adult ? static_cast<int>(rng.UniformInt(1880, 1920))
               : static_cast<int>(rng.UniformInt(1925, 1942));
}

}  // namespace

PersonSampler::PersonSampler(const Gazetteer* gazetteer)
    : gazetteer_(gazetteer) {
  YVER_CHECK(gazetteer != nullptr);
  pools_.reserve(kNumRegions);
  for (size_t r = 0; r < kNumRegions; ++r) {
    pools_.emplace_back(static_cast<Region>(r));
  }
}

Person PersonSampler::SampleAdult(Region region, bool male, const Place& home,
                                  const Place& wartime, const Place& death,
                                  util::Rng& rng) const {
  const NamePool& pool = pools_[static_cast<size_t>(region)];
  Person p;
  p.region = region;
  p.male = male;
  p.first_names.push_back(pool.SampleFirstName(male, rng));
  if (rng.Bernoulli(0.15)) {
    p.first_names.push_back(pool.SampleFirstName(male, rng));
  }
  p.last_name = pool.SampleLastName(rng);
  p.father_first = pool.SampleFirstName(true, rng);
  p.mother_first = pool.SampleFirstName(false, rng);
  p.mother_maiden = pool.SampleLastName(rng);
  p.birth_day = static_cast<int>(rng.UniformInt(1, 28));
  p.birth_month = static_cast<int>(rng.UniformInt(1, 12));
  p.birth_year = SampleBirthYear(/*adult=*/true, rng);
  p.birth_place = rng.Bernoulli(0.6)
                      ? home
                      : gazetteer_->SampleNearby(region, home, rng);
  p.permanent_place = home;
  p.wartime_place = wartime;
  p.death_place = death;
  p.profession = pool.SampleProfession(rng);
  return p;
}

Family PersonSampler::SampleFamily(Region region, int64_t* next_entity_id,
                                   int64_t* next_family_id,
                                   util::Rng& rng) const {
  YVER_CHECK(next_entity_id != nullptr && next_family_id != nullptr);
  const NamePool& pool = pools_[static_cast<size_t>(region)];
  Family family;
  family.family_id = (*next_family_id)++;

  const Place& home = gazetteer_->SampleCity(region, rng);
  const Place& wartime = rng.Bernoulli(0.5)
                             ? gazetteer_->SampleWartime(rng)
                             : home;
  const Place& death = rng.Bernoulli(0.7) ? gazetteer_->SampleWartime(rng)
                                          : wartime;

  Person father = SampleAdult(region, /*male=*/true, home, wartime, death,
                              rng);
  Person mother = SampleAdult(region, /*male=*/false, home, wartime, death,
                              rng);
  // Marriage ties: shared last name, cross-referenced spouse names; the
  // wife keeps her maiden name on record.
  mother.maiden_name = mother.last_name;
  mother.last_name = father.last_name;
  father.spouse_first = mother.first_names[0];
  mother.spouse_first = father.first_names[0];

  int num_children = static_cast<int>(rng.UniformInt(0, 3));
  std::vector<Person> children;
  // Names already used in this family: parents and earlier children. Real
  // families do not give two living members the same given name, and such
  // collisions would create irresolvable sibling pairs.
  std::vector<std::string> taken = {father.first_names[0],
                                    mother.first_names[0]};
  for (int c = 0; c < num_children; ++c) {
    bool male = rng.Bernoulli(0.5);
    Person child;
    child.region = region;
    child.male = male;
    std::string name = pool.SampleFirstName(male, rng);
    for (int attempt = 0;
         attempt < 8 &&
         std::find(taken.begin(), taken.end(), name) != taken.end();
         ++attempt) {
      name = pool.SampleFirstName(male, rng);
    }
    taken.push_back(name);
    child.first_names.push_back(std::move(name));
    child.last_name = father.last_name;
    child.father_first = father.first_names[0];
    child.mother_first = mother.first_names[0];
    child.mother_maiden = mother.maiden_name;
    child.birth_day = static_cast<int>(rng.UniformInt(1, 28));
    child.birth_month = static_cast<int>(rng.UniformInt(1, 12));
    child.birth_year = SampleBirthYear(/*adult=*/false, rng);
    child.birth_place = home;
    child.permanent_place = home;
    child.wartime_place = wartime;
    child.death_place = death;
    children.push_back(std::move(child));
  }

  family.members.push_back(std::move(father));
  family.members.push_back(std::move(mother));
  for (auto& child : children) family.members.push_back(std::move(child));
  for (auto& member : family.members) {
    member.entity_id = (*next_entity_id)++;
    member.family_id = family.family_id;
  }
  return family;
}

}  // namespace yver::synth
