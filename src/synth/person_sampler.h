#ifndef YVER_SYNTH_PERSON_SAMPLER_H_
#define YVER_SYNTH_PERSON_SAMPLER_H_

#include <string>
#include <vector>

#include "synth/gazetteer.h"
#include "synth/name_pool.h"
#include "util/rng.h"

namespace yver::synth {

/// A latent ground-truth person. Victim reports are noisy projections of
/// persons; the entity-resolution task is to recover person identity from
/// the reports.
struct Person {
  int64_t entity_id = 0;
  int64_t family_id = 0;
  Region region = Region::kPoland;
  bool male = true;
  std::vector<std::string> first_names;  // 1-2 given names
  std::string last_name;
  std::string maiden_name;    // married women only
  std::string father_first;
  std::string mother_first;
  std::string mother_maiden;
  std::string spouse_first;   // married persons only
  int birth_day = 0;
  int birth_month = 0;
  int birth_year = 0;
  Place birth_place;
  Place permanent_place;
  Place wartime_place;
  Place death_place;
  std::string profession;
};

/// A nuclear family: father, mother, children. Shares last name and home
/// places — the structure behind the paper's family-level resolution
/// discussion (Capelluto example, Fig. 13/14).
struct Family {
  int64_t family_id = 0;
  std::vector<Person> members;  // [0]=father, [1]=mother, rest children
};

/// Samples latent families with culturally coherent names, dates and
/// geography.
class PersonSampler {
 public:
  explicit PersonSampler(const Gazetteer* gazetteer);

  /// Samples a family of the region. Entity/family ids are assigned from
  /// the provided counters (incremented).
  Family SampleFamily(Region region, int64_t* next_entity_id,
                      int64_t* next_family_id, util::Rng& rng) const;

 private:
  Person SampleAdult(Region region, bool male, const Place& home,
                     const Place& wartime, const Place& death,
                     util::Rng& rng) const;

  const Gazetteer* gazetteer_;
  std::vector<NamePool> pools_;  // by region
};

}  // namespace yver::synth

#endif  // YVER_SYNTH_PERSON_SAMPLER_H_
