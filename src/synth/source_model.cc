#include "synth/source_model.h"

namespace yver::synth {

namespace {

FieldMask Mask(std::initializer_list<ReportField> fields) {
  FieldMask m = 0;
  for (ReportField f : fields) m |= FieldBit(f);
  return m;
}

}  // namespace

FieldMask SourceModel::SampleListPattern(Region region,
                                         util::Rng& rng) const {
  // Canonical list layouts; weights skew toward the common manifests so a
  // few patterns dominate the corpus (Fig. 11: one pattern covers half a
  // million records with only FN/LN/Gender/PermanentPlace).
  // Layout fields and mixture weights are calibrated so the corpus-wide
  // margins land near Table 3 (e.g. Gender 88%, DOB 64%, Father 52%,
  // Spouse 27%, Profession 35%) once combined with the Pages-of-Testimony
  // patterns at the one-third PoT mix.
  static const FieldMask kLayouts[] = {
      // Deportation manifest — the paper's named most-prevalent pattern:
      // first name, last name, gender, permanent place.
      Mask({ReportField::kFirstName, ReportField::kLastName,
            ReportField::kGender, ReportField::kPermPlace}),
      // Transport list with birth data.
      Mask({ReportField::kFirstName, ReportField::kLastName,
            ReportField::kGender, ReportField::kDob,
            ReportField::kBirthPlace, ReportField::kPermPlace,
            ReportField::kWarPlace, ReportField::kProfession}),
      // Camp card file.
      Mask({ReportField::kFirstName, ReportField::kLastName,
            ReportField::kGender, ReportField::kDob,
            ReportField::kProfession, ReportField::kWarPlace,
            ReportField::kDeathPlace, ReportField::kFatherName}),
      // Ghetto register.
      Mask({ReportField::kFirstName, ReportField::kLastName,
            ReportField::kGender, ReportField::kDob,
            ReportField::kFatherName, ReportField::kMotherName,
            ReportField::kSpouseName, ReportField::kMaidenName,
            ReportField::kPermPlace, ReportField::kWarPlace,
            ReportField::kProfession}),
      // Police registration / property confiscation.
      Mask({ReportField::kFirstName, ReportField::kLastName,
            ReportField::kGender, ReportField::kPermPlace,
            ReportField::kWarPlace, ReportField::kProfession,
            ReportField::kSpouseName, ReportField::kMaidenName,
            ReportField::kDob}),
      // Memorial book.
      Mask({ReportField::kFirstName, ReportField::kLastName,
            ReportField::kFatherName, ReportField::kMotherName,
            ReportField::kMothersMaiden, ReportField::kSpouseName,
            ReportField::kMaidenName, ReportField::kBirthPlace,
            ReportField::kDeathPlace, ReportField::kDob,
            ReportField::kProfession}),
  };
  static const std::vector<double> kWeights = {0.30, 0.15, 0.16,
                                               0.14, 0.10, 0.15};
  FieldMask base = kLayouts[rng.PickWeighted(kWeights)];
  // Slight per-list variation: occasionally drop or add one field.
  if (rng.Bernoulli(0.25)) {
    auto f = static_cast<ReportField>(rng.UniformInt(0, 13));
    if (f != ReportField::kFirstName && f != ReportField::kLastName) {
      base = static_cast<FieldMask>(base ^ FieldBit(f));
    }
  }
  if (region == Region::kItaly) {
    // Italian sources carry father names and birth places far more often.
    if (rng.Bernoulli(0.55)) base |= FieldBit(ReportField::kFatherName);
    if (rng.Bernoulli(0.60)) base |= FieldBit(ReportField::kBirthPlace);
  }
  return base;
}

FieldMask SourceModel::SampleSubmitterPattern(Region region,
                                              util::Rng& rng) const {
  // Relatives almost always know names and gender; other fields follow
  // per-field inclusion probabilities tuned toward the Table 3 margins.
  struct FieldProb {
    ReportField field;
    double p;
  };
  static const FieldProb kProbs[] = {
      {ReportField::kFirstName, 0.995}, {ReportField::kLastName, 0.995},
      {ReportField::kGender, 0.97},     {ReportField::kDob, 0.72},
      {ReportField::kFatherName, 0.70}, {ReportField::kMotherName, 0.58},
      {ReportField::kSpouseName, 0.38}, {ReportField::kMaidenName, 0.22},
      {ReportField::kMothersMaiden, 0.20},
      {ReportField::kPermPlace, 0.88},  {ReportField::kWarPlace, 0.60},
      {ReportField::kBirthPlace, 0.55}, {ReportField::kDeathPlace, 0.50},
      {ReportField::kProfession, 0.35},
  };
  // Italy overrides (Table 3, Italy column).
  static const FieldProb kItalyProbs[] = {
      {ReportField::kFirstName, 0.995}, {ReportField::kLastName, 0.995},
      {ReportField::kGender, 0.97},     {ReportField::kDob, 0.70},
      {ReportField::kFatherName, 0.88}, {ReportField::kMotherName, 0.65},
      {ReportField::kSpouseName, 0.25}, {ReportField::kMaidenName, 0.15},
      {ReportField::kMothersMaiden, 0.15},
      {ReportField::kPermPlace, 0.90},  {ReportField::kWarPlace, 0.74},
      {ReportField::kBirthPlace, 0.92}, {ReportField::kDeathPlace, 0.62},
      {ReportField::kProfession, 0.28},
  };
  FieldMask mask = 0;
  const FieldProb* probs =
      region == Region::kItaly ? kItalyProbs : kProbs;
  for (size_t i = 0; i < kNumReportFields; ++i) {
    if (rng.Bernoulli(probs[i].p)) mask |= FieldBit(probs[i].field);
  }
  return mask;
}

uint8_t SourceModel::SamplePlaceParts(util::Rng& rng) const {
  uint8_t mask = 0;
  if (rng.Bernoulli(0.85)) mask |= 1u << static_cast<unsigned>(
                               data::PlacePart::kCity);
  if (rng.Bernoulli(0.60)) mask |= 1u << static_cast<unsigned>(
                               data::PlacePart::kCounty);
  if (rng.Bernoulli(0.50)) mask |= 1u << static_cast<unsigned>(
                               data::PlacePart::kRegion);
  if (rng.Bernoulli(0.90)) mask |= 1u << static_cast<unsigned>(
                               data::PlacePart::kCountry);
  if (mask == 0) mask = 1u << static_cast<unsigned>(data::PlacePart::kCity);
  return mask;
}

FieldMask SourceModel::MvPattern() {
  return Mask({ReportField::kFirstName, ReportField::kLastName,
               ReportField::kFatherName, ReportField::kBirthPlace,
               ReportField::kDeathPlace});
}

}  // namespace yver::synth
