#ifndef YVER_SYNTH_SOURCE_MODEL_H_
#define YVER_SYNTH_SOURCE_MODEL_H_

#include <cstdint>
#include <vector>

#include "data/record.h"
#include "synth/name_pool.h"
#include "util/rng.h"

namespace yver::synth {

/// The logical report fields a source may record (the rows of Table 3).
/// A source's data pattern is a bitmask over these fields; the extreme
/// skew of pattern frequencies (Fig. 11) emerges from few list layouts
/// covering most records plus a long tail of idiosyncratic submitters.
enum class ReportField : uint8_t {
  kFirstName = 0,
  kLastName,
  kGender,
  kDob,
  kFatherName,
  kMotherName,
  kSpouseName,
  kMaidenName,
  kMothersMaiden,
  kPermPlace,
  kWarPlace,
  kBirthPlace,
  kDeathPlace,
  kProfession,
};

inline constexpr size_t kNumReportFields = 14;

/// Bitmask of ReportField.
using FieldMask = uint16_t;

inline FieldMask FieldBit(ReportField f) {
  return static_cast<FieldMask>(1u << static_cast<unsigned>(f));
}
inline bool HasField(FieldMask mask, ReportField f) {
  return (mask & FieldBit(f)) != 0;
}

/// A report source: a victim list or a Page-of-Testimony submitter.
/// A source's layout is fixed once: all its reports share one data
/// pattern, which is what produces the extreme pattern skew of Fig. 11
/// (a handful of list layouts cover most records; submitters form the
/// long tail).
struct Source {
  uint32_t id = 0;
  data::SourceKind kind = data::SourceKind::kVictimList;
  FieldMask pattern = 0;
  /// Which place components (city/county/region/country bits, by
  /// data::PlacePart value) this source records.
  uint8_t place_parts = 0x0F;
  /// Whether DOB includes day and month (false: year only).
  bool dob_day_month = true;
};

inline bool HasPlacePart(const Source& source, data::PlacePart part) {
  return (source.place_parts & (1u << static_cast<unsigned>(part))) != 0;
}

/// Samples source layouts. Victim lists use a handful of canonical layouts
/// (deportation manifests, camp card files, ghetto registers, memorial
/// books) with slight per-list variation; submitters fill the long pattern
/// tail with rich but individually quirky patterns.
class SourceModel {
 public:
  SourceModel() = default;

  /// Samples a victim-list pattern. Italian lists lean toward father name
  /// and birth place ("a person's father name was a major part of their
  /// identity in this community", §6.2).
  FieldMask SampleListPattern(Region region, util::Rng& rng) const;

  /// Samples a Page-of-Testimony submitter pattern (richer: relatives know
  /// family names), with Italy-specific prevalence per Table 3.
  FieldMask SampleSubmitterPattern(Region region, util::Rng& rng) const;

  /// Samples the place-component mask of a source (city/county/region/
  /// country inclusion).
  uint8_t SamplePlaceParts(util::Rng& rng) const;

  /// The MV bulk submitter's fixed pattern: {FirstName, LastName,
  /// FatherName, BirthPlace, DeathPlace} (paper §6.4).
  static FieldMask MvPattern();
};

}  // namespace yver::synth

#endif  // YVER_SYNTH_SOURCE_MODEL_H_
