#include "synth/tag_oracle.h"

#include <algorithm>

#include "util/check.h"

namespace yver::synth {

namespace {

using data::AttributeId;
using ml::ExpertTag;

// Attributes an expert weighs when judging a pair.
constexpr AttributeId kInformative[] = {
    AttributeId::kFirstName,   AttributeId::kLastName,
    AttributeId::kFathersName, AttributeId::kMothersName,
    AttributeId::kSpouseName,  AttributeId::kMaidenName,
    AttributeId::kMothersMaiden, AttributeId::kBirthYear,
    AttributeId::kBirthCity,   AttributeId::kPermCity,
    AttributeId::kDeathCity,
};

ExpertTag Soften(ExpertTag tag) {
  switch (tag) {
    case ExpertTag::kYes:
      return ExpertTag::kProbablyYes;
    case ExpertTag::kNo:
      return ExpertTag::kProbablyNo;
    default:
      return tag;
  }
}

ExpertTag SlipOne(ExpertTag tag, bool up) {
  int v = static_cast<int>(tag) + (up ? 1 : -1);
  v = std::clamp(v, 0, 4);
  return static_cast<ExpertTag>(v);
}

}  // namespace

TagOracle::TagOracle(const data::Dataset* dataset,
                     const TagOracleConfig& config)
    : dataset_(dataset), config_(config), rng_(config.seed) {
  YVER_CHECK(dataset != nullptr);
}

ml::ExpertTag TagOracle::Tag(data::RecordIdx a, data::RecordIdx b) {
  const data::Record& ra = (*dataset_)[a];
  const data::Record& rb = (*dataset_)[b];
  // Count comparable informative attributes and agreements.
  size_t comparable = 0;
  size_t agree = 0;
  for (AttributeId attr : kInformative) {
    auto va = ra.Values(attr);
    auto vb = rb.Values(attr);
    if (va.empty() || vb.empty()) continue;
    ++comparable;
    bool any = false;
    for (auto x : va) {
      for (auto y : vb) {
        if (x == y) {
          any = true;
          break;
        }
      }
    }
    if (any) ++agree;
  }

  ExpertTag tag;
  if (comparable < config_.min_comparable) {
    // Not enough to decide, whatever the truth.
    tag = ExpertTag::kMaybe;
  } else if (dataset_->IsGoldMatch(a, b)) {
    tag = ExpertTag::kYes;
    if (agree * 3 < comparable) {
      tag = ExpertTag::kMaybe;  // heavily contradicting pair
    } else if (rng_.Bernoulli(config_.hedge)) {
      tag = Soften(tag);
    }
  } else {
    tag = ExpertTag::kNo;
    // Family near-misses look plausible: siblings share last name, parents
    // and places (the Capelluto children, Fig. 13). Only genuinely
    // information-poor ones stay undecidable.
    if (dataset_->IsGoldFamilyMatch(a, b) && agree >= 2) {
      tag = (comparable <= 3 && agree >= comparable - 1)
                ? ExpertTag::kMaybe
                : ExpertTag::kProbablyNo;
    } else if (rng_.Bernoulli(config_.hedge)) {
      tag = Soften(tag);
    }
  }
  if (rng_.Bernoulli(config_.slip)) {
    tag = SlipOne(tag, rng_.Bernoulli(0.5));
  }
  return tag;
}

}  // namespace yver::synth
