#ifndef YVER_SYNTH_TAG_ORACLE_H_
#define YVER_SYNTH_TAG_ORACLE_H_

#include "data/dataset.h"
#include "ml/instances.h"
#include "util/rng.h"

namespace yver::synth {

/// Configuration of the simulated expert tagger.
struct TagOracleConfig {
  /// Minimum number of comparable informative attributes below which an
  /// expert cannot decide and tags Maybe ("the information contained in
  /// the pair is insufficient", §5.1).
  size_t min_comparable = 2;

  /// Probability of softening a certain tag to its "Probably" neighbour
  /// (experts hedge).
  double hedge = 0.25;

  /// Probability of an outright tagging slip by one level.
  double slip = 0.02;

  uint64_t seed = 99;
};

/// Simulates the Yad Vashem archival experts who tagged candidate pairs
/// with {Yes, Probably Yes, Maybe, Probably No, No}. The oracle sees the
/// ground truth (entity ids) but degrades its confidence with the
/// information content of the pair, so sparse pairs become Maybe and
/// near-miss family pairs become Probably No — reproducing the tag/
/// similarity mixture of Fig. 8.
class TagOracle {
 public:
  explicit TagOracle(const data::Dataset* dataset,
                     const TagOracleConfig& config = {});

  /// Tags one candidate pair.
  ml::ExpertTag Tag(data::RecordIdx a, data::RecordIdx b);

 private:
  const data::Dataset* dataset_;
  TagOracleConfig config_;
  util::Rng rng_;
};

}  // namespace yver::synth

#endif  // YVER_SYNTH_TAG_ORACLE_H_
