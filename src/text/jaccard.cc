#include "text/jaccard.h"

#include <algorithm>
#include <set>
#include <string>

#include "text/qgram.h"
#include "util/string_util.h"

namespace yver::text {

double JaccardOfIds(std::vector<uint32_t> a, std::vector<uint32_t> b) {
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return JaccardOfSortedIds(a, b);
}

double JaccardOfSortedIds(std::span<const uint32_t> a,
                          std::span<const uint32_t> b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

double JaccardOfStringSets(const std::set<std::string>& sa,
                           const std::set<std::string>& sb) {
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& g : sa) inter += sb.count(g);
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  auto ga = ExtractQGrams(a, q);
  auto gb = ExtractQGrams(b, q);
  return JaccardOfStringSets(std::set<std::string>(ga.begin(), ga.end()),
                             std::set<std::string>(gb.begin(), gb.end()));
}

double TokenJaccard(std::string_view a, std::string_view b) {
  auto ta = util::SplitWhitespace(a);
  auto tb = util::SplitWhitespace(b);
  return JaccardOfStringSets(std::set<std::string>(ta.begin(), ta.end()),
                             std::set<std::string>(tb.begin(), tb.end()));
}

}  // namespace yver::text
