#ifndef YVER_TEXT_JACCARD_H_
#define YVER_TEXT_JACCARD_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace yver::text {

/// Jaccard coefficient |A ∩ B| / |A ∪ B| over two sets of integer ids.
/// Inputs need not be sorted or deduplicated; duplicates are collapsed.
/// Two empty sets score 1.
double JaccardOfIds(std::vector<uint32_t> a, std::vector<uint32_t> b);

/// Jaccard over sorted, deduplicated id sets (no copies made). Requires
/// both inputs to be strictly increasing. This is the integer twin of
/// QGramJaccard: over q-gram id sets interned by text::QGramIdInterner it
/// returns bit-identical doubles (same intersection/union cardinalities,
/// same division).
double JaccardOfSortedIds(std::span<const uint32_t> a,
                          std::span<const uint32_t> b);

/// Jaccard between the character q-gram sets of two strings (padded grams,
/// set semantics). The paper uses this as the per-name distance feature
/// ("XnameDist ... Jaccard similarity").
double QGramJaccard(std::string_view a, std::string_view b, size_t q = 2);

/// Jaccard between whitespace token sets of two strings.
double TokenJaccard(std::string_view a, std::string_view b);

}  // namespace yver::text

#endif  // YVER_TEXT_JACCARD_H_
