#include "text/jaro_winkler.h"

#include <algorithm>
#include <vector>

namespace yver::text {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const size_t la = a.size();
  const size_t lb = b.size();
  const size_t match_window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_matched(la, false);
  std::vector<bool> b_matched(lb, false);
  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(lb, i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(la) + m / static_cast<double>(lb) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace yver::text
