#ifndef YVER_TEXT_JARO_WINKLER_H_
#define YVER_TEXT_JARO_WINKLER_H_

#include <string_view>

namespace yver::text {

/// Jaro similarity in [0, 1]. Two empty strings score 1; one empty string
/// scores 0 against a non-empty one.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: Jaro boosted by the length of the common prefix
/// (up to 4 characters) with scaling factor p (default 0.1). This is the
/// name-item similarity of the paper's Eq. 1.
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace yver::text

#endif  // YVER_TEXT_JARO_WINKLER_H_
