#include "text/levenshtein.h"

#include <algorithm>
#include <vector>

namespace yver::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

}  // namespace yver::text
