#ifndef YVER_TEXT_LEVENSHTEIN_H_
#define YVER_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace yver::text {

/// Classic edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized similarity in [0, 1]: 1 - dist / max(|a|, |b|).
/// Two empty strings have similarity 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace yver::text

#endif  // YVER_TEXT_LEVENSHTEIN_H_
