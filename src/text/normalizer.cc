#include "text/normalizer.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "text/jaro_winkler.h"
#include "util/string_util.h"

namespace yver::text {

namespace {

// Union-find over value indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::string NameNormalizer::SkeletonKey(std::string_view value) {
  std::string key;
  char prev = 0;
  for (char raw : value) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (c < 'a' || c > 'z') continue;
    // Vowels and near-silent letters vanish; transliteration pairs unify
    // (w/v/f cover the German/Slavic/Yiddish spellings of one sound).
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' ||
        c == 'y' || c == 'h') {
      continue;
    }
    if (c == 'k' || c == 'q') c = 'c';
    if (c == 'v' || c == 'w') c = 'f';
    if (c == 'z') c = 's';
    if (c == 'j') c = 'g';
    if (c == prev) continue;
    key.push_back(c);
    prev = c;
  }
  if (key.empty() && !value.empty()) {
    key.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(value[0]))));
  }
  return key;
}

NameNormalizer::Domain NameNormalizer::DomainOf(data::AttributeId attr,
                                                bool normalize_places) {
  switch (attr) {
    case data::AttributeId::kFirstName:
    case data::AttributeId::kFathersName:
    case data::AttributeId::kMothersName:
    case data::AttributeId::kSpouseName:
      return Domain::kFirstName;
    case data::AttributeId::kLastName:
    case data::AttributeId::kMaidenName:
    case data::AttributeId::kMothersMaiden:
      return Domain::kLastName;
    default:
      if (normalize_places &&
          data::AttributeClass(attr) == data::ValueClass::kGeo) {
        return Domain::kCity;
      }
      return Domain::kNone;
  }
}

NameNormalizer NameNormalizer::Build(const data::Dataset& dataset,
                                     const Options& options) {
  NameNormalizer normalizer;
  normalizer.normalize_places_ = options.normalize_places;

  for (size_t d = 0; d < 3; ++d) {
    Domain domain = static_cast<Domain>(d);
    // Distinct values with frequencies (case-folded key, original kept).
    std::map<std::string, std::pair<std::string, size_t>> values;
    for (const auto& record : dataset.records()) {
      for (const auto& entry : record.entries()) {
        if (DomainOf(entry.attr, options.normalize_places) != domain) {
          continue;
        }
        std::string lower = util::ToLower(entry.value);
        auto [it, inserted] =
            values.try_emplace(std::move(lower), entry.value, 0);
        ++it->second.second;
      }
    }
    std::vector<std::string> lowers;
    std::vector<std::string> originals;
    std::vector<size_t> freq;
    lowers.reserve(values.size());
    for (auto& [lower, info] : values) {
      lowers.push_back(lower);
      originals.push_back(info.first);
      freq.push_back(info.second);
    }
    // Bucket by skeleton, merge within bucket when JW passes.
    std::map<std::string, std::vector<size_t>> buckets;
    for (size_t i = 0; i < lowers.size(); ++i) {
      buckets[SkeletonKey(lowers[i])].push_back(i);
    }
    UnionFind uf(lowers.size());
    for (const auto& [key, members] : buckets) {
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          if (JaroWinklerSimilarity(lowers[members[i]],
                                    lowers[members[j]]) >=
              options.jw_threshold) {
            uf.Union(members[i], members[j]);
          }
        }
      }
    }
    // Canonical member = most frequent of each class.
    std::unordered_map<size_t, size_t> best_of_class;
    for (size_t i = 0; i < lowers.size(); ++i) {
      size_t root = uf.Find(i);
      auto [it, inserted] = best_of_class.try_emplace(root, i);
      if (!inserted && freq[i] > freq[it->second]) it->second = i;
    }
    std::unordered_map<size_t, size_t> class_sizes;
    for (size_t i = 0; i < lowers.size(); ++i) ++class_sizes[uf.Find(i)];
    for (size_t i = 0; i < lowers.size(); ++i) {
      size_t canon = best_of_class[uf.Find(i)];
      normalizer.canonical_[d][lowers[i]] = originals[canon];
      if (canon != i) ++normalizer.folded_values_;
    }
    for (const auto& [root, size] : class_sizes) {
      if (size >= 2) ++normalizer.non_trivial_classes_;
    }
  }
  return normalizer;
}

std::string NameNormalizer::Canonicalize(data::AttributeId attr,
                                         std::string_view value) const {
  Domain domain = DomainOf(attr, normalize_places_);
  if (domain == Domain::kNone) return std::string(value);
  const auto& table = canonical_[static_cast<size_t>(domain)];
  auto it = table.find(util::ToLower(value));
  if (it == table.end()) return std::string(value);
  return it->second;
}

data::Dataset NameNormalizer::Apply(const data::Dataset& dataset) const {
  data::Dataset out;
  for (const auto& record : dataset.records()) {
    data::Record normalized;
    normalized.book_id = record.book_id;
    normalized.source_id = record.source_id;
    normalized.source_kind = record.source_kind;
    normalized.entity_id = record.entity_id;
    normalized.family_id = record.family_id;
    for (const auto& entry : record.entries()) {
      normalized.Add(entry.attr, Canonicalize(entry.attr, entry.value));
    }
    out.Add(std::move(normalized));
  }
  return out;
}

}  // namespace yver::text
