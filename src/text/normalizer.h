#ifndef YVER_TEXT_NORMALIZER_H_
#define YVER_TEXT_NORMALIZER_H_

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace yver::text {

/// Equivalence-class normalization of name variants, mirroring the Names
/// Project preprocessing: "Equivalence classes of first names, last names
/// and places ... were created to help deal with multiple spellings and
/// variants. The preprocessing of all misspelling and name synonyms led
/// to a large yet relatively clean Names project database" (§2).
///
/// Construction clusters the distinct values of each name domain (first
/// names across all person-name attributes; last names across surname
/// attributes; city names) with a two-stage rule: values sharing a
/// phonetic consonant skeleton are candidates, and candidates are merged
/// when their Jaro-Winkler similarity passes a threshold. Each class is
/// canonicalized to its most frequent member.
class NameNormalizer {
 public:
  struct Options {
    /// Jaro-Winkler threshold for merging two values of a skeleton bucket.
    double jw_threshold = 0.88;
    /// Normalize city-class place values too.
    bool normalize_places = true;
  };

  /// Learns equivalence classes from the value distribution of a dataset.
  static NameNormalizer Build(const data::Dataset& dataset,
                              const Options& options);
  static NameNormalizer Build(const data::Dataset& dataset) {
    return Build(dataset, Options());
  }

  /// Canonical form of a value under the attribute's domain; returns the
  /// input unchanged when it is unknown.
  std::string Canonicalize(data::AttributeId attr,
                           std::string_view value) const;

  /// Returns a copy of the dataset with every name (and optionally city)
  /// value canonicalized.
  data::Dataset Apply(const data::Dataset& dataset) const;

  /// Diagnostics: number of learned equivalence classes with >= 2 members
  /// and total values folded into another canonical form.
  size_t NumNonTrivialClasses() const { return non_trivial_classes_; }
  size_t NumFoldedValues() const { return folded_values_; }

  /// The phonetic consonant-skeleton bucket key (exposed for tests).
  static std::string SkeletonKey(std::string_view value);

 private:
  enum class Domain : uint8_t { kFirstName = 0, kLastName, kCity, kNone };
  static Domain DomainOf(data::AttributeId attr, bool normalize_places);

  NameNormalizer() = default;

  // Per-domain lowercase value -> canonical (original-case) value.
  std::array<std::unordered_map<std::string, std::string>, 3> canonical_;
  bool normalize_places_ = true;
  size_t non_trivial_classes_ = 0;
  size_t folded_values_ = 0;
};

}  // namespace yver::text

#endif  // YVER_TEXT_NORMALIZER_H_
