#include "text/phonetic.h"

#include <cctype>

namespace yver::text {

namespace {

char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';  // vowels and h/w/y
  }
}

}  // namespace

std::string Soundex(std::string_view name) {
  std::string letters;
  for (char raw : name) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (c >= 'a' && c <= 'z') letters.push_back(c);
  }
  if (letters.empty()) return "";
  std::string code;
  code.push_back(static_cast<char>(
      std::toupper(static_cast<unsigned char>(letters[0]))));
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char digit = SoundexDigit(c);
    if (digit != '0' && digit != prev_digit) code.push_back(digit);
    // h and w are transparent: they do not reset the previous digit.
    if (c != 'h' && c != 'w') prev_digit = digit;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

std::string SlavicPhonetic(std::string_view name) {
  // Normalize to a lowercase letter stream with cluster rewrites.
  std::string letters;
  for (char raw : name) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (c >= 'a' && c <= 'z') letters.push_back(c);
  }
  std::string rewritten;
  for (size_t i = 0; i < letters.size();) {
    auto starts = [&](std::string_view cluster) {
      return letters.compare(i, cluster.size(), cluster) == 0;
    };
    if (starts("tsch") || starts("tzsch")) {
      rewritten.push_back('c');
      i += starts("tzsch") ? 5 : 4;
    } else if (starts("sch") || starts("tch")) {
      rewritten.push_back('s');
      i += 3;
    } else if (starts("cz") || starts("ch") || starts("sz") ||
               starts("sh") || starts("zs") || starts("ts")) {
      rewritten.push_back(starts("cz") || starts("ch") ? 'c' : 's');
      i += 2;
    } else if (letters[i] == 'w') {
      rewritten.push_back('v');
      ++i;
    } else if (letters[i] == 'q' || letters[i] == 'k') {
      rewritten.push_back('c');
      ++i;
    } else {
      rewritten.push_back(letters[i]);
      ++i;
    }
  }
  std::string code;
  char prev = 0;
  for (char c : rewritten) {
    char digit = SoundexDigit(c);
    if (digit != '0' && digit != prev) code.push_back(digit);
    prev = digit;
    if (code.size() == 6) break;
  }
  while (code.size() < 6) code.push_back('0');
  return code;
}

}  // namespace yver::text
