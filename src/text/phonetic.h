#ifndef YVER_TEXT_PHONETIC_H_
#define YVER_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace yver::text {

/// Classic American Soundex code (letter + three digits, zero padded),
/// e.g. Robert -> R163. Historically the standard phonetic key of record-
/// linkage systems; provided alongside the normalizer's consonant
/// skeleton for comparison and for users with Soundex-keyed legacy
/// indexes. Non-alphabetic characters are ignored; an empty or
/// non-alphabetic input yields "".
std::string Soundex(std::string_view name);

/// Daitch-Mokotoff-inspired coarse code tuned for the Eastern-European
/// name stock of the corpus: handles cz/sz/tsch clusters and w/v
/// mergers that plain Soundex separates. Returns a 6-digit code.
std::string SlavicPhonetic(std::string_view name);

}  // namespace yver::text

#endif  // YVER_TEXT_PHONETIC_H_
