#include "text/qgram.h"

#include <algorithm>

#include "util/check.h"

namespace yver::text {

std::vector<std::string> ExtractQGrams(std::string_view s, size_t q) {
  YVER_CHECK(q >= 1);
  std::string padded;
  padded.reserve(s.size() + 2 * (q - 1));
  padded.append(q - 1, '#');
  padded.append(s);
  padded.append(q - 1, '#');
  std::vector<std::string> grams;
  if (padded.size() < q) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  return grams;
}

QGramIdInterner::QGramIdInterner(size_t q) : q_(q) { YVER_CHECK(q >= 1); }

size_t QGramIdInterner::AppendQGramIdSet(std::string_view s,
                                         std::vector<uint32_t>* out) {
  // Same padded-gram construction as ExtractQGrams, but each gram is
  // resolved to its dense id instead of copied out.
  std::string padded;
  padded.reserve(s.size() + 2 * (q_ - 1));
  padded.append(q_ - 1, '#');
  padded.append(s);
  padded.append(q_ - 1, '#');
  scratch_.clear();
  if (padded.size() >= q_) {
    for (size_t i = 0; i + q_ <= padded.size(); ++i) {
      auto it = ids_
                    .try_emplace(padded.substr(i, q_),
                                 static_cast<uint32_t>(ids_.size()))
                    .first;
      scratch_.push_back(it->second);
    }
  }
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  out->insert(out->end(), scratch_.begin(), scratch_.end());
  return scratch_.size();
}

std::vector<std::string> ExtractQGramsNoPad(std::string_view s, size_t q) {
  YVER_CHECK(q >= 1);
  std::vector<std::string> grams;
  if (s.size() < q) {
    if (!s.empty()) grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, q));
  }
  return grams;
}

namespace {

// Recursively emits concatenations of all subsequences of `grams` of length
// >= min_len, preserving order (the extended q-gram construction).
void EmitCombinations(const std::vector<std::string>& grams, size_t index,
                      std::vector<size_t>& chosen, size_t min_len,
                      std::vector<std::string>* out) {
  if (index == grams.size()) {
    if (chosen.size() >= min_len && chosen.size() < grams.size()) {
      std::string key;
      for (size_t g : chosen) key += grams[g];
      out->push_back(std::move(key));
    }
    return;
  }
  chosen.push_back(index);
  EmitCombinations(grams, index + 1, chosen, min_len, out);
  chosen.pop_back();
  EmitCombinations(grams, index + 1, chosen, min_len, out);
}

}  // namespace

std::vector<std::string> ExtractExtendedQGrams(std::string_view s, size_t q,
                                               double threshold,
                                               size_t max_k) {
  std::vector<std::string> grams = ExtractQGramsNoPad(s, q);
  std::vector<std::string> out;
  // The whole string is always a key.
  std::string whole;
  for (const auto& g : grams) whole += g;
  out.push_back(whole);
  if (grams.size() <= 1 || grams.size() > max_k) return out;
  size_t min_len = static_cast<size_t>(
      std::max(1.0, threshold * static_cast<double>(grams.size())));
  std::vector<size_t> chosen;
  EmitCombinations(grams, 0, chosen, min_len, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace yver::text
