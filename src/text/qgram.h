#ifndef YVER_TEXT_QGRAM_H_
#define YVER_TEXT_QGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace yver::text {

/// Extracts the multiset of character q-grams of s, with (q-1)-fold '#'
/// padding at both ends (the convention used by q-gram blocking, QGBl).
/// For s shorter than q without padding semantics use ExtractQGramsNoPad.
std::vector<std::string> ExtractQGrams(std::string_view s, size_t q);

/// Extracts q-grams without padding; returns {s} when |s| < q.
std::vector<std::string> ExtractQGramsNoPad(std::string_view s, size_t q);

/// Extended q-grams (EQBl): all concatenations of subsets of the q-gram
/// sequence of size >= ceil(threshold * k) where k is the number of
/// q-grams, as in Christen's survey. To keep key counts bounded the subset
/// enumeration is capped when k > max_k (falls back to plain q-grams).
std::vector<std::string> ExtractExtendedQGrams(std::string_view s, size_t q,
                                               double threshold,
                                               size_t max_k = 10);

/// Interns padded q-grams as dense integer ids, so the q-gram *set* of a
/// string can be computed once (per dictionary entry) and compared ever
/// after by integer merge instead of re-extracting string grams per pair.
/// JaccardOfSortedIds over two interned sets equals QGramJaccard over the
/// original strings exactly: interning is injective, so intersection and
/// union cardinalities are preserved.
///
/// Not thread-safe; intern everything at encode time, compare afterwards.
class QGramIdInterner {
 public:
  explicit QGramIdInterner(size_t q = 2);

  /// Appends the sorted, deduplicated id set of the padded q-grams of `s`
  /// to `out`, interning unseen grams. Returns the number of ids appended.
  size_t AppendQGramIdSet(std::string_view s, std::vector<uint32_t>* out);

  /// Number of distinct grams interned so far.
  size_t num_grams() const { return ids_.size(); }

  size_t q() const { return q_; }

 private:
  size_t q_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<uint32_t> scratch_;
};

}  // namespace yver::text

#endif  // YVER_TEXT_QGRAM_H_
