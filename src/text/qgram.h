#ifndef YVER_TEXT_QGRAM_H_
#define YVER_TEXT_QGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace yver::text {

/// Extracts the multiset of character q-grams of s, with (q-1)-fold '#'
/// padding at both ends (the convention used by q-gram blocking, QGBl).
/// For s shorter than q without padding semantics use ExtractQGramsNoPad.
std::vector<std::string> ExtractQGrams(std::string_view s, size_t q);

/// Extracts q-grams without padding; returns {s} when |s| < q.
std::vector<std::string> ExtractQGramsNoPad(std::string_view s, size_t q);

/// Extended q-grams (EQBl): all concatenations of subsets of the q-gram
/// sequence of size >= ceil(threshold * k) where k is the number of
/// q-grams, as in Christen's survey. To keep key counts bounded the subset
/// enumeration is capped when k > max_k (falls back to plain q-grams).
std::vector<std::string> ExtractExtendedQGrams(std::string_view s, size_t q,
                                               double threshold,
                                               size_t max_k = 10);

}  // namespace yver::text

#endif  // YVER_TEXT_QGRAM_H_
