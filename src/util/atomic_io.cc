#include "util/atomic_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace yver::util {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path, int open_flags) {
  int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return Errno("open " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync " + path);
  return Status::Ok();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("create " + tmp);
  const char* data = contents.data();
  size_t n = contents.size();
  while (n > 0) {
    ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      Status failed = Errno("write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return failed;
    }
    data += wrote;
    n -= static_cast<size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    Status failed = Errno("fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return failed;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status failed = Errno("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return failed;
  }
  return FsyncPath(ParentDir(path), O_RDONLY | O_DIRECTORY);
}

Status PromoteFileAtomic(const std::string& tmp, const std::string& path) {
  Status synced = FsyncPath(tmp, O_RDONLY);
  if (!synced.ok()) {
    ::unlink(tmp.c_str());
    return synced;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status failed = Errno("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return failed;
  }
  return FsyncPath(ParentDir(path), O_RDONLY | O_DIRECTORY);
}

}  // namespace yver::util
