#ifndef YVER_UTIL_ATOMIC_IO_H_
#define YVER_UTIL_ATOMIC_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace yver::util {

/// Crash-atomic file replacement (DESIGN.md §14): writes `contents` to
/// `path + ".tmp"`, fsyncs the file, rename()s it over `path`, and fsyncs
/// the parent directory. A crash at any point leaves either the old file
/// or the new one — never a torn mix — because rename() is atomic on
/// POSIX filesystems. Typed UNAVAILABLE on any I/O failure (the tmp file
/// is unlinked best-effort).
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Promotes an already-written temporary file to `path`: fsyncs `tmp`,
/// rename()s it over `path`, and fsyncs the parent directory. For writers
/// (CSV savers, ...) that stream through their own API into a tmp path
/// first. Typed UNAVAILABLE on failure.
Status PromoteFileAtomic(const std::string& tmp, const std::string& path);

}  // namespace yver::util

#endif  // YVER_UTIL_ATOMIC_IO_H_
