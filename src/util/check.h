#ifndef YVER_UTIL_CHECK_H_
#define YVER_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// CHECK-style assertion macros for programmer errors. Active in all build
/// types: invariant violations in an ER pipeline silently corrupt results,
/// so we prefer a loud abort over undefined behaviour.

#define YVER_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define YVER_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // YVER_UTIL_CHECK_H_
