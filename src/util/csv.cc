#include "util/csv.h"

namespace yver::util {

std::optional<std::vector<std::string>> ParseCsvRecord(std::string_view data,
                                                       size_t* pos) {
  size_t i = *pos;
  if (i >= data.size()) return std::nullopt;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (;;) {
    if (i >= data.size()) {
      fields.push_back(std::move(field));
      *pos = i;
      return fields;
    }
    char c = data[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < data.size() && data[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
    } else if (c == '\r' && i + 1 < data.size() && data[i + 1] == '\n') {
      // CRLF record terminator. A bare \r (not followed by \n) is field
      // data and falls through to the default branch — swallowing it
      // would corrupt unquoted fields ("a\rb" must not parse as "ab").
      fields.push_back(std::move(field));
      *pos = i + 2;
      return fields;
    } else if (c == '\n') {
      fields.push_back(std::move(field));
      *pos = i + 1;
      return fields;
    } else {
      field.push_back(c);
      ++i;
    }
  }
}

std::vector<std::vector<std::string>> ParseCsv(std::string_view data) {
  std::vector<std::vector<std::string>> rows;
  size_t pos = 0;
  while (auto row = ParseCsvRecord(data, &pos)) {
    rows.push_back(std::move(*row));
  }
  return rows;
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvRow(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(EscapeCsvField(fields[i]));
  }
  return out;
}

}  // namespace yver::util
