#ifndef YVER_UTIL_CSV_H_
#define YVER_UTIL_CSV_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace yver::util {

/// RFC-4180-style CSV support (quoted fields, embedded commas/quotes and
/// newlines inside quoted fields).

/// Parses one logical CSV record starting at *pos within data. Advances
/// *pos past the record (including the terminating newline). Returns
/// std::nullopt at end of input.
///
/// Records end at LF or CRLF. A bare CR that is not followed by LF is
/// ordinary field data and is preserved (FormatCsvRow always quotes
/// CR-bearing fields, so format -> parse round-trips are the identity;
/// see the CsvRoundTrip property tests). Parsing is lenient on malformed
/// input: characters trailing a closing quote are appended to the field
/// rather than rejected.
std::optional<std::vector<std::string>> ParseCsvRecord(std::string_view data,
                                                       size_t* pos);

/// Parses a full CSV document into rows of fields.
std::vector<std::vector<std::string>> ParseCsv(std::string_view data);

/// Escapes a single field (adds quotes when it contains comma, quote, CR or
/// LF).
std::string EscapeCsvField(std::string_view field);

/// Formats one row (no trailing newline).
std::string FormatCsvRow(const std::vector<std::string>& fields);

}  // namespace yver::util

#endif  // YVER_UTIL_CSV_H_
