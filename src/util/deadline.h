#ifndef YVER_UTIL_DEADLINE_H_
#define YVER_UTIL_DEADLINE_H_

#include <chrono>
#include <limits>

#include "util/status.h"

namespace yver::util {

/// A point on the steady clock by which a request must be answered — the
/// failure-model primitive propagated from `serve::Query` through every
/// fan-out and per-chunk boundary of the serving layer. Default-constructed
/// deadlines are infinite, so existing call sites pay nothing.
///
/// Deadlines are checked, never enforced pre-emptively: a stage consults
/// `HasExpired()` at its boundaries and returns DEADLINE_EXCEEDED instead
/// of starting (or continuing) work the caller has already given up on.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  /// Never expires. Comparable against any finite deadline.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. `ms <= 0` is already expired —
  /// the "zero deadline" edge the serving tests pin.
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::nanoseconds(
                               static_cast<int64_t>(ms * 1e6));
    return d;
  }

  /// A deadline that has already passed.
  static Deadline ExpiredNow() {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::time_point::min();
    return d;
  }

  /// Expires at the given steady-clock instant.
  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = at;
    return d;
  }

  bool is_infinite() const { return infinite_; }

  /// True once the deadline has passed. Infinite deadlines never expire.
  bool HasExpired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry: +inf for infinite deadlines, <= 0 once
  /// expired.
  double RemainingMillis() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

  /// The expiry instant; only meaningful when `!is_infinite()`. Used by
  /// condition-variable waits (`wait_until`).
  Clock::time_point time_point() const { return at_; }

  /// The standard DEADLINE_EXCEEDED status for this deadline, tagged with
  /// the stage that observed the expiry.
  Status Exceeded(const char* where) const {
    return Status::DeadlineExceeded(std::string("deadline expired at ") +
                                    where);
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace yver::util

#endif  // YVER_UTIL_DEADLINE_H_
