#include "util/fault_injector.h"

#include <chrono>
#include <string>
#include <thread>

namespace yver::util {

namespace {

// splitmix64: the same mixer util::Rng seeds from. One step per hit keeps
// the per-(point, ordinal) draw independent of every other hit.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ToUnitDouble(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kIndexLoadOpen:
      return "serve.index_load.open";
    case FaultPoint::kIndexLoadRead:
      return "serve.index_load.read";
    case FaultPoint::kMatchesCsvLoad:
      return "core.matches_csv.load";
    case FaultPoint::kMatchesCsvSave:
      return "core.matches_csv.save";
    case FaultPoint::kDatasetCsvLoad:
      return "data.dataset_csv.load";
    case FaultPoint::kCacheGet:
      return "serve.cache.get";
    case FaultPoint::kServiceCompute:
      return "serve.service.compute";
    case FaultPoint::kSocketRead:
      return "net.socket.read";
    case FaultPoint::kSocketWrite:
      return "net.socket.write";
    case FaultPoint::kIndexPublish:
      return "serve.index.publish";
    case FaultPoint::kIndexSave:
      return "serve.index.save";
    case FaultPoint::kWalAppend:
      return "serve.wal.append";
    case FaultPoint::kWalFsync:
      return "serve.wal.fsync";
    case FaultPoint::kWalReplay:
      return "serve.wal.replay";
    case FaultPoint::kNumPoints:
      break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const FaultConfig& config) {
  config_ = config;
  for (auto& o : ordinals_) o.store(0, std::memory_order_relaxed);
  for (auto& c : per_point_injected_) c.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
}

FaultKind FaultInjector::Evaluate(FaultPoint point) {
  if (!armed()) return FaultKind::kNone;
  size_t p = static_cast<size_t>(point);
  uint64_t ordinal = ordinals_[p].fetch_add(1, std::memory_order_relaxed);
  double u = ToUnitDouble(
      Mix(config_.seed ^ (0x100000001b3ULL * (p + 1)) ^ ordinal));
  FaultKind kind = FaultKind::kNone;
  double edge = config_.io_error_probability;
  if (u < edge) {
    kind = FaultKind::kIoError;
  } else if (u < (edge += config_.latency_probability)) {
    kind = FaultKind::kLatency;
  } else if (u < (edge += config_.short_read_probability)) {
    kind = FaultKind::kShortRead;
  }
  if (kind == FaultKind::kNone) return kind;
  if (config_.max_injections > 0) {
    uint64_t prev = injected_.fetch_add(1, std::memory_order_relaxed);
    if (prev >= config_.max_injections) {
      injected_.fetch_sub(1, std::memory_order_relaxed);
      return FaultKind::kNone;
    }
  } else {
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  per_point_injected_[p].fetch_add(1, std::memory_order_relaxed);
  if (kind == FaultKind::kLatency && config_.latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.latency_micros));
  }
  return kind;
}

Status FaultInjector::InjectIo(FaultPoint point) {
  switch (Evaluate(point)) {
    case FaultKind::kIoError:
      return Status::Unavailable(std::string("injected I/O error at ") +
                                 FaultPointName(point));
    case FaultKind::kShortRead:
      return Status::DataLoss(std::string("injected short read at ") +
                              FaultPointName(point));
    case FaultKind::kLatency:
    case FaultKind::kNone:
      break;
  }
  return Status::Ok();
}

}  // namespace yver::util
