#ifndef YVER_UTIL_FAULT_INJECTOR_H_
#define YVER_UTIL_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace yver::util {

/// The catalog of named injection points compiled into the library. Every
/// point is a fixed enumerator (not a free-form string) so the disabled
/// check is one relaxed atomic load and the chaos test can enumerate the
/// registry exhaustively. DESIGN.md §11 documents what each point gates.
enum class FaultPoint : uint8_t {
  kIndexLoadOpen = 0,   // serve: opening the .yvx artifact
  kIndexLoadRead,       // serve: per-match reads of the .yvx arena
  kMatchesCsvLoad,      // core: reading the matches CSV
  kMatchesCsvSave,      // core: writing the matches CSV
  kDatasetCsvLoad,      // data: reading the dataset CSV
  kCacheGet,            // serve: LRU cache lookup (latency only)
  kServiceCompute,      // serve: the query compute path (latency only)
  kSocketRead,          // net: per-read() of the wire transport
  kSocketWrite,         // net: per-write() of the wire transport
  kIndexPublish,        // serve: installing a new index generation
  kIndexSave,           // serve: writing the .yvx artifact
  kWalAppend,           // serve: appending a record to the write-ahead log
  kWalFsync,            // serve: the group-commit fsync of a WAL batch
  kWalReplay,           // serve: per-record reads during WAL recovery
  kNumPoints,           // sentinel — keep last
};

constexpr size_t kNumFaultPoints =
    static_cast<size_t>(FaultPoint::kNumPoints);

/// Stable name of a point ("serve.index_load.open", ...), used in injected
/// Status messages and the DESIGN.md catalog.
const char* FaultPointName(FaultPoint point);

/// What a fault-injection point resolved to for one hit.
enum class FaultKind : uint8_t {
  kNone = 0,
  kIoError,    // the operation fails with UNAVAILABLE
  kLatency,    // the operation stalls (sleep applied inside Evaluate)
  kShortRead,  // the read sees fewer bytes than asked -> DATA_LOSS
};

/// Fault mix for an armed injector. Probabilities are per-hit and drawn
/// from a deterministic stream seeded by (seed, point, per-point ordinal),
/// so a serial run replays the exact same fault sequence and concurrent
/// runs stay race-free (the ordinal is an atomic counter).
struct FaultConfig {
  uint64_t seed = 1;
  double io_error_probability = 0.0;
  double latency_probability = 0.0;
  double short_read_probability = 0.0;
  /// Stall length of an injected latency spike.
  uint32_t latency_micros = 100;
  /// Total faults the injector may fire while armed; 0 = unbounded. Keeps
  /// chaos runs time-bounded when latency spikes are in the mix.
  uint64_t max_injections = 0;
};

/// Process-global deterministic fault-injection registry.
///
/// Disarmed (the default and the production state) every injection point
/// costs one relaxed atomic load — there is nothing to configure, link, or
/// ifdef out. Tests arm it with a FaultConfig, run the scenario, and
/// disarm; Arm/Disarm must not race with in-flight evaluations (arm before
/// spawning workers, join before disarming — see ScopedFaultInjection in
/// the tests).
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms the injector with `config` and zeroes all counters.
  void Arm(const FaultConfig& config);
  /// Returns the injector to the zero-cost disarmed state.
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Resolves one hit of `point`. Disarmed: kNone. An injected latency
  /// spike sleeps here and then reports kLatency; error kinds are returned
  /// for the caller to surface. Thread-safe.
  FaultKind Evaluate(FaultPoint point);

  /// Convenience for Status-returning I/O paths: kIoError becomes
  /// UNAVAILABLE, kShortRead becomes DATA_LOSS (a truncated read), latency
  /// has already been applied. OK otherwise.
  Status InjectIo(FaultPoint point);

  /// Faults fired since the last Arm (all points / one point).
  uint64_t injections() const {
    return injected_.load(std::memory_order_relaxed);
  }
  uint64_t injections(FaultPoint point) const {
    return per_point_injected_[static_cast<size_t>(point)].load(
        std::memory_order_relaxed);
  }
  /// Hits evaluated at `point` since the last Arm (fired or not).
  uint64_t hits(FaultPoint point) const {
    return ordinals_[static_cast<size_t>(point)].load(
        std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  FaultConfig config_;  // written in Arm, read only while armed
  std::array<std::atomic<uint64_t>, kNumFaultPoints> ordinals_{};
  std::array<std::atomic<uint64_t>, kNumFaultPoints> per_point_injected_{};
  std::atomic<uint64_t> injected_{0};
};

}  // namespace yver::util

#endif  // YVER_UTIL_FAULT_INJECTOR_H_
