#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace yver::util {

bool DefaultRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDataLoss;
}

double NextBackoffMillis(const RetryPolicy& policy, int next_attempt,
                         Rng& rng) {
  double cap = policy.initial_backoff_ms;
  for (int i = 2; i < next_attempt; ++i) cap *= policy.multiplier;
  cap = std::clamp(cap, 0.0, policy.max_backoff_ms);
  return cap * rng.UniformDouble();  // full jitter: Uniform(0, cap)
}

namespace retry_internal {

void SleepMillis(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(ms * 1e6)));
}

}  // namespace retry_internal

}  // namespace yver::util
