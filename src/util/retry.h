#ifndef YVER_UTIL_RETRY_H_
#define YVER_UTIL_RETRY_H_

#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "util/deadline.h"
#include "util/rng.h"
#include "util/status.h"

namespace yver::util {

/// Exponential backoff with full jitter, seeded through util::Rng so every
/// retry schedule is reproducible bit-for-bit in tests. Wrapped around the
/// artifact load paths (serve::ResolutionIndex::Load, the matches CSV)
/// where transient I/O failures — real ones, or ones injected by
/// util::FaultInjector — should cost a bounded number of re-reads, not an
/// error surfaced to the caller.
struct RetryPolicy {
  /// Total tries, including the first. Must be >= 1.
  int max_attempts = 3;
  /// Backoff cap for attempt k is initial * multiplier^(k-1), clamped to
  /// max_backoff_ms; the actual sleep is Uniform(0, cap) — "full jitter".
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 1000.0;
  double multiplier = 2.0;
  /// Seed of the jitter Rng. Same seed + same outcome sequence = same
  /// backoff schedule.
  uint64_t seed = 0x5eedf00dULL;
  /// Which errors are worth retrying. Default: UNAVAILABLE (transient
  /// I/O) and DATA_LOSS (a re-read may see the complete bytes a racing or
  /// faulty read truncated). Everything else fails fast.
  std::function<bool(const Status&)> retryable;
  /// Test seam: how to wait `ms` between attempts. Null = real sleep.
  std::function<void(double ms)> sleep_fn;
};

/// True for the codes RetryPolicy retries by default.
bool DefaultRetryable(const Status& status);

/// The jittered backoff before attempt `next_attempt` (2-based: the wait
/// after the first failure precedes attempt 2). Deterministic given rng
/// state. Exposed for tests.
double NextBackoffMillis(const RetryPolicy& policy, int next_attempt,
                         Rng& rng);

/// Per-call retry telemetry.
struct RetryStats {
  int attempts = 0;
  double total_backoff_ms = 0.0;
  Status last_error = Status::Ok();
};

namespace retry_internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const StatusOr<T>& s) {
  return s.status();
}
void SleepMillis(double ms);
}  // namespace retry_internal

/// Runs `fn` (returning Status or StatusOr<T>) up to
/// `policy.max_attempts` times, sleeping a jittered backoff between
/// retryable failures. Stops early when `deadline` expires — the expiry
/// wins over further attempts and the result is DEADLINE_EXCEEDED (the
/// last underlying error is kept in `stats`). Non-retryable errors and
/// exhausted budgets return the last result unchanged.
template <typename F>
auto RetryWithPolicy(const RetryPolicy& policy, F&& fn,
                     RetryStats* stats = nullptr,
                     const Deadline& deadline = Deadline()) ->
    typename std::invoke_result_t<F> {
  Rng rng(policy.seed);
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  s = RetryStats();
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    if (deadline.HasExpired()) {
      s.last_error = deadline.Exceeded("retry loop");
      return s.last_error;
    }
    auto result = fn();
    ++s.attempts;
    const Status& status = retry_internal::StatusOf(result);
    if (status.ok()) return result;
    s.last_error = status;
    bool retryable = policy.retryable ? policy.retryable(status)
                                      : DefaultRetryable(status);
    if (!retryable || attempt >= max_attempts) return result;
    double backoff = NextBackoffMillis(policy, attempt + 1, rng);
    if (!deadline.is_infinite() && backoff >= deadline.RemainingMillis()) {
      s.last_error = deadline.Exceeded("retry backoff");
      return s.last_error;
    }
    s.total_backoff_ms += backoff;
    if (policy.sleep_fn) {
      policy.sleep_fn(backoff);
    } else {
      retry_internal::SleepMillis(backoff);
    }
  }
}

}  // namespace yver::util

#endif  // YVER_UTIL_RETRY_H_
