#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace yver::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  YVER_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Zipf(size_t n, double s) {
  YVER_CHECK(n > 0);
  // Cumulative search over 1/k^s. For the alphabets used here (<= a few
  // thousand) this linear pass is cheap and avoids table storage.
  double norm = 0.0;
  for (size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double u = UniformDouble() * norm;
  double cum = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    cum += 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= cum) return k - 1;
  }
  return n - 1;
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  YVER_CHECK(!weights.empty());
  double sum = 0.0;
  for (double w : weights) {
    YVER_CHECK(w >= 0.0);
    sum += w;
  }
  YVER_CHECK(sum > 0.0);
  double u = UniformDouble() * sum;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (u <= cum) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  YVER_CHECK(n > 0);
  cdf_.resize(n);
  double cum = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    cum += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = cum;
  }
  for (auto& c : cdf_) c /= cum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace yver::util
