#ifndef YVER_UTIL_RNG_H_
#define YVER_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace yver::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomized components in the library (synthetic data generation,
/// sampling, canopy seeding, train/test splits) draw from an explicitly
/// seeded Rng so that every experiment is reproducible bit-for-bit.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed via splitmix64 expansion.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard-normal sample (Box-Muller).
  double Gaussian();

  /// Returns a Zipf(s)-distributed index in [0, n) using inverse-CDF over a
  /// precomputed table is avoided; this uses rejection-free cumulative
  /// search, O(n) worst case — fine for the small alphabets we use it on.
  size_t Zipf(size_t n, double s);

  /// Returns an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires a non-empty vector with non-negative weights
  /// and a positive sum.
  size_t PickWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffles v in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Precomputed Zipf(s) sampler over [0, n): builds the CDF once and
/// samples by binary search. Use instead of Rng::Zipf in hot loops.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Returns an index in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace yver::util

#endif  // YVER_UTIL_RNG_H_
