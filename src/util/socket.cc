#include "util/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <utility>

#include "util/fault_injector.h"

namespace yver::util {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

/// Applies the deterministic fault mix to one I/O attempt: UNAVAILABLE on
/// an injected error, a truncated request length on an injected short
/// read/write (forcing the partial-I/O path), pass-through otherwise.
Status InjectAndTruncate(FaultPoint point, size_t* n) {
  switch (FaultInjector::Global().Evaluate(point)) {
    case FaultKind::kIoError:
      return Status::Unavailable(std::string("injected socket error at ") +
                                 FaultPointName(point));
    case FaultKind::kShortRead:
      if (*n > 1) *n = 1;  // fragment, never corrupt
      break;
    case FaultKind::kLatency:
    case FaultKind::kNone:
      break;
  }
  return Status::Ok();
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> Socket::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return sock;
}

StatusOr<Socket> Socket::ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  return sock;
}

StatusOr<uint16_t> Socket::LocalPort() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<Socket> Socket::Accept() {
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    return Errno("accept");
  }
  return Socket(fd);
}

Status Socket::SetNonBlocking(bool non_blocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::Ok();
}

Status Socket::SetNoDelay(bool no_delay) {
  int one = no_delay ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

StatusOr<IoResult> Socket::ReadSome(void* buf, size_t n) {
  Status injected = InjectAndTruncate(FaultPoint::kSocketRead, &n);
  if (!injected.ok()) return injected;
  ssize_t r;
  do {
    r = ::read(fd_, buf, n);
  } while (r < 0 && errno == EINTR);
  IoResult result;
  if (r > 0) {
    result.bytes = static_cast<size_t>(r);
  } else if (r == 0) {
    result.eof = true;
  } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
    result.would_block = true;
  } else {
    return Errno("read");
  }
  return result;
}

StatusOr<IoResult> Socket::WriteSome(const void* buf, size_t n) {
  Status injected = InjectAndTruncate(FaultPoint::kSocketWrite, &n);
  if (!injected.ok()) return injected;
  ssize_t r;
  do {
    // send + MSG_NOSIGNAL: a peer that vanished mid-response must surface
    // as a typed UNAVAILABLE, not a process-killing SIGPIPE.
    r = ::send(fd_, buf, n, MSG_NOSIGNAL);
  } while (r < 0 && errno == EINTR);
  IoResult result;
  if (r >= 0) {
    result.bytes = static_cast<size_t>(r);
  } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
    result.would_block = true;
  } else if (errno == EPIPE || errno == ECONNRESET) {
    return Status::Unavailable("connection closed by peer");
  } else {
    return Errno("write");
  }
  return result;
}

namespace {

/// Waits for readiness so a finite deadline actually interrupts a blocking
/// socket (a bare read(2) would sleep past any expiry check).
Status AwaitReady(int fd, short events, const Deadline& deadline,
                  const char* what) {
  if (deadline.is_infinite()) return Status::Ok();
  double remaining = deadline.RemainingMillis();
  if (remaining <= 0) {
    return Status::DeadlineExceeded(std::string("deadline expired at ") +
                                    what);
  }
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  int rc;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(remaining) + 1);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) {
    return Status::DeadlineExceeded(std::string("deadline expired at ") +
                                    what);
  }
  return Status::Ok();
}

}  // namespace

Status Socket::ReadFull(void* buf, size_t n, const Deadline& deadline) {
  auto* p = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    Status ready = AwaitReady(fd_, POLLIN, deadline, "socket read");
    if (!ready.ok()) return ready;
    auto r = ReadSome(p + done, n - done);
    if (!r.ok()) return r.status();
    if (r->eof) return Status::Unavailable("connection closed");
    done += r->bytes;
  }
  return Status::Ok();
}

Status Socket::WriteFull(const void* buf, size_t n, const Deadline& deadline) {
  const auto* p = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    Status ready = AwaitReady(fd_, POLLOUT, deadline, "socket write");
    if (!ready.ok()) return ready;
    auto r = WriteSome(p + done, n - done);
    if (!r.ok()) return r.status();
    done += r->bytes;
  }
  return Status::Ok();
}

}  // namespace yver::util
