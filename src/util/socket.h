#ifndef YVER_UTIL_SOCKET_H_
#define YVER_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>

#include "util/deadline.h"
#include "util/status.h"

namespace yver::util {

/// Outcome of one non-blocking-aware socket read or write. Exactly one of
/// the three shapes holds: progress (`bytes > 0`), end-of-stream
/// (`eof`, reads only), or "try again later" (`would_block`). Hard errors
/// travel as the surrounding StatusOr.
struct IoResult {
  size_t bytes = 0;
  bool eof = false;
  bool would_block = false;
};

/// A minimal owning TCP socket for the serving layer: loopback-friendly
/// listen/connect/accept plus Status-typed partial reads and writes.
///
/// Every ReadSome/WriteSome passes through the deterministic
/// util::FaultInjector at `net.socket.read` / `net.socket.write`: an
/// injected I/O error surfaces as UNAVAILABLE, an injected latency spike
/// stalls the call, and an injected "short read" truncates the requested
/// length to 1 byte — which never corrupts a byte stream, it just forces
/// the partial-read/short-write handling the frame codec must survive.
///
/// Move-only; the destructor closes the descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor now (idempotent).
  void Close();

  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
  /// port; read it back with LocalPort). SO_REUSEADDR is set so restart
  /// races in tests and scripts don't hit TIME_WAIT.
  static StatusOr<Socket> Listen(uint16_t port, int backlog = 128);

  /// Blocking connect to 127.0.0.1:`port`.
  static StatusOr<Socket> ConnectLoopback(uint16_t port);

  /// The locally bound port (after Listen with port 0).
  StatusOr<uint16_t> LocalPort() const;

  /// Accepts one pending connection. would_block (via the IoResult-style
  /// convention below) is reported as an invalid Socket with OK status —
  /// callers in the epoll loop check `valid()`.
  StatusOr<Socket> Accept();

  /// Switches the descriptor between blocking and non-blocking mode.
  Status SetNonBlocking(bool non_blocking);

  /// Disables Nagle's algorithm — a request/response protocol with small
  /// frames wants every flush on the wire immediately.
  Status SetNoDelay(bool no_delay);

  /// One read(2), EINTR-retried. See IoResult for the outcome shapes.
  StatusOr<IoResult> ReadSome(void* buf, size_t n);

  /// One write(2), EINTR-retried, short writes allowed.
  StatusOr<IoResult> WriteSome(const void* buf, size_t n);

  /// Blocking helpers for the client side: loop until exactly `n` bytes
  /// moved, the peer closes (ReadFull: UNAVAILABLE "connection closed"),
  /// or the deadline expires (DEADLINE_EXCEEDED). Only meaningful on
  /// blocking-mode sockets.
  Status ReadFull(void* buf, size_t n, const Deadline& deadline = {});
  Status WriteFull(const void* buf, size_t n, const Deadline& deadline = {});

 private:
  int fd_ = -1;
};

}  // namespace yver::util

#endif  // YVER_UTIL_SOCKET_H_
