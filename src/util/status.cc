#include "util/status.h"

namespace yver::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

}  // namespace yver::util
