#ifndef YVER_UTIL_STATUS_H_
#define YVER_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace yver::util {

/// Error category of a Status. Mirrors the small subset of canonical codes
/// the serving layer needs; extend as new failure modes appear.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed query (NaN certainty, bad granularity)
  kNotFound,           // record / file does not exist
  kOutOfRange,         // record index beyond the indexed corpus
  kDataLoss,           // corrupt or truncated index file
  kInternal,           // invariant violation that was recoverable
  kDeadlineExceeded,   // the caller's deadline expired before the answer
  kResourceExhausted,  // load shed: in-flight budget and wait queue full
  kUnavailable,        // transient I/O failure; retrying may succeed
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value: the typed error channel shared
/// by serve::ResolutionService, the CLI, and tests (no exceptions, no
/// errno-style out parameters).
class Status {
 public:
  /// Default is success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: certainty is NaN".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are advisory
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value of type T. `ok()` implies `value()` is present;
/// accessing the value of a failed StatusOr aborts (programmer error, in
/// line with YVER_CHECK semantics).
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: `return result;`.
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from an error status: `return Status::NotFound(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    YVER_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    YVER_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    YVER_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    YVER_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace yver::util

#endif  // YVER_UTIL_STATUS_H_
