#include "util/string_util.h"

#include <cctype>

namespace yver::util {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace yver::util
