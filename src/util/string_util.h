#ifndef YVER_UTIL_STRING_UTIL_H_
#define YVER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace yver::util {

/// Returns s converted to ASCII lowercase.
std::string ToLower(std::string_view s);

/// Returns s with leading/trailing ASCII whitespace removed.
std::string Trim(std::string_view s);

/// Splits s on the given delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits s on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Returns true when s begins with prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Returns true when s ends with suffix.
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace yver::util

#endif  // YVER_UTIL_STRING_UTIL_H_
