#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/check.h"

namespace yver::util {

size_t ResolveNumThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  YVER_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    YVER_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunkedIndexed(
      n, [&fn](size_t /*chunk*/, size_t begin, size_t end) {
        fn(begin, end);
      });
}

void ThreadPool::ParallelForChunkedIndexed(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t target = std::min(n, num_threads() * 4);
  size_t chunk = (n + target - 1) / target;
  size_t index = 0;
  for (size_t begin = 0; begin < n; begin += chunk, ++index) {
    size_t end = std::min(n, begin + chunk);
    Submit([index, begin, end, &fn] { fn(index, begin, end); });
  }
  Wait();
}

size_t ThreadPool::NumChunks(size_t n) const {
  if (n == 0) return 0;
  size_t target = std::min(n, num_threads() * 4);
  size_t chunk = (n + target - 1) / target;
  return (n + chunk - 1) / chunk;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      // A throwing task must not escape the worker (std::terminate); park
      // the first exception for the next Wait() to rethrow.
      thrown = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (thrown != nullptr && first_exception_ == nullptr) {
        first_exception_ = thrown;
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace yver::util
