#ifndef YVER_UTIL_THREAD_POOL_H_
#define YVER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace yver::util {

/// Fixed-size worker pool.
///
/// Replaces the Apache Spark pseudo-cluster the paper used for block
/// construction: MFI support sets are scored and pruned by sharding the MFI
/// list across workers (see blocking::MfiBlocks). Tasks are void thunks;
/// callers aggregate results through their own synchronized sinks or by
/// sharding output slots per task.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Work is chunked to keep per-task overhead low.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace yver::util

#endif  // YVER_UTIL_THREAD_POOL_H_
