#ifndef YVER_UTIL_THREAD_POOL_H_
#define YVER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace yver::util {

/// The number of worker threads a `num_threads` request resolves to:
/// the request itself when positive, otherwise one worker per hardware
/// thread (minimum 1). Every `num_threads = 0` default in the library —
/// blocking, the resolve pipeline, the serving layer — goes through this
/// one function so they cannot drift apart.
size_t ResolveNumThreads(size_t requested);

/// Fixed-size worker pool.
///
/// Replaces the Apache Spark pseudo-cluster the paper used for block
/// construction: MFI support sets are scored and pruned by sharding the MFI
/// list across workers (see blocking::MfiBlocks). Tasks are void thunks;
/// callers aggregate results through their own synchronized sinks or by
/// sharding output slots per task.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  ///
  /// Exception safety: a throwing task no longer escapes its worker thread
  /// (which would call std::terminate) — the first exception thrown since
  /// the last Wait() is captured and rethrown here, after all outstanding
  /// tasks have drained. Later exceptions from the same batch are dropped.
  /// The pool stays fully usable after the rethrow. ParallelFor and the
  /// chunked variants wait internally, so they propagate task exceptions
  /// the same way.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Work is chunked to keep per-task overhead low.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Splits [0, n) into contiguous chunks and runs fn(begin, end) for each
  /// across the pool, then waits. One fn call per task, so callers can
  /// amortize per-task state (scratch buffers) over a whole chunk. Chunk
  /// boundaries depend only on n and num_threads(), never on scheduling,
  /// which is what lets chunk-indexed output slots stay deterministic.
  void ParallelForChunked(
      size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Like ParallelForChunked, but fn also receives the chunk's dense index
  /// (ascending with begin), so callers can write per-chunk partial results
  /// into chunk-indexed slots — sized via NumChunks(n) up front — and merge
  /// them serially in chunk order afterwards. This is the pattern behind
  /// every deterministic parallel reduction in the library (see DESIGN.md
  /// §7/§9).
  void ParallelForChunkedIndexed(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

  /// Number of chunks ParallelForChunked/ParallelForChunkedIndexed will
  /// split [0, n) into. Depends only on n and num_threads().
  size_t NumChunks(size_t n) const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_exception_;  // guarded by mu_
};

}  // namespace yver::util

#endif  // YVER_UTIL_THREAD_POOL_H_
