#include "util/timer.h"

namespace yver::util {

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::Reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Timer::ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

}  // namespace yver::util
