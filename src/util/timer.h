#ifndef YVER_UTIL_TIMER_H_
#define YVER_UTIL_TIMER_H_

#include <chrono>

namespace yver::util {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  /// Starts the timer at construction.
  Timer();

  /// Restarts the timer.
  void Reset();

  /// Returns elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const;

  /// Returns elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace yver::util

#endif  // YVER_UTIL_TIMER_H_
