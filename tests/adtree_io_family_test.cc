#include <gtest/gtest.h>

#include "core/family_resolution.h"
#include "ml/adtree_io.h"
#include "ml/adtree_trainer.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace yver {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

// ---------------------------------------------------------------------------
// ADTree serialization

ml::AdTree MakeTree() {
  ml::AdTree tree(-0.289);
  ml::AdtCondition nominal;
  nominal.feature = features::FeatureSchema::Get().IndexOf("sameFFN");
  nominal.is_nominal = true;
  nominal.nominal_value = 0;
  tree.AddSplitter(tree.root(), nominal, -1.314, 0.539, 1);
  ml::AdtCondition numeric;
  numeric.feature = features::FeatureSchema::Get().IndexOf("MFNdist");
  numeric.is_nominal = false;
  numeric.threshold = 0.728;
  tree.AddSplitter(1, numeric, -0.718, 1.528, 2);  // under the "no" child
  return tree;
}

features::FeatureVector VectorWith(const char* name, double v) {
  features::FeatureVector fv;
  fv.values.assign(features::FeatureSchema::Get().size(),
                   features::MissingValue());
  fv.values[features::FeatureSchema::Get().IndexOf(name)] = v;
  return fv;
}

TEST(AdTreeIoTest, RoundTripPreservesScores) {
  ml::AdTree tree = MakeTree();
  auto parsed = ml::ParseAdTree(ml::SerializeAdTree(tree));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_splitters(), tree.num_splitters());
  for (double v : {0.0, 1.0, 2.0}) {
    auto fv = VectorWith("sameFFN", v);
    EXPECT_DOUBLE_EQ(parsed->Score(fv), tree.Score(fv));
  }
  auto both = VectorWith("sameFFN", 0.0);
  both.values[features::FeatureSchema::Get().IndexOf("MFNdist")] = 0.5;
  EXPECT_DOUBLE_EQ(parsed->Score(both), tree.Score(both));
}

TEST(AdTreeIoTest, RoundTripTrainedModel) {
  // Train a real model and verify bit-exact score reproduction.
  util::Rng rng(3);
  std::vector<ml::Instance> instances;
  for (int i = 0; i < 200; ++i) {
    ml::Instance inst;
    double v = rng.UniformDouble();
    inst.features = VectorWith("LNdist", v);
    inst.label = v > 0.5 ? 1 : -1;
    instances.push_back(std::move(inst));
  }
  ml::AdTree tree = ml::TrainAdTree(instances, {});
  auto parsed = ml::ParseAdTree(ml::SerializeAdTree(tree));
  ASSERT_TRUE(parsed.has_value());
  for (const auto& inst : instances) {
    EXPECT_DOUBLE_EQ(parsed->Score(inst.features),
                     tree.Score(inst.features));
  }
}

TEST(AdTreeIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ml::ParseAdTree("").has_value());
  EXPECT_FALSE(ml::ParseAdTree("not a model\n").has_value());
  EXPECT_FALSE(
      ml::ParseAdTree("yver-adtree v1\nprior abcdef\nbogus line\n")
          .has_value());
  // Feature index out of range.
  EXPECT_FALSE(ml::ParseAdTree("yver-adtree v1\nprior 0.5\n"
                               "splitter 1 0 N 9999 0.5 1.0 -1.0\n")
                   .has_value());
  // Parent prediction out of range.
  EXPECT_FALSE(ml::ParseAdTree("yver-adtree v1\nprior 0.5\n"
                               "splitter 1 7 N 0 0.5 1.0 -1.0\n")
                   .has_value());
}

TEST(AdTreeIoTest, FileRoundTrip) {
  ml::AdTree tree = MakeTree();
  std::string path = ::testing::TempDir() + "/model.adt";
  ASSERT_TRUE(ml::SaveAdTree(tree, path));
  auto loaded = ml::LoadAdTree(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_splitters(), 2u);
  EXPECT_FALSE(ml::LoadAdTree(path + ".missing").has_value());
}

// ---------------------------------------------------------------------------
// Family resolution

Dataset FamilyDataset() {
  Dataset ds;
  auto add = [&ds](int64_t entity, int64_t family, const char* fn,
                   const char* ln, const char* father, const char* mother,
                   const char* spouse, const char* city) {
    Record r;
    r.entity_id = entity;
    r.family_id = family;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, ln);
    if (*father) r.Add(AttributeId::kFathersName, father);
    if (*mother) r.Add(AttributeId::kMothersName, mother);
    if (*spouse) r.Add(AttributeId::kSpouseName, spouse);
    r.Add(AttributeId::kPermCity, city);
    ds.Add(std::move(r));
  };
  // The Capelluto family of Rhodes: parents + two children, one record
  // each (so person-level clusters are singletons).
  add(1, 1, "Bohor", "Capelluto", "", "", "Zimbul", "Rhodes");
  add(2, 1, "Zimbul", "Capelluto", "", "", "Bohor", "Rhodes");
  add(3, 1, "Elsa", "Capelluto", "Bohor", "Zimbul", "", "Rhodes");
  add(4, 1, "Giulia", "Capelluto", "Bohor", "Zimbul", "", "Rhodes");
  // An unrelated Capelluto in a different town with different parents.
  add(5, 2, "Isaac", "Capelluto", "Daniel", "Reina", "", "Salonika");
  // A completely different family.
  add(6, 3, "Mendel", "Kesler", "Hersh", "Chaya", "", "Lublin");
  add(7, 3, "Hersh", "Kesler", "", "", "Chaya", "Lublin");
  return ds;
}

TEST(FamilyResolutionTest, MergesSiblingsAndSpouses) {
  Dataset ds = FamilyDataset();
  // Person clusters = singletons (empty resolution).
  core::EntityClusters singletons(core::RankedResolution{}, ds.size(), 0.0);
  auto families = core::ResolveFamilies(ds, singletons);
  // Find the cluster containing record 2 (Elsa).
  const core::FamilyCluster* capelluto = nullptr;
  for (const auto& fc : families) {
    if (std::find(fc.records.begin(), fc.records.end(), 2u) !=
        fc.records.end()) {
      capelluto = &fc;
    }
  }
  ASSERT_NE(capelluto, nullptr);
  // Elsa + Giulia (siblings) + Bohor/Zimbul (parents by name, spouses).
  EXPECT_GE(capelluto->records.size(), 4u);
  // Isaac (record 4) must not be absorbed: different town and parents.
  EXPECT_TRUE(std::find(capelluto->records.begin(),
                        capelluto->records.end(),
                        4u) == capelluto->records.end());
}

TEST(FamilyResolutionTest, SpouseRuleWithoutSharedParents) {
  Dataset ds = FamilyDataset();
  core::EntityClusters singletons(core::RankedResolution{}, ds.size(), 0.0);
  auto families = core::ResolveFamilies(ds, singletons);
  // Mendel+Hersh Kesler connect via the parent rule (Mendel's father is
  // Hersh) and Hersh/Chaya spouse reference.
  for (const auto& fc : families) {
    bool has5 = std::find(fc.records.begin(), fc.records.end(), 5u) !=
                fc.records.end();
    bool has6 = std::find(fc.records.begin(), fc.records.end(), 6u) !=
                fc.records.end();
    EXPECT_EQ(has5, has6) << "Kesler father and son should co-cluster";
  }
}

TEST(FamilyResolutionTest, QualityAgainstLatentFamilies) {
  Dataset ds = FamilyDataset();
  core::EntityClusters singletons(core::RankedResolution{}, ds.size(), 0.0);
  auto families = core::ResolveFamilies(ds, singletons);
  auto q = core::EvaluateFamilyClusters(ds, families);
  EXPECT_GT(q.Recall(), 0.5);
  EXPECT_GT(q.Precision(), 0.9);
}

TEST(FamilyResolutionTest, SyntheticFamiliesRecovered) {
  synth::GeneratorConfig config;
  config.num_persons = 300;
  config.seed = 21;
  auto generated = synth::Generate(config);
  core::EntityClusters singletons(core::RankedResolution{},
                                  generated.dataset.size(), 0.0);
  auto families = core::ResolveFamilies(generated.dataset, singletons);
  auto q = core::EvaluateFamilyClusters(generated.dataset, families);
  // Family evidence should beat chance decisively on synthetic data.
  EXPECT_GT(q.Precision(), 0.5);
  EXPECT_GT(q.Recall(), 0.1);
}

}  // namespace
}  // namespace yver
