#include <set>

#include <gtest/gtest.h>

#include "blocking/baselines/attribute_clustering.h"
#include "blocking/baselines/baseline_runner.h"
#include "blocking/baselines/canopy_clustering.h"
#include "blocking/baselines/qgram_blocking.h"
#include "blocking/baselines/sorted_neighborhood.h"
#include "blocking/baselines/standard_blocking.h"
#include "blocking/baselines/suffix_arrays.h"
#include "blocking/baselines/typi_match.h"
#include "core/evaluation.h"
#include "synth/generator.h"

namespace yver::blocking::baselines {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

Dataset SmallDataset() {
  Dataset ds;
  auto add = [&ds](int64_t entity, const char* fn, const char* ln) {
    Record r;
    r.entity_id = entity;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, ln);
    ds.Add(std::move(r));
  };
  add(1, "Guido", "Foa");
  add(1, "Guido", "Foa");
  add(2, "Guido", "Kesler");
  add(3, "Mendel", "Kesler");
  add(4, "Rosa", "Levi");
  return ds;
}

// ---------------------------------------------------------------------------
// Helpers

TEST(BaselineHelpersTest, RecordTokensPrefixedAndDeduped) {
  Record r;
  r.Add(AttributeId::kFirstName, "Guido Maria");
  r.Add(AttributeId::kFathersName, "Guido");
  auto prefixed = RecordTokens(r, /*attribute_prefixed=*/true);
  EXPECT_EQ(prefixed.size(), 3u);  // FN_guido FN_maria FFN_guido
  auto raw = RecordTokens(r, /*attribute_prefixed=*/false);
  EXPECT_EQ(raw.size(), 2u);  // guido, maria (deduped)
}

TEST(BaselineHelpersTest, PairsOfBlocksDeduplicates) {
  std::vector<BaselineBlock> blocks = {{0, 1, 2}, {1, 2, 3}};
  auto pairs = PairsOfBlocks(blocks);
  EXPECT_EQ(pairs.size(), 5u);  // (0,1)(0,2)(1,2)(1,3)(2,3)
  EXPECT_EQ(CountDistinctPairs(blocks), 5u);
}

TEST(BaselineHelpersTest, PurgeOversizedDropsBigBlocks) {
  std::vector<BaselineBlock> blocks = {{0, 1}, {0, 1, 2, 3, 4}};
  auto purged = PurgeOversized(std::move(blocks), 3);
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0].size(), 2u);
}

// ---------------------------------------------------------------------------
// Individual techniques

TEST(StandardBlockingTest, BlocksShareAttributeValue) {
  Dataset ds = SmallDataset();
  StandardBlocking stbl;
  auto blocks = stbl.BuildBlocks(ds);
  // Guido block {0,1,2}, Foa block {0,1}, Kesler block {2,3}.
  std::set<data::RecordPair> pairs;
  for (const auto& p : PairsOfBlocks(blocks)) pairs.insert(p);
  EXPECT_TRUE(pairs.count(data::RecordPair(0, 1)));
  EXPECT_TRUE(pairs.count(data::RecordPair(0, 2)));
  EXPECT_TRUE(pairs.count(data::RecordPair(2, 3)));
  EXPECT_FALSE(pairs.count(data::RecordPair(0, 4)));
}

TEST(StandardBlockingTest, AttributePrefixSeparatesFields) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kFirstName, "Israel");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "Israel");
  ds.Add(std::move(b));
  StandardBlocking stbl;
  EXPECT_TRUE(PairsOfBlocks(stbl.BuildBlocks(ds)).empty());
}

TEST(AttributeClusteringTest, ClusterKeyUnifiesSpellingVariants) {
  EXPECT_EQ(AttributeClustering::ClusterKey("john"),
            AttributeClustering::ClusterKey("jhon"));
  EXPECT_EQ(AttributeClustering::ClusterKey("kaminski"),
            AttributeClustering::ClusterKey("caminsky"));
  EXPECT_EQ(AttributeClustering::ClusterKey("weiss"),
            AttributeClustering::ClusterKey("weisz"));
  EXPECT_NE(AttributeClustering::ClusterKey("foa"),
            AttributeClustering::ClusterKey("kesler"));
}

TEST(AttributeClusteringTest, CatchesVariantPairs) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kLastName, "Kaminski");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "Kaminsky");
  ds.Add(std::move(b));
  AttributeClustering acl;
  auto pairs = PairsOfBlocks(acl.BuildBlocks(ds));
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(CanopyClusteringTest, GroupsSimilarRecords) {
  Dataset ds = SmallDataset();
  CanopyClustering cacl(0.2, 0.6, 31);
  auto blocks = cacl.BuildBlocks(ds);
  std::set<data::RecordPair> pairs;
  for (const auto& p : PairsOfBlocks(blocks)) pairs.insert(p);
  EXPECT_TRUE(pairs.count(data::RecordPair(0, 1)));
}

TEST(CanopyClusteringTest, ExtendedAssignsLeftovers) {
  // ECaCl's pair set is a superset of what its canopies give unassigned
  // records; on a dataset with an outlier close to one canopy the plain
  // pass may drop it.
  Dataset ds = SmallDataset();
  ExtendedCanopyClustering ecacl(0.4, 0.8, 31);
  auto blocks = ecacl.BuildBlocks(ds);
  size_t assigned = 0;
  for (const auto& b : blocks) assigned += b.size();
  EXPECT_GE(assigned, 2u);
}

TEST(QGramBlockingTest, SharesSubstringBlocks) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kLastName, "Kesler");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "Kessler");  // shares many 3-grams
  ds.Add(std::move(b));
  QGramBlocking qgbl(3);
  auto pairs = PairsOfBlocks(qgbl.BuildBlocks(ds));
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(ExtendedQGramBlockingTest, ProducesKeys) {
  Dataset ds = SmallDataset();
  ExtendedQGramBlocking eqbl;
  auto blocks = eqbl.BuildBlocks(ds);
  EXPECT_FALSE(blocks.empty());
}

TEST(SortedNeighborhoodTest, WindowJoinsAlphabeticalNeighbors) {
  Dataset ds;
  for (const char* name : {"Foa", "Fob", "Foc", "Zzz"}) {
    Record r;
    r.Add(AttributeId::kLastName, name);
    ds.Add(std::move(r));
  }
  ExtendedSortedNeighborhood esone(3);
  auto pairs = PairsOfBlocks(esone.BuildBlocks(ds));
  std::set<data::RecordPair> set(pairs.begin(), pairs.end());
  EXPECT_TRUE(set.count(data::RecordPair(0, 1)));
  EXPECT_TRUE(set.count(data::RecordPair(0, 2)));
  // Zzz only pairs via the window containing foc..zzz.
}

TEST(SuffixArraysTest, SharedSuffixBlocks) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kLastName, "Rosenbaum");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "Mandelbaum");  // shares suffix "baum"
  ds.Add(std::move(b));
  SuffixArrays suar(4);
  auto pairs = PairsOfBlocks(suar.BuildBlocks(ds));
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(ExtendedSuffixArraysTest, SharedInfixBlocks) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kLastName, "Grinberg");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "Grinblatt");  // shares prefix "grin"
  ds.Add(std::move(b));
  SuffixArrays suar(4);
  EXPECT_TRUE(PairsOfBlocks(suar.BuildBlocks(ds)).empty());
  ExtendedSuffixArrays esuar(4);
  EXPECT_EQ(PairsOfBlocks(esuar.BuildBlocks(ds)).size(), 1u);
}

TEST(TypiMatchTest, ProducesBlocksOnRealisticData) {
  synth::GeneratorConfig config;
  config.num_persons = 150;
  auto generated = synth::Generate(config);
  TypiMatch typi;
  auto blocks = typi.BuildBlocks(generated.dataset);
  EXPECT_FALSE(blocks.empty());
  for (const auto& b : blocks) EXPECT_GE(b.size(), 2u);
}

// ---------------------------------------------------------------------------
// Registry & cross-technique properties

TEST(BaselineRegistryTest, AllTenPresentInTableOrder) {
  auto baselines = AllBaselines();
  ASSERT_EQ(baselines.size(), 10u);
  const char* expected[] = {"StBl",  "ACl",   "CaCl",  "ECaCl", "QGBl",
                            "EQBl",  "ESoNe", "SuAr",  "ESuAr", "TYPiMatch"};
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(baselines[i]->name(), expected[i]);
  }
}

class BaselinePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BaselinePropertyTest, BlocksAreValidOnSyntheticData) {
  synth::GeneratorConfig config;
  config.num_persons = 120;
  config.seed = 77;
  auto generated = synth::Generate(config);
  auto baselines = AllBaselines();
  const auto& baseline = baselines[GetParam()];
  auto blocks = baseline->BuildBlocks(generated.dataset);
  for (const auto& b : blocks) {
    EXPECT_GE(b.size(), 2u) << baseline->name();
    std::set<data::RecordIdx> unique(b.begin(), b.end());
    EXPECT_EQ(unique.size(), b.size()) << baseline->name();
    for (auto r : b) EXPECT_LT(r, generated.dataset.size());
  }
  // Recall at small scale is decent for every technique.
  auto q = core::EvaluatePairs(generated.dataset, PairsOfBlocks(blocks));
  EXPECT_GT(q.Recall(), 0.3) << baseline->name();
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, BaselinePropertyTest,
                         ::testing::Range<size_t>(0, 10));

}  // namespace
}  // namespace yver::blocking::baselines
