#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "blocking/block_scoring.h"
#include "blocking/item_similarity.h"
#include "blocking/mfi_blocks.h"
#include "blocking/neighborhood.h"
#include "data/item_dictionary.h"
#include "util/thread_pool.h"

namespace yver::blocking {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

// ---------------------------------------------------------------------------
// Expert item similarity (Eq. 1)

class ItemSimTest : public ::testing::Test {
 protected:
  data::ItemDictionary dict_;
};

TEST_F(ItemSimTest, DifferentAttributesScoreZero) {
  auto a = dict_.Intern(AttributeId::kFirstName, "Guido");
  auto b = dict_.Intern(AttributeId::kFathersName, "Guido");
  EXPECT_DOUBLE_EQ(ExpertItemSimilarity(dict_, a, b), 0.0);
}

TEST_F(ItemSimTest, NamesUseJaroWinkler) {
  auto a = dict_.Intern(AttributeId::kLastName, "Foa");
  auto b = dict_.Intern(AttributeId::kLastName, "Foy");
  double s = ExpertItemSimilarity(dict_, a, b);
  EXPECT_GT(s, 0.5);
  EXPECT_LT(s, 1.0);
  EXPECT_DOUBLE_EQ(ExpertItemSimilarity(dict_, a, a), 1.0);
}

TEST_F(ItemSimTest, YearDistanceNormalizedBy50) {
  auto a = dict_.Intern(AttributeId::kBirthYear, "1920");
  auto b = dict_.Intern(AttributeId::kBirthYear, "1930");
  EXPECT_NEAR(ExpertItemSimilarity(dict_, a, b), 1.0 - 10.0 / 50.0, 1e-9);
  auto c = dict_.Intern(AttributeId::kBirthYear, "1820");
  EXPECT_DOUBLE_EQ(ExpertItemSimilarity(dict_, a, c), 0.0);  // clamped
}

TEST_F(ItemSimTest, MonthAndDayNormalization) {
  auto m1 = dict_.Intern(AttributeId::kBirthMonth, "3");
  auto m2 = dict_.Intern(AttributeId::kBirthMonth, "9");
  EXPECT_NEAR(ExpertItemSimilarity(dict_, m1, m2), 1.0 - 6.0 / 12.0, 1e-9);
  auto d1 = dict_.Intern(AttributeId::kBirthDay, "1");
  auto d2 = dict_.Intern(AttributeId::kBirthDay, "31");
  EXPECT_NEAR(ExpertItemSimilarity(dict_, d1, d2), 1.0 - 30.0 / 31.0, 1e-9);
}

TEST_F(ItemSimTest, GeoUsesHaversineOver100Km) {
  auto turin = dict_.Intern(AttributeId::kBirthCity, "Torino");
  auto monca = dict_.Intern(AttributeId::kBirthCity, "Moncalieri");
  dict_.SetGeo(turin, {45.07, 7.69});
  dict_.SetGeo(monca, {45.00, 7.68});
  double s = ExpertItemSimilarity(dict_, turin, monca);
  EXPECT_GT(s, 0.88);  // ~9 km -> ~0.91
  EXPECT_LT(s, 1.0);
}

TEST_F(ItemSimTest, GeoFarApartClampsToZero) {
  auto turin = dict_.Intern(AttributeId::kBirthCity, "Torino");
  auto warsaw = dict_.Intern(AttributeId::kBirthCity, "Warszawa");
  dict_.SetGeo(turin, {45.07, 7.69});
  dict_.SetGeo(warsaw, {52.23, 21.01});
  EXPECT_DOUBLE_EQ(ExpertItemSimilarity(dict_, turin, warsaw), 0.0);
}

TEST_F(ItemSimTest, GeoFallsBackToStringWithoutCoordinates) {
  auto a = dict_.Intern(AttributeId::kBirthCity, "Torino");
  auto b = dict_.Intern(AttributeId::kBirthCity, "Torin");
  EXPECT_GT(ExpertItemSimilarity(dict_, a, b), 0.8);
}

TEST_F(ItemSimTest, CategoricalIsEquality) {
  auto m = dict_.Intern(AttributeId::kGender, "M");
  auto f = dict_.Intern(AttributeId::kGender, "F");
  EXPECT_DOUBLE_EQ(ExpertItemSimilarity(dict_, m, f), 0.0);
  EXPECT_DOUBLE_EQ(ExpertItemSimilarity(dict_, m, m), 1.0);
}

TEST(WeightsTest, ExpertWeightsFavorNamesOverGender) {
  auto w = DefaultExpertWeights();
  EXPECT_GT(w[static_cast<size_t>(AttributeId::kFirstName)],
            w[static_cast<size_t>(AttributeId::kGender)]);
  EXPECT_GT(w[static_cast<size_t>(AttributeId::kLastName)],
            w[static_cast<size_t>(AttributeId::kPermCountry)]);
  for (double v : UniformWeights()) EXPECT_DOUBLE_EQ(v, 1.0);
}

// ---------------------------------------------------------------------------
// Block scoring

Dataset TinyDataset() {
  Dataset ds;
  auto add = [&ds](const char* fn, const char* ln, const char* yb) {
    Record r;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, ln);
    if (*yb) r.Add(AttributeId::kBirthYear, yb);
    ds.Add(std::move(r));
  };
  add("Guido", "Foa", "1920");   // 0
  add("Guido", "Foa", "1920");   // 1: identical to 0
  add("Guido", "Foa", "1936");   // 2: differs in year
  add("Mendel", "Kesler", "");   // 3: unrelated
  return ds;
}

TEST(BlockScoringTest, ClusterJaccardIdenticalRecordsIsOne) {
  Dataset ds = TinyDataset();
  auto encoded = data::EncodeDataset(ds);
  Block block;
  block.records = {0, 1};
  block.key = encoded.bags[0];  // full shared content
  double s = ClusterJaccardScore(encoded, block, UniformWeights());
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(BlockScoringTest, ClusterJaccardDilutesWithNonSharedContent) {
  Dataset ds = TinyDataset();
  auto encoded = data::EncodeDataset(ds);
  Block block;
  block.records = {0, 2};  // share FN+LN, differ in year
  block.key = {*encoded.dictionary.Find(AttributeId::kFirstName, "Guido"),
               *encoded.dictionary.Find(AttributeId::kLastName, "Foa")};
  double s = ClusterJaccardScore(encoded, block, UniformWeights());
  EXPECT_DOUBLE_EQ(s, 2.0 / 4.0);  // key 2 items, union 4 items
}

TEST(BlockScoringTest, WeightsShiftScore) {
  Dataset ds = TinyDataset();
  auto encoded = data::EncodeDataset(ds);
  Block block;
  block.records = {0, 2};
  block.key = {*encoded.dictionary.Find(AttributeId::kFirstName, "Guido"),
               *encoded.dictionary.Find(AttributeId::kLastName, "Foa")};
  AttributeWeights weights = UniformWeights();
  weights[static_cast<size_t>(AttributeId::kBirthYear)] = 0.0;
  // Non-shared year items now weightless: score = 2/2 = 1.
  EXPECT_DOUBLE_EQ(ClusterJaccardScore(encoded, block, weights), 1.0);
}

TEST(BlockScoringTest, ExpertSimRewardsNearMatches) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kLastName, "Foa");
  a.Add(AttributeId::kBirthYear, "1920");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "Foy");
  b.Add(AttributeId::kBirthYear, "1921");
  ds.Add(std::move(b));
  auto encoded = data::EncodeDataset(ds);
  Block block;
  block.records = {0, 1};
  block.key = {};
  double s = ExpertSimScore(encoded, block, UniformWeights());
  // No exact shared items, but near-identical under Eq. 1.
  EXPECT_GT(s, 0.7);
  Block self;
  self.records = {0, 0};
  EXPECT_DOUBLE_EQ(ExpertSimScore(encoded, self, UniformWeights()), 1.0);
}

// ---------------------------------------------------------------------------
// NG cap (shared by size filter and sparse neighborhood)

TEST(NgCapTest, CeilSemanticsAndClamp) {
  EXPECT_EQ(NgCap(3.0, 5), 15u);
  EXPECT_EQ(NgCap(2.5, 3), 8u);   // ceil(7.5), not trunc -> 7
  EXPECT_EQ(NgCap(3.5, 5), 18u);  // ceil(17.5)
  EXPECT_EQ(NgCap(1.0, 2), 2u);
  EXPECT_EQ(NgCap(0.5, 2), 2u);   // clamped: a block needs 2 records
}

// Regression for the block-size/neighborhood cap mismatch: with ng = 2.5,
// minsup = 3 the old size filter truncated to 7 while the neighborhood cap
// ceil'd to 8, so a support-8 block passed the NG neighborhood condition
// yet was silently rejected by the size filter and its records never
// paired. Both caps now share NgCap (ceil), so the block survives.
TEST(MfiBlocksTest, FractionalNgCapKeepsCeilSizedBlocks) {
  Dataset ds;
  for (int i = 0; i < 8; ++i) {
    Record r;
    r.entity_id = 1;
    r.Add(AttributeId::kFirstName, "Guido");
    r.Add(AttributeId::kLastName, "Foa");
    r.Add(AttributeId::kBirthYear, "1920");
    r.Add(AttributeId::kPermCity, "Torino");
    ds.Add(std::move(r));
  }
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  config.max_minsup = 3;
  config.ng = 2.5;
  auto result = RunMfiBlocks(encoded, config);
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].records.size(), 8u);
  EXPECT_EQ(result.blocks[0].minsup_level, 3u);
  // All C(8,2) pairs emitted.
  EXPECT_EQ(result.pairs.size(), 28u);
  EXPECT_EQ(result.num_records_covered, 8u);
}

// ---------------------------------------------------------------------------
// Sparse neighborhood

TEST(NeighborhoodTest, NoViolationMeansZeroThreshold) {
  std::vector<Block> blocks(1);
  blocks[0].records = {0, 1};
  blocks[0].score = 0.9;
  EXPECT_DOUBLE_EQ(ComputeMinThreshold(blocks, 3, 3.0, 2), 0.0);
}

TEST(NeighborhoodTest, CrowdedRecordRaisesThreshold) {
  // Record 0 co-blocked with many distinct records across many blocks;
  // cap = ceil(1.0 * 2) = 2 neighbors.
  std::vector<Block> blocks;
  for (uint32_t i = 1; i <= 5; ++i) {
    Block b;
    b.records = {0, i};
    b.score = 0.1 * i;  // scores 0.1 .. 0.5
    blocks.push_back(b);
  }
  double th = ComputeMinThreshold(blocks, 6, 1.0, 2);
  // Best two blocks (0.5, 0.4) fit in the cap; the third (0.3) violates.
  EXPECT_DOUBLE_EQ(th, 0.3);
  auto sizes = NeighborhoodSizes(blocks, 6, th);
  EXPECT_LE(sizes[0], 2u);
}

TEST(NeighborhoodTest, EqualScoreBlocksVisitedInIndexOrder) {
  // Two equal-score blocks around record 0 under cap = NgCap(1.5, 2) = 3:
  // whichever is visited second overflows (2 + 3 distinct neighbors), so
  // min_th must equal the tied score — and with the deterministic
  // tie-break (score desc, block index asc) the visit order is pinned
  // rather than left to std::sort's unspecified equal-element placement.
  std::vector<Block> blocks(3);
  blocks[0].records = {0, 1, 2};
  blocks[0].score = 0.5;
  blocks[1].records = {0, 3, 4, 5};
  blocks[1].score = 0.5;
  blocks[2].records = {0, 6};
  blocks[2].score = 0.2;
  EXPECT_DOUBLE_EQ(ComputeMinThreshold(blocks, 7, 1.5, 2), 0.5);

  // Same blocks, no tie: the larger block alone fits the cap, the smaller
  // one overflows on top of it regardless of score order.
  blocks[1].score = 0.6;
  EXPECT_DOUBLE_EQ(ComputeMinThreshold(blocks, 7, 1.5, 2), 0.5);
}

TEST(NeighborhoodTest, SameNeighborsDoNotRecount) {
  // The same neighbor through multiple blocks counts once.
  std::vector<Block> blocks;
  for (int i = 0; i < 4; ++i) {
    Block b;
    b.records = {0, 1};
    b.score = 0.5 + 0.1 * i;
    blocks.push_back(b);
  }
  EXPECT_DOUBLE_EQ(ComputeMinThreshold(blocks, 2, 1.0, 2), 0.0);
}

// ---------------------------------------------------------------------------
// MFIBlocks end-to-end on a controlled dataset

Dataset DuplicatesDataset() {
  // Three latent entities with 3/2/1 records + noise records.
  Dataset ds;
  auto add = [&ds](int64_t entity, const char* fn, const char* ln,
                   const char* yb, const char* city) {
    Record r;
    r.entity_id = entity;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, ln);
    r.Add(AttributeId::kBirthYear, yb);
    r.Add(AttributeId::kPermCity, city);
    ds.Add(std::move(r));
  };
  add(1, "Guido", "Foa", "1920", "Torino");
  add(1, "Guido", "Foa", "1920", "Torino");
  add(1, "Guido", "Foa", "1920", "Canischio");
  add(2, "Mendel", "Kesler", "1899", "Lublin");
  add(2, "Mendel", "Kesler", "1899", "Warszawa");
  add(3, "Ilona", "Weisz", "1910", "Budapest");
  // Unrelated one-off records.
  add(4, "Laszlo", "Kovacs", "1925", "Szeged");
  add(5, "Rosa", "Levi", "1931", "Roma");
  return ds;
}

TEST(MfiBlocksTest, FindsTrueDuplicateClusters) {
  Dataset ds = DuplicatesDataset();
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  config.max_minsup = 3;
  config.ng = 3.0;
  auto result = RunMfiBlocks(encoded, config);
  std::set<data::RecordPair> pairs;
  for (const auto& cp : result.pairs) pairs.insert(cp.pair);
  EXPECT_TRUE(pairs.count(data::RecordPair(0, 1)));
  EXPECT_TRUE(pairs.count(data::RecordPair(0, 2)));
  EXPECT_TRUE(pairs.count(data::RecordPair(1, 2)));
  EXPECT_TRUE(pairs.count(data::RecordPair(3, 4)));
  // Entity 3 and the one-offs have no duplicates to pair with.
  for (const auto& p : pairs) {
    EXPECT_TRUE(ds.IsGoldMatch(p.a, p.b))
        << "false positive pair (" << p.a << "," << p.b << ")";
  }
}

TEST(MfiBlocksTest, BlocksRespectSizeCap) {
  Dataset ds = DuplicatesDataset();
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  config.max_minsup = 2;
  config.ng = 1.0;  // cap = minsup * 1
  auto result = RunMfiBlocks(encoded, config);
  for (const auto& b : result.blocks) {
    EXPECT_LE(b.records.size(), NgCap(config.ng, b.minsup_level));
  }
}

TEST(MfiBlocksTest, PairsSortedByScore) {
  Dataset ds = DuplicatesDataset();
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  auto result = RunMfiBlocks(encoded, config);
  for (size_t i = 1; i < result.pairs.size(); ++i) {
    EXPECT_GE(result.pairs[i - 1].block_score, result.pairs[i].block_score);
  }
}

TEST(MfiBlocksTest, ParallelScoringMatchesSequential) {
  Dataset ds = DuplicatesDataset();
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  auto sequential = RunMfiBlocks(encoded, config, nullptr);
  util::ThreadPool pool(4);
  auto parallel = RunMfiBlocks(encoded, config, &pool);
  ASSERT_EQ(sequential.pairs.size(), parallel.pairs.size());
  for (size_t i = 0; i < sequential.pairs.size(); ++i) {
    EXPECT_EQ(sequential.pairs[i].pair, parallel.pairs[i].pair);
    EXPECT_DOUBLE_EQ(sequential.pairs[i].block_score,
                     parallel.pairs[i].block_score);
  }
}

TEST(MfiBlocksTest, EmptyDataset) {
  Dataset ds;
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  auto result = RunMfiBlocks(encoded, config);
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_TRUE(result.blocks.empty());
}

TEST(MfiBlocksTest, CandidatePairsAreCanonicalAndUnique) {
  Dataset ds = DuplicatesDataset();
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  auto result = RunMfiBlocks(encoded, config);
  std::set<data::RecordPair> seen;
  for (const auto& cp : result.pairs) {
    EXPECT_LT(cp.pair.a, cp.pair.b);
    EXPECT_TRUE(seen.insert(cp.pair).second) << "duplicate pair";
  }
}

// Property sweep: over NG values, higher NG never decreases the number of
// candidate pairs on a fixed dataset (looser sparse-neighborhood cap).
class MfiBlocksNgTest : public ::testing::TestWithParam<double> {};

TEST_P(MfiBlocksNgTest, BlocksWithinCapAndScoresPositive) {
  Dataset ds = DuplicatesDataset();
  auto encoded = data::EncodeDataset(ds);
  MfiBlocksConfig config;
  config.ng = GetParam();
  auto result = RunMfiBlocks(encoded, config);
  for (const auto& b : result.blocks) {
    EXPECT_GE(b.records.size(), 2u);
    EXPECT_GT(b.score, 0.0);
    EXPECT_LE(b.score, 1.0 + 1e-9);
    EXPECT_TRUE(std::is_sorted(b.records.begin(), b.records.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(NgSweep, MfiBlocksNgTest,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0, 3.5, 4.0,
                                           4.5, 5.0));

}  // namespace
}  // namespace yver::blocking
