// Chaos harness for the failure model (DESIGN.md §11): with the
// deterministic fault injector armed at every registered point, thousands
// of concurrent queries and repeated artifact/CSV loads must each resolve
// to OK or a typed util::Status — never a crash, CHECK-failure, or
// deadlock — and a fault-free replay of the same workload must reproduce
// the fault-free baseline byte-for-byte (faults may change statuses and
// latency, never computed data).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/ranked_resolution.h"
#include "core/resolution_io.h"
#include "data/csv_io.h"
#include "serve/index_manager.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "util/deadline.h"
#include "util/fault_injector.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace yver {
namespace {

using util::Deadline;
using util::FaultConfig;
using util::FaultInjector;
using util::FaultPoint;
using util::StatusCode;

class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    FaultInjector::Global().Arm(config);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }
};

/// The typed codes a faulted query is allowed to resolve to. Anything
/// else — in particular kInternal — means a failure leaked through a path
/// that should have classified it.
bool IsAllowedFaultOutcome(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:      // injected I/O error
    case StatusCode::kDataLoss:         // injected short read
    case StatusCode::kDeadlineExceeded: // budget expired (injected latency)
    case StatusCode::kResourceExhausted:// admission shed under load
      return true;
    default:
      return false;
  }
}

core::RankedResolution MakeResolution(size_t num_records, size_t num_matches,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::set<data::RecordPair> seen;
  std::vector<core::RankedMatch> matches;
  while (matches.size() < num_matches) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    if (a == b) continue;
    data::RecordPair pair(a, b);
    if (!seen.insert(pair).second) continue;
    core::RankedMatch m;
    m.pair = pair;
    m.confidence = rng.UniformInt(-2, 20) / 10.0;
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  return core::RankedResolution(std::move(matches));
}

bool SameResult(const serve::QueryResult& a, const serve::QueryResult& b) {
  if (a.matches.size() != b.matches.size()) return false;
  for (size_t i = 0; i < a.matches.size(); ++i) {
    if (!(a.matches[i].pair == b.matches[i].pair) ||
        a.matches[i].confidence != b.matches[i].confidence ||
        a.matches[i].block_score != b.matches[i].block_score) {
      return false;
    }
  }
  return a.entity == b.entity;
}

class ChaosTest : public testing::Test {
 protected:
  static constexpr size_t kNumRecords = 256;
  static constexpr size_t kNumMatches = 1024;
  static constexpr size_t kQueriesPerRun = 4096;

  void SetUp() override {
    index_ = std::make_shared<const serve::ResolutionIndex>(
        MakeResolution(kNumRecords, kNumMatches, /*seed=*/21), kNumRecords);
    workload_ = MakeWorkload(/*with_deadlines=*/false);
    // Fault-free baseline, computed serially before anything is armed.
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::ResolutionService service(index_, options);
    for (const auto& query : workload_) {
      auto result = service.QueryRecord(query);
      ASSERT_TRUE(result.ok());
      baseline_.push_back(*result);
    }
  }

  std::vector<serve::Query> MakeWorkload(bool with_deadlines) const {
    util::Rng rng(4242);
    std::vector<serve::Query> workload;
    workload.reserve(kQueriesPerRun);
    for (size_t i = 0; i < kQueriesPerRun; ++i) {
      serve::Query query;
      query.record = static_cast<data::RecordIdx>(
          rng.UniformInt(0, kNumRecords - 1));
      query.certainty = rng.UniformInt(-1, 15) / 10.0;
      query.k = static_cast<size_t>(rng.UniformInt(0, 4));
      query.granularity = rng.UniformInt(0, 3) == 0
                              ? serve::Granularity::kEntity
                              : serve::Granularity::kMatches;
      // Always draw, so both workload variants see the same rng stream and
      // queries[i] is the same semantic query with or without deadlines.
      bool expired_budget = rng.UniformInt(0, 15) == 0;
      if (with_deadlines && expired_budget) {
        // A sprinkle of already-expired budgets keeps the deadline path
        // concurrent with the fault paths.
        query.deadline = Deadline::ExpiredNow();
      }
      workload.push_back(query);
    }
    return workload;
  }

  std::shared_ptr<const serve::ResolutionIndex> index_;
  std::vector<serve::Query> workload_;
  std::vector<serve::QueryResult> baseline_;
};

// The acceptance scenario: >= 10k queries across a {1, 2, 8}-thread
// matrix with every fault kind armed. Every answer is OK-and-correct or
// a typed allowed status; the run never crashes or deadlocks.
TEST_F(ChaosTest, ConcurrentQueriesUnderFaultsAreOkOrTyped) {
  FaultConfig config;
  config.seed = 1337;
  config.io_error_probability = 0.02;
  config.latency_probability = 0.02;
  config.short_read_probability = 0.02;
  config.latency_micros = 50;
  ScopedFaultInjection arm(config);

  std::vector<serve::Query> faulted_workload =
      MakeWorkload(/*with_deadlines=*/true);
  size_t total_queries = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    serve::ServiceOptions options;
    options.num_threads = threads;
    options.max_in_flight = 4;
    options.max_queue_depth = 8;
    serve::ResolutionService service(index_, options);
    auto results = service.QueryBatch(faulted_workload);
    ASSERT_EQ(results.size(), faulted_workload.size());
    total_queries += results.size();
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        // A fault may delay or deny an answer, never corrupt one: every
        // OK answer (degraded or not) must match the fault-free baseline.
        EXPECT_TRUE(SameResult(*results[i], baseline_[i]))
            << "query " << i << " answered differently under faults";
      } else {
        EXPECT_TRUE(IsAllowedFaultOutcome(results[i].status().code()))
            << "query " << i << " leaked untyped failure: "
            << results[i].status().ToString();
      }
    }
    auto metrics = service.metrics();
    EXPECT_EQ(metrics.queries, faulted_workload.size());
  }
  EXPECT_GE(total_queries, 10000u);
  EXPECT_GT(FaultInjector::Global().injections(), 0u)
      << "the chaos run must actually fire faults";
  // The serving points were both exercised.
  EXPECT_GT(FaultInjector::Global().hits(FaultPoint::kCacheGet), 0u);
  EXPECT_GT(FaultInjector::Global().hits(FaultPoint::kServiceCompute), 0u);
}

// Same workload, faults disarmed, across thread counts: byte-identical to
// the serial fault-free baseline (the determinism contract survives the
// chaos machinery being compiled in).
TEST_F(ChaosTest, FaultFreeReplayIsByteIdentical) {
  ASSERT_FALSE(FaultInjector::Global().armed());
  for (size_t threads : {1u, 2u, 8u}) {
    serve::ServiceOptions options;
    options.num_threads = threads;
    serve::ResolutionService service(index_, options);
    auto results = service.QueryBatch(workload_);
    ASSERT_EQ(results.size(), baseline_.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      EXPECT_TRUE(SameResult(*results[i], baseline_[i]))
          << "replay diverged at query " << i << " with " << threads
          << " thread(s)";
    }
  }
}

// The ingest-side points: repeated loads of a real artifact and real CSVs
// with faults armed either produce the exact fault-free object or a typed
// status, and every registered point fires at least once overall.
TEST_F(ChaosTest, IngestPathsUnderFaultsAreOkOrTyped) {
  std::string index_path = testing::TempDir() + "/chaos.yvx";
  ASSERT_TRUE(index_->Save(index_path).ok());
  uint64_t checksum = index_->Checksum();

  data::Dataset dataset;
  for (uint64_t i = 1; i <= 32; ++i) {
    data::Record r;
    r.book_id = i;
    r.source_id = static_cast<uint32_t>(i % 5);
    r.Add(data::AttributeId::kFirstName, "Name" + std::to_string(i));
    dataset.Add(std::move(r));
  }
  std::string dataset_path = testing::TempDir() + "/chaos_dataset.csv";
  ASSERT_TRUE(data::SaveDatasetCsv(dataset, dataset_path));
  core::RankedResolution small = MakeResolution(32, 64, /*seed=*/5);
  std::string matches_path = testing::TempDir() + "/chaos_matches.csv";
  ASSERT_TRUE(core::SaveMatchesCsv(dataset, small, matches_path).ok());

  FaultConfig config;
  config.seed = 77;
  config.io_error_probability = 0.15;
  config.latency_probability = 0.05;
  config.short_read_probability = 0.15;
  config.latency_micros = 20;
  ScopedFaultInjection arm(config);

  util::RetryPolicy no_retry;  // surface raw faults: retries would hide them
  no_retry.max_attempts = 1;
  no_retry.sleep_fn = [](double) {};
  for (int round = 0; round < 64; ++round) {
    auto loaded = serve::ResolutionIndex::Load(index_path);
    if (loaded.ok()) {
      EXPECT_EQ(loaded->Checksum(), checksum);
    } else {
      EXPECT_TRUE(IsAllowedFaultOutcome(loaded.status().code()))
          << loaded.status().ToString();
    }
    auto csv = core::LoadMatchesCsvWithRetry(dataset, matches_path, no_retry);
    if (csv.ok()) {
      EXPECT_EQ(csv->size(), small.size());
    } else {
      EXPECT_TRUE(IsAllowedFaultOutcome(csv.status().code()))
          << csv.status().ToString();
    }
    auto ds = data::LoadDatasetCsvLenient(dataset_path);
    if (ds.ok()) {
      EXPECT_EQ(ds->size(), dataset.size());
    } else {
      EXPECT_TRUE(IsAllowedFaultOutcome(ds.status().code()))
          << ds.status().ToString();
    }
    auto save = core::SaveMatchesCsvWithRetry(
        dataset, small, testing::TempDir() + "/chaos_matches_out.csv",
        no_retry);
    if (!save.ok()) {
      EXPECT_TRUE(IsAllowedFaultOutcome(save.code())) << save.ToString();
    }
  }
  auto& injector = FaultInjector::Global();
  EXPECT_GT(injector.hits(FaultPoint::kIndexLoadOpen), 0u);
  EXPECT_GT(injector.hits(FaultPoint::kIndexLoadRead), 0u);
  EXPECT_GT(injector.hits(FaultPoint::kMatchesCsvLoad), 0u);
  EXPECT_GT(injector.hits(FaultPoint::kMatchesCsvSave), 0u);
  EXPECT_GT(injector.hits(FaultPoint::kDatasetCsvLoad), 0u);
  EXPECT_GT(injector.injections(), 0u);
}

// With retries layered on top, a bounded fault burst is fully absorbed:
// max_injections=3 at certainty-1 probability fails exactly the first
// three opens, and the fourth attempt reads the artifact clean and exact.
TEST_F(ChaosTest, RetriesRecoverFaultedLoads) {
  std::string index_path = testing::TempDir() + "/chaos_retry.yvx";
  ASSERT_TRUE(index_->Save(index_path).ok());
  uint64_t checksum = index_->Checksum();

  FaultConfig config;
  config.seed = 3;
  config.io_error_probability = 1.0;
  config.max_injections = 3;
  ScopedFaultInjection arm(config);

  util::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.sleep_fn = [](double) {};
  util::RetryStats stats;
  auto loaded =
      serve::ResolutionIndex::LoadWithRetry(index_path, policy, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(stats.attempts, 4) << "three injected failures, then success";
  EXPECT_EQ(loaded->Checksum(), checksum);

  // A burst longer than the budget is a typed error, not an abort.
  FaultInjector::Global().Arm([] {
    FaultConfig exhausting;
    exhausting.seed = 3;
    exhausting.io_error_probability = 1.0;
    exhausting.max_injections = 100;
    return exhausting;
  }());
  auto failed =
      serve::ResolutionIndex::LoadWithRetry(index_path, policy, &stats);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.attempts, 6) << "the whole budget was spent retrying";
}

// ---------------------------------------------------------------------------
// Swap-under-load (DESIGN.md §13): queries race live index publishes.

// The acceptance scenario of the live-update layer: across a {1, 2, 8}
// reader-thread matrix (12K queries total), a writer keeps publishing new
// index generations — with faults armed, including the serve.index.publish
// point, so some installs fail and are retried — while every reader
// hammers QueryRecord. Correctness bar: every OK answer byte-equals the
// serial fault-free baseline of the exact generation it reports, each
// reader observes a non-decreasing generation sequence, and once the run
// drains, no snapshot beyond the current one is retained.
TEST_F(ChaosTest, SwapUnderLoadServesSomeConsistentGeneration) {
  constexpr uint64_t kGenerations = 6;  // 1 initial + 5 published
  constexpr size_t kTotalQueries = 12000;

  // Generation g serves its own index; pre-compute each generation's
  // serial fault-free baseline over the shared workload.
  std::vector<std::shared_ptr<const serve::ResolutionIndex>> indexes;
  indexes.push_back(index_);  // generation 1 (SetUp's index)
  for (uint64_t g = 2; g <= kGenerations; ++g) {
    indexes.push_back(std::make_shared<const serve::ResolutionIndex>(
        MakeResolution(kNumRecords, kNumMatches, /*seed=*/100 + g),
        kNumRecords));
  }
  std::vector<std::vector<serve::QueryResult>> baselines;
  for (const auto& index : indexes) {
    serve::ServiceOptions serial;
    serial.num_threads = 1;
    serve::ResolutionService service(index, serial);
    std::vector<serve::QueryResult> baseline;
    baseline.reserve(workload_.size());
    for (const auto& query : workload_) {
      auto result = service.QueryRecord(query);
      ASSERT_TRUE(result.ok());
      baseline.push_back(*result);
    }
    baselines.push_back(std::move(baseline));
  }

  FaultConfig config;
  config.seed = 97;
  config.io_error_probability = 0.02;
  config.latency_probability = 0.01;
  config.short_read_probability = 0.01;
  config.latency_micros = 20;
  ScopedFaultInjection arm(config);

  size_t ok_answers = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    auto service = std::make_shared<serve::ResolutionService>(indexes[0]);

    // Writer: install generations 2..kGenerations in order, retrying
    // through injected serve.index.publish failures — a failed install
    // must be invisible to readers.
    std::thread writer([&] {
      for (uint64_t g = 2; g <= kGenerations; ++g) {
        for (;;) {
          auto published = service->PublishIndex(indexes[g - 1]);
          if (published.ok()) {
            EXPECT_EQ(*published, g);
            break;
          }
          EXPECT_EQ(published.status().code(), StatusCode::kUnavailable);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });

    const size_t per_thread = kTotalQueries / 3 / threads;
    std::atomic<size_t> ok_count{0};
    std::vector<std::thread> readers;
    for (size_t t = 0; t < threads; ++t) {
      readers.emplace_back([&, t] {
        util::Rng rng(900 + t);
        uint64_t last_generation = 0;  // per-reader monotonicity
        for (size_t i = 0; i < per_thread; ++i) {
          const serve::Query& query =
              workload_[static_cast<size_t>(rng.Next()) % workload_.size()];
          auto result = service->QueryRecord(query);
          if (!result.ok()) {
            EXPECT_TRUE(IsAllowedFaultOutcome(result.status().code()))
                << result.status().ToString();
            continue;
          }
          ASSERT_GE(result->generation, 1u);
          ASSERT_LE(result->generation, kGenerations);
          // Generations are swapped in ascending order, so within one
          // reader the served generation never goes backwards.
          EXPECT_GE(result->generation, last_generation)
              << "reader " << t << " saw the generation move backwards";
          last_generation = result->generation;
          // The answer must be internally consistent with exactly the
          // generation it claims — byte-equal to that generation's serial
          // fault-free baseline.
          size_t w = (&query - workload_.data());
          EXPECT_TRUE(
              SameResult(*result, baselines[result->generation - 1][w]))
              << "answer inconsistent with generation "
              << result->generation;
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : readers) t.join();
    writer.join();
    ok_answers += ok_count.load();

    // Drained: nothing pinned, every retired snapshot reclaimed.
    const serve::IndexManager& manager = service->index_manager();
    EXPECT_EQ(manager.generation(), kGenerations);
    EXPECT_EQ(manager.pinned_readers(), 0u);
    EXPECT_EQ(manager.retained_snapshots(), 1u)
        << "retired generations leaked past the last release";
  }
  EXPECT_GT(ok_answers, 0u);
  EXPECT_GT(FaultInjector::Global().hits(FaultPoint::kIndexPublish), 0u)
      << "the publish fault point was never exercised";
}

}  // namespace
}  // namespace yver
