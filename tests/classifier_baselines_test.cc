#include <cmath>

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/fellegi_sunter.h"
#include "util/rng.h"

namespace yver::ml {
namespace {

using features::FeatureSchema;
using features::FeatureVector;

FeatureVector MakeVector(
    std::initializer_list<std::pair<const char*, double>> values) {
  FeatureVector fv;
  fv.values.assign(FeatureSchema::Get().size(), features::MissingValue());
  for (const auto& [name, v] : values) {
    fv.values[FeatureSchema::Get().IndexOf(name)] = v;
  }
  return fv;
}

std::vector<Instance> SeparableInstances(size_t n, util::Rng& rng) {
  std::vector<Instance> out;
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    double v = rng.UniformDouble();
    inst.features = MakeVector(
        {{"LNdist", v}, {"B3dist", rng.UniformDouble() * 20}});
    inst.label = v > 0.6 ? +1 : -1;
    out.push_back(std::move(inst));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DecisionTree

TEST(DecisionTreeTest, LearnsThresholdConcept) {
  util::Rng rng(3);
  auto train = SeparableInstances(500, rng);
  auto tree = DecisionTree::Train(train);
  EXPECT_GT(tree.num_nodes(), 1u);
  size_t correct = 0;
  auto test = SeparableInstances(300, rng);
  for (const auto& inst : test) {
    correct += tree.Classify(inst.features) == (inst.label > 0);
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.95);
}

TEST(DecisionTreeTest, NominalSplits) {
  util::Rng rng(5);
  std::vector<Instance> train;
  for (int i = 0; i < 300; ++i) {
    Instance inst;
    bool pos = rng.Bernoulli(0.5);
    inst.features = MakeVector({{"sameFN", pos ? 2.0 : 0.0}});
    inst.label = pos ? +1 : -1;
    train.push_back(std::move(inst));
  }
  auto tree = DecisionTree::Train(train);
  EXPECT_TRUE(tree.Classify(MakeVector({{"sameFN", 2.0}})));
  EXPECT_FALSE(tree.Classify(MakeVector({{"sameFN", 0.0}})));
}

TEST(DecisionTreeTest, MissingValueFallsToMajority) {
  util::Rng rng(7);
  auto train = SeparableInstances(400, rng);
  auto tree = DecisionTree::Train(train);
  // An all-missing vector should classify without crashing.
  FeatureVector empty;
  empty.values.assign(FeatureSchema::Get().size(),
                      features::MissingValue());
  (void)tree.Classify(empty);
  double s = tree.Score(empty);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(DecisionTreeTest, PureLeafStopsEarly) {
  std::vector<Instance> train;
  for (int i = 0; i < 20; ++i) {
    Instance inst;
    inst.features = MakeVector({{"LNdist", 0.5}});
    inst.label = +1;  // all positive
    train.push_back(std::move(inst));
  }
  auto tree = DecisionTree::Train(train);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.Classify(MakeVector({{"LNdist", 0.5}})));
}

TEST(DecisionTreeTest, DepthBounded) {
  util::Rng rng(11);
  auto train = SeparableInstances(500, rng);
  DecisionTree::Options options;
  options.max_depth = 1;
  auto tree = DecisionTree::Train(train, options);
  EXPECT_LE(tree.num_nodes(), 3u);
}

// ---------------------------------------------------------------------------
// Fellegi-Sunter

TEST(FellegiSunterTest, AgreementRaisesScore) {
  util::Rng rng(13);
  std::vector<Instance> train;
  for (int i = 0; i < 400; ++i) {
    Instance inst;
    bool pos = rng.Bernoulli(0.4);
    inst.features = MakeVector(
        {{"sameFN", pos ? 2.0 : 0.0},
         {"LNdist", pos ? 0.9 + 0.1 * rng.UniformDouble()
                        : 0.4 * rng.UniformDouble()}});
    inst.label = pos ? +1 : -1;
    train.push_back(std::move(inst));
  }
  auto model = FellegiSunter::Train(train);
  double agree = model.Score(MakeVector({{"sameFN", 2.0},
                                         {"LNdist", 0.95}}));
  double disagree = model.Score(MakeVector({{"sameFN", 0.0},
                                            {"LNdist", 0.1}}));
  EXPECT_GT(agree, 0.0);
  EXPECT_LT(disagree, 0.0);
  EXPECT_TRUE(model.Classify(MakeVector({{"sameFN", 2.0},
                                         {"LNdist", 0.95}})));
}

TEST(FellegiSunterTest, MissingFeaturesAreNeutral) {
  util::Rng rng(17);
  auto train = SeparableInstances(300, rng);
  auto model = FellegiSunter::Train(train);
  FeatureVector empty;
  empty.values.assign(FeatureSchema::Get().size(),
                      features::MissingValue());
  EXPECT_DOUBLE_EQ(model.Score(empty), 0.0);
}

TEST(FellegiSunterTest, ClassifiesSeparableData) {
  util::Rng rng(19);
  auto train = SeparableInstances(500, rng);
  auto model = FellegiSunter::Train(train);
  auto test = SeparableInstances(300, rng);
  size_t correct = 0;
  for (const auto& inst : test) {
    correct += model.Classify(inst.features) == (inst.label > 0);
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.85);
}

}  // namespace
}  // namespace yver::ml
