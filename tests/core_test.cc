#include <gtest/gtest.h>

#include "core/entity_clusters.h"
#include "core/evaluation.h"
#include "core/gold_standard.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "core/ranked_resolution.h"
#include "synth/tag_oracle.h"

namespace yver::core {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;
using data::RecordPair;

// ---------------------------------------------------------------------------
// RankedResolution

RankedResolution MakeResolution() {
  std::vector<RankedMatch> matches = {
      {RecordPair(0, 1), 0.9, 0.5},
      {RecordPair(1, 2), 0.4, 0.3},
      {RecordPair(3, 4), 0.7, 0.6},
      {RecordPair(0, 3), -0.2, 0.1},
  };
  return RankedResolution(std::move(matches));
}

TEST(RankedResolutionTest, SortedDescending) {
  auto res = MakeResolution();
  ASSERT_EQ(res.size(), 4u);
  for (size_t i = 1; i < res.matches().size(); ++i) {
    EXPECT_GE(res.matches()[i - 1].confidence, res.matches()[i].confidence);
  }
}

TEST(RankedResolutionTest, ThresholdQueryGrowsAsCertaintyDrops) {
  auto res = MakeResolution();
  EXPECT_EQ(res.AboveThreshold(0.8).size(), 1u);
  EXPECT_EQ(res.AboveThreshold(0.5).size(), 2u);
  EXPECT_EQ(res.AboveThreshold(0.0).size(), 3u);
  EXPECT_EQ(res.AboveThreshold(-1.0).size(), 4u);
}

TEST(RankedResolutionTest, TopK) {
  auto res = MakeResolution();
  auto top2 = res.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_DOUBLE_EQ(top2[0].confidence, 0.9);
  EXPECT_DOUBLE_EQ(top2[1].confidence, 0.7);
  EXPECT_EQ(res.TopK(10).size(), 4u);
}

TEST(RankedResolutionTest, ForRecordFiltersAndThresholds) {
  auto res = MakeResolution();
  auto for0 = res.ForRecord(0, 0.0);
  ASSERT_EQ(for0.size(), 1u);
  EXPECT_EQ(for0[0].pair, RecordPair(0, 1));
  EXPECT_EQ(res.ForRecord(0, -1.0).size(), 2u);
  EXPECT_TRUE(res.ForRecord(7, 0.0).empty());
}

// ---------------------------------------------------------------------------
// EntityClusters

TEST(EntityClustersTest, ConnectedComponentsAtThreshold) {
  auto res = MakeResolution();
  EntityClusters clusters(res, 6, /*certainty=*/0.3);
  // Matches above 0.3: (0,1), (1,2), (3,4) -> {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters.NumNonSingleton(), 2u);
  EXPECT_EQ(clusters.ClusterOf(0), clusters.ClusterOf(2));
  EXPECT_NE(clusters.ClusterOf(0), clusters.ClusterOf(3));
  EXPECT_EQ(clusters.Members(4).size(), 2u);
}

TEST(EntityClustersTest, HighCertaintySplits) {
  auto res = MakeResolution();
  EntityClusters clusters(res, 6, /*certainty=*/0.8);
  // Only (0,1) survives.
  EXPECT_EQ(clusters.NumNonSingleton(), 1u);
  EXPECT_NE(clusters.ClusterOf(1), clusters.ClusterOf(2));
}

TEST(EntityClustersTest, ClustersSortedLargestFirst) {
  auto res = MakeResolution();
  EntityClusters clusters(res, 6, 0.3);
  for (size_t i = 1; i < clusters.clusters().size(); ++i) {
    EXPECT_GE(clusters.clusters()[i - 1].size(),
              clusters.clusters()[i].size());
  }
}

// ---------------------------------------------------------------------------
// Evaluation

Dataset GoldDataset() {
  Dataset ds;
  for (int i = 0; i < 6; ++i) {
    Record r;
    r.entity_id = i / 2;      // entities {0,1},{2,3},{4,5}
    r.family_id = i / 4;      // families {0..3},{4,5}
    ds.Add(std::move(r));
  }
  return ds;
}

TEST(EvaluationTest, PairQualityArithmetic) {
  Dataset ds = GoldDataset();
  std::vector<RecordPair> pairs = {RecordPair(0, 1), RecordPair(2, 3),
                                   RecordPair(0, 2)};
  auto q = EvaluatePairs(ds, pairs);
  EXPECT_EQ(q.true_pos, 2u);
  EXPECT_EQ(q.false_pos, 1u);
  EXPECT_EQ(q.gold_pairs, 3u);
  EXPECT_NEAR(q.Precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(q.Recall(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(q.F1(), 2.0 / 3.0, 1e-9);
}

TEST(EvaluationTest, FamilyPairsUseFamilyIds) {
  Dataset ds = GoldDataset();
  std::vector<RecordPair> pairs = {RecordPair(0, 2),   // same family
                                   RecordPair(0, 4)};  // cross family
  auto q = EvaluateFamilyPairs(ds, pairs);
  EXPECT_EQ(q.true_pos, 1u);
  EXPECT_EQ(q.false_pos, 1u);
  EXPECT_EQ(q.gold_pairs, 6u + 1u);  // C(4,2) + C(2,2)
}

TEST(EvaluationTest, EmptyQuality) {
  PairQuality q;
  EXPECT_DOUBLE_EQ(q.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(q.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(q.F1(), 0.0);
}

TEST(EvaluationTest, ReductionRatio) {
  // 100 records -> 4950 exhaustive pairs; 495 candidates saves 90%.
  EXPECT_NEAR(ReductionRatio(100, 495), 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(ReductionRatio(100, 0), 1.0);
  EXPECT_DOUBLE_EQ(ReductionRatio(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(ReductionRatio(100, 10000), 0.0);  // clamped
}

// ---------------------------------------------------------------------------
// Narrative

TEST(NarrativeTest, ProfileMergesWithSupportOrder) {
  Dataset ds;
  for (int i = 0; i < 3; ++i) {
    Record r;
    r.book_id = 100u + static_cast<uint64_t>(i);
    r.source_id = static_cast<uint32_t>(i < 2 ? 1 : 2);
    r.Add(AttributeId::kFirstName, i < 2 ? "Guido" : "Guida");
    r.Add(AttributeId::kLastName, "Foa");
    ds.Add(std::move(r));
  }
  auto profile = BuildProfile(ds, {0, 1, 2});
  EXPECT_EQ(profile.records.size(), 3u);
  EXPECT_EQ(profile.num_sources, 2u);
  EXPECT_EQ(profile.Consensus(AttributeId::kFirstName), "Guido");
  EXPECT_EQ(profile.values.at(AttributeId::kFirstName).size(), 2u);
  EXPECT_EQ(profile.Consensus(AttributeId::kGender), "");
}

TEST(NarrativeTest, RenderContainsKeyFacts) {
  Dataset ds;
  Record r;
  r.book_id = 1059654;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kLastName, "Foa");
  r.Add(AttributeId::kFathersName, "Donato");
  r.Add(AttributeId::kMothersName, "Olga");
  r.Add(AttributeId::kBirthDay, "18");
  r.Add(AttributeId::kBirthMonth, "11");
  r.Add(AttributeId::kBirthYear, "1920");
  r.Add(AttributeId::kBirthCity, "Torino");
  r.Add(AttributeId::kBirthCountry, "Italy");
  r.Add(AttributeId::kPermCity, "Torino");
  r.Add(AttributeId::kDeathCity, "Auschwitz");
  ds.Add(std::move(r));
  auto text = RenderNarrative(BuildProfile(ds, {0}));
  EXPECT_NE(text.find("Guido Foa"), std::string::npos);
  EXPECT_NE(text.find("Donato"), std::string::npos);
  EXPECT_NE(text.find("18/11/1920"), std::string::npos);
  EXPECT_NE(text.find("Auschwitz"), std::string::npos);
}

TEST(NarrativeTest, HandlesEmptyRecordGracefully) {
  Dataset ds;
  ds.Add(Record{});
  auto text = RenderNarrative(BuildProfile(ds, {0}));
  EXPECT_NE(text.find("unnamed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline end-to-end on controlled data

Dataset PipelineDataset() {
  Dataset ds;
  auto add = [&ds](int64_t entity, uint32_t source, const char* fn,
                   const char* ln, const char* yb) {
    Record r;
    r.entity_id = entity;
    r.family_id = entity;
    r.source_id = source;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, ln);
    r.Add(AttributeId::kBirthYear, yb);
    r.Add(AttributeId::kGender, "M");
    ds.Add(std::move(r));
  };
  add(1, 10, "Guido", "Foa", "1920");
  add(1, 11, "Guido", "Foa", "1920");
  add(1, 12, "Guido", "Foa", "1921");
  add(2, 10, "Mendel", "Kesler", "1899");
  add(2, 13, "Mendel", "Kesler", "1899");
  add(3, 14, "Laszlo", "Kovacs", "1925");
  add(4, 15, "Rosa", "Levi", "1931");
  add(4, 15, "Rosa", "Levi", "1931");  // same-source duplicate pair
  return ds;
}

TEST(PipelineTest, BlockScoreOnlyResolution) {
  Dataset ds = PipelineDataset();
  UncertainErPipeline pipeline(ds);
  PipelineConfig config;
  config.use_classifier = false;
  config.blocking.max_minsup = 3;
  auto result = pipeline.Run(config, nullptr);
  EXPECT_FALSE(result.resolution.empty());
  auto q = EvaluateMatches(ds, result.resolution.matches());
  EXPECT_GT(q.Recall(), 0.5);
}

TEST(PipelineTest, SameSourceFilterDropsPairs) {
  Dataset ds = PipelineDataset();
  UncertainErPipeline pipeline(ds);
  blocking::MfiBlocksConfig bc;
  bc.max_minsup = 3;
  auto blocking_result = pipeline.RunBlocking(bc);
  auto filtered = pipeline.DiscardSameSource(blocking_result.pairs);
  EXPECT_LT(filtered.size(), blocking_result.pairs.size());
  for (const auto& cp : filtered) {
    EXPECT_NE(ds[cp.pair.a].source_id, ds[cp.pair.b].source_id);
  }
}

TEST(PipelineTest, ClassifierPipelineProducesModelAndRanking) {
  Dataset ds = PipelineDataset();
  UncertainErPipeline pipeline(ds);
  synth::TagOracle oracle(&ds);
  PipelineConfig config;
  config.use_classifier = true;
  config.blocking.max_minsup = 3;
  auto result = pipeline.Run(
      config, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });
  EXPECT_GT(result.model.num_splitters(), 0u);
  EXPECT_FALSE(result.training_instances.empty());
  // Every surviving match has positive confidence (the Cls filter).
  for (const auto& m : result.resolution.matches()) {
    EXPECT_GT(m.confidence, 0.0);
  }
}

TEST(PipelineTest, MakeInstancesExtractsTagsAndFeatures) {
  Dataset ds = PipelineDataset();
  UncertainErPipeline pipeline(ds);
  std::vector<blocking::CandidatePair> pairs = {
      {RecordPair(0, 1), 0.8, 3}};
  auto instances = pipeline.MakeInstances(
      pairs, [](data::RecordIdx, data::RecordIdx) {
        return ml::ExpertTag::kYes;
      });
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].tag, ml::ExpertTag::kYes);
  EXPECT_EQ(instances[0].features.values.size(),
            features::FeatureSchema::Get().size());
}

// ---------------------------------------------------------------------------
// Tagged standard

TEST(GoldStandardTest, BuildsUnionAndEvaluates) {
  Dataset ds = PipelineDataset();
  UncertainErPipeline pipeline(ds);
  synth::TagOracle oracle(&ds);
  std::vector<blocking::MfiBlocksConfig> configs(2);
  configs[0].max_minsup = 3;
  configs[1].max_minsup = 2;
  configs[1].ng = 4.0;
  auto standard = BuildTaggedStandard(
      pipeline, configs, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });
  EXPECT_GT(standard.tags.size(), 0u);
  EXPECT_GT(standard.num_positive, 0u);
  EXPECT_LE(standard.num_positive, standard.tags.size());
  // A configuration evaluated against the standard scores sane values.
  blocking::MfiBlocksConfig bc;
  bc.max_minsup = 3;
  auto result = pipeline.RunBlocking(bc);
  auto q = EvaluateAgainstStandard(standard, result.pairs);
  EXPECT_GE(q.Recall(), 0.0);
  EXPECT_LE(q.Recall(), 1.0);
  EXPECT_GE(q.Precision(), 0.0);
  EXPECT_LE(q.Precision(), 1.0);
}

TEST(GoldStandardTest, PositiveSemantics) {
  TaggedStandard standard;
  standard.tags[RecordPair(0, 1)] = ml::ExpertTag::kYes;
  standard.tags[RecordPair(1, 2)] = ml::ExpertTag::kMaybe;
  standard.num_positive = 1;
  EXPECT_TRUE(standard.IsPositive(RecordPair(0, 1)));
  EXPECT_FALSE(standard.IsPositive(RecordPair(1, 2)));
  EXPECT_FALSE(standard.IsPositive(RecordPair(5, 6)));
  EXPECT_TRUE(standard.TagOf(RecordPair(1, 2)).has_value());
  EXPECT_FALSE(standard.TagOf(RecordPair(5, 6)).has_value());
}

TEST(ConfigTest, RecommendedConfigMatchesPaper) {
  auto config = RecommendedConfig();
  EXPECT_EQ(config.blocking.max_minsup, 5u);
  EXPECT_DOUBLE_EQ(config.blocking.ng, 3.5);
  EXPECT_TRUE(config.blocking.expert_weighting);
  EXPECT_TRUE(config.discard_same_source);
  EXPECT_TRUE(config.use_classifier);
  EXPECT_EQ(config.blocking.score_kind,
            blocking::BlockScoreKind::kClusterJaccard);
}

}  // namespace
}  // namespace yver::core
