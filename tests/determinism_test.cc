// Differential harness for the pipeline determinism contract
// (UncertainErPipeline::Run): for a fixed corpus, config, and tagger
// state, every thread count must produce the same result — compared here
// as (a) RankedResolution match vectors, (b) matches-CSV bytes, and
// (c) serve::ResolutionIndex checksums. scripts/check.sh also runs these
// tests under ThreadSanitizer to catch the races that would break the
// contract before they corrupt output.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/mfi_blocks.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "core/resolution_io.h"
#include "mining/brute_force_miner.h"
#include "mining/fp_growth.h"
#include "serve/ingest.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"
#include "util/rng.h"

namespace yver {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ~2K-record synthetic corpus: small enough for a thread-count matrix
// (and a TSan pass) in seconds, large enough that chunked parallel
// stages actually split work.
const synth::GeneratedData& Corpus() {
  static const synth::GeneratedData* corpus = [] {
    synth::GeneratorConfig config = synth::ItalyConfig();
    config.num_persons = 1000;  // reports ~ 1.9x persons
    config.seed = 11;
    return new synth::GeneratedData(synth::Generate(config));
  }();
  return *corpus;
}

struct RunOutput {
  core::PipelineResult result;
  std::string csv_bytes;
  uint64_t index_checksum = 0;
};

RunOutput RunAtThreads(size_t num_threads) {
  const synth::GeneratedData& corpus = Corpus();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(corpus.dataset,
                                     gazetteer.MakeGeoResolver());
  core::PipelineConfig config = core::RecommendedConfig();
  config.num_threads = num_threads;
  // Fresh oracle per run: the tagger is stateful (its RNG advances per
  // call), and the contract is defined over identical tagger state.
  synth::TagOracle oracle(&corpus.dataset);
  RunOutput out;
  out.result = pipeline.Run(
      config, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });

  std::string path = ::testing::TempDir() + "determinism_matches_" +
                     std::to_string(num_threads) + ".csv";
  auto saved = core::SaveMatchesCsv(corpus.dataset, out.result.resolution, path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  out.csv_bytes = ReadFileBytes(path);

  serve::ResolutionIndex index(out.result.resolution, out.result.num_records);
  out.index_checksum = index.Checksum();
  return out;
}

TEST(DeterminismTest, ThreadCountMatrixProducesIdenticalResolutions) {
  RunOutput serial = RunAtThreads(1);
  ASSERT_FALSE(serial.result.resolution.empty())
      << "corpus produced no matches; the differential test is vacuous";

  for (size_t num_threads : {size_t{2}, size_t{8}}) {
    RunOutput parallel = RunAtThreads(num_threads);
    // (a) The ranked resolution itself: same matches, same order, same
    // bytes in every confidence. Vector equality covers the documented
    // RankedResolution ordering contract, not just the match set.
    EXPECT_EQ(parallel.result.resolution.matches(),
              serial.result.resolution.matches())
        << "resolution diverged at " << num_threads << " threads";
    // (b) The servable CSV artifact, compared as bytes.
    EXPECT_EQ(parallel.csv_bytes, serial.csv_bytes)
        << "matches CSV diverged at " << num_threads << " threads";
    // (c) The binary index artifact, compared by embedded checksum.
    EXPECT_EQ(parallel.index_checksum, serial.index_checksum)
        << "ResolutionIndex checksum diverged at " << num_threads
        << " threads";
    // Candidate generation and training inputs must agree too — if these
    // ever diverge the resolution checks above become hard to debug.
    EXPECT_EQ(parallel.result.candidates.size(),
              serial.result.candidates.size());
    EXPECT_EQ(parallel.result.training_instances.size(),
              serial.result.training_instances.size());
  }
}

TEST(DeterminismTest, ResolutionObeysOrderingContract) {
  RunOutput out = RunAtThreads(8);
  const auto& matches = out.result.resolution.matches();
  for (size_t i = 1; i < matches.size(); ++i) {
    const auto& prev = matches[i - 1];
    const auto& cur = matches[i];
    // Stable-sorted by confidence descending, ties by ascending (a, b).
    EXPECT_GE(prev.confidence, cur.confidence) << "at index " << i;
    if (prev.confidence == cur.confidence) {
      EXPECT_TRUE(prev.pair < cur.pair || prev.pair == cur.pair)
          << "tie not broken by ascending pair at index " << i;
    }
  }
}

// Blocking-stage matrix: RunMfiBlocks must produce identical blocks,
// pairs, and counters for every thread count — the blocking analogue of
// the pipeline matrix above. Every field is compared, so a drift in key
// selection, score, minsup level, or ordering fails loudly.
TEST(DeterminismTest, BlockingThreadMatrixProducesIdenticalResults) {
  const synth::GeneratedData& corpus = Corpus();
  auto encoded = data::EncodeDataset(corpus.dataset);
  blocking::MfiBlocksConfig config;
  config.max_minsup = 5;
  config.ng = 3.5;  // fractional on odd minsup: exercises the NgCap path
  config.expert_weighting = true;

  auto serial = blocking::RunMfiBlocks(encoded, config, nullptr);
  ASSERT_FALSE(serial.pairs.empty())
      << "corpus produced no candidate pairs; the matrix is vacuous";
  ASSERT_FALSE(serial.blocks.empty());

  for (size_t num_threads : {size_t{2}, size_t{8}}) {
    util::ThreadPool pool(num_threads);
    auto parallel = blocking::RunMfiBlocks(encoded, config, &pool);
    EXPECT_EQ(parallel.blocks, serial.blocks)
        << "blocks diverged at " << num_threads << " threads";
    EXPECT_EQ(parallel.pairs, serial.pairs)
        << "pairs diverged at " << num_threads << " threads";
    EXPECT_EQ(parallel.num_mfis_mined, serial.num_mfis_mined);
    EXPECT_EQ(parallel.num_blocks_considered, serial.num_blocks_considered);
    EXPECT_EQ(parallel.num_records_covered, serial.num_records_covered);
  }
}

// The parallel per-rank FP-Growth decomposition must agree with the
// brute-force reference miner (itemsets and supports) AND return the
// byte-identical vector — order included — for every pool size.
TEST(DeterminismTest, ParallelMaximalMinerMatchesBruteForce) {
  util::Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<data::ItemBag> bags;
    size_t num_bags = 12 + static_cast<size_t>(rng.UniformInt(0, 28));
    size_t alphabet = 6 + static_cast<size_t>(rng.UniformInt(0, 10));
    for (size_t t = 0; t < num_bags; ++t) {
      data::ItemBag bag;
      size_t len = 1 + static_cast<size_t>(rng.UniformInt(0, 6));
      for (size_t i = 0; i < len; ++i) {
        bag.push_back(static_cast<data::ItemId>(
            rng.UniformInt(0, static_cast<int64_t>(alphabet) - 1)));
      }
      std::sort(bag.begin(), bag.end());
      bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
      bags.push_back(std::move(bag));
    }
    mining::MinerOptions opts;
    opts.minsup = 2 + static_cast<uint32_t>(rng.UniformInt(0, 2));

    auto serial = mining::MineMaximalItemsets(bags, opts, nullptr);
    auto brute = mining::BruteForceMaximalItemsets(bags, opts.minsup);
    auto as_set = [](const std::vector<mining::FrequentItemset>& fis) {
      std::vector<std::vector<data::ItemId>> out;
      for (const auto& fi : fis) out.push_back(fi.items);
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(as_set(serial), as_set(brute)) << "trial " << trial;
    for (const auto& mfi : serial) {
      EXPECT_EQ(mining::CountSupport(bags, mfi.items), mfi.support);
    }

    for (size_t num_threads : {size_t{2}, size_t{8}}) {
      util::ThreadPool pool(num_threads);
      auto parallel = mining::MineMaximalItemsets(bags, opts, &pool);
      EXPECT_EQ(parallel, serial)
          << "trial " << trial << " diverged at " << num_threads
          << " threads";
    }
  }
}

// Live-ingest determinism matrix (DESIGN.md §13): the final published
// index is a pure function of (seed corpus, submission order). Splitting
// the same K appends into different batches — one generation per record,
// a couple of coarse waves, or one big batch — and running the service at
// {1, 2, 8} threads with queries in flight must all converge on the
// byte-identical final index checksum. Batch boundaries may change which
// intermediate generations exist, never the bytes of the last one.
TEST(DeterminismTest, IncrementalPublishMatrixConvergesOnOneChecksum) {
  const synth::GeneratedData& corpus = Corpus();
  const size_t total = corpus.dataset.size();
  constexpr size_t kAppends = 24;
  ASSERT_GT(total, kAppends * 2);
  const size_t base_size = total - kAppends;

  data::Dataset base;
  for (data::RecordIdx r = 0; r < base_size; ++r) {
    base.Add(corpus.dataset[r]);
  }

  // Reference: the same appends applied directly to a fresh resolver, no
  // service, no threads — the value every matrix cell must reproduce.
  uint64_t reference = 0;
  {
    core::IncrementalResolver resolver(base, core::RankedResolution(),
                                       ml::AdTree());
    for (size_t i = 0; i < kAppends; ++i) {
      resolver.AddRecord(
          corpus.dataset[static_cast<data::RecordIdx>(base_size + i)]);
    }
    serve::ResolutionIndex final_index(resolver.Resolution(),
                                       resolver.dataset().size());
    reference = final_index.Checksum();
  }

  const std::vector<std::vector<size_t>> splits = {
      {kAppends},                        // one batch, one generation
      {kAppends / 2, kAppends / 2},      // two coarse waves
      std::vector<size_t>(kAppends, 1),  // a generation per record
  };
  for (size_t split_idx = 0; split_idx < splits.size(); ++split_idx) {
    for (size_t num_threads : {size_t{1}, size_t{2}, size_t{8}}) {
      auto initial = std::make_shared<const serve::ResolutionIndex>(
          core::RankedResolution(), base.size());
      serve::ServiceOptions options;
      options.num_threads = num_threads;
      auto service =
          std::make_shared<serve::ResolutionService>(initial, options);
      auto resolver = std::make_unique<core::IncrementalResolver>(
          base, core::RankedResolution(), ml::AdTree());
      serve::LiveIndexBuilder builder(service, std::move(resolver));

      size_t next = 0;
      for (size_t batch : splits[split_idx]) {
        for (size_t i = 0; i < batch; ++i) {
          auto idx = builder.Submit(corpus.dataset[static_cast<data::RecordIdx>(
              base_size + next)]);
          ASSERT_TRUE(idx.ok()) << idx.status().ToString();
          ++next;
        }
        // The barrier between batches is what makes the splits genuinely
        // different publish histories.
        ASSERT_TRUE(builder.WaitForIdle().ok());
        // Queries in flight against whatever generation is current: they
        // must not perturb the ingest path.
        std::vector<serve::Query> probes;
        for (size_t q = 0; q < 32; ++q) {
          serve::Query probe;
          probe.record = static_cast<data::RecordIdx>(q % base.size());
          probes.push_back(probe);
        }
        service->QueryBatch(probes);
      }
      ASSERT_EQ(next, kAppends);

      auto pin = service->PinIndex();
      EXPECT_EQ(pin->num_records(), total);
      EXPECT_EQ(pin->Checksum(), reference)
          << "split " << split_idx << " at " << num_threads
          << " thread(s) diverged from the reference index";
    }
  }
}

TEST(DeterminismTest, BatchApisMatchScalarPaths) {
  const synth::GeneratedData& corpus = Corpus();
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(corpus.dataset,
                                     gazetteer.MakeGeoResolver());
  blocking::MfiBlocksConfig blocking_config;
  blocking_config.expert_weighting = true;
  auto blocked = pipeline.RunBlocking(blocking_config, 1);
  ASSERT_FALSE(blocked.pairs.empty());

  std::vector<data::RecordPair> pairs;
  for (size_t i = 0; i < std::min<size_t>(blocked.pairs.size(), 256); ++i) {
    pairs.push_back(blocked.pairs[i].pair);
  }
  util::ThreadPool pool(4);
  auto batch = pipeline.extractor().ExtractBatch(pairs, &pool);
  ASSERT_EQ(batch.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto scalar = pipeline.extractor().Extract(pairs[i].a, pairs[i].b);
    // Compare as bit patterns: NaN (missing) must equal NaN.
    ASSERT_EQ(batch[i].values.size(), scalar.values.size());
    for (size_t f = 0; f < scalar.values.size(); ++f) {
      EXPECT_EQ(std::isnan(batch[i].values[f]), std::isnan(scalar.values[f]))
          << "pair " << i << " feature " << f;
      if (!std::isnan(scalar.values[f])) {
        EXPECT_EQ(batch[i].values[f], scalar.values[f])
            << "pair " << i << " feature " << f;
      }
    }
  }
}

}  // namespace
}  // namespace yver
