// Byte-equality of the columnar FeatureExtractor against the preserved
// string-path reference (tests/support/reference_extractor.*). The PR-2
// determinism contract extends to representation refactors: the columnar
// comparison corpus must not change a single bit of any of the 48
// features, including NaN missing-value patterns, on any pair.

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "data/comparison_corpus.h"
#include "data/item_dictionary.h"
#include "features/feature_extractor.h"
#include "features/feature_schema.h"
#include "support/reference_extractor.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace yver::features {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

// Byte comparison of two feature vectors: identical doubles bit-for-bit,
// which also pins NaN payloads (EXPECT_DOUBLE_EQ would treat any NaN pair
// as unequal and 0.0 == -0.0 as equal).
void ExpectByteIdentical(const FeatureVector& expected,
                         const FeatureVector& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.values.size(), actual.values.size()) << context;
  ASSERT_EQ(0, std::memcmp(expected.values.data(), actual.values.data(),
                           expected.values.size() * sizeof(double)))
      << context << ": feature vectors differ; first mismatch at index "
      << [&] {
           for (size_t i = 0; i < expected.values.size(); ++i) {
             if (std::memcmp(&expected.values[i], &actual.values[i],
                             sizeof(double)) != 0) {
               return i;
             }
           }
           return expected.values.size();
         }();
}

void ExpectAllPairsIdentical(const Dataset& dataset,
                             const data::GeoResolver& geo_resolver,
                             size_t max_pairs = 0) {
  auto encoded = data::EncodeDataset(dataset, geo_resolver);
  ReferenceFeatureExtractor reference(encoded);
  FeatureExtractor columnar(encoded);
  ReferenceFeatureExtractor::Scratch ref_scratch;
  FeatureExtractor::Scratch col_scratch;
  size_t compared = 0;
  for (data::RecordIdx a = 0; a < dataset.size(); ++a) {
    for (data::RecordIdx b = a + 1; b < dataset.size(); ++b) {
      FeatureVector expected;
      FeatureVector actual;
      reference.ExtractInto(a, b, &ref_scratch, &expected);
      columnar.ExtractInto(a, b, &col_scratch, &actual);
      ExpectByteIdentical(expected, actual,
                          "pair (" + std::to_string(a) + ", " +
                              std::to_string(b) + ")");
      if (max_pairs != 0 && ++compared >= max_pairs) return;
    }
  }
}

TEST(FeatureEquivalenceTest, HandBuiltEdgeCases) {
  Dataset dataset;
  {
    // Multi-valued names with case collisions and duplicates.
    Record r;
    r.source_id = 1;
    r.Add(AttributeId::kFirstName, "John");
    r.Add(AttributeId::kFirstName, "JOHN");
    r.Add(AttributeId::kFirstName, "Harris");
    r.Add(AttributeId::kLastName, "Foa");
    r.Add(AttributeId::kBirthDay, "2");
    r.Add(AttributeId::kBirthMonth, "8");
    r.Add(AttributeId::kBirthYear, "1936");
    r.Add(AttributeId::kBirthCity, "Torino");
    r.Add(AttributeId::kBirthCity, "Torino");
    r.Add(AttributeId::kGender, "M");
    dataset.Add(std::move(r));
  }
  {
    // Overlapping value set, unknown geo city, non-numeric date part.
    Record r;
    r.source_id = 2;
    r.Add(AttributeId::kFirstName, "john");
    r.Add(AttributeId::kLastName, "FOA");
    r.Add(AttributeId::kBirthDay, "not-a-number");
    r.Add(AttributeId::kBirthYear, "1920");
    r.Add(AttributeId::kBirthCity, "Atlantis");
    r.Add(AttributeId::kBirthCountry, "Italia");
    r.Add(AttributeId::kGender, "m");  // case-sensitive: differs from "M"
    r.Add(AttributeId::kProfession, "tailor");
    dataset.Add(std::move(r));
  }
  {
    // Empty-ish record: only one attribute, shared source with record 0.
    Record r;
    r.source_id = 1;
    r.Add(AttributeId::kProfession, "tailor");
    dataset.Add(std::move(r));
  }
  {
    // Record with no comparable attributes at all.
    Record r;
    r.source_id = 3;
    dataset.Add(std::move(r));
  }
  {
    // Multi-valued places across all four place types.
    Record r;
    r.source_id = 4;
    r.Add(AttributeId::kBirthCity, "Moncalieri");
    r.Add(AttributeId::kPermCity, "Torino");
    r.Add(AttributeId::kPermCity, "Moncalieri");
    r.Add(AttributeId::kPermCountry, "Italia");
    r.Add(AttributeId::kWarCity, "Roma");
    r.Add(AttributeId::kWarRegion, "Lazio");
    r.Add(AttributeId::kDeathCity, "Auschwitz");
    r.Add(AttributeId::kBirthMonth, "8");
    dataset.Add(std::move(r));
  }
  auto geo = [](AttributeId, std::string_view v)
      -> std::optional<geo::GeoPoint> {
    if (v == "Torino") return geo::GeoPoint{45.07, 7.69};
    if (v == "Moncalieri") return geo::GeoPoint{45.00, 7.68};
    if (v == "Roma") return geo::GeoPoint{41.90, 12.50};
    return std::nullopt;
  };
  ExpectAllPairsIdentical(dataset, geo);
}

TEST(FeatureEquivalenceTest, RandomizedSyntheticPairs) {
  // Italy-like corpus with the MV bulk submitter: multi-valued attributes,
  // realistic missingness, geo-coded places.
  auto config = synth::ItalyConfig();
  config.num_persons = 220;
  config.include_mv = true;
  config.seed = 9;
  auto generated = synth::Generate(config);
  synth::Gazetteer gazetteer;
  auto encoded =
      data::EncodeDataset(generated.dataset, gazetteer.MakeGeoResolver());
  ReferenceFeatureExtractor reference(encoded);
  FeatureExtractor columnar(encoded);
  ReferenceFeatureExtractor::Scratch ref_scratch;
  FeatureExtractor::Scratch col_scratch;
  util::Rng rng(1234);
  const auto n = static_cast<int>(generated.dataset.size());
  ASSERT_GE(n, 2);
  for (int trial = 0; trial < 4000; ++trial) {
    auto a = static_cast<data::RecordIdx>(rng.UniformInt(0, n - 1));
    auto b = static_cast<data::RecordIdx>(rng.UniformInt(0, n - 1));
    if (a == b) continue;
    FeatureVector expected;
    FeatureVector actual;
    reference.ExtractInto(a, b, &ref_scratch, &expected);
    columnar.ExtractInto(a, b, &col_scratch, &actual);
    ExpectByteIdentical(expected, actual,
                        "trial " + std::to_string(trial) + " pair (" +
                            std::to_string(a) + ", " + std::to_string(b) +
                            ")");
  }
}

TEST(FeatureEquivalenceTest, BatchMatchesReferenceScalar) {
  auto config = synth::ItalyConfig();
  config.num_persons = 120;
  config.seed = 31;
  auto generated = synth::Generate(config);
  synth::Gazetteer gazetteer;
  auto encoded =
      data::EncodeDataset(generated.dataset, gazetteer.MakeGeoResolver());
  ReferenceFeatureExtractor reference(encoded);
  FeatureExtractor columnar(encoded);

  util::Rng rng(77);
  const auto n = static_cast<int>(generated.dataset.size());
  std::vector<data::RecordPair> pairs;
  for (int i = 0; i < 2000; ++i) {
    auto a = static_cast<data::RecordIdx>(rng.UniformInt(0, n - 1));
    auto b = static_cast<data::RecordIdx>(rng.UniformInt(0, n - 1));
    if (a == b) continue;
    pairs.emplace_back(a, b);
  }

  util::ThreadPool pool(4);
  auto batch = columnar.ExtractBatch(pairs, &pool);
  ASSERT_EQ(batch.size(), pairs.size());
  ReferenceFeatureExtractor::Scratch scratch;
  for (size_t i = 0; i < pairs.size(); ++i) {
    FeatureVector expected;
    reference.ExtractInto(pairs[i].a, pairs[i].b, &scratch, &expected);
    ExpectByteIdentical(expected, batch[i], "pair index " + std::to_string(i));
  }
}

TEST(FeatureEquivalenceTest, CorpusViewsAreConsistent) {
  Dataset dataset;
  Record r;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kFirstName, "guido");
  r.Add(AttributeId::kFirstName, "Massimo");
  r.Add(AttributeId::kLastName, "Foa");
  dataset.Add(std::move(r));
  auto encoded = data::EncodeDataset(dataset);
  data::ComparisonCorpus corpus(encoded);
  // Case collisions dedup to one token; spans are sorted unique.
  auto first = corpus.Tokens(0, AttributeId::kFirstName);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  // Equal strings across attributes share token ids.
  auto last = corpus.Tokens(0, AttributeId::kLastName);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(corpus.TokenString(last[0]), "foa");
  // Per-token q-gram sets are sorted unique and non-empty.
  for (data::TokenId t : first) {
    auto grams = corpus.TokenQGrams(t);
    EXPECT_FALSE(grams.empty());
    EXPECT_TRUE(std::is_sorted(grams.begin(), grams.end()));
    EXPECT_TRUE(std::adjacent_find(grams.begin(), grams.end()) == grams.end());
  }
  // Absent attributes give empty spans and missing codes.
  EXPECT_TRUE(corpus.Tokens(0, AttributeId::kSpouseName).empty());
  EXPECT_EQ(corpus.GenderCode(0), data::kNoValueCode);
  EXPECT_TRUE(std::isnan(corpus.BirthParts(0)[2]));
}

}  // namespace
}  // namespace yver::features
